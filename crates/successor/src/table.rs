//! The per-file successor table — the paper's entire metadata footprint.

use fgcache_types::hash::FastMap;
use fgcache_types::{FileId, InvariantViolation};

use crate::list::SuccessorList;

/// Maps every observed file to its bounded successor list.
///
/// Feed the table the access sequence one file at a time with
/// [`SuccessorTable::record`]; it tracks the previous access internally
/// and registers `(prev → current)` transitions. Alternatively, drive
/// transitions explicitly with [`SuccessorTable::observe_transition`]
/// (used by server-side simulations where several independent streams
/// exist).
///
/// ```
/// use fgcache_successor::{LruSuccessorList, SuccessorTable};
/// use fgcache_types::FileId;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut t = SuccessorTable::new(LruSuccessorList::new(2)?);
/// t.record(FileId(1));
/// t.record(FileId(2));
/// t.record(FileId(1));
/// t.record(FileId(3));
/// // 1 was followed by 2, then by 3; recency ranks 3 first.
/// assert_eq!(t.ranked(FileId(1)), vec![FileId(3), FileId(2)]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SuccessorTable<L> {
    prototype: L,
    lists: FastMap<FileId, L>,
    last: Option<FileId>,
    transitions: u64,
}

impl<L: SuccessorList> SuccessorTable<L> {
    /// Creates a table that spawns each per-file list as a fresh copy of
    /// `prototype` (same policy, same capacity).
    pub fn new(prototype: L) -> Self {
        SuccessorTable {
            prototype,
            lists: FastMap::default(),
            last: None,
            transitions: 0,
        }
    }

    /// Records a file access, registering a transition from the previously
    /// recorded access (if any).
    pub fn record(&mut self, file: FileId) {
        if let Some(prev) = self.last.replace(file) {
            self.observe_transition(prev, file);
        }
    }

    /// Registers an explicit `prev → next` transition.
    pub fn observe_transition(&mut self, prev: FileId, next: FileId) {
        self.transitions += 1;
        self.lists
            .entry(prev)
            .or_insert_with(|| self.prototype.fresh())
            .observe(next);
    }

    /// Resets the internal "previous access" without clearing any lists
    /// (e.g. at a known discontinuity in the stream).
    pub fn break_sequence(&mut self) {
        self.last = None;
    }

    /// The successor list for `file`, if any transitions from it have been
    /// observed.
    pub fn list(&self, file: FileId) -> Option<&L> {
        self.lists.get(&file)
    }

    /// The most likely successor of `file`.
    pub fn most_likely(&self, file: FileId) -> Option<FileId> {
        self.lists.get(&file).and_then(|l| l.most_likely())
    }

    /// The ranked successors of `file` (empty if untracked).
    pub fn ranked(&self, file: FileId) -> Vec<FileId> {
        self.lists
            .get(&file)
            .map(|l| l.ranked())
            .unwrap_or_default()
    }

    /// The *transitive successor* chain of §3: starting from `start`,
    /// repeatedly follow the most likely immediate successor, collecting
    /// up to `n` **distinct** files (excluding `start`). When the most
    /// likely successor is already collected, the walk falls back to the
    /// next-ranked candidate; it stops when no unvisited successor exists.
    pub fn predict_chain(&self, start: FileId, n: usize) -> Vec<FileId> {
        let mut chain = Vec::with_capacity(n);
        let mut scratch = Vec::new();
        self.predict_chain_into(start, n, &mut chain, &mut scratch);
        chain
    }

    /// Allocation-free [`predict_chain`](Self::predict_chain): fills
    /// `chain` with the transitive successor chain, using `scratch` as a
    /// reusable ranking buffer. Both buffers are cleared first; passing
    /// buffers that have reached steady-state capacity makes the walk
    /// perform zero heap allocation.
    pub fn predict_chain_into(
        &self,
        start: FileId,
        n: usize,
        chain: &mut Vec<FileId>,
        scratch: &mut Vec<FileId>,
    ) {
        chain.clear();
        let mut current = start;
        while chain.len() < n {
            let Some(list) = self.lists.get(&current) else {
                break;
            };
            scratch.clear();
            list.ranked_into(scratch);
            let next = scratch
                .iter()
                .copied()
                .find(|f| *f != start && !chain.contains(f));
            match next {
                Some(f) => {
                    chain.push(f);
                    current = f;
                }
                None => break,
            }
        }
    }

    /// An empty table with the same list policy and capacity as `self`.
    pub fn fresh_like(&self) -> Self {
        SuccessorTable::new(self.prototype.fresh())
    }

    /// The capacity of the per-file lists this table spawns (`None` for
    /// unbounded lists).
    pub fn list_capacity(&self) -> Option<usize> {
        self.prototype.capacity()
    }

    /// Number of files with at least one tracked successor.
    pub fn tracked_files(&self) -> usize {
        self.lists.len()
    }

    /// Total transitions observed.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Total successor entries across all lists — the metadata footprint
    /// the paper argues is small.
    pub fn metadata_entries(&self) -> usize {
        self.lists.values().map(|l| l.len()).sum()
    }

    /// The most recently recorded file (the current prediction context).
    pub fn last_recorded(&self) -> Option<FileId> {
        self.last
    }

    /// Iterates over `(file, list)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (FileId, &L)> + '_ {
        self.lists.iter().map(|(&f, l)| (f, l))
    }

    /// Audits the table and every per-file list against the successor-list
    /// contract: capacity bounds, ranking consistency and transition
    /// accounting. Used by the workspace's differential fuzzer and by
    /// debug assertions in experiment drivers.
    ///
    /// # Errors
    ///
    /// Returns an [`InvariantViolation`] describing the first violated
    /// invariant.
    pub fn check_invariants(&self) -> Result<(), InvariantViolation> {
        let err = |detail: String| Err(InvariantViolation::new("SuccessorTable", detail));
        // Every list was created by a transition, so the transition count
        // bounds the number of tracked files from above.
        if (self.lists.len() as u64) > self.transitions {
            return err(format!(
                "{} tracked files but only {} transitions",
                self.lists.len(),
                self.transitions
            ));
        }
        let cap = self.prototype.capacity();
        for (&file, list) in &self.lists {
            if list.len() == 0 {
                return err(format!("empty successor list for {file}"));
            }
            if list.capacity() != cap {
                return err(format!(
                    "list for {file} has capacity {:?}, prototype says {cap:?}",
                    list.capacity()
                ));
            }
            if let Some(cap) = cap {
                if list.len() > cap {
                    return err(format!(
                        "list for {file} holds {} successors, capacity {cap}",
                        list.len()
                    ));
                }
            }
            let ranked = list.ranked();
            if ranked.len() != list.len() {
                return err(format!(
                    "list for {file}: ranked() yields {} entries, len() is {}",
                    ranked.len(),
                    list.len()
                ));
            }
            let mut sorted = ranked.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() != ranked.len() {
                return err(format!("list for {file}: ranked() contains duplicates"));
            }
            for &s in &ranked {
                if !list.contains(s) {
                    return err(format!(
                        "list for {file}: ranked successor {s} fails contains()"
                    ));
                }
            }
            if ranked.first().copied() != list.most_likely() {
                return err(format!(
                    "list for {file}: most_likely() disagrees with ranked()"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::{LfuSuccessorList, LruSuccessorList};

    fn lru_table(cap: usize) -> SuccessorTable<LruSuccessorList> {
        SuccessorTable::new(LruSuccessorList::new(cap).unwrap())
    }

    #[test]
    fn record_builds_transitions() {
        let mut t = lru_table(4);
        for id in [1u64, 2, 3] {
            t.record(FileId(id));
        }
        assert_eq!(t.transitions(), 2);
        assert_eq!(t.most_likely(FileId(1)), Some(FileId(2)));
        assert_eq!(t.most_likely(FileId(2)), Some(FileId(3)));
        assert_eq!(t.most_likely(FileId(3)), None);
        assert_eq!(t.tracked_files(), 2);
    }

    #[test]
    fn break_sequence_suppresses_transition() {
        let mut t = lru_table(4);
        t.record(FileId(1));
        t.break_sequence();
        t.record(FileId(2));
        assert_eq!(t.transitions(), 0);
        assert_eq!(t.most_likely(FileId(1)), None);
        assert_eq!(t.last_recorded(), Some(FileId(2)));
    }

    #[test]
    fn predict_chain_follows_most_likely() {
        let mut t = lru_table(2);
        for id in [1u64, 2, 3, 4, 1, 2, 3, 4] {
            t.record(FileId(id));
        }
        assert_eq!(
            t.predict_chain(FileId(1), 3),
            vec![FileId(2), FileId(3), FileId(4)]
        );
    }

    #[test]
    fn predict_chain_stops_at_unknown() {
        let mut t = lru_table(2);
        t.record(FileId(1));
        t.record(FileId(2));
        // 2 has no successors.
        assert_eq!(t.predict_chain(FileId(1), 5), vec![FileId(2)]);
        assert!(t.predict_chain(FileId(99), 5).is_empty());
    }

    #[test]
    fn predict_chain_handles_cycles_via_fallback() {
        // Sequence 1→2→1→2... : chain from 1 must not loop forever; after
        // collecting 2 it tries 2's successors (1 is excluded as start).
        let mut t = lru_table(2);
        for id in [1u64, 2, 1, 2, 1] {
            t.record(FileId(id));
        }
        let chain = t.predict_chain(FileId(1), 5);
        assert_eq!(chain, vec![FileId(2)]);
    }

    #[test]
    fn predict_chain_fallback_to_second_ranked() {
        // 1→2 and 2→1 / 2→3: from 1, after 2, most-likely of 2 may be 1
        // (excluded) so the walk must fall back to 3.
        let mut t = lru_table(2);
        for id in [1u64, 2, 3, 2, 1, 2, 1] {
            t.record(FileId(id));
        }
        // successors: 1 → {2}; 2 → {1 (recent), 3}
        let chain = t.predict_chain(FileId(1), 3);
        assert_eq!(chain, vec![FileId(2), FileId(3)]);
    }

    #[test]
    fn predict_chain_into_matches_predict_chain() {
        let mut t = lru_table(3);
        for id in [1u64, 2, 3, 4, 2, 5, 1, 2, 3, 1] {
            t.record(FileId(id));
        }
        let mut chain = vec![FileId(77)];
        let mut scratch = vec![FileId(88)];
        for start in [1u64, 2, 3, 99] {
            for n in 0..5 {
                t.predict_chain_into(FileId(start), n, &mut chain, &mut scratch);
                assert_eq!(chain, t.predict_chain(FileId(start), n));
            }
        }
    }

    #[test]
    fn metadata_entries_counts_all_lists() {
        let mut t = lru_table(8);
        for id in [1u64, 2, 1, 3, 1, 4] {
            t.record(FileId(id));
        }
        // 1 → {2,3,4}? no: transitions 1→2, 2→1, 1→3, 3→1, 1→4.
        assert_eq!(t.metadata_entries(), 5);
    }

    #[test]
    fn works_with_lfu_lists() {
        let mut t = SuccessorTable::new(LfuSuccessorList::new(2).unwrap());
        for id in [1u64, 2, 1, 2, 1, 3] {
            t.record(FileId(id));
        }
        // 1 followed by 2 twice, by 3 once → most likely 2.
        assert_eq!(t.most_likely(FileId(1)), Some(FileId(2)));
    }

    #[test]
    fn iter_visits_every_tracked_file() {
        let mut t = lru_table(4);
        for id in [1u64, 2, 3, 1] {
            t.record(FileId(id));
        }
        let mut files: Vec<u64> = t.iter().map(|(f, _)| f.as_u64()).collect();
        files.sort_unstable();
        assert_eq!(files, vec![1, 2, 3]);
    }
}

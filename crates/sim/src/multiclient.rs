//! Multi-client replay against the sharded server tier.
//!
//! The paper's server deployment (§4.3) aggregates *many* clients, each
//! behind its own cache, with no client cooperation. This driver builds
//! that topology end to end: `K` clients, each with a private
//! [`FilterCache`] front-end, replay their traces against one shared
//! [`ShardedAggregatingCache`] — either concurrently (one scoped thread
//! per client, the production shape) or as a deterministic round-robin
//! interleave (the reproducible-metrics shape). The sweep replays the
//! same client workload against a range of shard counts and reports
//! aggregate hit rates, demand fetches and per-shard load imbalance.

use std::fmt;
use std::time::{Duration, Instant};

use fgcache_cache::{FilterCache, LruCache};
use fgcache_core::{ShardedAggregatingCache, ShardedAggregatingCacheBuilder};
use fgcache_net::{request_id, GroupRequest, Transport, TransportStats};
use fgcache_trace::synth::{SynthConfig, WorkloadProfile};
use fgcache_trace::Trace;
use fgcache_types::{AccessEvent, TransportError, ValidationError};

use crate::report::{fmt2, pct, Table};

/// Parameter grid for the multi-client sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiClientConfig {
    /// Number of concurrent clients `K`.
    pub clients: usize,
    /// Shard counts to sweep (e.g. `[1, 2, 4, 8]`).
    pub shard_counts: Vec<usize>,
    /// Synthetic events generated per client.
    pub events_per_client: usize,
    /// Capacity of each client's private filter cache.
    pub filter_capacity: usize,
    /// Total capacity of the shared server tier (split across shards).
    pub server_capacity: usize,
    /// Server-side group size `g`.
    pub group_size: usize,
    /// Server-side successor list capacity.
    pub successor_capacity: usize,
    /// Base seed; client `i` generates its trace from `seed + i`.
    pub seed: u64,
    /// Workload profile each client draws from.
    pub profile: WorkloadProfile,
    /// Replay concurrently with one scoped thread per client (true), or
    /// as a deterministic round-robin interleave (false). Aggregate
    /// totals match either way; concurrent runs interleave the shard
    /// streams nondeterministically.
    pub concurrent: bool,
    /// Whether the server uses the lock-light hit fast path (true, the
    /// default) or routes every request through the shard mutex (the
    /// `--no-fast-path` escape hatch). Aggregate results are identical
    /// either way — only contention changes.
    pub fast_path: bool,
}

impl MultiClientConfig {
    /// The ISSUE's sweep: 4 clients × 1/2/4/8 shards.
    pub fn standard() -> Self {
        MultiClientConfig {
            clients: 4,
            shard_counts: vec![1, 2, 4, 8],
            events_per_client: 25_000,
            filter_capacity: 100,
            server_capacity: 400,
            group_size: 5,
            successor_capacity: 8,
            seed: 20020702,
            profile: WorkloadProfile::Server,
            concurrent: true,
            fast_path: true,
        }
    }

    /// A reduced grid for quick runs and tests.
    pub fn quick() -> Self {
        MultiClientConfig {
            clients: 2,
            shard_counts: vec![1, 2],
            events_per_client: 2_000,
            filter_capacity: 50,
            server_capacity: 120,
            group_size: 3,
            successor_capacity: 4,
            seed: 7,
            profile: WorkloadProfile::Server,
            concurrent: false,
            fast_path: true,
        }
    }

    fn validate(&self) -> Result<(), ValidationError> {
        if self.clients == 0 {
            return Err(ValidationError::new("clients", "at least one client"));
        }
        if self.events_per_client == 0 {
            return Err(ValidationError::new(
                "events_per_client",
                "must be greater than zero",
            ));
        }
        if self.filter_capacity == 0 {
            return Err(ValidationError::new(
                "filter_capacity",
                "must be greater than zero",
            ));
        }
        if self.shard_counts.is_empty() {
            return Err(ValidationError::new("shard_counts", "must not be empty"));
        }
        for &shards in &self.shard_counts {
            // Delegate slice-size validation (smallest slice must hold a
            // whole group) to the builder.
            self.server(shards)?;
        }
        Ok(())
    }

    fn server(&self, shards: usize) -> Result<ShardedAggregatingCache, ValidationError> {
        ShardedAggregatingCacheBuilder::new(self.server_capacity)
            .shards(shards)
            .group_size(self.group_size)
            .successor_capacity(self.successor_capacity)
            .fast_path(self.fast_path)
            .build()
    }

    /// Generates the `K` per-client synthetic traces (client `i` is
    /// seeded with `seed + i`, so clients are independent but the whole
    /// sweep is reproducible).
    ///
    /// # Errors
    ///
    /// Returns a [`ValidationError`] for a zero client count or event
    /// count.
    pub fn client_traces(&self) -> Result<Vec<Trace>, ValidationError> {
        if self.clients == 0 {
            return Err(ValidationError::new("clients", "at least one client"));
        }
        (0..self.clients)
            .map(|i| {
                Ok(SynthConfig::profile(self.profile)
                    .events(self.events_per_client)
                    .seed(self.seed + i as u64)
                    .build()?
                    .generate())
            })
            .collect()
    }
}

/// One measured point of the multi-client sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiClientPoint {
    /// Shard count for this point.
    pub shards: usize,
    /// Number of clients replayed.
    pub clients: usize,
    /// Total events replayed across all clients.
    pub events: u64,
    /// Exact aggregate client-side (filter) hits.
    pub client_hits: u64,
    /// Exact aggregate client-side misses (`events − client_hits`) —
    /// kept as a counter so consumers never have to reconstruct it from
    /// the hit rate (a lossy float round-trip at large event counts).
    pub client_misses: u64,
    /// Aggregate client-side (filter) hit rate, derived from the exact
    /// counters.
    pub client_hit_rate: f64,
    /// Server hit rate over the requests that reached it.
    pub server_hit_rate: f64,
    /// Requests that reached the server (sum of client misses).
    pub server_accesses: u64,
    /// Server demand fetches (misses) — the paper's cost metric.
    pub demand_fetches: u64,
    /// Per-shard load imbalance (busiest / mean; 1.0 = balanced).
    pub imbalance: f64,
    /// Wall-clock replay time (excludes trace generation).
    pub elapsed: Duration,
}

/// Replays `traces` (one per client) against a fresh sharded server and
/// measures the aggregate behaviour. Each client runs behind its own
/// `FilterCache<LruCache>` of `filter_capacity`; misses forward to the
/// shared server. `concurrent` selects scoped threads vs the
/// deterministic round-robin interleave.
///
/// # Errors
///
/// Returns a [`ValidationError`] if `traces` is empty, the filter
/// capacity is zero, or the server configuration is invalid for
/// `shards`.
pub fn run_multiclient(
    traces: &[Trace],
    shards: usize,
    filter_capacity: usize,
    server_capacity: usize,
    group_size: usize,
    successor_capacity: usize,
    concurrent: bool,
) -> Result<MultiClientPoint, ValidationError> {
    let server = ShardedAggregatingCacheBuilder::new(server_capacity)
        .shards(shards)
        .group_size(group_size)
        .successor_capacity(successor_capacity)
        .build()?;
    run_multiclient_on(&server, traces, filter_capacity, concurrent)
}

/// Like [`run_multiclient`] but replays against a caller-built `server` —
/// the hook for non-default server configurations (e.g. the fast path
/// disabled via [`ShardedAggregatingCacheBuilder::fast_path`]). The
/// server should be freshly built; its statistics are read after the
/// replay.
///
/// # Errors
///
/// Returns a [`ValidationError`] if `traces` is empty or the filter
/// capacity is zero.
pub fn run_multiclient_on(
    server: &ShardedAggregatingCache,
    traces: &[Trace],
    filter_capacity: usize,
    concurrent: bool,
) -> Result<MultiClientPoint, ValidationError> {
    if traces.is_empty() {
        return Err(ValidationError::new("traces", "at least one client trace"));
    }
    if filter_capacity == 0 {
        return Err(ValidationError::new(
            "filter_capacity",
            "must be greater than zero",
        ));
    }
    let shards = server.shard_count();
    let start = Instant::now();
    let (client_hits, client_accesses) = if concurrent {
        replay_concurrent(server, traces, filter_capacity)
    } else {
        replay_round_robin(server, traces, filter_capacity)
    };
    let elapsed = start.elapsed();
    let stats = server.stats();
    debug_assert!(server.check_invariants().is_ok());
    Ok(MultiClientPoint {
        shards,
        clients: traces.len(),
        events: client_accesses,
        client_hits,
        client_misses: client_accesses - client_hits,
        client_hit_rate: if client_accesses == 0 {
            0.0
        } else {
            client_hits as f64 / client_accesses as f64
        },
        server_hit_rate: stats.hit_rate(),
        server_accesses: stats.accesses,
        demand_fetches: server.demand_fetches(),
        imbalance: server.shard_imbalance(),
        elapsed,
    })
}

/// One scoped thread per client — the topology the shards exist for.
/// Returns aggregate (client hits, client accesses).
fn replay_concurrent(
    server: &ShardedAggregatingCache,
    traces: &[Trace],
    filter_capacity: usize,
) -> (u64, u64) {
    std::thread::scope(|scope| {
        let handles: Vec<_> = traces
            .iter()
            .map(|trace| {
                scope.spawn(move || {
                    let mut filter = FilterCache::new(LruCache::new(filter_capacity));
                    for ev in trace.events() {
                        if filter.offer_file(ev.file) {
                            server.handle_access(ev.file);
                        }
                    }
                    let stats = *filter.stats();
                    (stats.hits, stats.accesses)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client replay thread panicked"))
            .fold((0, 0), |(h, a), (hh, aa)| (h + hh, a + aa))
    })
}

/// Deterministic single-threaded interleave: clients take turns, one
/// event per turn, until every trace is drained.
fn replay_round_robin(
    server: &ShardedAggregatingCache,
    traces: &[Trace],
    filter_capacity: usize,
) -> (u64, u64) {
    let mut filters: Vec<FilterCache<LruCache>> = traces
        .iter()
        .map(|_| FilterCache::new(LruCache::new(filter_capacity)))
        .collect();
    let longest = traces.iter().map(Trace::len).max().unwrap_or(0);
    for i in 0..longest {
        for (client, trace) in traces.iter().enumerate() {
            if let Some(ev) = trace.events().get(i) {
                if filters[client].offer_file(ev.file) {
                    server.handle_access(ev.file);
                }
            }
        }
    }
    filters.iter().fold((0, 0), |(h, a), f| {
        (h + f.stats().hits, a + f.stats().accesses)
    })
}

/// Runs the full sweep: the same `K` client traces replayed against every
/// shard count in the config.
///
/// # Errors
///
/// Returns a [`ValidationError`] if the config grid is invalid (see
/// [`MultiClientConfig`] field docs).
pub fn multiclient_sweep(
    config: &MultiClientConfig,
) -> Result<Vec<MultiClientPoint>, ValidationError> {
    config.validate()?;
    let traces = config.client_traces()?;
    config
        .shard_counts
        .iter()
        .map(|&shards| {
            let server = config.server(shards)?;
            run_multiclient_on(&server, &traces, config.filter_capacity, config.concurrent)
        })
        .collect()
}

/// Renders the sweep: one row per shard count.
pub fn multiclient_table(title: &str, points: &[MultiClientPoint]) -> Table {
    let mut table = Table::new(
        title,
        [
            "shards",
            "clients",
            "client_hit",
            "server_hit",
            "fetches",
            "imbalance",
            "secs",
        ],
    );
    for p in points {
        table.push_row([
            p.shards.to_string(),
            p.clients.to_string(),
            pct(p.client_hit_rate),
            pct(p.server_hit_rate),
            p.demand_fetches.to_string(),
            fmt2(p.imbalance),
            format!("{:.3}", p.elapsed.as_secs_f64()),
        ]);
    }
    table
}

/// Why a transport-backed replay failed: the inputs were invalid, or the
/// fetch path itself failed (and retries, if configured, were exhausted).
#[derive(Debug)]
pub enum TransportReplayError {
    /// The replay inputs were rejected before any fetch.
    Invalid(ValidationError),
    /// A group fetch failed terminally.
    Transport(TransportError),
}

impl fmt::Display for TransportReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportReplayError::Invalid(e) => write!(f, "invalid replay inputs: {e}"),
            TransportReplayError::Transport(e) => write!(f, "transport failure: {e}"),
        }
    }
}

impl std::error::Error for TransportReplayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportReplayError::Invalid(e) => Some(e),
            TransportReplayError::Transport(e) => Some(e),
        }
    }
}

impl From<ValidationError> for TransportReplayError {
    fn from(e: ValidationError) -> Self {
        TransportReplayError::Invalid(e)
    }
}

impl From<TransportError> for TransportReplayError {
    fn from(e: TransportError) -> Self {
        TransportReplayError::Transport(e)
    }
}

/// The measured outcome of a transport-backed multi-client replay.
#[derive(Debug, Clone, PartialEq)]
pub struct TransportReplayPoint {
    /// Number of clients replayed.
    pub clients: usize,
    /// Total events replayed across all clients.
    pub events: u64,
    /// Exact aggregate client-side (filter) hits.
    pub client_hits: u64,
    /// Exact aggregate client-side misses (`events − client_hits`).
    pub client_misses: u64,
    /// Aggregate client-side (filter) hit rate, derived from the exact
    /// counters.
    pub client_hit_rate: f64,
    /// Merged traffic counters across every client's transport. When the
    /// transport layer is active it is the one source of truth for
    /// files-moved and fetch counts: `transport.requests` is the demand
    /// fetch count and `transport.files_moved` the files-transferred
    /// count that cost models should price.
    pub transport: TransportStats,
    /// Wall-clock replay time (excludes trace generation).
    pub elapsed: Duration,
}

/// Replays `traces` with every filter-cache miss routed through that
/// client's own [`Transport`] — the transport-backed twin of
/// [`run_multiclient`]. `transports` supplies one fetch path per client
/// (e.g. a `NetClient` each for a TCP run, or a `SimTransport` each over
/// one shared cache for a virtual-clock run) and is returned so callers
/// can inspect per-client stats or reuse the connections.
///
/// Misses accumulate into per-client batches of `batch` requests,
/// submitted pipelined via [`Transport::fetch_batch`]; `batch == 1`
/// submits every miss immediately. Request ids are namespaced per client
/// with [`request_id`], so the streams stay
/// idempotency-safe against one shared server.
///
/// With `concurrent = false` the interleave is the same deterministic
/// round-robin as [`run_multiclient`]'s: at `batch == 1` a transport
/// backed by a [`ShardedAggregatingCache`] therefore produces **byte
/// -identical** server statistics to the in-process replay — the
/// differential property the loopback CI test pins. Larger batches and
/// concurrent replay reorder server arrivals, changing (only) the
/// order-dependent statistics.
///
/// # Errors
///
/// Returns [`TransportReplayError::Invalid`] for empty/mismatched inputs
/// and [`TransportReplayError::Transport`] on the first terminal fetch
/// failure.
pub fn run_multiclient_transport<T: Transport + Send>(
    traces: &[Trace],
    filter_capacity: usize,
    mut transports: Vec<T>,
    batch: usize,
    concurrent: bool,
) -> Result<(TransportReplayPoint, Vec<T>), TransportReplayError> {
    if traces.is_empty() {
        return Err(ValidationError::new("traces", "at least one client trace").into());
    }
    if filter_capacity == 0 {
        return Err(ValidationError::new("filter_capacity", "must be greater than zero").into());
    }
    if transports.len() != traces.len() {
        return Err(ValidationError::new(
            "transports",
            format!(
                "need exactly one transport per client ({} traces, {} transports)",
                traces.len(),
                transports.len()
            ),
        )
        .into());
    }
    let batch = batch.max(1);
    let start = Instant::now();
    let (client_hits, client_accesses) = if concurrent {
        replay_transport_concurrent(traces, filter_capacity, &mut transports, batch)?
    } else {
        replay_transport_round_robin(traces, filter_capacity, &mut transports, batch)?
    };
    let elapsed = start.elapsed();
    let mut merged = TransportStats::default();
    for t in &transports {
        merged.merge(&t.stats());
    }
    let point = TransportReplayPoint {
        clients: traces.len(),
        events: client_accesses,
        client_hits,
        client_misses: client_accesses - client_hits,
        client_hit_rate: if client_accesses == 0 {
            0.0
        } else {
            client_hits as f64 / client_accesses as f64
        },
        transport: merged,
        elapsed,
    };
    Ok((point, transports))
}

/// Per-client replay state for the transport-backed modes: the private
/// filter, the pending batch, and the client's request-id sequence.
struct TransportClient<'t, T> {
    index: u64,
    filter: FilterCache<LruCache>,
    transport: &'t mut T,
    pending: Vec<GroupRequest>,
    next_seq: u64,
}

impl<'t, T: Transport> TransportClient<'t, T> {
    fn new(index: usize, filter_capacity: usize, transport: &'t mut T) -> Self {
        TransportClient {
            index: index as u64,
            filter: FilterCache::new(LruCache::new(filter_capacity)),
            transport,
            pending: Vec::new(),
            next_seq: 0,
        }
    }

    /// Offers one event to the filter; a miss joins the pending batch,
    /// which is flushed at `batch` requests.
    fn offer(&mut self, file: fgcache_types::FileId, batch: usize) -> Result<(), TransportError> {
        if self.filter.offer_file(file) {
            let id = request_id(self.index, self.next_seq);
            self.next_seq += 1;
            self.pending.push(GroupRequest::new(id, vec![file]));
            if self.pending.len() >= batch {
                self.flush()?;
            }
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<(), TransportError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let batch = std::mem::take(&mut self.pending);
        for result in self.transport.fetch_batch(&batch) {
            result?;
        }
        Ok(())
    }

    fn finish(mut self) -> Result<(u64, u64), TransportError> {
        self.flush()?;
        let stats = *self.filter.stats();
        Ok((stats.hits, stats.accesses))
    }
}

/// Deterministic round-robin interleave over one shared fetch order —
/// clients take turns, one event per turn (mirrors
/// [`replay_round_robin`]).
fn replay_transport_round_robin<T: Transport>(
    traces: &[Trace],
    filter_capacity: usize,
    transports: &mut [T],
    batch: usize,
) -> Result<(u64, u64), TransportError> {
    let mut clients: Vec<TransportClient<'_, T>> = transports
        .iter_mut()
        .enumerate()
        .map(|(i, t)| TransportClient::new(i, filter_capacity, t))
        .collect();
    let longest = traces.iter().map(Trace::len).max().unwrap_or(0);
    for i in 0..longest {
        for (client, trace) in clients.iter_mut().zip(traces) {
            if let Some(ev) = trace.events().get(i) {
                client.offer(ev.file, batch)?;
            }
        }
    }
    let mut totals = (0, 0);
    for client in clients {
        let (hits, accesses) = client.finish()?;
        totals.0 += hits;
        totals.1 += accesses;
    }
    Ok(totals)
}

/// One scoped thread per client, each driving its own transport (mirrors
/// [`replay_concurrent`]).
fn replay_transport_concurrent<T: Transport + Send>(
    traces: &[Trace],
    filter_capacity: usize,
    transports: &mut [T],
    batch: usize,
) -> Result<(u64, u64), TransportError> {
    let results = std::thread::scope(|scope| {
        let handles: Vec<_> = traces
            .iter()
            .zip(transports.iter_mut())
            .enumerate()
            .map(|(index, (trace, transport))| {
                scope.spawn(move || {
                    let mut client = TransportClient::new(index, filter_capacity, transport);
                    for ev in trace.events() {
                        client.offer(ev.file, batch)?;
                    }
                    client.finish()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client replay thread panicked"))
            .collect::<Vec<_>>()
    });
    let mut totals = (0, 0);
    for result in results {
        let (hits, accesses) = result?;
        totals.0 += hits;
        totals.1 += accesses;
    }
    Ok(totals)
}

/// Why a streaming multi-client replay stopped: the inputs were invalid,
/// or the event source itself failed mid-stream.
#[derive(Debug)]
pub enum StreamReplayError<E> {
    /// The replay inputs were rejected before any event was consumed.
    Invalid(ValidationError),
    /// The event source failed; the replay stops at the first error.
    Source(E),
}

impl<E: fmt::Display> fmt::Display for StreamReplayError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamReplayError::Invalid(e) => write!(f, "invalid replay inputs: {e}"),
            StreamReplayError::Source(e) => write!(f, "event source failure: {e}"),
        }
    }
}

impl<E: std::error::Error + 'static> std::error::Error for StreamReplayError<E> {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamReplayError::Invalid(e) => Some(e),
            StreamReplayError::Source(e) => Some(e),
        }
    }
}

impl<E> From<ValidationError> for StreamReplayError<E> {
    fn from(e: ValidationError) -> Self {
        StreamReplayError::Invalid(e)
    }
}

/// Single-pass streaming twin of
/// [`split_round_robin`] + [`run_multiclient_on`] (round-robin mode):
/// event `i` of the stream is attributed to client `i % clients`, whose
/// private filter decides whether it reaches the shared server.
///
/// The round-robin interleave replays split traces in exactly original
/// stream order (turn `t` plays events `t·k .. t·k + k` in client order),
/// so this produces **identical** [`MultiClientPoint`] counters without
/// ever materializing the trace — the replay path for event streams too
/// large to hold in memory. Memory is bounded by the `clients` filter
/// caches; the stream is consumed once.
///
/// # Errors
///
/// Returns [`StreamReplayError::Invalid`] for a zero client count or
/// filter capacity, and [`StreamReplayError::Source`] with the source's
/// error if the stream yields one (the replay stops at that point).
pub fn run_multiclient_stream<I, E>(
    server: &ShardedAggregatingCache,
    events: I,
    clients: usize,
    filter_capacity: usize,
) -> Result<MultiClientPoint, StreamReplayError<E>>
where
    I: IntoIterator<Item = Result<AccessEvent, E>>,
{
    if clients == 0 {
        return Err(ValidationError::new("clients", "at least one client").into());
    }
    if filter_capacity == 0 {
        return Err(ValidationError::new("filter_capacity", "must be greater than zero").into());
    }
    let shards = server.shard_count();
    let start = Instant::now();
    let mut filters: Vec<FilterCache<LruCache>> = (0..clients)
        .map(|_| FilterCache::new(LruCache::new(filter_capacity)))
        .collect();
    for (index, ev) in (0_u64..).zip(events) {
        let ev = ev.map_err(StreamReplayError::Source)?;
        let client = (index % clients as u64) as usize;
        if filters[client].offer_file(ev.file) {
            server.handle_access(ev.file);
        }
    }
    let elapsed = start.elapsed();
    let (client_hits, client_accesses) = filters.iter().fold((0, 0), |(h, a), f| {
        (h + f.stats().hits, a + f.stats().accesses)
    });
    let stats = server.stats();
    debug_assert!(server.check_invariants().is_ok());
    Ok(MultiClientPoint {
        shards,
        clients,
        events: client_accesses,
        client_hits,
        client_misses: client_accesses - client_hits,
        client_hit_rate: if client_accesses == 0 {
            0.0
        } else {
            client_hits as f64 / client_accesses as f64
        },
        server_hit_rate: stats.hit_rate(),
        server_accesses: stats.accesses,
        demand_fetches: server.demand_fetches(),
        imbalance: server.shard_imbalance(),
        elapsed,
    })
}

/// Splits one trace into `k` interleaved client streams (event `i` goes
/// to client `i % k`) — how the CLI turns a single recorded trace into a
/// multi-client workload.
pub fn split_round_robin(trace: &Trace, k: usize) -> Vec<Trace> {
    let k = k.max(1);
    (0..k)
        .map(|client| {
            trace
                .events()
                .iter()
                .skip(client)
                .step_by(k)
                .copied()
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        let mut cfg = MultiClientConfig::quick();
        cfg.clients = 0;
        assert!(multiclient_sweep(&cfg).is_err());
        let mut cfg = MultiClientConfig::quick();
        cfg.shard_counts.clear();
        assert!(multiclient_sweep(&cfg).is_err());
        let mut cfg = MultiClientConfig::quick();
        cfg.filter_capacity = 0;
        assert!(multiclient_sweep(&cfg).is_err());
        // 120-capacity server over 64 shards has slices smaller than g,
        // which builds (shards clamp their group size); more shards than
        // capacity does not.
        let mut cfg = MultiClientConfig::quick();
        cfg.shard_counts = vec![64];
        assert!(multiclient_sweep(&cfg).is_ok());
        let mut cfg = MultiClientConfig::quick();
        cfg.shard_counts = vec![128];
        assert!(multiclient_sweep(&cfg).is_err());
        assert!(run_multiclient(&[], 1, 10, 100, 3, 4, false).is_err());
    }

    #[test]
    fn sweep_reports_every_shard_count() {
        let cfg = MultiClientConfig::quick();
        let points = multiclient_sweep(&cfg).unwrap();
        assert_eq!(points.len(), cfg.shard_counts.len());
        for (p, &shards) in points.iter().zip(&cfg.shard_counts) {
            assert_eq!(p.shards, shards);
            assert_eq!(p.clients, cfg.clients);
            assert_eq!(p.events, (cfg.clients * cfg.events_per_client) as u64);
            // Every client miss reaches the server, nothing else does —
            // checked against the exact miss counter, not a float
            // reconstruction from the hit rate (see
            // `hit_rate_round_trip_is_lossy_at_scale`).
            assert_eq!(p.server_accesses, p.client_misses);
            assert_eq!(p.client_hits + p.client_misses, p.events);
            assert!(p.demand_fetches <= p.server_accesses);
            assert!(p.imbalance >= 1.0);
        }
        // The client tier never sees the shard count: its hit rate is
        // identical at every point.
        assert!(points
            .windows(2)
            .all(|w| (w[0].client_hit_rate - w[1].client_hit_rate).abs() < 1e-12));
    }

    #[test]
    fn hit_rate_round_trip_is_lossy_at_scale() {
        // Regression for the reconstruction this suite used to do:
        // `events − round(client_hit_rate · events)`. Above 2^53 the
        // counters stop being representable in f64, the rate quantizes
        // to 1.0, and the round trip silently erases real misses — at
        // this pinned pair it reports 0 where the truth is 1. The exact
        // counters carried on the point are immune by construction.
        let events: u64 = 10_000_000_000_000_000; // 10^16 > 2^53
        let hits: u64 = events - 1;
        let misses = events - hits;
        let hit_rate = hits as f64 / events as f64;
        let reconstructed = events - (hit_rate * events as f64).round() as u64;
        assert_eq!(misses, 1);
        assert_ne!(
            reconstructed, misses,
            "the float round trip should diverge here — if this starts \
             passing, f64 grew mantissa bits"
        );
    }

    #[test]
    fn exact_counters_match_the_rate_and_the_server() {
        let cfg = MultiClientConfig::quick();
        let traces = cfg.client_traces().unwrap();
        let p = run_multiclient(&traces, 2, 50, 120, 3, 4, false).unwrap();
        assert_eq!(p.client_hits + p.client_misses, p.events);
        assert_eq!(p.server_accesses, p.client_misses);
        assert!((p.client_hit_rate - p.client_hits as f64 / p.events as f64).abs() < 1e-15);
    }

    #[test]
    fn concurrent_and_round_robin_agree_on_client_totals() {
        let mut cfg = MultiClientConfig::quick();
        let traces = cfg.client_traces().unwrap();
        let rr = run_multiclient(&traces, 2, 50, 120, 3, 4, false).unwrap();
        cfg.concurrent = true;
        let conc = run_multiclient(&traces, 2, 50, 120, 3, 4, true).unwrap();
        // Client filters are private: their aggregate behaviour cannot
        // depend on server interleaving.
        assert_eq!(rr.events, conc.events);
        assert!((rr.client_hit_rate - conc.client_hit_rate).abs() < 1e-12);
        assert_eq!(rr.server_accesses, conc.server_accesses);
    }

    #[test]
    fn fast_path_toggle_does_not_change_results() {
        // quick() replays round-robin (deterministic), so the fast path
        // must be observably invisible down to exact equality.
        let on = MultiClientConfig::quick();
        let off = MultiClientConfig {
            fast_path: false,
            ..MultiClientConfig::quick()
        };
        let a = multiclient_sweep(&on).unwrap();
        let b = multiclient_sweep(&off).unwrap();
        assert_eq!(a.len(), b.len());
        for (pa, pb) in a.iter().zip(&b) {
            assert_eq!(pa.demand_fetches, pb.demand_fetches);
            assert_eq!(pa.server_hit_rate, pb.server_hit_rate);
            assert_eq!(pa.server_accesses, pb.server_accesses);
            assert_eq!(pa.imbalance, pb.imbalance);
            assert_eq!(pa.client_hit_rate, pb.client_hit_rate);
        }
    }

    #[test]
    fn single_client_single_shard_round_robin_is_deterministic() {
        let cfg = MultiClientConfig {
            clients: 1,
            shard_counts: vec![1],
            ..MultiClientConfig::quick()
        };
        let a = multiclient_sweep(&cfg).unwrap();
        let b = multiclient_sweep(&cfg).unwrap();
        assert_eq!(a[0].demand_fetches, b[0].demand_fetches);
        assert_eq!(a[0].server_hit_rate, b[0].server_hit_rate);
    }

    #[test]
    fn table_has_one_row_per_point() {
        let points = multiclient_sweep(&MultiClientConfig::quick()).unwrap();
        let table = multiclient_table("multiclient", &points);
        assert_eq!(table.row_count(), points.len());
        assert!(table.render().contains("imbalance"));
    }

    #[test]
    fn transport_replay_validates_inputs() {
        use fgcache_core::CostModel;
        use fgcache_net::SimTransport;
        let traces = MultiClientConfig::quick().client_traces().unwrap();
        let none: Vec<SimTransport<'static>> = Vec::new();
        assert!(matches!(
            run_multiclient_transport(&[], 10, none, 1, false),
            Err(TransportReplayError::Invalid(_))
        ));
        let one = vec![SimTransport::to_origin(CostModel::remote())];
        assert!(matches!(
            run_multiclient_transport(&traces, 0, one, 1, false),
            Err(TransportReplayError::Invalid(_))
        ));
        let one = vec![SimTransport::to_origin(CostModel::remote())];
        assert!(
            matches!(
                run_multiclient_transport(&traces, 10, one, 1, false),
                Err(TransportReplayError::Invalid(_))
            ),
            "two traces need two transports"
        );
    }

    #[test]
    fn transport_round_robin_matches_direct_replay_byte_for_byte() {
        use fgcache_core::CostModel;
        use fgcache_net::SimTransport;
        let cfg = MultiClientConfig::quick();
        let traces = cfg.client_traces().unwrap();

        // Direct in-process replay.
        let direct_server = ShardedAggregatingCacheBuilder::new(cfg.server_capacity)
            .shards(2)
            .group_size(cfg.group_size)
            .successor_capacity(cfg.successor_capacity)
            .build()
            .unwrap();
        let (direct_hits, direct_accesses) =
            replay_round_robin(&direct_server, &traces, cfg.filter_capacity);

        // The same interleave, but every miss crosses a transport.
        let transport_server = ShardedAggregatingCacheBuilder::new(cfg.server_capacity)
            .shards(2)
            .group_size(cfg.group_size)
            .successor_capacity(cfg.successor_capacity)
            .build()
            .unwrap();
        let transports: Vec<SimTransport<'_>> = (0..traces.len())
            .map(|_| SimTransport::to_shared(&transport_server, CostModel::remote()))
            .collect();
        let (point, transports) =
            run_multiclient_transport(&traces, cfg.filter_capacity, transports, 1, false).unwrap();

        assert_eq!(point.events, direct_accesses);
        assert_eq!(
            point.client_hit_rate,
            direct_hits as f64 / direct_accesses as f64
        );
        // Byte-exact server equivalence: same stats, same group stats.
        assert_eq!(transport_server.stats(), direct_server.stats());
        assert_eq!(transport_server.group_stats(), direct_server.group_stats());
        // One source of truth: the transports' merged counters equal the
        // server's own view of the traffic.
        assert_eq!(point.transport.requests, transport_server.stats().accesses);
        assert_eq!(
            point.transport.files_moved,
            transport_server.stats().accesses
        );
        assert_eq!(point.transport.hits, transport_server.stats().hits);
        assert_eq!(transports.len(), traces.len());
    }

    #[test]
    fn transport_batching_preserves_client_totals_and_saves_latency() {
        use fgcache_core::CostModel;
        use fgcache_net::SimTransport;
        let cfg = MultiClientConfig::quick();
        let traces = cfg.client_traces().unwrap();
        let run = |batch: usize| {
            let server = ShardedAggregatingCacheBuilder::new(cfg.server_capacity)
                .shards(2)
                .group_size(cfg.group_size)
                .successor_capacity(cfg.successor_capacity)
                .build()
                .unwrap();
            let transports: Vec<SimTransport<'_>> = (0..traces.len())
                .map(|_| SimTransport::to_shared(&server, CostModel::remote()))
                .collect();
            let (point, _) =
                run_multiclient_transport(&traces, cfg.filter_capacity, transports, batch, false)
                    .unwrap();
            point
        };
        let single = run(1);
        let batched = run(16);
        // The client tier is upstream of batching: identical totals.
        assert_eq!(single.events, batched.events);
        assert_eq!(single.client_hit_rate, batched.client_hit_rate);
        assert_eq!(single.transport.requests, batched.transport.requests);
        // Pipelining pays one latency per batch instead of one per
        // request: strictly fewer round trips, strictly less virtual time.
        assert!(batched.transport.round_trips < single.transport.round_trips);
        assert!(batched.transport.virtual_time < single.transport.virtual_time);
    }

    #[test]
    fn transport_concurrent_replay_agrees_on_client_totals() {
        use fgcache_core::CostModel;
        use fgcache_net::SimTransport;
        let cfg = MultiClientConfig::quick();
        let traces = cfg.client_traces().unwrap();
        let server = ShardedAggregatingCacheBuilder::new(cfg.server_capacity)
            .shards(2)
            .group_size(cfg.group_size)
            .successor_capacity(cfg.successor_capacity)
            .build()
            .unwrap();
        let transports: Vec<SimTransport<'_>> = (0..traces.len())
            .map(|_| SimTransport::to_shared(&server, CostModel::remote()))
            .collect();
        let (conc, _) =
            run_multiclient_transport(&traces, cfg.filter_capacity, transports, 4, true).unwrap();

        let rr = run_multiclient(
            &traces,
            2,
            cfg.filter_capacity,
            cfg.server_capacity,
            cfg.group_size,
            cfg.successor_capacity,
            false,
        )
        .unwrap();
        // Client filters are private: totals match the in-process replay
        // regardless of interleaving or the transport seam.
        assert_eq!(conc.events, rr.events);
        assert!((conc.client_hit_rate - rr.client_hit_rate).abs() < 1e-12);
        assert_eq!(conc.transport.requests, rr.server_accesses);
    }

    #[test]
    fn stream_replay_matches_split_round_robin_byte_for_byte() {
        let cfg = MultiClientConfig::quick();
        let trace = SynthConfig::profile(cfg.profile)
            .events(4_001) // not a multiple of k: exercises the ragged tail
            .seed(cfg.seed)
            .build()
            .unwrap()
            .generate();
        for k in [1usize, 2, 3] {
            let split_server = cfg.server(2).unwrap();
            let split = run_multiclient_on(
                &split_server,
                &split_round_robin(&trace, k),
                cfg.filter_capacity,
                false,
            )
            .unwrap();

            let stream_server = cfg.server(2).unwrap();
            let events = trace
                .events()
                .iter()
                .map(|ev| Ok::<AccessEvent, std::convert::Infallible>(*ev));
            let streamed =
                run_multiclient_stream(&stream_server, events, k, cfg.filter_capacity).unwrap();

            assert_eq!(streamed.shards, split.shards, "k={k}");
            assert_eq!(streamed.clients, split.clients, "k={k}");
            assert_eq!(streamed.events, split.events, "k={k}");
            assert_eq!(streamed.client_hit_rate, split.client_hit_rate, "k={k}");
            assert_eq!(streamed.server_hit_rate, split.server_hit_rate, "k={k}");
            assert_eq!(streamed.server_accesses, split.server_accesses, "k={k}");
            assert_eq!(streamed.demand_fetches, split.demand_fetches, "k={k}");
            assert_eq!(streamed.imbalance, split.imbalance, "k={k}");
            assert_eq!(stream_server.stats(), split_server.stats());
            assert_eq!(stream_server.group_stats(), split_server.group_stats());
        }
    }

    #[test]
    fn stream_replay_validates_inputs_and_propagates_source_errors() {
        let cfg = MultiClientConfig::quick();
        let server = cfg.server(1).unwrap();
        let ok = |n: u64| {
            (0..n)
                .map(|i| Ok::<AccessEvent, std::io::Error>(fgcache_types::AccessEvent::read(i, i)))
        };
        assert!(matches!(
            run_multiclient_stream(&server, ok(4), 0, 10),
            Err(StreamReplayError::Invalid(_))
        ));
        assert!(matches!(
            run_multiclient_stream(&server, ok(4), 2, 0),
            Err(StreamReplayError::Invalid(_))
        ));
        let failing = ok(2).chain(std::iter::once(Err(std::io::Error::other("boom"))));
        let err = run_multiclient_stream(&server, failing, 2, 10).unwrap_err();
        assert!(matches!(err, StreamReplayError::Source(_)));
        assert!(err.to_string().contains("boom"));
    }

    #[test]
    fn split_round_robin_partitions_without_loss() {
        let trace = Trace::from_files((0..10u64).collect::<Vec<_>>());
        let parts = split_round_robin(&trace, 3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts.iter().map(Trace::len).sum::<usize>(), trace.len());
        assert_eq!(
            parts[0].file_sequence(),
            vec![0, 3, 6, 9]
                .into_iter()
                .map(fgcache_types::FileId)
                .collect::<Vec<_>>()
        );
        // k = 0 clamps to one client holding everything.
        let whole = split_round_robin(&trace, 0);
        assert_eq!(whole.len(), 1);
        assert_eq!(whole[0].len(), trace.len());
    }
}

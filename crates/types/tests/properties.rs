//! Deterministic model-based tests for the shared identifier/event types.
//!
//! These replace the original proptest suites with seeded randomized
//! sweeps: the same properties, checked over pseudo-random inputs drawn
//! from the in-repo [`SeededRng`] with fixed seeds, so every run examines
//! the identical input set (hermetic, no external `proptest` dependency).

use fgcache_types::json::Json;
use fgcache_types::rng::{RandomSource, SeededRng};
use fgcache_types::{AccessEvent, AccessKind, AccessOutcome, ClientId, FileId, SeqNo};

const CASES: usize = 2_000;

fn rng_for(test: &str) -> SeededRng {
    // Stable per-test seed derived from the test name, so tests do not
    // share (and thus order-depend on) a single stream.
    let seed = test.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
    });
    SeededRng::new(seed)
}

fn arb_kind(rng: &mut SeededRng) -> AccessKind {
    AccessKind::ALL[rng.gen_index(AccessKind::ALL.len())]
}

#[test]
fn file_id_conversions_roundtrip() {
    let mut rng = rng_for("file_id_conversions_roundtrip");
    for _ in 0..CASES {
        let raw = rng.next_u64();
        let id = FileId::from(raw);
        assert_eq!(u64::from(id), raw);
        assert_eq!(id.as_u64(), raw);
        assert_eq!(id, FileId(raw));
    }
}

#[test]
fn file_id_order_matches_u64() {
    let mut rng = rng_for("file_id_order_matches_u64");
    for _ in 0..CASES {
        let (a, b) = (rng.next_u64(), rng.next_u64());
        assert_eq!(FileId(a).cmp(&FileId(b)), a.cmp(&b));
    }
}

#[test]
fn seq_no_next_is_monotone() {
    let mut rng = rng_for("seq_no_next_is_monotone");
    for _ in 0..CASES {
        let raw = rng.gen_range_inclusive(0, u64::MAX - 1);
        let s = SeqNo(raw);
        assert!(s.next() > s);
        assert_eq!(s.next().as_u64(), raw + 1);
    }
}

#[test]
fn kind_code_roundtrips() {
    for kind in AccessKind::ALL {
        assert_eq!(AccessKind::from_code(kind.code()).unwrap(), kind);
        // Exactly one of is_read / is_mutation holds.
        assert_ne!(kind.is_read(), kind.is_mutation());
    }
}

#[test]
fn kind_rejects_non_codes() {
    let mut rng = rng_for("kind_rejects_non_codes");
    let mut checked = 0;
    while checked < CASES {
        let c = match char::from_u32(rng.gen_range_inclusive(0, 0x10FFFF) as u32) {
            Some(c) => c,
            None => continue, // surrogate range
        };
        if matches!(c, 'R' | 'W' | 'C' | 'D') {
            continue;
        }
        assert!(AccessKind::from_code(c).is_err());
        checked += 1;
    }
}

#[test]
fn event_json_roundtrips() {
    // AccessEvent's JSON shape is owned by fgcache-trace now, but the
    // underlying tree encode/decode must preserve every field value.
    let mut rng = rng_for("event_json_roundtrips");
    for _ in 0..CASES {
        let ev = AccessEvent::new(
            SeqNo(rng.next_u64()),
            ClientId(rng.next_u64() as u32),
            FileId(rng.next_u64()),
            arb_kind(&mut rng),
        );
        let doc = Json::Obj(vec![
            ("seq".to_string(), Json::UInt(ev.seq.as_u64())),
            ("client".to_string(), Json::UInt(ev.client.as_u32().into())),
            ("file".to_string(), Json::UInt(ev.file.as_u64())),
            ("kind".to_string(), Json::Str(ev.kind.code().to_string())),
        ]);
        let back = Json::parse(&doc.to_text()).unwrap();
        assert_eq!(
            back.get("seq").and_then(Json::as_u64),
            Some(ev.seq.as_u64())
        );
        assert_eq!(
            back.get("client").and_then(Json::as_u64),
            Some(ev.client.as_u32().into())
        );
        assert_eq!(
            back.get("file").and_then(Json::as_u64),
            Some(ev.file.as_u64())
        );
        let code = back
            .get("kind")
            .and_then(Json::as_str)
            .and_then(|s| s.chars().next())
            .unwrap();
        assert_eq!(AccessKind::from_code(code).unwrap(), ev.kind);
    }
}

#[test]
fn displays_are_never_empty() {
    let mut rng = rng_for("displays_are_never_empty");
    for _ in 0..CASES {
        let seq = rng.next_u64();
        let client = rng.next_u64() as u32;
        let file = rng.next_u64();
        let kind = arb_kind(&mut rng);
        let ev = AccessEvent::new(SeqNo(seq), ClientId(client), FileId(file), kind);
        assert!(!ev.to_string().is_empty());
        assert!(!FileId(file).to_string().is_empty());
        assert!(!ClientId(client).to_string().is_empty());
        assert!(!SeqNo(seq).to_string().is_empty());
        assert!(!kind.to_string().is_empty());
        assert!(!AccessOutcome::Hit.to_string().is_empty());
    }
}

#[test]
fn json_numbers_roundtrip_as_bare_literals() {
    // FileId/SeqNo serialize as bare numbers in the trace JSON format;
    // the JSON layer must keep full u64 range exact (format stability).
    let mut rng = rng_for("json_numbers_roundtrip_as_bare_literals");
    for _ in 0..CASES {
        let raw = rng.next_u64();
        let text = Json::UInt(raw).to_text();
        assert_eq!(text, raw.to_string());
        assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(raw));
    }
}

#!/usr/bin/env sh
# The canonical local quality gate. Every step must pass before a push;
# the same sequence is available as `cargo run -p xtask -- ci`.
#
# Flags:
#   --miri   also run the nightly Miri job (visibly skipped when the
#            nightly Miri toolchain is not installed on this host).
set -eu

run_miri=0
for arg in "$@"; do
    case "$arg" in
        --miri) run_miri=1 ;;
        *) echo "ci.sh: unknown flag: $arg" >&2; exit 2 ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo run -p xtask -- lint"
cargo run -p xtask -- lint

echo "==> cargo run -p xtask -- analyze (atomics / lock-discipline gate)"
cargo run -p xtask -- analyze

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> model checker: cargo test -q -p fgcache-types --features fgcache_model"
cargo test -q -p fgcache-types --features fgcache_model

echo "==> model checker: cargo test -q -p fgcache-core --features fgcache_model --lib"
cargo test -q -p fgcache-core --features fgcache_model --lib

echo "==> loopback smoke: bench-net differential check (byte-exact vs in-process)"
./target/release/fgcache bench-net --loopback true --clients 2 --events 2000 \
    --capacity 200 --shards 2 --batch 1,8 --seed 2002

echo "==> cluster smoke: 3-process TCP fleet with mid-replay join/leave (byte-exact vs oracle)"
./target/release/fgcache bench-cluster --nodes 3 --events 6000 --seed 2002

echo "==> planner validation: Che prediction vs streamed LRU simulator (2pp tolerance gate)"
./target/release/fgcache plan --validate true --events 10000000 --seed 2002

echo "==> cargo run -p xtask -- bench-smoke (perf record + 256-connection event-server smoke:"
echo "    byte-identity vs oracle and bounded RSS are enforced; wall-clock is record-only)"
cargo run -p xtask -- bench-smoke

echo "==> cargo run -p xtask -- fuzz"
cargo run -p xtask -- fuzz

if [ "$run_miri" -eq 1 ]; then
    if cargo +nightly miri --version >/dev/null 2>&1; then
        echo "==> miri: cargo +nightly miri test -q -p fgcache-types --lib"
        cargo +nightly miri test -q -p fgcache-types --lib
    else
        echo "==> miri: SKIPPED — nightly Miri is not installed on this host"
        echo "    (install with: rustup toolchain install nightly --component miri)"
    fi
fi

echo "ci.sh: all steps passed"

//! [`SimTransport`]: a transport driven by a deterministic virtual clock.
//!
//! Instead of real sockets, each fetch advances an `f64` clock by the
//! [`CostModel`]'s per-request latency (optionally jittered by a seeded
//! [`SplitMix64`] stream) plus per-file transfer time — the same pricing
//! the analytic cost tables use, so a zero-jitter simulated run is
//! bit-identical to the analytic sweep. Batched submission models
//! pipelining: the whole batch pays one request latency.
//!
//! The backend is pluggable: [`SimBackend::Origin`] models the
//! authoritative store (every file served, no provenance of interest),
//! while [`SimBackend::Shared`] routes each file through a
//! [`ShardedAggregatingCache`], which is how the multi-client simulator
//! interposes a transport between filter caches and the shared server.
//!
//! Like a real server, the transport deduplicates retried request ids
//! through a bounded [`ReplyCache`], so it composes with
//! [`FaultyTransport`](crate::FaultyTransport) and
//! [`RetryingTransport`](crate::RetryingTransport) without double-counting
//! executed fetches.

use std::sync::Arc;

use fgcache_core::{CostModel, ShardedAggregatingCache};
use fgcache_types::rng::{RandomSource, SplitMix64};
use fgcache_types::{AccessOutcome, TransportError};

use crate::dedup::{ReplyCache, DEFAULT_REPLY_CACHE_CAPACITY};
use crate::transport::{FileReply, GroupReply, GroupRequest, Transport, TransportStats};

/// What a [`SimTransport`] fetches from.
#[derive(Debug)]
pub enum SimBackend<'a> {
    /// The authoritative origin store: every file is served by a demand
    /// fetch (reported as [`AccessOutcome::Miss`], i.e. not cache-resident).
    Origin,
    /// A shared server-side cache: each file becomes a
    /// [`ShardedAggregatingCache::handle_access`] call and the reply
    /// carries the cache's real hit/miss provenance.
    Shared(&'a ShardedAggregatingCache),
    /// Like [`SimBackend::Shared`] but owning the cache through an
    /// [`Arc`], so the transport is `'static` — what a virtual cluster
    /// needs to hand hundreds of peer transports around without
    /// borrowing from each node.
    SharedOwned(Arc<ShardedAggregatingCache>),
}

/// A simulated transport: virtual clock + seeded jitter + pluggable
/// backend. See the [module docs](self).
#[derive(Debug)]
pub struct SimTransport<'a> {
    backend: SimBackend<'a>,
    model: CostModel,
    jitter_frac: f64,
    jitter: SplitMix64,
    dedup: ReplyCache,
    stats: TransportStats,
}

impl<'a> SimTransport<'a> {
    /// A transport fetching from the origin store, with zero jitter.
    pub fn to_origin(model: CostModel) -> SimTransport<'static> {
        SimTransport {
            backend: SimBackend::Origin,
            model,
            jitter_frac: 0.0,
            jitter: SplitMix64::new(0),
            dedup: ReplyCache::new(DEFAULT_REPLY_CACHE_CAPACITY),
            stats: TransportStats::default(),
        }
    }

    /// A transport fetching through a shared server cache, with zero
    /// jitter.
    pub fn to_shared(cache: &'a ShardedAggregatingCache, model: CostModel) -> SimTransport<'a> {
        SimTransport {
            backend: SimBackend::Shared(cache),
            model,
            jitter_frac: 0.0,
            jitter: SplitMix64::new(0),
            dedup: ReplyCache::new(DEFAULT_REPLY_CACHE_CAPACITY),
            stats: TransportStats::default(),
        }
    }

    /// A `'static` transport fetching through a shared, `Arc`-owned
    /// server cache, with zero jitter (the virtual-cluster peer wiring).
    pub fn to_shared_arc(
        cache: Arc<ShardedAggregatingCache>,
        model: CostModel,
    ) -> SimTransport<'static> {
        SimTransport {
            backend: SimBackend::SharedOwned(cache),
            model,
            jitter_frac: 0.0,
            jitter: SplitMix64::new(0),
            dedup: ReplyCache::new(DEFAULT_REPLY_CACHE_CAPACITY),
            stats: TransportStats::default(),
        }
    }

    /// Enables per-request latency jitter: each request's latency is
    /// scaled by a factor drawn uniformly from `[1 − frac, 1 + frac]`
    /// using a [`SplitMix64`] stream seeded with `seed`. Deterministic for
    /// a fixed seed; `frac` is clamped to `[0, 1]`.
    #[must_use]
    pub fn with_jitter(mut self, frac: f64, seed: u64) -> Self {
        self.jitter_frac = frac.clamp(0.0, 1.0);
        self.jitter = SplitMix64::new(seed);
        self
    }

    /// The virtual clock, in cost-model time units.
    pub fn virtual_time(&self) -> f64 {
        self.stats.virtual_time
    }

    /// The cost model pricing this transport's traffic.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// One jittered request latency.
    fn request_latency(&mut self) -> f64 {
        if self.jitter_frac == 0.0 {
            return self.model.request_latency;
        }
        let scale = 1.0 + self.jitter_frac * (2.0 * self.jitter.next_f64() - 1.0);
        self.model.request_latency * scale
    }

    /// Executes one request at the backend (no dedup, no clock), returning
    /// the reply and updating executed-fetch counters.
    fn execute(&mut self, request: &GroupRequest) -> GroupReply {
        let files: Vec<FileReply> = request
            .files
            .iter()
            .map(|&file| {
                let outcome = match self.backend {
                    SimBackend::Origin => AccessOutcome::Miss,
                    SimBackend::Shared(cache) => cache.handle_access(file),
                    SimBackend::SharedOwned(ref cache) => cache.handle_access(file),
                };
                FileReply { file, outcome }
            })
            .collect();
        let reply = GroupReply {
            request_id: request.request_id,
            files,
        };
        self.stats.requests += 1;
        self.stats.files_moved += reply.files.len() as u64;
        self.stats.hits += reply.hits();
        self.stats.misses += reply.misses();
        reply
    }

    /// Serves one request: dedup-check first, then execute. Advances the
    /// clock by `transfer` time units (the caller decides how much request
    /// latency the round trip pays — one per request, or one per batch).
    fn serve(&mut self, request: &GroupRequest) -> GroupReply {
        if let Some(cached) = self.dedup.get(request.request_id) {
            // An idempotent retry: re-deliver, pay the wire cost again,
            // but leave executed-fetch counters untouched.
            let reply = cached.clone();
            self.stats.dedup_hits += 1;
            self.stats.reply_cache_hits += 1;
            self.stats.virtual_time += self.model.transfer_time * reply.files.len() as f64;
            return reply;
        }
        let reply = self.execute(request);
        self.stats.virtual_time += self.model.transfer_time * reply.files.len() as f64;
        self.dedup.insert(reply.clone());
        reply
    }
}

impl Transport for SimTransport<'_> {
    fn fetch_group(&mut self, request: &GroupRequest) -> Result<GroupReply, TransportError> {
        let latency = self.request_latency();
        self.stats.round_trips += 1;
        self.stats.virtual_time += latency;
        Ok(self.serve(request))
    }

    /// Pipelined: the whole batch pays **one** request latency, then each
    /// request's transfer time. This is the simulated analogue of writing
    /// every frame before reading any reply.
    fn fetch_batch(&mut self, batch: &[GroupRequest]) -> Vec<Result<GroupReply, TransportError>> {
        if batch.is_empty() {
            return Vec::new();
        }
        let latency = self.request_latency();
        self.stats.round_trips += 1;
        self.stats.virtual_time += latency;
        batch.iter().map(|r| Ok(self.serve(r))).collect()
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgcache_core::ShardedAggregatingCacheBuilder;
    use fgcache_types::FileId;

    fn req(id: u64, files: &[u64]) -> GroupRequest {
        GroupRequest::new(id, files.iter().map(|&f| FileId(f)).collect())
    }

    #[test]
    fn origin_fetch_prices_exactly_like_the_model() {
        let model = CostModel {
            request_latency: 10.0,
            transfer_time: 2.0,
            transfer_per_unit: 0.0,
        };
        let mut t = SimTransport::to_origin(model);
        t.fetch_group(&req(0, &[1, 2, 3])).expect("sim cannot fail");
        t.fetch_group(&req(1, &[4])).expect("sim cannot fail");
        // 2 requests × 10 + 4 files × 2 = 28, exactly CostModel::total.
        assert_eq!(t.virtual_time(), model.total(2, 4));
        let s = t.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.files_moved, 4);
        assert_eq!(s.misses, 4);
        assert_eq!(s.hits, 0);
    }

    #[test]
    fn batched_fetch_pays_one_latency() {
        let model = CostModel {
            request_latency: 10.0,
            transfer_time: 1.0,
            transfer_per_unit: 0.0,
        };
        let requests = [req(0, &[1]), req(1, &[2]), req(2, &[3])];

        let mut sequential = SimTransport::to_origin(model);
        for r in &requests {
            sequential.fetch_group(r).expect("sim cannot fail");
        }
        let mut pipelined = SimTransport::to_origin(model);
        let replies = pipelined.fetch_batch(&requests);
        assert_eq!(replies.len(), 3);

        // Same files moved, two round trips' latency saved.
        assert_eq!(
            pipelined.stats().files_moved,
            sequential.stats().files_moved
        );
        assert_eq!(
            sequential.virtual_time() - pipelined.virtual_time(),
            2.0 * model.request_latency
        );
        assert_eq!(pipelined.stats().round_trips, 1);
        assert!(pipelined.fetch_batch(&[]).is_empty());
    }

    #[test]
    fn retried_request_id_is_deduplicated() {
        let cache = ShardedAggregatingCacheBuilder::new(40)
            .shards(2)
            .group_size(3)
            .build()
            .expect("valid build");
        let mut t = SimTransport::to_shared(&cache, CostModel::remote());
        let first = t.fetch_group(&req(7, &[1, 2])).expect("sim cannot fail");
        let again = t.fetch_group(&req(7, &[1, 2])).expect("sim cannot fail");
        // Byte-identical reply, including provenance (a re-execution would
        // report hits the second time).
        assert_eq!(first, again);
        let s = t.stats();
        assert_eq!(s.requests, 1, "retry must not re-execute");
        assert_eq!(s.dedup_hits, 1);
        assert_eq!(s.reply_cache_hits, 1, "the embedded reply cache hit once");
        assert_eq!(s.round_trips, 2);
        assert_eq!(cache.stats().accesses, 2, "cache saw the files once");
    }

    #[test]
    fn arc_owned_backend_matches_borrowed_shared_backend() {
        let build = || {
            ShardedAggregatingCacheBuilder::new(40)
                .shards(2)
                .group_size(3)
                .build()
                .expect("valid build")
        };
        let borrowed_cache = build();
        let mut borrowed = SimTransport::to_shared(&borrowed_cache, CostModel::remote());
        let owned_cache = Arc::new(build());
        let mut owned = SimTransport::to_shared_arc(Arc::clone(&owned_cache), CostModel::remote());
        for i in 0..50u64 {
            let r = req(i, &[i % 7, (i + 1) % 7]);
            let a = borrowed.fetch_group(&r).expect("sim cannot fail");
            let b = owned.fetch_group(&r).expect("sim cannot fail");
            assert_eq!(a, b, "backends must be indistinguishable");
        }
        assert_eq!(borrowed.stats(), owned.stats());
        assert_eq!(borrowed_cache.stats(), owned_cache.stats());
    }

    #[test]
    fn shared_backend_reports_real_provenance() {
        let cache = ShardedAggregatingCacheBuilder::new(40)
            .shards(1)
            .group_size(1)
            .build()
            .expect("valid build");
        let mut t = SimTransport::to_shared(&cache, CostModel::lan());
        let cold = t.fetch_group(&req(0, &[5])).expect("sim cannot fail");
        let warm = t.fetch_group(&req(1, &[5])).expect("sim cannot fail");
        assert!(cold.files[0].outcome.is_miss());
        assert!(warm.files[0].outcome.is_hit());
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let model = CostModel {
            request_latency: 100.0,
            transfer_time: 0.0,
            transfer_per_unit: 0.0,
        };
        let run = |seed: u64| {
            let mut t = SimTransport::to_origin(model).with_jitter(0.25, seed);
            for i in 0..50 {
                t.fetch_group(&req(i, &[i])).expect("sim cannot fail");
            }
            t.virtual_time()
        };
        assert_eq!(run(42), run(42), "same seed, same clock");
        assert_ne!(run(42), run(43), "different seed, different clock");
        // 50 requests in [75, 125] each.
        let total = run(42);
        assert!((50.0 * 75.0..=50.0 * 125.0).contains(&total));
        // Zero jitter stays exactly on the model.
        let mut flat = SimTransport::to_origin(model).with_jitter(0.0, 9);
        flat.fetch_group(&req(0, &[0])).expect("sim cannot fail");
        assert_eq!(flat.virtual_time(), 100.0);
    }
}

//! Minimal scoped-thread parallel map for parameter sweeps.
//!
//! Sweep points are independent simulations over a shared read-only
//! trace, so a work-stealing pool would be overkill: we shard the index
//! space over `available_parallelism` scoped threads and write results
//! into pre-allocated slots, preserving input order and determinism.
//! Built entirely on `std::thread::scope` and `std::sync::Mutex` — the
//! workspace is hermetic and links no external runtime.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item, in parallel, returning results in input
/// order. Falls back to sequential execution for tiny inputs.
///
/// ```
/// use fgcache_sim::parallel::parallel_map;
/// let squares = parallel_map(&[1, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let results: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= items.len() {
                    break;
                }
                let value = f(&items[idx]);
                *results[idx]
                    .lock()
                    .expect("no worker panicked holding a slot") = Some(value);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no worker panicked holding a slot")
                .expect("every slot filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let out = parallel_map(&input, |&x| x + 1);
        assert_eq!(out, (1..=1000).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(&[] as &[u32], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(&[7], |&x| x * 2), vec![14]);
    }

    #[test]
    fn deterministic_across_runs() {
        let input: Vec<u64> = (0..200).collect();
        let a = parallel_map(&input, |&x| x.wrapping_mul(2654435761));
        let b = parallel_map(&input, |&x| x.wrapping_mul(2654435761));
        assert_eq!(a, b);
    }

    #[test]
    fn heavy_closure_uses_all_slots() {
        // Results land in the right slots even when work is uneven.
        let input: Vec<u64> = (0..97).collect();
        let out = parallel_map(&input, |&x| {
            let mut acc = x;
            for _ in 0..(x % 13) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }
}

//! Hot-path microbenchmark: single-thread events/sec on a hit-heavy
//! workload, plus allocations per event measured by a counting global
//! allocator (this bench binary only — the library crates stay
//! `forbid(unsafe_code)`; the counter lives here because `GlobalAlloc`
//! is inherently unsafe to implement).
//!
//! Scenarios:
//!   * `monolith` — one `AggregatingCache` behind no lock
//!   * `sharded/N` — `ShardedAggregatingCache`, N shards, lock-light
//!     fast path (the default)
//!   * `sharded/N/locked` — same, fast path disabled: every access
//!     takes the shard mutex
//!
//! Locks/event comes from the server's own acquisition counter, which is
//! the honest contention metric on a single-core host where wall-clock
//! cannot show contention wins.
//!
//! The workload is 98% accesses to a working set that fits in cache and
//! 2% cold misses, so the steady state exercises the hit path with a
//! realistic trickle of group-building misses.
//!
//! Flags (after `--`): `--smoke` shrinks the event count for CI,
//! `--json PATH` writes a machine-readable summary, and `--threads N`
//! sizes the multi-core section (defaults to the host's parallelism).
//!
//! # Multi-core scaling
//!
//! The `mt/threads=N/shards=S` scenarios replay N per-thread traces
//! *concurrently* against one shared `ShardedAggregatingCache` — the
//! contention the sharding and the PR-4 lock-light fast path were built
//! for, which a single-threaded bench can never show. The scaling table
//! (shards=1 vs shards=4 at N threads) is the honest measurement: on a
//! 1-core host the speedup hovers near 1× because the threads time-slice
//! one core; on a real multi-core host (≥4 cores) the ≥2× target is
//! verifiable with exactly one command:
//!
//! ```text
//! cargo xtask bench-smoke --threads 4
//! ```

use fgcache_bench::{harness, ratio};
use fgcache_cache::Cache;
use fgcache_core::{AggregatingCacheBuilder, ShardedAggregatingCacheBuilder};
use fgcache_types::rng::{RandomSource, SeededRng};
use fgcache_types::FileId;
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counts every allocation routed through the global allocator.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const CAPACITY: usize = 512;
const WORKING_SET: usize = 480;
const COLD_UNIVERSE: u64 = 100_000;
const GROUP_SIZE: usize = 5;
const SUCCESSOR_CAPACITY: usize = 8;
const FULL_EVENTS: usize = 400_000;
const SMOKE_EVENTS: usize = 20_000;

/// 98% of accesses hit a working set that fits in the cache; 2% touch a
/// large cold universe and miss, forcing a group build + speculative
/// batch insert.
fn workload(events: usize, seed: u64) -> Vec<FileId> {
    let mut rng = SeededRng::new(seed);
    let mut out = Vec::with_capacity(events);
    for _ in 0..events {
        let id = if rng.chance(0.02) {
            WORKING_SET as u64 + rng.gen_index(COLD_UNIVERSE as usize) as u64
        } else {
            rng.gen_index(WORKING_SET) as u64
        };
        out.push(FileId(id));
    }
    out
}

struct Scenario {
    name: String,
    events_per_sec: f64,
    allocs_per_event: f64,
    locks_per_event: f64,
    hit_rate: f64,
}

/// One timed pass over the trace against a warmed cache; returns
/// (seconds, allocations) for the pass.
fn timed_pass(trace: &[FileId], mut access: impl FnMut(FileId)) -> (f64, u64) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let start = Instant::now();
    for &file in trace {
        access(black_box(file));
    }
    let secs = start.elapsed().as_secs_f64();
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
    (secs, allocs)
}

fn bench_monolith(trace: &[FileId]) -> Scenario {
    let mut cache = AggregatingCacheBuilder::new(CAPACITY)
        .group_size(GROUP_SIZE)
        .successor_capacity(SUCCESSOR_CAPACITY)
        .build()
        .expect("valid monolith config");
    // Warm: full pass so the working set is resident and scratch space
    // has reached steady-state capacity.
    for &file in trace {
        cache.handle_access(file);
    }
    let mut best_secs = f64::INFINITY;
    let mut allocs = 0u64;
    for _ in 0..harness::iterations() {
        let (secs, a) = timed_pass(trace, |f| {
            cache.handle_access(f);
        });
        if secs < best_secs {
            best_secs = secs;
        }
        allocs = a;
    }
    let stats = cache.stats();
    Scenario {
        name: "monolith".to_string(),
        events_per_sec: trace.len() as f64 / best_secs,
        allocs_per_event: allocs as f64 / trace.len() as f64,
        locks_per_event: 0.0,
        hit_rate: ratio(stats.hits, stats.accesses),
    }
}

fn bench_sharded(trace: &[FileId], shards: usize, fast_path: bool) -> Scenario {
    let server = ShardedAggregatingCacheBuilder::new(CAPACITY)
        .shards(shards)
        .group_size(GROUP_SIZE)
        .successor_capacity(SUCCESSOR_CAPACITY)
        .fast_path(fast_path)
        .build()
        .expect("valid sharded config");
    for &file in trace {
        server.handle_access(file);
    }
    let mut best_secs = f64::INFINITY;
    let mut allocs = 0u64;
    let mut locks = 0u64;
    for _ in 0..harness::iterations() {
        let locks_before = server.lock_acquisitions();
        let (secs, a) = timed_pass(trace, |f| {
            server.handle_access(f);
        });
        if secs < best_secs {
            best_secs = secs;
        }
        allocs = a;
        locks = server.lock_acquisitions() - locks_before;
    }
    let stats = server.stats();
    Scenario {
        name: format!(
            "sharded/shards={shards}{}",
            if fast_path { "" } else { "/locked" }
        ),
        events_per_sec: trace.len() as f64 / best_secs,
        allocs_per_event: allocs as f64 / trace.len() as f64,
        locks_per_event: locks as f64 / trace.len() as f64,
        hit_rate: ratio(stats.hits, stats.accesses),
    }
}

/// N threads replaying distinct traces concurrently against one shared
/// sharded cache; wall time covers the whole concurrent replay, so
/// events/s here is *aggregate* throughput under real contention.
fn bench_sharded_mt(events_per_thread: usize, shards: usize, threads: usize) -> Scenario {
    let server = ShardedAggregatingCacheBuilder::new(CAPACITY)
        .shards(shards)
        .group_size(GROUP_SIZE)
        .successor_capacity(SUCCESSOR_CAPACITY)
        .build()
        .expect("valid sharded config");
    let traces: Vec<Vec<FileId>> = (0..threads)
        .map(|t| {
            workload(
                events_per_thread,
                0x4001_F00D ^ (t as u64).wrapping_mul(0x9E37),
            )
        })
        .collect();
    // Warm: one sequential pass over every trace so the working set is
    // resident and per-shard scratch has reached steady state.
    for trace in &traces {
        for &file in trace {
            server.handle_access(file);
        }
    }
    let total_events = (events_per_thread * threads) as f64;
    let mut best_secs = f64::INFINITY;
    let mut allocs = 0u64;
    let mut locks = 0u64;
    for _ in 0..harness::iterations() {
        let barrier = std::sync::Barrier::new(threads + 1);
        let locks_before = server.lock_acquisitions();
        let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
        // The timer starts before the main thread joins the barrier (on
        // a saturated single-core host the workers can run to completion
        // before the main thread is rescheduled, so starting *after* the
        // barrier would time nothing) and stops after the scope's
        // implicit joins, covering the slowest thread's full replay.
        let mut start = Instant::now();
        std::thread::scope(|scope| {
            for trace in &traces {
                let barrier = &barrier;
                let server = &server;
                scope.spawn(move || {
                    barrier.wait();
                    for &file in trace {
                        server.handle_access(black_box(file));
                    }
                });
            }
            start = Instant::now();
            barrier.wait();
        });
        let secs = start.elapsed().as_secs_f64();
        if secs < best_secs {
            best_secs = secs;
        }
        allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
        locks = server.lock_acquisitions() - locks_before;
    }
    let stats = server.stats();
    Scenario {
        name: format!("mt/threads={threads}/shards={shards}"),
        events_per_sec: total_events / best_secs,
        allocs_per_event: allocs as f64 / total_events,
        locks_per_event: locks as f64 / total_events,
        hit_rate: ratio(stats.hits, stats.accesses),
    }
}

fn write_json(path: &str, events: usize, scenarios: &[Scenario]) {
    let mut body = String::from("{\n");
    body.push_str(&format!("  \"events\": {events},\n"));
    body.push_str(&format!(
        "  \"host_cores\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    body.push_str("  \"scenarios\": [\n");
    for (i, s) in scenarios.iter().enumerate() {
        let locks = if s.locks_per_event.is_nan() {
            "null".to_string()
        } else {
            format!("{:.4}", s.locks_per_event)
        };
        body.push_str(&format!(
            "    {{\"name\": \"{}\", \"events_per_sec\": {:.0}, \"allocs_per_event\": {:.4}, \"locks_per_event\": {}, \"hit_rate\": {:.4}}}{}\n",
            s.name,
            s.events_per_sec,
            s.allocs_per_event,
            locks,
            s.hit_rate,
            if i + 1 == scenarios.len() { "" } else { "," }
        ));
    }
    body.push_str("  ]\n}\n");
    std::fs::write(path, body).expect("write json summary");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(host_cores);
    let events = if smoke { SMOKE_EVENTS } else { FULL_EVENTS };
    let trace = workload(events, 0x4001_F00D);

    println!(
        "# hot_path: {events} events, capacity {CAPACITY}, working set {WORKING_SET}, {host_cores} host cores"
    );

    let mut scenarios = vec![bench_monolith(&trace)];
    for shards in [1usize, 4] {
        scenarios.push(bench_sharded(&trace, shards, true));
        scenarios.push(bench_sharded(&trace, shards, false));
    }

    // The multi-core section: same workload shape, N concurrent replay
    // threads per scenario (see the module docs).
    let mt_events = events / 2; // per thread; total work scales with N
    let mt_base = scenarios.len();
    for shards in [1usize, 4] {
        scenarios.push(bench_sharded_mt(mt_events, shards, threads));
    }

    for s in &scenarios {
        println!(
            "{:<28} {:>12.0} events/s  {:>8.4} allocs/event  {:>8.4} locks/event  hit_rate {:.4}",
            s.name, s.events_per_sec, s.allocs_per_event, s.locks_per_event, s.hit_rate
        );
    }

    let speedup = scenarios[mt_base + 1].events_per_sec / scenarios[mt_base].events_per_sec;
    println!(
        "# multicore scaling at threads={threads}: shards=4 vs shards=1 = {speedup:.2}x \
         (target >=2x needs >=4 host cores; this host has {host_cores})"
    );

    if let Some(path) = json_path {
        write_json(&path, events, &scenarios);
        println!("# wrote {path}");
    }
}

//! Throughput of the metadata path: successor-table updates, group
//! construction and the replacement-policy evaluation loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fgcache_successor::eval::evaluate_replacement;
use fgcache_successor::{
    DecayedSuccessorList, GroupBuilder, LfuSuccessorList, LruSuccessorList, SuccessorTable,
};
use fgcache_trace::synth::{SynthConfig, WorkloadProfile};
use fgcache_trace::Trace;
use std::hint::black_box;

const EVENTS: usize = 20_000;

fn workload() -> Trace {
    SynthConfig::profile(WorkloadProfile::Server)
        .events(EVENTS)
        .seed(7)
        .build()
        .expect("profile is valid")
        .generate()
}

fn bench_table_record(c: &mut Criterion) {
    let trace = workload();
    let mut group = c.benchmark_group("successor_record");
    group.throughput(Throughput::Elements(EVENTS as u64));
    group.bench_function("lru_cap8", |b| {
        b.iter(|| {
            let mut t = SuccessorTable::new(LruSuccessorList::new(8).unwrap());
            for f in trace.files() {
                t.record(black_box(f));
            }
            t.transitions()
        });
    });
    group.bench_function("lfu_cap8", |b| {
        b.iter(|| {
            let mut t = SuccessorTable::new(LfuSuccessorList::new(8).unwrap());
            for f in trace.files() {
                t.record(black_box(f));
            }
            t.transitions()
        });
    });
    group.bench_function("decayed_cap8", |b| {
        b.iter(|| {
            let mut t = SuccessorTable::new(DecayedSuccessorList::new(8, 0.9).unwrap());
            for f in trace.files() {
                t.record(black_box(f));
            }
            t.transitions()
        });
    });
    group.finish();
}

fn bench_group_build(c: &mut Criterion) {
    let trace = workload();
    let mut table = SuccessorTable::new(LruSuccessorList::new(8).unwrap());
    for f in trace.files() {
        table.record(f);
    }
    let hot: Vec<_> = trace.file_sequence().into_iter().take(256).collect();
    let mut group = c.benchmark_group("group_build");
    for g in [2usize, 5, 10, 20] {
        let builder = GroupBuilder::new(g).unwrap();
        group.throughput(Throughput::Elements(hot.len() as u64));
        group.bench_with_input(BenchmarkId::new("g", g), &hot, |b, hot| {
            b.iter(|| {
                let mut total = 0usize;
                for &f in hot {
                    total += builder.build(&table, black_box(f)).len();
                }
                total
            });
        });
    }
    group.finish();
}

fn bench_replacement_eval(c: &mut Criterion) {
    let trace = workload();
    let mut group = c.benchmark_group("replacement_eval");
    group.throughput(Throughput::Elements(EVENTS as u64));
    group.bench_function("lru_cap4", |b| {
        b.iter(|| evaluate_replacement(&trace, LruSuccessorList::new(4).unwrap()).misses);
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_table_record,
    bench_group_build,
    bench_replacement_eval
);
criterion_main!(benches);

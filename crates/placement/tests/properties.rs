//! Deterministic model-based tests for layouts, seek replay and hoarding.
//!
//! Fixed seeds drive the in-repo PRNG; every failure reproduces exactly
//! from the printed seed.

use fgcache_placement::hoard::{
    evaluate, frequency_hoard, group_hoard, recency_hoard, split_at_fraction, Hoard,
};
use fgcache_placement::layout::Layout;
use fgcache_placement::seek;
use fgcache_trace::Trace;
use fgcache_types::rng::RandomSource;
use fgcache_types::{FileId, SeededRng};

const SEEDS: [u64; 8] = [0, 1, 2, 7, 42, 1234, 0xDEAD_BEEF, u64::MAX];

/// A random file-id sequence over `0..25`, length `0..300`.
fn files(rng: &mut SeededRng) -> Vec<u64> {
    let n = rng.gen_index(300);
    (0..n).map(|_| rng.gen_range_inclusive(0, 24)).collect()
}

#[test]
fn every_layout_is_a_dense_bijection() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        for g in 1..6 {
            let ids = files(&mut rng);
            let history = Trace::from_files(ids.clone());
            let mut distinct: Vec<u64> = ids.clone();
            distinct.sort_unstable();
            distinct.dedup();
            for layout in [
                Layout::hashed(&history),
                Layout::by_frequency(&history),
                Layout::organ_pipe(&history),
                Layout::grouped(&history, g),
            ] {
                assert_eq!(layout.len(), distinct.len());
                let mut slots: Vec<usize> = distinct
                    .iter()
                    .map(|&f| layout.slot(FileId(f)).expect("file placed"))
                    .collect();
                slots.sort_unstable();
                let expected: Vec<usize> = (0..distinct.len()).collect();
                assert_eq!(
                    slots, expected,
                    "seed {seed} g {g}: slots not a dense permutation"
                );
            }
        }
    }
}

#[test]
fn seek_replay_accounting() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        let ids = files(&mut rng);
        let layout_ids = files(&mut rng);
        let layout = Layout::from_order(layout_ids.iter().map(|&f| FileId(f)));
        let trace = Trace::from_files(ids.clone());
        let r = seek::replay(&layout, &trace);
        assert_eq!(r.accesses as usize, ids.len());
        assert!(r.unplaced <= r.accesses);
        // Total distance is bounded: each access moves at most one span.
        assert!(r.total_distance <= r.accesses * layout.len().max(1) as u64);
        assert!(r.mean() >= 0.0);
    }
}

#[test]
fn identical_layout_identical_cost() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        let ids = files(&mut rng);
        let history = Trace::from_files(ids.clone());
        let trace = Trace::from_files(ids);
        let a = seek::replay(&Layout::by_frequency(&history), &trace);
        let b = seek::replay(&Layout::by_frequency(&history), &trace);
        assert_eq!(a, b, "seed {seed}");
    }
}

#[test]
fn hoards_respect_budget_and_contain_only_history_files() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        for g in 1..6 {
            let ids = files(&mut rng);
            let budget = rng.gen_index(30);
            let history = Trace::from_files(ids.clone());
            let universe: std::collections::HashSet<FileId> =
                ids.iter().map(|&f| FileId(f)).collect();
            for hoard in [
                frequency_hoard(&history, budget),
                recency_hoard(&history, budget),
                group_hoard(&history, budget, g),
            ] {
                assert!(hoard.len() <= budget);
                for f in 0u64..25 {
                    if hoard.contains(FileId(f)) {
                        assert!(
                            universe.contains(&FileId(f)),
                            "seed {seed}: hoarded unseen file"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn full_budget_hoard_catches_everything() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        let ids = files(&mut rng);
        let history = Trace::from_files(ids.clone());
        let future = Trace::from_files(ids.clone());
        let distinct = {
            let mut v = ids.clone();
            v.sort_unstable();
            v.dedup();
            v.len()
        };
        let hoard = frequency_hoard(&history, distinct);
        let r = evaluate(&hoard, &future);
        assert_eq!(r.hits, r.accesses, "seed {seed}");
    }
}

#[test]
fn evaluate_bounds() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        let ids = files(&mut rng);
        let hoard_ids = files(&mut rng);
        let hoard = Hoard::new(hoard_ids.iter().map(|&f| FileId(f)));
        let future = Trace::from_files(ids);
        let r = evaluate(&hoard, &future);
        assert!(r.hits <= r.accesses);
        assert!((0.0..=1.0).contains(&r.hit_rate()));
    }
}

#[test]
fn split_partitions_exactly() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        let ids = files(&mut rng);
        let frac = rng.next_f64();
        let trace = Trace::from_files(ids.clone());
        let (a, b) = split_at_fraction(&trace, frac);
        assert_eq!(a.len() + b.len(), ids.len());
        let rejoined: Vec<FileId> = a
            .file_sequence()
            .into_iter()
            .chain(b.file_sequence())
            .collect();
        assert_eq!(rejoined, trace.file_sequence(), "seed {seed}");
    }
}

//! **fgcache-cluster** — cluster mode for the fgcache workspace.
//!
//! The paper manages each cache independently; this crate scales the
//! same aggregating cache across a fleet. Three pieces:
//!
//! 1. **Ownership** ([`ring`]): a rendezvous-hash ring maps every
//!    [`FileId`](fgcache_types::FileId) to exactly one
//!    [`NodeId`]. Membership changes move the minimum possible keys —
//!    a leave moves exactly the departed node's keys, a join an
//!    expected `1/(n+1)` fraction — without any token or bucket state.
//! 2. **Routing** ([`node`]): a [`ClusterNode`] serves locally-owned
//!    groups from its own
//!    [`ShardedAggregatingCache`](fgcache_core::ShardedAggregatingCache)
//!    and proxies the rest to the owner over any
//!    [`Transport`](fgcache_net::Transport) as a depth-bounded owned
//!    fetch. Concurrent misses for the same group collapse through
//!    [`SingleFlight`]; retries deduplicate by request id in reply
//!    caches (the other half of exactly-once).
//! 3. **Membership** ([`ring::ClusterView`]): explicit, epoch'd views
//!    pushed over the wire (`ClusterUpdate`); stale epochs are ignored,
//!    so delivery is idempotent and order-tolerant.
//!
//! The crate deliberately has no socket code: it talks to peers only
//! through the [`Transport`](fgcache_net::Transport) seam, so the same
//! `ClusterNode` runs over in-process simulated transports (a
//! 100-node virtual cluster in one process) and over real TCP — and the
//! two are differentially tested against each other.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod node;
pub mod ring;
pub mod single_flight;

pub use node::{ClusterNode, ClusterNodeStats, PeerConnector, RebalanceReport};
pub use ring::{ownership_weight, ClusterView, NodeId, OwnershipRing};
pub use single_flight::{flight_key, SingleFlight};

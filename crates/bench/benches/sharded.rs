//! Sharded-server throughput: single-shard baseline vs the sharded
//! composition under K concurrent clients, plus the `parallel_map` sweep
//! cost that the two-level experiments pay.
//!
//! The client traces follow the ISSUE's 100k-event scenario: 4 clients ×
//! 25k events each. Shard counts 1/2/4/8 replay the identical workload,
//! so the printed throughputs are directly comparable. Note that the
//! speedup from sharding is bounded by the machine's core count — on a
//! single-core host the sharded runs measure pure overhead.

use fgcache_bench::harness;
use fgcache_cache::PolicyKind;
use fgcache_sim::multiclient::run_multiclient;
use fgcache_sim::server::{two_level_sweep, ServerScheme, TwoLevelConfig};
use fgcache_sim::MultiClientConfig;
use fgcache_trace::synth::WorkloadProfile;
use std::hint::black_box;

const CLIENTS: usize = 4;
const EVENTS_PER_CLIENT: usize = 25_000;

fn sharded_throughput() {
    let cfg = MultiClientConfig {
        clients: CLIENTS,
        shard_counts: vec![1, 2, 4, 8],
        events_per_client: EVENTS_PER_CLIENT,
        filter_capacity: 100,
        server_capacity: 400,
        group_size: 5,
        successor_capacity: 8,
        seed: 20020702,
        profile: WorkloadProfile::Server,
        concurrent: true,
        fast_path: true,
    };
    let traces = cfg.client_traces().expect("valid config");
    let events = (CLIENTS * EVENTS_PER_CLIENT) as u64;
    println!(
        "# {} clients x {} events, {} host cores",
        CLIENTS,
        EVENTS_PER_CLIENT,
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    for &shards in &cfg.shard_counts {
        harness::run(
            &format!("sharded_replay/shards={shards}/clients={CLIENTS}"),
            Some(events),
            || {
                run_multiclient(
                    black_box(&traces),
                    shards,
                    cfg.filter_capacity,
                    cfg.server_capacity,
                    cfg.group_size,
                    cfg.successor_capacity,
                    true,
                )
                .expect("valid run")
                .demand_fetches
            },
        );
    }
    // The deterministic interleave isolates sharding overhead from
    // threading: same work, no spawn/join, no contention.
    for &shards in &[1usize, 4] {
        harness::run(
            &format!("sharded_replay_seq/shards={shards}/clients={CLIENTS}"),
            Some(events),
            || {
                run_multiclient(
                    black_box(&traces),
                    shards,
                    cfg.filter_capacity,
                    cfg.server_capacity,
                    cfg.group_size,
                    cfg.successor_capacity,
                    false,
                )
                .expect("valid run")
                .demand_fetches
            },
        );
    }
}

fn parallel_sweep() {
    let trace = fgcache_bench::small_trace(WorkloadProfile::Workstation);
    let cfg = TwoLevelConfig {
        filter_capacities: vec![50, 100, 200, 300],
        server_capacity: 300,
        schemes: vec![
            ServerScheme::Aggregating { group_size: 5 },
            ServerScheme::Policy(PolicyKind::Lru),
        ],
        successor_capacity: 8,
    };
    harness::run("parallel_map/two_level_sweep_8pt", None, || {
        two_level_sweep(black_box(&trace), &cfg)
            .expect("valid sweep")
            .len()
    });
}

fn main() {
    sharded_throughput();
    parallel_sweep();
}

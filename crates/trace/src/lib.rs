//! Workload traces and the synthetic workload generator.
//!
//! The paper evaluates everything against CMU DFSTrace traces (`mozart`,
//! `ives`, `dvorak`, `barber` — referred to as *workstation*, *users*,
//! *write* and *server*). Those traces are not redistributable, so this
//! crate provides:
//!
//! * [`Trace`] — an in-memory, validated sequence of
//!   [`AccessEvent`]s, the unit every simulator
//!   in the workspace consumes;
//! * [`io`] — text, JSON and binary formats for traces;
//! * [`synth`] — a deterministic synthetic generator whose four
//!   [`WorkloadProfile`](synth::WorkloadProfile)s mirror the structural
//!   properties of the paper's four systems (see `DESIGN.md` §4 for the
//!   substitution argument);
//! * [`stats`] — descriptive statistics used to sanity-check workloads.
//!
//! # Examples
//!
//! ```
//! use fgcache_trace::synth::{SynthConfig, WorkloadProfile};
//! use fgcache_trace::stats::TraceStats;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let trace = SynthConfig::profile(WorkloadProfile::Workstation)
//!     .events(5_000)
//!     .seed(1)
//!     .build()?
//!     .generate();
//! let stats = TraceStats::compute(&trace);
//! assert_eq!(stats.events, 5_000);
//! assert!(stats.unique_files > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;

use fgcache_types::{AccessEvent, ClientId, FileId, SeqNo, ValidationError};

pub mod convert;
pub mod io;
pub mod stats;
pub mod stream;
pub mod synth;

/// A validated, in-memory access trace.
///
/// Invariants (checked by [`Trace::new`]):
///
/// * sequence numbers are strictly increasing;
/// * the trace may be empty, but never contains duplicate sequence numbers.
///
/// `Trace` is cheap to share by reference; simulators only ever read it.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    events: Vec<AccessEvent>,
}

impl Trace {
    /// Creates a trace from events, validating the sequence-number
    /// invariant.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidationError`] if sequence numbers are not strictly
    /// increasing.
    pub fn new(events: Vec<AccessEvent>) -> Result<Self, ValidationError> {
        for pair in events.windows(2) {
            if pair[1].seq <= pair[0].seq {
                return Err(ValidationError::new(
                    "events",
                    format!(
                        "sequence numbers must be strictly increasing, found {} after {}",
                        pair[1].seq, pair[0].seq
                    ),
                ));
            }
        }
        Ok(Trace { events })
    }

    /// Builds a read-only trace over the given raw file ids, numbering
    /// events consecutively from zero and attributing them to client 0.
    ///
    /// This is the idiomatic way to express a file sequence in tests and
    /// examples:
    ///
    /// ```
    /// use fgcache_trace::Trace;
    /// let t = Trace::from_files([1, 2, 1, 3]);
    /// assert_eq!(t.len(), 4);
    /// ```
    pub fn from_files<I>(ids: I) -> Self
    where
        I: IntoIterator<Item = u64>,
    {
        let events = ids
            .into_iter()
            .enumerate()
            .map(|(i, id)| AccessEvent::read(i as u64, id))
            .collect();
        Trace { events }
    }

    /// The events of the trace, in sequence order.
    pub fn events(&self) -> &[AccessEvent] {
        &self.events
    }

    /// Number of events in the trace.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if the trace contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over the accessed [`FileId`]s in sequence order.
    pub fn files(&self) -> impl Iterator<Item = FileId> + '_ {
        self.events.iter().map(|e| e.file)
    }

    /// Collects the file sequence into a `Vec` (convenient for the entropy
    /// analyses, which operate on plain file sequences).
    pub fn file_sequence(&self) -> Vec<FileId> {
        self.files().collect()
    }

    /// Returns a new trace containing only the events for which `keep`
    /// returns `true`, renumbered consecutively from zero.
    ///
    /// This is how intervening-cache *miss streams* become traces again:
    /// the paper's server-side analyses treat the filtered stream as a
    /// first-class workload.
    pub fn filtered<F>(&self, mut keep: F) -> Trace
    where
        F: FnMut(&AccessEvent) -> bool,
    {
        let events = self
            .events
            .iter()
            .filter(|e| keep(e))
            .enumerate()
            .map(|(i, e)| AccessEvent::new(SeqNo(i as u64), e.client, e.file, e.kind))
            .collect();
        Trace { events }
    }

    /// Returns the distinct clients appearing in the trace, sorted.
    pub fn clients(&self) -> Vec<ClientId> {
        let mut ids: Vec<ClientId> = self.events.iter().map(|e| e.client).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Trace({} events)", self.events.len())
    }
}

impl FromIterator<AccessEvent> for Trace {
    /// Collects events into a trace **renumbering them consecutively**.
    ///
    /// Unlike [`Trace::new`], which validates caller-supplied sequence
    /// numbers, collecting assigns fresh numbers — the common case when
    /// synthesising or transforming streams.
    fn from_iter<I: IntoIterator<Item = AccessEvent>>(iter: I) -> Self {
        let events = iter
            .into_iter()
            .enumerate()
            .map(|(i, e)| AccessEvent::new(SeqNo(i as u64), e.client, e.file, e.kind))
            .collect();
        Trace { events }
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a AccessEvent;
    type IntoIter = std::slice::Iter<'a, AccessEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgcache_types::AccessKind;

    #[test]
    fn new_accepts_strictly_increasing() {
        let t = Trace::new(vec![AccessEvent::read(0, 1), AccessEvent::read(1, 2)]).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn new_rejects_duplicate_seq() {
        let err = Trace::new(vec![AccessEvent::read(3, 1), AccessEvent::read(3, 2)]).unwrap_err();
        assert_eq!(err.parameter(), "events");
    }

    #[test]
    fn new_rejects_decreasing_seq() {
        assert!(Trace::new(vec![AccessEvent::read(5, 1), AccessEvent::read(4, 2)]).is_err());
    }

    #[test]
    fn empty_trace_is_valid() {
        let t = Trace::new(Vec::new()).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.to_string(), "Trace(0 events)");
    }

    #[test]
    fn from_files_numbers_consecutively() {
        let t = Trace::from_files([9, 8, 9]);
        let seqs: Vec<u64> = t.events().iter().map(|e| e.seq.as_u64()).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(t.file_sequence(), vec![FileId(9), FileId(8), FileId(9)]);
    }

    #[test]
    fn filtered_renumbers_and_preserves_payload() {
        let t = Trace::from_files([1, 2, 3, 2]);
        let odd = t.filtered(|e| e.file.as_u64() % 2 == 1);
        assert_eq!(odd.file_sequence(), vec![FileId(1), FileId(3)]);
        assert_eq!(odd.events()[1].seq, SeqNo(1));
    }

    #[test]
    fn collect_renumbers() {
        let t: Trace = vec![
            AccessEvent::new(SeqNo(10), ClientId(2), FileId(5), AccessKind::Write),
            AccessEvent::new(SeqNo(99), ClientId(2), FileId(6), AccessKind::Read),
        ]
        .into_iter()
        .collect();
        assert_eq!(t.events()[0].seq, SeqNo(0));
        assert_eq!(t.events()[1].seq, SeqNo(1));
        assert_eq!(t.events()[0].client, ClientId(2));
    }

    #[test]
    fn clients_sorted_unique() {
        let t: Trace = vec![
            AccessEvent::new(SeqNo(0), ClientId(3), FileId(1), AccessKind::Read),
            AccessEvent::new(SeqNo(1), ClientId(1), FileId(2), AccessKind::Read),
            AccessEvent::new(SeqNo(2), ClientId(3), FileId(3), AccessKind::Read),
        ]
        .into_iter()
        .collect();
        assert_eq!(t.clients(), vec![ClientId(1), ClientId(3)]);
    }

    #[test]
    fn iterate_by_reference() {
        let t = Trace::from_files([4, 5]);
        let files: Vec<FileId> = (&t).into_iter().map(|e| e.file).collect();
        assert_eq!(files, vec![FileId(4), FileId(5)]);
    }
}

//! [`FaultyTransport`]: seeded fault injection for any [`Transport`].
//!
//! Wraps an inner transport and, with configured probabilities, makes its
//! replies misbehave the three ways a real network does:
//!
//! * **timeout** — the request is lost *before* reaching the server: the
//!   inner transport is not invoked at all and the caller sees a
//!   [`TransportErrorKind::Timeout`].
//! * **dropped reply** — the server executed the fetch but the reply was
//!   lost on the way back: the caller sees
//!   [`TransportErrorKind::ReplyDropped`]. This is the dangerous case for
//!   idempotency — a naïve retry would re-execute the fetch.
//! * **duplicate reply** — a stale reply from an *earlier* request is
//!   delivered instead of this one's, as happens when a retried request's
//!   original reply finally arrives. The caller must notice the
//!   mismatched request id and discard it.
//!
//! All rolls come from a [`SplitMix64`] stream, so a fixed seed yields a
//! fixed fault schedule — the retry tests assert exact outcomes, not
//! probabilities. For tests that want a specific fault at a specific
//! call, the `force_*_next` methods queue deterministic faults that fire
//! before any random roll.

use fgcache_types::rng::{RandomSource, SplitMix64};
use fgcache_types::{TransportError, TransportErrorKind};

use crate::transport::{GroupReply, GroupRequest, Transport, TransportStats};

/// Fault probabilities and the seed for the roll stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability a reply is dropped after the server executed the fetch.
    pub drop_reply: f64,
    /// Probability a stale earlier reply is delivered instead of this one.
    pub duplicate_reply: f64,
    /// Probability the request is lost before reaching the server.
    pub timeout: f64,
    /// Seed for the fault roll stream.
    pub seed: u64,
}

impl FaultConfig {
    /// No faults at all (the wrapper becomes a pass-through).
    pub fn none() -> Self {
        FaultConfig {
            drop_reply: 0.0,
            duplicate_reply: 0.0,
            timeout: 0.0,
            seed: 0,
        }
    }

    /// A mildly lossy network: 5% drops, 2% duplicates, 2% timeouts.
    pub fn lossy(seed: u64) -> Self {
        FaultConfig {
            drop_reply: 0.05,
            duplicate_reply: 0.02,
            timeout: 0.02,
            seed,
        }
    }
}

/// Counters of faults actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Requests lost before reaching the server.
    pub timeouts_injected: u64,
    /// Replies dropped after server-side execution.
    pub drops_injected: u64,
    /// Stale replies delivered in place of the real one.
    pub duplicates_injected: u64,
}

/// A [`Transport`] decorator that injects faults per [`FaultConfig`]. See
/// the [module docs](self) for the fault model.
#[derive(Debug)]
pub struct FaultyTransport<T> {
    inner: T,
    config: FaultConfig,
    rng: SplitMix64,
    /// The most recent reply actually delivered — the candidate "stale
    /// duplicate" for the duplicate-reply fault.
    last_delivered: Option<GroupReply>,
    force_timeouts: u32,
    force_drops: u32,
    force_duplicates: u32,
    injected: FaultStats,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner` with the fault schedule described by `config`.
    pub fn new(inner: T, config: FaultConfig) -> Self {
        let rng = SplitMix64::new(config.seed);
        FaultyTransport {
            inner,
            config,
            rng,
            last_delivered: None,
            force_timeouts: 0,
            force_drops: 0,
            force_duplicates: 0,
            injected: FaultStats::default(),
        }
    }

    /// Queues `n` deterministic timeouts: the next `n` fetches fail with
    /// [`TransportErrorKind::Timeout`] without reaching the server.
    pub fn force_timeout_next(&mut self, n: u32) {
        self.force_timeouts += n;
    }

    /// Queues `n` deterministic reply drops: the next `n` fetches execute
    /// at the server but fail with [`TransportErrorKind::ReplyDropped`].
    pub fn force_drop_next(&mut self, n: u32) {
        self.force_drops += n;
    }

    /// Queues `n` deterministic duplicates: the next `n` fetches deliver
    /// the previous reply (stale request id) instead of their own.
    pub fn force_duplicate_next(&mut self, n: u32) {
        self.force_duplicates += n;
    }

    /// Counters of faults injected so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.injected
    }

    /// Consumes the wrapper, returning the inner transport.
    pub fn into_inner(self) -> T {
        self.inner
    }

    fn roll_timeout(&mut self) -> bool {
        if self.force_timeouts > 0 {
            self.force_timeouts -= 1;
            return true;
        }
        self.rng.chance(self.config.timeout)
    }

    fn roll_drop(&mut self) -> bool {
        if self.force_drops > 0 {
            self.force_drops -= 1;
            return true;
        }
        self.rng.chance(self.config.drop_reply)
    }

    fn roll_duplicate(&mut self) -> bool {
        if self.force_duplicates > 0 {
            self.force_duplicates -= 1;
            return true;
        }
        self.rng.chance(self.config.duplicate_reply)
    }
}

impl<T: Transport> FaultyTransport<T> {
    /// The shared fault pipeline; `owned` selects the depth-bounded
    /// [`Transport::fetch_owned`] call on the wrapped transport.
    fn fetch_faulty(
        &mut self,
        request: &GroupRequest,
        owned: bool,
    ) -> Result<GroupReply, TransportError> {
        if self.roll_timeout() {
            self.injected.timeouts_injected += 1;
            return Err(TransportError::new(
                TransportErrorKind::Timeout,
                "injected fault: request lost before reaching the server",
            )
            .with_request_id(request.request_id));
        }
        let reply = if owned {
            self.inner.fetch_owned(request)?
        } else {
            self.inner.fetch_group(request)?
        };
        if self.roll_drop() {
            // The server executed the fetch; only the reply is lost. Keep
            // it as the stale-duplicate candidate, as a real network would
            // keep it in flight.
            self.injected.drops_injected += 1;
            self.last_delivered = Some(reply);
            return Err(TransportError::new(
                TransportErrorKind::ReplyDropped,
                "injected fault: reply dropped after server-side execution",
            )
            .with_request_id(request.request_id));
        }
        if self.roll_duplicate() {
            if let Some(stale) = self.last_delivered.clone() {
                if stale.request_id != reply.request_id {
                    // Deliver the stale reply; the real one becomes the
                    // next duplicate candidate.
                    self.injected.duplicates_injected += 1;
                    self.last_delivered = Some(reply);
                    return Ok(stale);
                }
            }
            // No distinct earlier reply to duplicate — deliver normally.
        }
        self.last_delivered = Some(reply.clone());
        Ok(reply)
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn fetch_group(&mut self, request: &GroupRequest) -> Result<GroupReply, TransportError> {
        self.fetch_faulty(request, false)
    }

    /// Faults apply identically, but the owned-fetch semantics are
    /// forwarded to the wrapped transport rather than downgraded.
    fn fetch_owned(&mut self, request: &GroupRequest) -> Result<GroupReply, TransportError> {
        self.fetch_faulty(request, true)
    }

    fn stats(&self) -> TransportStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgcache_core::CostModel;
    use fgcache_types::FileId;

    use crate::sim::SimTransport;

    fn req(id: u64, files: &[u64]) -> GroupRequest {
        GroupRequest::new(id, files.iter().map(|&f| FileId(f)).collect())
    }

    fn faultless() -> FaultyTransport<SimTransport<'static>> {
        FaultyTransport::new(
            SimTransport::to_origin(CostModel::remote()),
            FaultConfig::none(),
        )
    }

    #[test]
    fn no_faults_is_a_pass_through() {
        let mut t = faultless();
        for i in 0..20 {
            let r = t.fetch_group(&req(i, &[i])).expect("no faults configured");
            assert_eq!(r.request_id, i);
        }
        assert_eq!(t.fault_stats(), FaultStats::default());
        assert_eq!(t.stats().requests, 20);
    }

    #[test]
    fn forced_timeout_skips_the_server() {
        let mut t = faultless();
        t.force_timeout_next(1);
        let err = t.fetch_group(&req(0, &[1])).expect_err("forced timeout");
        assert_eq!(err.kind(), TransportErrorKind::Timeout);
        assert_eq!(err.request_id(), Some(0));
        assert!(err.is_retryable());
        assert_eq!(t.stats().requests, 0, "server must not have executed");
        assert_eq!(t.fault_stats().timeouts_injected, 1);
    }

    #[test]
    fn forced_drop_executes_then_loses_the_reply() {
        let mut t = faultless();
        t.force_drop_next(1);
        let err = t.fetch_group(&req(0, &[1, 2])).expect_err("forced drop");
        assert_eq!(err.kind(), TransportErrorKind::ReplyDropped);
        assert!(err.is_retryable());
        let s = t.stats();
        assert_eq!(s.requests, 1, "server executed before the reply vanished");
        assert_eq!(s.files_moved, 2);
        assert_eq!(t.fault_stats().drops_injected, 1);
    }

    #[test]
    fn forced_duplicate_delivers_a_stale_request_id() {
        let mut t = faultless();
        t.fetch_group(&req(0, &[1])).expect("no fault yet");
        t.force_duplicate_next(1);
        let stale = t.fetch_group(&req(1, &[2])).expect("duplicate is Ok");
        assert_eq!(stale.request_id, 0, "previous reply delivered");
        assert_eq!(t.fault_stats().duplicates_injected, 1);
        // The displaced real reply became the next duplicate candidate.
        t.force_duplicate_next(1);
        let stale2 = t.fetch_group(&req(2, &[3])).expect("duplicate is Ok");
        assert_eq!(stale2.request_id, 1);
    }

    #[test]
    fn duplicate_without_history_delivers_normally() {
        let mut t = faultless();
        t.force_duplicate_next(1);
        let r = t.fetch_group(&req(5, &[1])).expect("no stale candidate");
        assert_eq!(r.request_id, 5);
        assert_eq!(t.fault_stats().duplicates_injected, 0);
    }

    #[test]
    fn fault_schedule_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut t = FaultyTransport::new(
                SimTransport::to_origin(CostModel::remote()),
                FaultConfig::lossy(seed),
            );
            let outcomes: Vec<bool> = (0..200)
                .map(|i| t.fetch_group(&req(i, &[i])).is_ok())
                .collect();
            (outcomes, t.fault_stats())
        };
        assert_eq!(run(11), run(11), "same seed, same schedule");
        assert_ne!(run(11).0, run(12).0, "different seed, different schedule");
        let (_, stats) = run(11);
        let total = stats.timeouts_injected + stats.drops_injected + stats.duplicates_injected;
        assert!(
            total > 0,
            "a lossy config must inject something in 200 calls"
        );
    }
}

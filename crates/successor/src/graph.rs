//! The inter-file relationship graph (paper Figure 1).
//!
//! Nodes are files; a directed edge `A → B` carries the number of times
//! `B` immediately followed `A`. The paper derives *overlapping* covering
//! groups from this graph — explicitly **not** a disjoint partition,
//! because popular files (shells, `make`) belong to many working sets.

use std::cmp::Ordering;

use fgcache_types::hash::FastMap;
use fgcache_types::FileId;

use crate::group::Group;

/// An edge-weighted directed graph of immediate-successor relationships.
///
/// ```
/// use fgcache_successor::RelationshipGraph;
/// use fgcache_types::FileId;
///
/// let mut g = RelationshipGraph::new();
/// g.record_sequence([1u64, 2, 3, 1, 2].into_iter().map(FileId));
/// assert_eq!(g.weight(FileId(1), FileId(2)), 2);
/// assert_eq!(g.successors_ranked(FileId(1)), vec![(FileId(2), 2)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RelationshipGraph {
    edges: FastMap<FileId, FastMap<FileId, u64>>,
    nodes: FastMap<FileId, u64>, // node → access count
    last: Option<FileId>,
}

/// Total order used for edge ranking: weight descending, then
/// destination id ascending. Never returns `Equal` for two distinct
/// successors of the same node, so any selection algorithm yields the
/// same final ordering as a full sort.
fn cmp_successors(a: &(FileId, u64), b: &(FileId, u64)) -> Ordering {
    b.1.cmp(&a.1).then(a.0.cmp(&b.0))
}

/// Total order for whole-graph edges: weight descending, then
/// `(from, to)` ascending. Distinct edges never compare `Equal`.
fn cmp_edges(a: &(FileId, FileId, u64), b: &(FileId, FileId, u64)) -> Ordering {
    b.2.cmp(&a.2).then((a.0, a.1).cmp(&(b.0, b.1)))
}

/// Keeps the `k` smallest elements under `cmp` (i.e. the top-k of the
/// ranking) in positions `0..k`, then sorts only that prefix. With a
/// strict total order this is output-identical to sorting the whole
/// vector and truncating, but costs O(n + k log k) instead of
/// O(n log n).
fn partial_top_k<T>(items: &mut Vec<T>, k: usize, cmp: impl Fn(&T, &T) -> Ordering) {
    if k == 0 {
        items.clear();
        return;
    }
    if k < items.len() {
        items.select_nth_unstable_by(k - 1, &cmp);
        items.truncate(k);
    }
    items.sort_unstable_by(&cmp);
}

impl RelationshipGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        RelationshipGraph::default()
    }

    /// Records one access, adding/strengthening the edge from the
    /// previous access.
    pub fn record(&mut self, file: FileId) {
        *self.nodes.entry(file).or_insert(0) += 1;
        if let Some(prev) = self.last.replace(file) {
            *self.edges.entry(prev).or_default().entry(file).or_insert(0) += 1;
        }
    }

    /// Records a whole sequence of accesses.
    pub fn record_sequence(&mut self, files: impl IntoIterator<Item = FileId>) {
        for f in files {
            self.record(f);
        }
    }

    /// The weight of edge `from → to` (0 if absent).
    pub fn weight(&self, from: FileId, to: FileId) -> u64 {
        self.edges
            .get(&from)
            .and_then(|m| m.get(&to))
            .copied()
            .unwrap_or(0)
    }

    /// Successors of `from` with weights, strongest first (ties broken by
    /// file id for determinism).
    pub fn successors_ranked(&self, from: FileId) -> Vec<(FileId, u64)> {
        let mut out = Vec::new();
        self.successors_ranked_into(from, usize::MAX, &mut out);
        out
    }

    /// Fills `out` with the top `k` successors of `from`, strongest
    /// first, using the same deterministic tie-break as
    /// [`successors_ranked`](Self::successors_ranked) (weight descending,
    /// then file id ascending — a strict total order, so the result is
    /// output-identical to a full sort truncated to `k`). Selection runs
    /// via `select_nth_unstable_by`, so only the `k` prefix pays a sort.
    /// `out` is cleared first; a reused scratch buffer makes the call
    /// allocation-free at steady state.
    pub fn successors_ranked_into(&self, from: FileId, k: usize, out: &mut Vec<(FileId, u64)>) {
        out.clear();
        if let Some(m) = self.edges.get(&from) {
            out.extend(m.iter().map(|(&f, &w)| (f, w)));
        }
        partial_top_k(out, k, cmp_successors);
    }

    /// Number of distinct files seen.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of distinct directed edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(|m| m.len()).sum()
    }

    /// Access count of a file.
    pub fn access_count(&self, file: FileId) -> u64 {
        self.nodes.get(&file).copied().unwrap_or(0)
    }

    /// The strongest `k` edges in the whole graph, by weight (ties broken
    /// by `(from, to)` id order). Selects the top `k` with
    /// `select_nth_unstable_by` and sorts only that prefix; the strict
    /// total order makes the output identical to a full sort + truncate.
    pub fn top_edges(&self, k: usize) -> Vec<(FileId, FileId, u64)> {
        let mut all: Vec<(FileId, FileId, u64)> = self
            .edges
            .iter()
            .flat_map(|(&from, m)| m.iter().map(move |(&to, &w)| (from, to, w)))
            .collect();
        partial_top_k(&mut all, k, cmp_edges);
        all
    }

    /// The §2.1 construction: a **minimal covering set** of (possibly
    /// overlapping) groups of size `size` — one group per node that has at
    /// least one successor, consisting of the node and its `size − 1`
    /// strongest successors. Nodes covered by an earlier group *as
    /// members* still get their own group only if they have successors
    /// and are not already a requested head; this yields a covering,
    /// not a partition.
    pub fn covering_groups(&self, size: usize) -> Vec<Group> {
        let mut heads: Vec<FileId> = self.edges.keys().copied().collect();
        heads.sort_unstable();
        let mut covered: std::collections::HashSet<FileId> = std::collections::HashSet::new();
        let mut groups = Vec::new();
        let mut ranked = Vec::new();
        for head in heads {
            if covered.contains(&head) {
                continue;
            }
            self.successors_ranked_into(head, size.saturating_sub(1), &mut ranked);
            let members: Vec<FileId> = ranked.iter().map(|&(f, _)| f).collect();
            let group = Group::new(head, members);
            for f in group.files() {
                covered.insert(*f);
            }
            groups.push(group);
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(seq: &[u64]) -> RelationshipGraph {
        let mut g = RelationshipGraph::new();
        g.record_sequence(seq.iter().map(|&i| FileId(i)));
        g
    }

    #[test]
    fn weights_accumulate() {
        let g = graph(&[1, 2, 1, 2, 1, 3]);
        assert_eq!(g.weight(FileId(1), FileId(2)), 2);
        assert_eq!(g.weight(FileId(2), FileId(1)), 2);
        assert_eq!(g.weight(FileId(1), FileId(3)), 1);
        assert_eq!(g.weight(FileId(3), FileId(1)), 0);
    }

    #[test]
    fn ranked_successors_strongest_first() {
        let g = graph(&[1, 2, 1, 2, 1, 3]);
        assert_eq!(
            g.successors_ranked(FileId(1)),
            vec![(FileId(2), 2), (FileId(3), 1)]
        );
        assert!(g.successors_ranked(FileId(99)).is_empty());
    }

    #[test]
    fn node_and_edge_counts() {
        let g = graph(&[1, 2, 3, 1]);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3); // 1→2, 2→3, 3→1
        assert_eq!(g.access_count(FileId(1)), 2);
    }

    #[test]
    fn top_edges_ordered() {
        let g = graph(&[1, 2, 1, 2, 3, 1]);
        let top = g.top_edges(2);
        assert_eq!(top[0], (FileId(1), FileId(2), 2));
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn covering_groups_cover_all_heads() {
        let g = graph(&[1, 2, 3, 1, 2, 3, 4, 5, 4, 5]);
        let groups = g.covering_groups(3);
        // Every file with successors appears in some group.
        let in_some_group = |f: FileId| groups.iter().any(|gr| gr.contains(f));
        for head in [1u64, 2, 3, 4, 5] {
            assert!(in_some_group(FileId(head)), "f{head} uncovered");
        }
        // Group sizes bounded.
        for gr in &groups {
            assert!(gr.len() <= 3);
        }
    }

    #[test]
    fn covering_groups_may_overlap() {
        // Hub file 9 follows both 1 and 5 (a shared executable).
        let g = graph(&[1, 9, 2, 1, 9, 2, 5, 9, 6, 5, 9, 6]);
        let groups = g.covering_groups(2);
        let containing_9 = groups.iter().filter(|gr| gr.contains(FileId(9))).count();
        assert!(containing_9 >= 1);
        // Overlap allowed: total membership may exceed node count.
        let total: usize = groups.iter().map(|gr| gr.len()).sum();
        assert!(total >= g.node_count());
    }

    #[test]
    fn partial_selection_matches_full_sort_reference() {
        // Regression pin for the select_nth_unstable_by rewrite: for a
        // graph dense in weight ties, every k must reproduce the full
        // sort + truncate output byte-for-byte (ties broken by id order).
        use fgcache_types::rng::{RandomSource, SeededRng};
        let mut rng = SeededRng::new(0x70FE_D6E5);
        let mut g = RelationshipGraph::new();
        for _ in 0..4000 {
            // Small universe + tiny weight range → many exact ties.
            g.record(FileId(rng.gen_index(40) as u64));
        }

        let mut edges_ref: Vec<(FileId, FileId, u64)> = g
            .edges
            .iter()
            .flat_map(|(&from, m)| m.iter().map(move |(&to, &w)| (from, to, w)))
            .collect();
        edges_ref.sort_by(|a, b| b.2.cmp(&a.2).then((a.0, a.1).cmp(&(b.0, b.1))));
        for k in [0, 1, 2, 7, 50, edges_ref.len(), edges_ref.len() + 10] {
            let mut expected = edges_ref.clone();
            expected.truncate(k);
            assert_eq!(g.top_edges(k), expected, "top_edges diverges at k={k}");
        }

        for from in 0..40u64 {
            let from = FileId(from);
            let mut full: Vec<(FileId, u64)> = g
                .edges
                .get(&from)
                .map(|m| m.iter().map(|(&f, &w)| (f, w)).collect())
                .unwrap_or_default();
            full.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            assert_eq!(g.successors_ranked(from), full);
            let mut out = vec![(FileId(0), 0)];
            for k in [0usize, 1, 3, 100] {
                g.successors_ranked_into(from, k, &mut out);
                let mut expected = full.clone();
                expected.truncate(k);
                assert_eq!(out, expected, "successors_ranked_into diverges at k={k}");
            }
        }
    }

    #[test]
    fn empty_graph() {
        let g = RelationshipGraph::new();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.covering_groups(3).is_empty());
        assert!(g.top_edges(5).is_empty());
    }
}

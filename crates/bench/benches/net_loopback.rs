//! Loopback TCP group-fetch throughput: the in-process replay baseline
//! vs the real wire protocol, per batch size.
//!
//! Every run replays the identical 2-client × 10k-event workload through
//! `run_multiclient_transport`, so the only variable is the transport:
//! `DirectTransport` (function calls) vs `NetClient` (TCP over
//! 127.0.0.1, one server spawned per timed run). Batch sizes 1/8/32 show
//! what pipelining buys back of the per-round-trip syscall cost. On a
//! single-core host the server and clients share that core, so the TCP
//! numbers measure protocol + scheduling overhead, not parallelism.

use std::hint::black_box;
use std::sync::Arc;

use fgcache_bench::harness;
use fgcache_core::{ShardedAggregatingCache, ShardedAggregatingCacheBuilder};
use fgcache_net::{BoundServer, DirectTransport, NetClient};
use fgcache_sim::multiclient::run_multiclient_transport;
use fgcache_trace::synth::{SynthConfig, WorkloadProfile};
use fgcache_trace::Trace;

const CLIENTS: usize = 2;
const EVENTS_PER_CLIENT: usize = 10_000;
const FILTER: usize = 100;

fn cache() -> ShardedAggregatingCache {
    ShardedAggregatingCacheBuilder::new(400)
        .shards(2)
        .group_size(5)
        .successor_capacity(8)
        .build()
        .expect("valid cache config")
}

fn traces() -> Vec<Trace> {
    (0..CLIENTS)
        .map(|i| {
            SynthConfig::profile(WorkloadProfile::Server)
                .events(EVENTS_PER_CLIENT)
                .seed(20020702 + i as u64)
                .build()
                .expect("valid synth config")
                .generate()
        })
        .collect()
}

fn main() {
    let traces = traces();
    let events = (CLIENTS * EVENTS_PER_CLIENT) as u64;
    println!(
        "# {} clients x {} events over loopback TCP, {} host cores",
        CLIENTS,
        EVENTS_PER_CLIENT,
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    harness::run("net_loopback/direct_in_process", Some(events), || {
        let server = cache();
        let transports: Vec<DirectTransport<'_>> = (0..CLIENTS)
            .map(|_| DirectTransport::new(&server))
            .collect();
        let (point, _) =
            run_multiclient_transport(black_box(&traces), FILTER, transports, 1, false)
                .expect("valid run");
        point.transport.requests
    });

    for batch in [1usize, 8, 32] {
        harness::run(
            &format!("net_loopback/tcp_batch={batch}"),
            Some(events),
            || {
                let handle = BoundServer::bind("127.0.0.1:0", Arc::new(cache()))
                    .expect("loopback bind")
                    .spawn();
                let clients: Vec<NetClient> = (0..CLIENTS)
                    .map(|i| {
                        NetClient::connect(handle.addr())
                            .expect("loopback connect")
                            .with_id_namespace(i as u64)
                    })
                    .collect();
                let (point, _) =
                    run_multiclient_transport(black_box(&traces), FILTER, clients, batch, false)
                        .expect("valid run");
                handle.stop();
                point.transport.round_trips
            },
        );
    }
}

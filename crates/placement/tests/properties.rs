//! Property-based tests for layouts, seek replay and hoarding.

use fgcache_placement::hoard::{
    evaluate, frequency_hoard, group_hoard, recency_hoard, split_at_fraction, Hoard,
};
use fgcache_placement::layout::Layout;
use fgcache_placement::seek;
use fgcache_trace::Trace;
use fgcache_types::FileId;
use proptest::prelude::*;

fn files() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..25, 0..300)
}

proptest! {
    #[test]
    fn every_layout_is_a_dense_bijection(ids in files(), g in 1usize..6) {
        let history = Trace::from_files(ids.clone());
        let mut distinct: Vec<u64> = ids.clone();
        distinct.sort_unstable();
        distinct.dedup();
        for layout in [
            Layout::hashed(&history),
            Layout::by_frequency(&history),
            Layout::organ_pipe(&history),
            Layout::grouped(&history, g),
        ] {
            prop_assert_eq!(layout.len(), distinct.len());
            let mut slots: Vec<usize> = distinct
                .iter()
                .map(|&f| layout.slot(FileId(f)).expect("file placed"))
                .collect();
            slots.sort_unstable();
            let expected: Vec<usize> = (0..distinct.len()).collect();
            prop_assert_eq!(slots, expected, "slots not a dense permutation");
        }
    }

    #[test]
    fn seek_replay_accounting(ids in files(), layout_ids in files()) {
        let layout = Layout::from_order(layout_ids.iter().map(|&f| FileId(f)));
        let trace = Trace::from_files(ids.clone());
        let r = seek::replay(&layout, &trace);
        prop_assert_eq!(r.accesses as usize, ids.len());
        prop_assert!(r.unplaced <= r.accesses);
        // Total distance is bounded: each access moves at most one span.
        prop_assert!(r.total_distance <= r.accesses * layout.len().max(1) as u64);
        prop_assert!(r.mean() >= 0.0);
    }

    #[test]
    fn identical_layout_identical_cost(ids in files()) {
        let history = Trace::from_files(ids.clone());
        let trace = Trace::from_files(ids);
        let a = seek::replay(&Layout::by_frequency(&history), &trace);
        let b = seek::replay(&Layout::by_frequency(&history), &trace);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn hoards_respect_budget_and_contain_only_history_files(
        ids in files(),
        budget in 0usize..30,
        g in 1usize..6,
    ) {
        let history = Trace::from_files(ids.clone());
        let universe: std::collections::HashSet<FileId> =
            ids.iter().map(|&f| FileId(f)).collect();
        for hoard in [
            frequency_hoard(&history, budget),
            recency_hoard(&history, budget),
            group_hoard(&history, budget, g),
        ] {
            prop_assert!(hoard.len() <= budget);
            for f in 0u64..25 {
                if hoard.contains(FileId(f)) {
                    prop_assert!(universe.contains(&FileId(f)), "hoarded unseen file");
                }
            }
        }
    }

    #[test]
    fn full_budget_hoard_catches_everything(ids in files()) {
        let history = Trace::from_files(ids.clone());
        let future = Trace::from_files(ids.clone());
        let distinct = {
            let mut v = ids.clone();
            v.sort_unstable();
            v.dedup();
            v.len()
        };
        let hoard = frequency_hoard(&history, distinct);
        let r = evaluate(&hoard, &future);
        prop_assert_eq!(r.hits, r.accesses);
    }

    #[test]
    fn evaluate_bounds(ids in files(), hoard_ids in files()) {
        let hoard = Hoard::new(hoard_ids.iter().map(|&f| FileId(f)));
        let future = Trace::from_files(ids);
        let r = evaluate(&hoard, &future);
        prop_assert!(r.hits <= r.accesses);
        prop_assert!((0.0..=1.0).contains(&r.hit_rate()));
    }

    #[test]
    fn split_partitions_exactly(ids in files(), frac in 0.0f64..=1.0) {
        let trace = Trace::from_files(ids.clone());
        let (a, b) = split_at_fraction(&trace, frac);
        prop_assert_eq!(a.len() + b.len(), ids.len());
        let rejoined: Vec<FileId> = a
            .file_sequence()
            .into_iter()
            .chain(b.file_sequence())
            .collect();
        prop_assert_eq!(rejoined, trace.file_sequence());
    }
}

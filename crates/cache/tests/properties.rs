//! Deterministic model-based tests for the cache substrate.
//!
//! The key oracle: [`LruCache`] must behave identically to a trivially
//! correct reference model (a `Vec` ordered MRU→LRU). The other policies
//! are checked against their structural invariants under seeded random
//! operation sequences; the heavier cross-policy differential fuzzer lives
//! in `tests/differential.rs`.

use fgcache_cache::{Cache, ClockCache, FifoCache, LfuCache, LruCache, PolicyKind, TwoQCache};
use fgcache_types::rng::RandomSource;
use fgcache_types::{FileId, SeededRng};

/// Seeds used by every randomized test in this file.
const SEEDS: [u64; 6] = [0, 1, 7, 42, 999, 0xF00D];

/// A trivially-correct LRU model: index 0 = MRU, last = LRU victim.
#[derive(Debug, Default)]
struct ModelLru {
    capacity: usize,
    order: Vec<FileId>,
}

impl ModelLru {
    fn new(capacity: usize) -> Self {
        ModelLru {
            capacity,
            order: Vec::new(),
        }
    }

    fn access(&mut self, f: FileId) -> bool {
        if let Some(i) = self.order.iter().position(|&x| x == f) {
            self.order.remove(i);
            self.order.insert(0, f);
            true
        } else {
            if self.order.len() == self.capacity {
                self.order.pop();
            }
            self.order.insert(0, f);
            false
        }
    }

    fn insert_speculative(&mut self, f: FileId) {
        if self.order.contains(&f) {
            return;
        }
        if self.order.len() == self.capacity {
            self.order.pop();
        }
        self.order.push(f);
    }
}

/// One step of a cache workout.
#[derive(Debug, Clone, Copy)]
enum Op {
    Access(u64),
    Speculative(u64),
}

/// Generates a random script of up to 400 demand/speculative steps over
/// files `0..max_file`.
fn ops(rng: &mut SeededRng, max_file: u64) -> Vec<Op> {
    let n = rng.gen_index(400);
    (0..n)
        .map(|_| {
            let f = rng.gen_range_inclusive(0, max_file - 1);
            if rng.chance(0.5) {
                Op::Access(f)
            } else {
                Op::Speculative(f)
            }
        })
        .collect()
}

#[test]
fn lru_matches_reference_model() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        for _ in 0..8 {
            let capacity = 1 + rng.gen_index(19);
            let script = ops(&mut rng, 30);
            let mut real = LruCache::new(capacity);
            let mut model = ModelLru::new(capacity);
            for op in &script {
                match *op {
                    Op::Access(f) => {
                        let hit = real.access(FileId(f)).is_hit();
                        let model_hit = model.access(FileId(f));
                        assert_eq!(hit, model_hit, "divergent hit for {op:?} (seed {seed})");
                    }
                    Op::Speculative(f) => {
                        real.insert_speculative(FileId(f));
                        model.insert_speculative(FileId(f));
                    }
                }
                assert_eq!(real.len(), model.order.len());
                let real_order: Vec<FileId> = real.iter_mru().collect();
                assert_eq!(&real_order, &model.order);
                assert_eq!(real.lru(), model.order.last().copied());
                assert_eq!(real.mru(), model.order.first().copied());
            }
        }
    }
}

#[test]
fn every_policy_respects_capacity_and_accounting() {
    for seed in SEEDS {
        for kind in PolicyKind::ALL {
            let mut rng = SeededRng::new(seed);
            for _ in 0..4 {
                let capacity = 1 + rng.gen_index(15);
                let script = ops(&mut rng, 40);
                let mut cache = kind.build(capacity);
                let mut demand = 0u64;
                for op in &script {
                    match *op {
                        Op::Access(f) => {
                            cache.access(FileId(f));
                            demand += 1;
                            // An accessed file must be resident immediately after.
                            assert!(cache.contains(FileId(f)), "{kind}: lost fresh access");
                        }
                        Op::Speculative(f) => {
                            cache.insert_speculative(FileId(f));
                        }
                    }
                    assert!(cache.len() <= capacity, "{kind}: capacity exceeded");
                }
                let s = cache.stats();
                assert_eq!(s.accesses, demand);
                assert_eq!(s.hits + s.misses, s.accesses);
                assert!(s.speculative_hits <= s.speculative_inserts);
                assert!(s.speculative_hits <= s.hits);
            }
        }
    }
}

#[test]
fn contains_agrees_with_hit_outcome() {
    for seed in SEEDS {
        for kind in PolicyKind::ALL {
            let mut rng = SeededRng::new(seed);
            let capacity = 1 + rng.gen_index(11);
            let mut cache = kind.build(capacity);
            for _ in 0..300 {
                let f = rng.gen_range_inclusive(0, 24);
                let pre = cache.contains(FileId(f));
                let hit = cache.access(FileId(f)).is_hit();
                assert_eq!(pre, hit, "{kind}: contains() disagreed with access outcome");
            }
        }
    }
}

#[test]
fn clear_resets_everything() {
    for seed in SEEDS {
        for kind in PolicyKind::ALL {
            let mut rng = SeededRng::new(seed);
            let script: Vec<u64> = (0..100).map(|_| rng.gen_range_inclusive(0, 19)).collect();
            let mut cache = kind.build(8);
            for &f in &script {
                cache.access(FileId(f));
            }
            cache.clear();
            assert_eq!(cache.len(), 0);
            assert!(cache.is_empty());
            assert_eq!(cache.stats().accesses, 0);
            for &f in &script {
                assert!(!cache.contains(FileId(f)));
            }
        }
    }
}

#[test]
fn lru_batch_equals_sequence_of_tail_inserts_when_room() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        for _ in 0..16 {
            // With enough free room, a batch insert must equal one-by-one
            // tail insertion.
            let capacity = 8 + rng.gen_index(16);
            let batch_len = rng.gen_index(8);
            let files: Vec<FileId> = (0..batch_len)
                .map(|_| FileId(rng.gen_range_inclusive(0, 39)))
                .collect();
            let mut a = LruCache::new(capacity);
            a.insert_speculative_batch(&files);
            let mut b = LruCache::new(capacity);
            let mut seen = std::collections::HashSet::new();
            for &f in &files {
                if seen.insert(f) {
                    b.insert_speculative(f);
                }
            }
            let order_a: Vec<FileId> = a.iter_mru().collect();
            let order_b: Vec<FileId> = b.iter_mru().collect();
            assert_eq!(order_a, order_b);
        }
    }
}

#[test]
fn fifo_eviction_is_insertion_order() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        let capacity = 1 + rng.gen_index(9);
        let mut cache = FifoCache::new(capacity);
        let mut inserted: Vec<FileId> = Vec::new();
        for _ in 0..200 {
            let file = FileId(rng.gen_range_inclusive(0, 29));
            if cache.access(file).is_miss() {
                inserted.push(file);
            }
        }
        // The resident set must be exactly the most recent `len` distinct
        // insertions (FIFO never reorders).
        let resident: Vec<FileId> = inserted.iter().rev().take(cache.len()).copied().collect();
        for f in resident {
            assert!(cache.contains(f));
        }
    }
}

#[test]
fn lfu_never_evicts_the_heaviest_hitter() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        // File 0 is accessed before every script step: it always has the
        // strictly highest count, so it must never be evicted.
        let mut cache = LfuCache::new(4);
        cache.access(FileId(0));
        for _ in 0..300 {
            let f = rng.gen_range_inclusive(1, 11);
            cache.access(FileId(0));
            cache.access(FileId(f));
            assert!(cache.contains(FileId(0)), "heavy hitter evicted");
        }
    }
}

#[test]
fn clock_and_twoq_survive_arbitrary_churn() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        let mut clock = ClockCache::new(7);
        let mut twoq = TwoQCache::new(7);
        for _ in 0..500 {
            let f = FileId(rng.gen_range_inclusive(0, 59));
            clock.access(f);
            twoq.access(f);
        }
        assert!(clock.len() <= 7);
        assert!(twoq.len() <= 7);
        assert!(clock.len() >= 1);
        assert!(twoq.len() >= 1);
    }
}

#[test]
fn miss_stream_is_exactly_the_misses() {
    use fgcache_cache::filter::miss_stream;
    use fgcache_trace::Trace;
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        for _ in 0..8 {
            let capacity = 1 + rng.gen_index(11);
            let n = rng.gen_index(300);
            let files: Vec<u64> = (0..n).map(|_| rng.gen_range_inclusive(0, 19)).collect();
            let trace = Trace::from_files(files.clone());
            let mut cache = LruCache::new(capacity);
            let misses = miss_stream(&mut cache, &trace);
            assert_eq!(misses.len() as u64, cache.stats().misses);
            // Replaying the same trace through a fresh cache and collecting
            // misses by hand gives the same stream.
            let mut fresh = LruCache::new(capacity);
            let manual: Vec<FileId> = files
                .iter()
                .map(|&f| FileId(f))
                .filter(|&f| fresh.access(f).is_miss())
                .collect();
            assert_eq!(misses.file_sequence(), manual);
        }
    }
}

//! Analytic capacity planning for group-based file caches.
//!
//! Replaying traces answers "how did this configuration behave?"; at
//! production scale the question is the inverse — "how big must the
//! fleet be for a target hit rate?" — and replaying 10M-event traces per
//! candidate size does not scale. This crate answers the inverse
//! question in closed(ish) form, for the independent-reference-model
//! (IRM) workloads the rest of the workspace can generate and replay:
//!
//! * [`che`] — the Fagin/Che **characteristic-time approximation** for
//!   LRU: solve `Σᵢ (1 − e^{−pᵢT}) = C` for the characteristic time `T`,
//!   read per-file hit probabilities `1 − e^{−pᵢT}` off the solution,
//!   and invert it (capacity for a target hit rate) by the same
//!   monotonicity. Accurate to well under a percentage point against
//!   simulation for cache sizes in the tens and up.
//! * [`berthet`] — the **closed-form power-law specialization**
//!   (Berthet, arXiv:1705.10738, building on Fagin 1977): for Zipf(α)
//!   popularities with α > 1 the fixed point admits the explicit
//!   solution `T = H_{N,α}·(C / Γ(1−1/α))^α`, giving miss rate
//!   `MR ≈ Γ(1−1/α)^α · C^{1−α} / (α·H_{N,α})` with no solver at all.
//! * [`kesidis`] — the **LRU-MRU stationary model** (Kesidis,
//!   arXiv:1704.04849): an exact stationary distribution for a
//!   generalized list cache in which each item is LRU-typed (hits and
//!   fills go to the protected front) or MRU-typed (hits and fills go
//!   to the eviction end), computed by power iteration over the ordered
//!   cache states, with the classical Hendricks/King product form as an
//!   independent cross-check for the pure-LRU case — plus the matching
//!   reference simulator the validation harness replays traces through.
//! * [`planner`] — the **two-level planner** behind `fgcache plan`:
//!   compose Che across the client-filter and server tiers (the server
//!   sees the filters' miss stream, whose popularity is the Che-thinned
//!   `pᵢ·(1 − hᵢ)`), search the filter-size grid for the cheapest
//!   (total files) configuration hitting the target, and recommend
//!   shard/filter/server sizes.
//!
//! Everything here is deterministic, `std`-only and validated against
//! the streamed simulator in `fgcache-sim::plan_validation` — the CI
//! gate asserts analytic-vs-simulated hit rates agree within 2
//! percentage points across an (α, capacity) sweep.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod berthet;
pub mod che;
pub mod kesidis;
pub mod planner;
pub mod popularity;

pub use berthet::{closed_form_characteristic_time, closed_form_miss_rate};
pub use che::{capacity_for_hit_rate, characteristic_time, hit_rate_at_time, solve, CheSolution};
pub use kesidis::{LruMruCacheSim, LruMruModel};
pub use planner::{plan, PlanReport, PlanRequest};
pub use popularity::zipf_popularities;

//! Event-server capacity smoke + measurement: one server holding
//! hundreds of mostly-idle connections while active clients replay a
//! workload over TCP.
//!
//! What it checks (each divergence panics, so `cargo bench` exits
//! nonzero — this is the ci high-connection smoke):
//!
//! * the active replay's server-side cache statistics are byte-identical
//!   to the same replay executed in process with `DirectTransport`;
//! * every idle connection is still live afterwards and returns the
//!   same `StatsReply` bytes (served through the full event loop);
//! * the wire scratch paths (`encode_into` / `decode_fetch_into`) are
//!   allocation-free in steady state, measured by this binary's counting
//!   global allocator;
//! * resident-set growth across the whole run stays bounded (checked via
//!   `/proc/self/status` where available).
//!
//! What it measures (written to `BENCH_server.json` with `--json`):
//! connections held, events/s through the active connections, p50/p99
//! frame round-trip latency with every idle connection still attached,
//! and allocs/frame — both the wire-layer steady state (asserted 0) and
//! the honest end-to-end figure (client + server + execution in one
//! process, so it includes reply building and reply-cache retention).
//!
//! Flags (after `--`): `--smoke` shrinks the workload for CI, `--json
//! PATH` writes the summary.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::Arc;
use std::time::Instant;

use fgcache_core::{ShardedAggregatingCache, ShardedAggregatingCacheBuilder};
use fgcache_net::{
    decode_fetch_into, BoundServer, DirectTransport, GroupRequest, Message, NetClient, Transport,
};
use fgcache_sim::multiclient::run_multiclient_transport;
use fgcache_trace::synth::{SynthConfig, WorkloadProfile};
use fgcache_trace::Trace;
use fgcache_types::FileId;

/// Counts every allocation routed through the global allocator (bench
/// binary only; the library crates stay `forbid(unsafe_code)`).
struct CountingAlloc;

static ALLOCATIONS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const IDLE_CONNS: usize = 256;
const ACTIVE_CLIENTS: usize = 4;
const FILTER: usize = 100;
const FULL_EVENTS_PER_CLIENT: usize = 10_000;
const SMOKE_EVENTS_PER_CLIENT: usize = 2_000;
const FULL_PROBES: usize = 2_000;
const SMOKE_PROBES: usize = 400;
/// Generous upper bound on RSS growth across the run: 256 idle
/// connections plus replay state must stay far below this.
const MAX_RSS_GROWTH_KB: u64 = 128 * 1024;

fn cache() -> ShardedAggregatingCache {
    ShardedAggregatingCacheBuilder::new(400)
        .shards(2)
        .group_size(5)
        .successor_capacity(8)
        .build()
        .expect("valid cache config")
}

fn traces(events_per_client: usize) -> Vec<Trace> {
    (0..ACTIVE_CLIENTS)
        .map(|i| {
            SynthConfig::profile(WorkloadProfile::Server)
                .events(events_per_client)
                .seed(20020702 + i as u64)
                .build()
                .expect("valid synth config")
                .generate()
        })
        .collect()
}

/// Resident set size in KiB from `/proc/self/status`, if readable.
fn rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Asserts the reused-buffer wire paths allocate nothing in steady
/// state; returns the measured count (always 0 on success).
fn assert_wire_steady_state_alloc_free() -> u64 {
    let fetch = Message::Fetch {
        request_id: 42,
        files: (0..5).map(FileId).collect(),
    };
    let mut frame = Vec::new();
    let mut files: Vec<FileId> = Vec::new();
    // Warm: first calls grow the scratch buffers to steady capacity.
    fetch.encode_into(&mut frame);
    decode_fetch_into(&frame[4..], &mut files)
        .expect("well-formed")
        .expect("a fetch frame");
    let before = ALLOCATIONS.load(std::sync::atomic::Ordering::Relaxed);
    for _ in 0..10_000 {
        fetch.encode_into(&mut frame);
        decode_fetch_into(&frame[4..], &mut files)
            .expect("well-formed")
            .expect("a fetch frame");
    }
    let allocs = ALLOCATIONS.load(std::sync::atomic::Ordering::Relaxed) - before;
    assert_eq!(
        allocs, 0,
        "wire encode/decode must be allocation-free on warm scratch buffers"
    );
    allocs
}

fn percentile(sorted_micros: &[f64], p: f64) -> f64 {
    if sorted_micros.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_micros.len() - 1) as f64 * p).round() as usize;
    sorted_micros[idx]
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &str,
    connections_held: usize,
    events: usize,
    events_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    allocs_per_frame_e2e: f64,
    rss_growth_kb: Option<u64>,
) {
    let rss = rss_growth_kb.map_or("null".to_string(), |kb| kb.to_string());
    let body = format!(
        "{{\n  \"connections_held\": {connections_held},\n  \"events\": {events},\n  \
         \"events_per_sec\": {events_per_sec:.0},\n  \"p50_frame_latency_us\": {p50_us:.1},\n  \
         \"p99_frame_latency_us\": {p99_us:.1},\n  \"allocs_per_frame_wire\": 0,\n  \
         \"allocs_per_frame_e2e\": {allocs_per_frame_e2e:.2},\n  \"rss_growth_kb\": {rss},\n  \
         \"host_cores\": {}\n}}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    std::fs::write(path, body).expect("write json summary");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let events_per_client = if smoke {
        SMOKE_EVENTS_PER_CLIENT
    } else {
        FULL_EVENTS_PER_CLIENT
    };
    let probes = if smoke { SMOKE_PROBES } else { FULL_PROBES };
    let traces = traces(events_per_client);
    let total_events = ACTIVE_CLIENTS * events_per_client;
    println!(
        "# event_server: {IDLE_CONNS} idle conns + {ACTIVE_CLIENTS} active clients x \
         {events_per_client} events, {} host cores",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    // Wire scratch steady state first, before sockets muddy the counter.
    assert_wire_steady_state_alloc_free();
    println!("wire scratch steady state: 0 allocs/frame (asserted)");

    // Direct in-process baseline: the byte-identity oracle.
    let oracle = cache();
    let direct: Vec<DirectTransport<'_>> = (0..ACTIVE_CLIENTS)
        .map(|_| DirectTransport::new(&oracle))
        .collect();
    run_multiclient_transport(&traces, FILTER, direct, 1, false).expect("direct replay");

    let rss_before = rss_kb();

    // One real server; hold IDLE_CONNS mostly-idle connections open.
    let served = Arc::new(cache());
    let handle = BoundServer::bind("127.0.0.1:0", Arc::clone(&served))
        .expect("loopback bind")
        .spawn();
    let mut idle: Vec<NetClient> = (0..IDLE_CONNS)
        .map(|i| {
            NetClient::connect(handle.addr())
                .expect("idle connect")
                .with_id_namespace(10_000 + i as u64)
        })
        .collect();
    println!("holding {} idle connections", idle.len());

    // Active replay through the crowd of idle connections, timed.
    let clients: Vec<NetClient> = (0..ACTIVE_CLIENTS)
        .map(|i| {
            NetClient::connect(handle.addr())
                .expect("active connect")
                .with_id_namespace(i as u64)
        })
        .collect();
    let allocs_before = ALLOCATIONS.load(std::sync::atomic::Ordering::Relaxed);
    let start = Instant::now();
    let (point, _) =
        run_multiclient_transport(&traces, FILTER, clients, 1, false).expect("tcp replay");
    let secs = start.elapsed().as_secs_f64();
    let allocs = ALLOCATIONS.load(std::sync::atomic::Ordering::Relaxed) - allocs_before;
    let frames = point.transport.round_trips.max(1);
    let events_per_sec = total_events as f64 / secs;
    let allocs_per_frame_e2e = allocs as f64 / frames as f64;

    // Byte-identity: the TCP replay left the server cache in exactly the
    // state the in-process replay left the oracle.
    assert_eq!(
        served.stats(),
        oracle.stats(),
        "TCP replay diverged from direct execution (cache stats)"
    );
    assert_eq!(
        served.group_stats(),
        oracle.group_stats(),
        "TCP replay diverged from direct execution (group stats)"
    );
    println!("byte-identity vs direct execution: ok ({total_events} events)");

    // Frame latency with the full crowd still connected: sequential
    // round trips on one more connection.
    let mut prober = NetClient::connect(handle.addr()).expect("probe connect");
    let mut lat_us: Vec<f64> = Vec::with_capacity(probes);
    for i in 0..probes {
        let request = GroupRequest::new(
            fgcache_net::request_id(99, i as u64),
            vec![FileId((i % 64) as u64)],
        );
        let t = Instant::now();
        prober.fetch_group(&request).expect("probe fetch");
        lat_us.push(t.elapsed().as_secs_f64() * 1e6);
    }
    lat_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let p50 = percentile(&lat_us, 0.50);
    let p99 = percentile(&lat_us, 0.99);

    // Every idle connection is still alive and served: its StatsReply
    // must match every other's, byte for byte (same counters, same
    // wire round trip through the event loop).
    let expected = idle[0].server_stats().expect("idle stats");
    for client in idle.iter_mut().skip(1) {
        let got = client.server_stats().expect("idle stats");
        assert_eq!(got, expected, "an idle connection diverged");
    }
    println!("all {IDLE_CONNS} idle connections served identical stats replies");

    let rss_growth_kb = match (rss_before, rss_kb()) {
        (Some(before), Some(after)) => {
            let growth = after.saturating_sub(before);
            assert!(
                growth < MAX_RSS_GROWTH_KB,
                "RSS grew {growth} KiB over the run (bound {MAX_RSS_GROWTH_KB} KiB)"
            );
            Some(growth)
        }
        _ => None, // not a procfs platform; structural bounds still hold
    };

    drop(idle);
    handle.stop();

    println!(
        "connections_held {:>6}\nevents_per_sec   {events_per_sec:>10.0}\n\
         p50_frame_latency {p50:>8.1} us\np99_frame_latency {p99:>8.1} us\n\
         allocs_per_frame (wire) 0 (asserted)\nallocs_per_frame (e2e)  {allocs_per_frame_e2e:.2}",
        IDLE_CONNS + ACTIVE_CLIENTS + 1,
    );
    if let Some(kb) = rss_growth_kb {
        println!("rss_growth        {kb:>8} KiB (bound {MAX_RSS_GROWTH_KB} KiB)");
    }

    if let Some(path) = json_path {
        write_json(
            &path,
            IDLE_CONNS + ACTIVE_CLIENTS + 1,
            total_events,
            events_per_sec,
            p50,
            p99,
            allocs_per_frame_e2e,
            rss_growth_kb,
        );
        println!("# wrote {path}");
    }
}

//! One criterion bench per paper figure, running a scaled-down version of
//! the exact pipeline the corresponding `repro_*` binary uses. `cargo
//! bench` therefore exercises every table/figure reproduction end to end
//! and tracks its wall-clock cost; for the full-scale numbers run the
//! binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use fgcache_cache::PolicyKind;
use fgcache_sim::client::{client_sweep, ClientSweepConfig};
use fgcache_sim::entropy_exp::{entropy_sweep, filtered_entropy_sweep};
use fgcache_sim::headline::headline_summary;
use fgcache_sim::server::{two_level_sweep, ServerScheme, TwoLevelConfig};
use fgcache_sim::successors::{successor_eval, ReplacementScheme, SuccessorEvalConfig};
use fgcache_trace::synth::{SynthConfig, WorkloadProfile};
use fgcache_trace::Trace;
use std::hint::black_box;

const EVENTS: usize = 12_000;

fn trace(profile: WorkloadProfile) -> Trace {
    SynthConfig::profile(profile)
        .events(EVENTS)
        .seed(20020702)
        .build()
        .expect("profile is valid")
        .generate()
}

fn fig3(c: &mut Criterion) {
    let t = trace(WorkloadProfile::Server);
    let cfg = ClientSweepConfig {
        capacities: vec![100, 400],
        group_sizes: vec![1, 5, 10],
        successor_capacity: 8,
    };
    c.bench_function("fig3_client_sweep", |b| {
        b.iter(|| client_sweep(black_box(&t), &cfg).unwrap().len());
    });
}

fn fig4(c: &mut Criterion) {
    let t = trace(WorkloadProfile::Workstation);
    let cfg = TwoLevelConfig {
        filter_capacities: vec![50, 300],
        server_capacity: 300,
        schemes: vec![
            ServerScheme::Aggregating { group_size: 5 },
            ServerScheme::Policy(PolicyKind::Lru),
            ServerScheme::Policy(PolicyKind::Lfu),
        ],
        successor_capacity: 8,
    };
    c.bench_function("fig4_two_level_sweep", |b| {
        b.iter(|| two_level_sweep(black_box(&t), &cfg).unwrap().len());
    });
}

fn fig5(c: &mut Criterion) {
    let t = trace(WorkloadProfile::Server);
    let cfg = SuccessorEvalConfig {
        capacities: vec![1, 4, 10],
        schemes: vec![
            ReplacementScheme::Oracle,
            ReplacementScheme::Lru,
            ReplacementScheme::Lfu,
        ],
    };
    c.bench_function("fig5_successor_eval", |b| {
        b.iter(|| successor_eval(black_box(&t), &cfg).unwrap().len());
    });
}

fn fig7(c: &mut Criterion) {
    let traces: Vec<(String, Trace)> = WorkloadProfile::ALL
        .iter()
        .map(|&p| (p.name().to_string(), trace(p)))
        .collect();
    let labelled: Vec<(String, &Trace)> =
        traces.iter().map(|(l, t)| (l.clone(), t)).collect();
    let ks = [1usize, 5, 10, 20];
    c.bench_function("fig7_entropy_sweep", |b| {
        b.iter(|| entropy_sweep(black_box(&labelled), &ks).unwrap().len());
    });
}

fn fig8(c: &mut Criterion) {
    let t = trace(WorkloadProfile::Write);
    let filters = [10usize, 100, 1000];
    let ks = [1usize, 5, 10];
    c.bench_function("fig8_filtered_entropy_sweep", |b| {
        b.iter(|| filtered_entropy_sweep(black_box(&t), &filters, &ks).unwrap().len());
    });
}

fn headline(c: &mut Criterion) {
    let t = trace(WorkloadProfile::Server);
    let labelled = [("server".to_string(), &t)];
    c.bench_function("headline_summary", |b| {
        b.iter(|| headline_summary(black_box(&labelled)).unwrap().rows.len());
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig3, fig4, fig5, fig7, fig8, headline
}
criterion_main!(benches);

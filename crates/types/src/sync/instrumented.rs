//! Model side of the atomics facade: an `AtomicU64` that routes every
//! operation through [`super::model`]'s shadow memory.
//!
//! The atomic is identified to the model by its address; the model
//! registers it as a shadow location on first touch, *inside* the same
//! scheduled operation (holding no extra lock, so a parked registration
//! can never block another virtual thread — each access is exactly one
//! scheduling point).
//!
//! Outside a model execution (ordinary tests compiled with the
//! `fgcache_model` feature, or code running before/after a scenario)
//! every method falls back to the embedded real atomic, so enabling
//! the feature never changes the behaviour of non-model tests. An
//! atomic must not be used both inside and outside a model execution —
//! the shadow history and the real cell are not kept in sync.

use std::sync::atomic::Ordering;

use super::model;

/// A 64-bit atomic integer routed through the fgcache atomics facade
/// (instrumented variant; see the `real` module docs for the
/// production variant this replaces under `fgcache_model`).
#[derive(Debug, Default)]
pub struct AtomicU64 {
    real: std::sync::atomic::AtomicU64,
}

impl AtomicU64 {
    /// Creates a new atomic initialized to `value`.
    pub const fn new(value: u64) -> Self {
        AtomicU64 {
            real: std::sync::atomic::AtomicU64::new(value),
        }
    }

    /// `(identity, current value)` pair handed to the model: the
    /// address keys first-touch registration, the value seeds the
    /// shadow history.
    fn key(&self) -> (usize, u64) {
        (
            self as *const Self as usize,
            self.real.load(Ordering::Relaxed),
        )
    }

    /// Loads the current value.
    pub fn load(&self, order: Ordering) -> u64 {
        let (addr, initial) = self.key();
        if let Some(v) = model::atomic_load(addr, initial, order) {
            return v;
        }
        self.real.load(order)
    }

    /// Stores `value`.
    pub fn store(&self, value: u64, order: Ordering) {
        let (addr, initial) = self.key();
        if model::atomic_store(addr, initial, value, order).is_some() {
            return;
        }
        self.real.store(value, order)
    }

    /// Adds `value`, returning the previous value.
    pub fn fetch_add(&self, value: u64, order: Ordering) -> u64 {
        let (addr, initial) = self.key();
        if let Some(old) = model::atomic_rmw(addr, initial, order, |v| v.wrapping_add(value)) {
            return old;
        }
        self.real.fetch_add(value, order)
    }

    /// Subtracts `value`, returning the previous value.
    pub fn fetch_sub(&self, value: u64, order: Ordering) -> u64 {
        let (addr, initial) = self.key();
        if let Some(old) = model::atomic_rmw(addr, initial, order, |v| v.wrapping_sub(value)) {
            return old;
        }
        self.real.fetch_sub(value, order)
    }

    /// Swaps in `value`, returning the previous value.
    pub fn swap(&self, value: u64, order: Ordering) -> u64 {
        let (addr, initial) = self.key();
        if let Some(old) = model::atomic_rmw(addr, initial, order, |_| value) {
            return old;
        }
        self.real.swap(value, order)
    }

    /// Compare-and-exchange; see [`std::sync::atomic::AtomicU64::compare_exchange`].
    pub fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        let (addr, initial) = self.key();
        if let Some(r) = model::atomic_cas(addr, initial, current, new, success, failure) {
            return r;
        }
        self.real.compare_exchange(current, new, success, failure)
    }

    /// Weak compare-and-exchange. Under the model this has strong
    /// semantics (never spuriously fails); see the module docs of
    /// [`super::model`] for the modeled-restriction list.
    pub fn compare_exchange_weak(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        let (addr, initial) = self.key();
        if let Some(r) = model::atomic_cas(addr, initial, current, new, success, failure) {
            return r;
        }
        self.real
            .compare_exchange_weak(current, new, success, failure)
    }
}

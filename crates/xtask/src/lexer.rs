//! A minimal Rust tokenizer for the static-analysis passes.
//!
//! The earlier line-based scanners had two blind spots: a marker inside
//! a string literal was a false positive, and truncating the scan at
//! the first `#[cfg(test)]` line meant library code *below* a mid-file
//! test module was never scanned at all. Lexing fixes both: comments
//! and literals become single tokens (never matched as code), and
//! test-gated items are stripped structurally — by brace matching the
//! gated item — instead of by truncation, however many lines or blank
//! gaps sit between the attribute and the item.
//!
//! This is a *lexer*, not a parser: it understands comments (line and
//! nested block), string / raw-string / char / byte literals, lifetimes
//! versus char literals, identifiers and numbers. Everything else is a
//! one-character punctuation token. That is exactly enough for the
//! token-sequence patterns the analysis passes match, while staying
//! dependency-free like the rest of the gate.

/// What a token is; the analysis passes match on kind + text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (integer or float, any base, with suffix).
    Number,
    /// String, raw-string, byte-string or char literal (quotes kept).
    Literal,
    /// Lifetime such as `'a`.
    Lifetime,
    /// A single punctuation character.
    Punct,
}

/// One lexical token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Exact source text (for [`TokenKind::Punct`], one character).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Token {
    /// `true` if this is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// `true` if this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// Lexes `src`, dropping comments entirely.
pub fn tokenize(src: &str) -> Vec<Token> {
    let chars: Vec<char> = src.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && next == Some('/') {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
        } else if c == '/' && next == Some('*') {
            let mut depth = 1;
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
        } else if let Some(end) = raw_string_end(&chars, i) {
            push_literal(&mut tokens, &chars, i, end, &mut line);
            i = end;
        } else if c == '"' {
            let end = quoted_end(&chars, i + 1, '"');
            push_literal(&mut tokens, &chars, i, end, &mut line);
            i = end;
        } else if c == '\'' {
            // Lifetime if an identifier follows without a closing quote
            // (`'a`, `'static`); otherwise a char literal (`'x'`, `'\n'`).
            if is_lifetime(&chars, i) {
                let start = i;
                i += 1;
                while i < chars.len() && is_ident_char(chars[i]) {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text: chars[start..i].iter().collect(),
                    line,
                });
            } else {
                let end = quoted_end(&chars, i + 1, '\'');
                push_literal(&mut tokens, &chars, i, end, &mut line);
                i = end;
            }
        } else if is_ident_start(c) {
            let start = i;
            while i < chars.len() && is_ident_char(chars[i]) {
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Ident,
                text: chars[start..i].iter().collect(),
                line,
            });
        } else if c.is_ascii_digit() {
            let start = i;
            while i < chars.len()
                && (is_ident_char(chars[i])
                    // A dot continues the number only for a float like
                    // `1.5`; `0..n` must stay three separate tokens.
                    || (chars[i] == '.'
                        && chars.get(i + 1).is_some_and(|c| c.is_ascii_digit())
                        && !chars[start..i].contains(&'.')))
            {
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Number,
                text: chars[start..i].iter().collect(),
                line,
            });
        } else {
            tokens.push(Token {
                kind: TokenKind::Punct,
                text: c.to_string(),
                line,
            });
            i += 1;
        }
    }
    tokens
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// `'` starts a lifetime when an identifier follows and the quote is
/// not closed right after one character (which would be a char literal).
fn is_lifetime(chars: &[char], i: usize) -> bool {
    let Some(&first) = chars.get(i + 1) else {
        return false;
    };
    if !is_ident_start(first) {
        return false;
    }
    let mut j = i + 1;
    while j < chars.len() && is_ident_char(chars[j]) {
        j += 1;
    }
    chars.get(j) != Some(&'\'')
}

/// If position `i` starts a raw or byte string (`r"`, `r#"`, `br"`,
/// `b"`, …), returns the index one past its closing delimiter.
fn raw_string_end(chars: &[char], i: usize) -> Option<usize> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    let raw = chars.get(j) == Some(&'r');
    if raw {
        j += 1;
    }
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) != Some(&'"') || (!raw && (hashes > 0 || j == i)) {
        return None; // plain `"` strings are handled by the caller
    }
    j += 1;
    if raw {
        // Raw string: no escapes; ends at `"` followed by `hashes` #s.
        while j < chars.len() {
            if chars[j] == '"'
                && chars[j + 1..]
                    .iter()
                    .take(hashes)
                    .filter(|&&c| c == '#')
                    .count()
                    == hashes
            {
                return Some(j + 1 + hashes);
            }
            j += 1;
        }
        Some(chars.len())
    } else {
        Some(quoted_end(chars, j, '"'))
    }
}

/// Index one past the closing `delim`, honoring backslash escapes.
fn quoted_end(chars: &[char], mut i: usize, delim: char) -> usize {
    while i < chars.len() {
        if chars[i] == '\\' {
            i += 2;
        } else if chars[i] == delim {
            return i + 1;
        } else {
            i += 1;
        }
    }
    chars.len()
}

fn push_literal(
    tokens: &mut Vec<Token>,
    chars: &[char],
    start: usize,
    end: usize,
    line: &mut usize,
) {
    tokens.push(Token {
        kind: TokenKind::Literal,
        text: chars[start..end].iter().collect(),
        line: *line,
    });
    *line += chars[start..end].iter().filter(|&&c| c == '\n').count();
}

/// Removes every item gated behind a test `cfg` — `#[cfg(test)]`,
/// `#[cfg(all(test, …))]` and the like — by skipping the attribute, any
/// further attributes, and the gated item up to its matching `}` (or
/// `;` for brace-less items). `#[cfg(not(test))]` is *kept*: it is
/// library code by definition.
///
/// Unlike the old truncate-at-first-`#[cfg(test)]` line scan, code
/// after a mid-file test module is still analyzed.
pub fn strip_test_code(tokens: &[Token]) -> Vec<Token> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if let Some(after_attr) = test_cfg_attr_end(tokens, i) {
            i = skip_gated_item(tokens, after_attr);
        } else {
            out.push(tokens[i].clone());
            i += 1;
        }
    }
    out
}

/// If `tokens[i..]` starts a `#[cfg(...)]` attribute whose predicate
/// mentions `test` (and not `not`), returns the index one past `]`.
fn test_cfg_attr_end(tokens: &[Token], i: usize) -> Option<usize> {
    if !(tokens.get(i)?.is_punct('#')
        && tokens.get(i + 1)?.is_punct('[')
        && tokens.get(i + 2)?.is_ident("cfg")
        && tokens.get(i + 3)?.is_punct('('))
    {
        return None;
    }
    let close = match_forward(tokens, i + 3, '(', ')')?;
    let predicate = &tokens[i + 4..close];
    let mentions_test = predicate.iter().any(|t| t.is_ident("test"));
    let negated = predicate.iter().any(|t| t.is_ident("not"));
    if !mentions_test || negated {
        return None;
    }
    if tokens.get(close + 1)?.is_punct(']') {
        Some(close + 2)
    } else {
        None
    }
}

/// Skips any further `#[...]` attributes and then one item: everything
/// up to the matching `}` of its first brace, or up to `;` if a `;`
/// comes first (e.g. a gated `use`). Returns the index just past it.
fn skip_gated_item(tokens: &[Token], mut i: usize) -> usize {
    while tokens.get(i).is_some_and(|t| t.is_punct('#'))
        && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
    {
        match match_forward(tokens, i + 1, '[', ']') {
            Some(close) => i = close + 1,
            None => return tokens.len(),
        }
    }
    while i < tokens.len() {
        if tokens[i].is_punct(';') {
            return i + 1;
        }
        if tokens[i].is_punct('{') {
            return match match_forward(tokens, i, '{', '}') {
                Some(close) => close + 1,
                None => tokens.len(),
            };
        }
        i += 1;
    }
    tokens.len()
}

/// Index of the `close` matching the `open` at `tokens[at]`.
pub fn match_forward(tokens: &[Token], at: usize, open: char, close: char) -> Option<usize> {
    debug_assert!(tokens[at].is_punct(open));
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(at) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Index of the `open` matching the `close` at `tokens[at]`, scanning
/// backwards.
pub fn match_backward(tokens: &[Token], at: usize, open: char, close: char) -> Option<usize> {
    debug_assert!(tokens[at].is_punct(close));
    let mut depth = 0usize;
    for j in (0..=at).rev() {
        if tokens[j].is_punct(close) {
            depth += 1;
        } else if tokens[j].is_punct(open) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(tokens: &[Token]) -> Vec<&str> {
        tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect()
    }

    #[test]
    fn comments_and_strings_become_opaque() {
        let src = "fn f() { // let x = a.lock();\n  let s = \"a.lock().unwrap()\"; /* b.lock()\n still comment */ }\n";
        let toks = tokenize(src);
        assert_eq!(idents(&toks), vec!["fn", "f", "let", "s"]);
        let lit = toks.iter().find(|t| t.kind == TokenKind::Literal).unwrap();
        assert!(lit.text.contains("lock"));
    }

    #[test]
    fn nested_block_comments_and_lines_tracked() {
        let src = "/* outer /* inner */ still */ fn g() {}\nfn h() {}\n";
        let toks = tokenize(src);
        assert_eq!(idents(&toks), vec!["fn", "g", "fn", "h"]);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks.iter().find(|t| t.is_ident("h")).unwrap().line, 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = tokenize("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'a"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Literal && t.text == "'x'"));
    }

    #[test]
    fn raw_and_byte_strings_are_single_tokens() {
        let src = "let a = r#\"std::net \"quoted\" inside\"#; let b = b\"bytes\";";
        let toks = tokenize(src);
        let lits: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .collect();
        assert_eq!(lits.len(), 2, "{toks:?}");
        assert!(lits[0].text.contains("std::net"));
    }

    #[test]
    fn ranges_do_not_merge_into_floats() {
        let toks = tokenize("for i in 0..n {}");
        let dots = toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Number && t.text == "0"));
    }

    #[test]
    fn strip_removes_mid_file_test_module_but_keeps_code_after_it() {
        let src = "\
fn before() {}\n\
#[cfg(test)]\n\
\n\
mod tests {\n\
    fn inside() { oops(); }\n\
}\n\
fn after() {}\n";
        let stripped = strip_test_code(&tokenize(src));
        let names = idents(&stripped);
        assert!(names.contains(&"before"));
        assert!(
            names.contains(&"after"),
            "code after the test module must survive"
        );
        assert!(!names.contains(&"inside"));
        assert!(!names.contains(&"oops"));
    }

    #[test]
    fn strip_handles_cfg_all_test_feature() {
        let src = "#[cfg(all(test, feature = \"fgcache_model\"))]\nmod model_tests { fn gated() {} }\nfn kept() {}\n";
        let stripped = strip_test_code(&tokenize(src));
        let names = idents(&stripped);
        assert!(!names.contains(&"gated"));
        assert!(names.contains(&"kept"));
    }

    #[test]
    fn strip_keeps_cfg_not_test() {
        let src = "#[cfg(not(test))]\nfn prod_only() {}\n";
        let stripped = strip_test_code(&tokenize(src));
        let names = idents(&stripped);
        assert!(names.contains(&"prod_only"));
    }

    #[test]
    fn strip_skips_stacked_attributes_and_braceless_items() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nuse std::net::TcpStream;\nfn kept() {}\n";
        let stripped = strip_test_code(&tokenize(src));
        let names = idents(&stripped);
        assert!(!names.contains(&"TcpStream"));
        assert!(names.contains(&"kept"));
    }
}

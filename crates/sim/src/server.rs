//! Figure 4: server-side caching behind an intervening client cache.
//!
//! The client is a plain LRU cache of varying capacity (the *filter*);
//! the server cache has fixed capacity and sees only the client's miss
//! stream. We compare plain replacement policies against an aggregating
//! server cache that tracks successors *of the miss stream only* (no
//! client cooperation — paper §4.3).

use fgcache_cache::{Cache, LruCache, PolicyKind};
use fgcache_core::AggregatingCacheBuilder;
use fgcache_trace::Trace;
use fgcache_types::ValidationError;

use crate::parallel::parallel_map;
use crate::report::{pct, Table};

/// A server cache scheme under test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServerScheme {
    /// A plain replacement policy (demand fetching only).
    Policy(PolicyKind),
    /// An aggregating cache fetching groups of `group_size` from server
    /// storage, with successor metadata built from the requests it sees.
    Aggregating {
        /// Group size `g` for server-side group retrieval.
        group_size: usize,
    },
}

impl ServerScheme {
    /// Stable label used in tables (`lru`, `lfu`, …, `g5`).
    pub fn label(&self) -> String {
        match self {
            ServerScheme::Policy(kind) => kind.name().to_string(),
            ServerScheme::Aggregating { group_size } => format!("g{group_size}"),
        }
    }
}

/// Parameter grid for the two-level sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct TwoLevelConfig {
    /// Intervening client (filter) capacities — the x-axis (paper:
    /// 50–500).
    pub filter_capacities: Vec<usize>,
    /// Fixed server cache capacity (paper: 300).
    pub server_capacity: usize,
    /// Server schemes to compare (paper: g5, LRU, LFU).
    pub schemes: Vec<ServerScheme>,
    /// Successor list capacity for aggregating schemes.
    pub successor_capacity: usize,
}

impl TwoLevelConfig {
    /// The paper's Figure 4 grid.
    pub fn paper() -> Self {
        TwoLevelConfig {
            filter_capacities: vec![50, 100, 150, 200, 250, 300, 350, 400, 450, 500],
            server_capacity: 300,
            schemes: vec![
                ServerScheme::Aggregating { group_size: 5 },
                ServerScheme::Policy(PolicyKind::Lru),
                ServerScheme::Policy(PolicyKind::Lfu),
            ],
            successor_capacity: 8,
        }
    }

    /// A reduced grid for quick runs and tests.
    pub fn quick() -> Self {
        TwoLevelConfig {
            filter_capacities: vec![50, 300],
            server_capacity: 300,
            schemes: vec![
                ServerScheme::Aggregating { group_size: 5 },
                ServerScheme::Policy(PolicyKind::Lru),
            ],
            successor_capacity: 8,
        }
    }
}

/// One measured point of the two-level sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct TwoLevelPoint {
    /// Intervening client cache capacity.
    pub filter_capacity: usize,
    /// Scheme label (see [`ServerScheme::label`]).
    pub scheme: String,
    /// Server cache hit rate over the requests that reached it.
    pub server_hit_rate: f64,
    /// Requests that reached the server (client misses).
    pub server_accesses: u64,
    /// Client cache hit rate (same for every scheme at a given filter
    /// size; reported for context).
    pub client_hit_rate: f64,
}

/// Runs the Figure 4 sweep over `trace`.
///
/// # Errors
///
/// Returns a [`ValidationError`] if the grid is empty, the server
/// capacity is zero, any filter capacity is zero, or an aggregating
/// scheme's group size is invalid.
pub fn two_level_sweep(
    trace: &Trace,
    config: &TwoLevelConfig,
) -> Result<Vec<TwoLevelPoint>, ValidationError> {
    if config.filter_capacities.is_empty() {
        return Err(ValidationError::new(
            "filter_capacities",
            "must not be empty",
        ));
    }
    if config.schemes.is_empty() {
        return Err(ValidationError::new("schemes", "must not be empty"));
    }
    if config.server_capacity == 0 {
        return Err(ValidationError::new(
            "server_capacity",
            "must be greater than zero",
        ));
    }
    for &cap in &config.filter_capacities {
        if cap == 0 {
            return Err(ValidationError::new(
                "filter_capacities",
                "must all be greater than zero",
            ));
        }
    }
    for scheme in &config.schemes {
        if let ServerScheme::Aggregating { group_size } = scheme {
            AggregatingCacheBuilder::new(config.server_capacity)
                .group_size(*group_size)
                .successor_capacity(config.successor_capacity)
                .build()?;
        }
    }
    let mut grid = Vec::new();
    for &filter in &config.filter_capacities {
        for scheme in &config.schemes {
            grid.push((filter, *scheme));
        }
    }
    let server_capacity = config.server_capacity;
    let successor_capacity = config.successor_capacity;
    Ok(parallel_map(&grid, |&(filter_capacity, scheme)| {
        let mut client = LruCache::new(filter_capacity);
        let mut server: Box<dyn Cache + Send> = match scheme {
            ServerScheme::Policy(kind) => kind.build(server_capacity),
            ServerScheme::Aggregating { group_size } => Box::new(
                AggregatingCacheBuilder::new(server_capacity)
                    .group_size(group_size)
                    .successor_capacity(successor_capacity)
                    .build()
                    .expect("validated above"),
            ),
        };
        for ev in trace.events() {
            if client.access(ev.file).is_miss() {
                server.access(ev.file);
            }
        }
        TwoLevelPoint {
            filter_capacity,
            scheme: scheme.label(),
            server_hit_rate: server.stats().hit_rate(),
            server_accesses: server.stats().accesses,
            client_hit_rate: client.stats().hit_rate(),
        }
    }))
}

/// Renders the sweep in the paper's Figure 4 layout: one row per filter
/// capacity, one column per scheme, cells = server hit rate. A grid point
/// with no measurement renders as `"—"` so a sparse sweep is
/// distinguishable from a blank measurement.
pub fn hit_rate_table(title: &str, points: &[TwoLevelPoint]) -> Table {
    let mut schemes: Vec<String> = points.iter().map(|p| p.scheme.clone()).collect();
    schemes.sort();
    schemes.dedup();
    let mut filters: Vec<usize> = points.iter().map(|p| p.filter_capacity).collect();
    filters.sort_unstable();
    filters.dedup();
    let mut columns = vec!["filter".to_string()];
    columns.extend(schemes.iter().cloned());
    let mut table = Table::new(title, columns);
    for &f in &filters {
        let mut row = vec![f.to_string()];
        for s in &schemes {
            let cell = points
                .iter()
                .find(|p| p.filter_capacity == f && &p.scheme == s)
                .map(|p| pct(p.server_hit_rate))
                .unwrap_or_else(|| "—".to_string());
            row.push(cell);
        }
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgcache_trace::synth::{SynthConfig, WorkloadProfile};

    fn trace(profile: WorkloadProfile, events: usize) -> Trace {
        SynthConfig::profile(profile)
            .events(events)
            .seed(7)
            .build()
            .unwrap()
            .generate()
    }

    #[test]
    fn validation() {
        let t = Trace::from_files([1, 2]);
        let mut cfg = TwoLevelConfig::quick();
        cfg.filter_capacities.clear();
        assert!(two_level_sweep(&t, &cfg).is_err());
        let mut cfg = TwoLevelConfig::quick();
        cfg.schemes.clear();
        assert!(two_level_sweep(&t, &cfg).is_err());
        let mut cfg = TwoLevelConfig::quick();
        cfg.server_capacity = 0;
        assert!(two_level_sweep(&t, &cfg).is_err());
        let mut cfg = TwoLevelConfig::quick();
        cfg.filter_capacities = vec![0];
        assert!(two_level_sweep(&t, &cfg).is_err());
        let mut cfg = TwoLevelConfig::quick();
        cfg.schemes = vec![ServerScheme::Aggregating { group_size: 0 }];
        assert!(two_level_sweep(&t, &cfg).is_err());
    }

    #[test]
    fn empty_trace_sweep_reports_finite_zero_rates() {
        // Zero requests must render as 0.0%, never as NaN (the CSV/JSON
        // writers downstream cannot represent NaN).
        let t = Trace::from_files(Vec::<u64>::new());
        let cfg = TwoLevelConfig {
            filter_capacities: vec![10],
            server_capacity: 10,
            schemes: vec![ServerScheme::Policy(PolicyKind::Lru)],
            successor_capacity: 4,
        };
        let points = two_level_sweep(&t, &cfg).unwrap();
        assert_eq!(points.len(), 1);
        let p = &points[0];
        assert_eq!(p.server_accesses, 0);
        assert!(p.server_hit_rate.is_finite() && p.server_hit_rate == 0.0);
        assert!(p.client_hit_rate.is_finite() && p.client_hit_rate == 0.0);
        let rendered = hit_rate_table("empty", &points).render();
        assert!(rendered.contains("0.0%"), "{rendered}");
        assert!(!rendered.contains("NaN"), "{rendered}");
    }

    #[test]
    fn scheme_labels() {
        assert_eq!(ServerScheme::Policy(PolicyKind::Lru).label(), "lru");
        assert_eq!(ServerScheme::Aggregating { group_size: 5 }.label(), "g5");
    }

    #[test]
    fn server_sees_only_misses() {
        let t = trace(WorkloadProfile::Workstation, 4_000);
        let cfg = TwoLevelConfig {
            filter_capacities: vec![100],
            server_capacity: 100,
            schemes: vec![ServerScheme::Policy(PolicyKind::Lru)],
            successor_capacity: 4,
        };
        let points = two_level_sweep(&t, &cfg).unwrap();
        let p = &points[0];
        // Server accesses = client misses = (1 − client hit rate) × events.
        let expected = ((1.0 - p.client_hit_rate) * 4_000.0).round() as u64;
        assert_eq!(p.server_accesses, expected);
    }

    #[test]
    fn aggregating_beats_lru_when_filter_matches_server() {
        let t = trace(WorkloadProfile::Server, 12_000);
        let cfg = TwoLevelConfig {
            filter_capacities: vec![300],
            server_capacity: 300,
            schemes: vec![
                ServerScheme::Aggregating { group_size: 5 },
                ServerScheme::Policy(PolicyKind::Lru),
            ],
            successor_capacity: 8,
        };
        let points = two_level_sweep(&t, &cfg).unwrap();
        let agg = points.iter().find(|p| p.scheme == "g5").unwrap();
        let lru = points.iter().find(|p| p.scheme == "lru").unwrap();
        assert!(
            agg.server_hit_rate > lru.server_hit_rate,
            "agg {} <= lru {}",
            agg.server_hit_rate,
            lru.server_hit_rate
        );
    }

    #[test]
    fn bigger_filters_starve_plain_server_cache() {
        let t = trace(WorkloadProfile::Workstation, 10_000);
        let cfg = TwoLevelConfig {
            filter_capacities: vec![50, 500],
            server_capacity: 300,
            schemes: vec![ServerScheme::Policy(PolicyKind::Lru)],
            successor_capacity: 4,
        };
        let points = two_level_sweep(&t, &cfg).unwrap();
        let small = points.iter().find(|p| p.filter_capacity == 50).unwrap();
        let big = points.iter().find(|p| p.filter_capacity == 500).unwrap();
        assert!(
            big.server_hit_rate < small.server_hit_rate,
            "hit rate did not degrade: {} vs {}",
            small.server_hit_rate,
            big.server_hit_rate
        );
    }

    #[test]
    fn table_layout() {
        let t = trace(WorkloadProfile::Users, 2_000);
        let points = two_level_sweep(&t, &TwoLevelConfig::quick()).unwrap();
        let table = hit_rate_table("fig4", &points);
        let text = table.render();
        assert!(text.contains("g5"));
        assert!(text.contains("lru"));
    }

    #[test]
    fn sparse_grid_renders_missing_cells_as_dash() {
        // A deliberately sparse point set: (50, g5) and (500, lru) only.
        // The cross cells (50, lru) and (500, g5) were never measured and
        // must render as "—", not as an empty string.
        let points = vec![
            TwoLevelPoint {
                filter_capacity: 50,
                scheme: "g5".to_string(),
                server_hit_rate: 0.5,
                server_accesses: 100,
                client_hit_rate: 0.2,
            },
            TwoLevelPoint {
                filter_capacity: 500,
                scheme: "lru".to_string(),
                server_hit_rate: 0.25,
                server_accesses: 80,
                client_hit_rate: 0.6,
            },
        ];
        let table = hit_rate_table("sparse", &points);
        let text = table.render();
        assert_eq!(text.matches('—').count(), 2, "table:\n{text}");
        assert!(text.contains("50.0"), "table:\n{text}");
        assert!(text.contains("25.0"), "table:\n{text}");
        // Scheme columns are sorted and unique even when the input
        // interleaves them out of order.
        let dup_points: Vec<TwoLevelPoint> =
            points.iter().rev().chain(points.iter()).cloned().collect();
        let table = hit_rate_table("dups", &dup_points);
        let rendered = table.render();
        let header: Vec<&str> = rendered
            .lines()
            .nth(1)
            .unwrap_or("")
            .split_whitespace()
            .collect();
        assert_eq!(header, vec!["filter", "g5", "lru"]);
    }
}

//! Per-file successor tracking and dynamic group construction.
//!
//! This crate implements the paper's metadata mechanism (§2–§3):
//!
//! * **Successor lists** — for each file, a short list of the files
//!   observed to *immediately follow* it in the access sequence. The list
//!   is bounded and managed by a replacement policy; the paper's central
//!   empirical finding (Figure 5) is that **recency (LRU) replacement
//!   consistently beats frequency (LFU)** for this job. Implementations:
//!   [`LruSuccessorList`], [`LfuSuccessorList`], [`OracleSuccessorList`]
//!   (unbounded upper bound) and [`DecayedSuccessorList`] (the paper's
//!   future-work hybrid of recency and frequency).
//! * **[`SuccessorTable`]** — the per-file map of successor lists, fed one
//!   access at a time; the paper's *only* metadata ("we only track a single
//!   event beyond each file access").
//! * **[`GroupBuilder`]** — best-effort construction of a group of `g`
//!   files by chaining most-likely immediate successors (the *transitive
//!   successor* walk of §3).
//! * **[`RelationshipGraph`]** — the edge-weighted inter-file relationship
//!   graph of Figure 1, with overlapping (non-partitioned) covering
//!   groups.
//! * **[`ProbabilityGraph`]** — the Griffioen–Appleton lookahead-window
//!   prefetcher, the related-work baseline the paper contrasts against.
//! * [`eval`] — the Figure 5 experiment: probability that a replacement
//!   policy fails to keep a future successor in the list.
//!
//! # Examples
//!
//! ```
//! use fgcache_successor::{GroupBuilder, LruSuccessorList, SuccessorTable};
//! use fgcache_types::FileId;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut table = SuccessorTable::new(LruSuccessorList::new(3)?);
//! for id in [1u64, 2, 3, 1, 2, 3] {
//!     table.record(FileId(id));
//! }
//! assert_eq!(table.most_likely(FileId(1)), Some(FileId(2)));
//!
//! // Chain most-likely successors into a group of three.
//! let group = GroupBuilder::new(3)?.build(&table, FileId(1));
//! assert_eq!(group.files(), &[FileId(1), FileId(2), FileId(3)]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod eval;
mod graph;
mod group;
mod list;
mod probgraph;
mod table;

pub use graph::RelationshipGraph;
pub use group::{Group, GroupBuilder};
pub use list::{
    DecayedSuccessorList, LfuSuccessorList, LruSuccessorList, OracleSuccessorList, SuccessorList,
};
pub use probgraph::ProbabilityGraph;
pub use table::SuccessorTable;

//! Sharded multi-client aggregating cache — the server-position tier.
//!
//! The paper's server deployment (§4.3) funnels *many* clients' miss
//! streams into one aggregating cache. A single-threaded
//! [`AggregatingCache`] serializes that convergence; this module
//! partitions both the residency directory and the successor table
//! across `N` shards so concurrent clients contend only on the shard
//! their requested file hashes to.
//!
//! # Shard layout
//!
//! Every [`FileId`] is assigned to exactly one shard by a fixed
//! SplitMix64-finalizer hash ([`ShardedAggregatingCache::shard_of`]).
//! Each shard owns a complete [`AggregatingCache`] — an LRU residency
//! slice plus its own successor table — guarded by one
//! [`std::sync::Mutex`]. The hash-partitioning invariant follows
//! directly: a file's residency entry *and* its successor list live on
//! exactly one shard, so no operation ever takes more than one lock and
//! lock order cannot deadlock.
//!
//! Each shard therefore learns successor relationships from the
//! sub-stream of requests that hash to it. With `shards == 1` the
//! composition degenerates to a plain [`AggregatingCache`] and is
//! bit-identical to it (same hit/miss sequence, same statistics) — the
//! differential fuzzer in `tests/sharded_differential.rs` pins both
//! this and the general `N`-shard equivalence to `N` independent
//! per-partition caches.
//!
//! The shard boundary is where a networked fetch transport will later
//! plug in: a shard is a self-contained server tier for its slice of
//! the id space.
//!
//! # Examples
//!
//! ```
//! use fgcache_core::ShardedAggregatingCacheBuilder;
//! use fgcache_types::FileId;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let server = ShardedAggregatingCacheBuilder::new(400)
//!     .shards(4)
//!     .group_size(5)
//!     .build()?;
//! std::thread::scope(|scope| {
//!     for client in 0..4u64 {
//!         let server = &server;
//!         scope.spawn(move || {
//!             for i in 0..100u64 {
//!                 server.handle_access(FileId(client * 1000 + i % 10));
//!             }
//!         });
//!     }
//! });
//! assert_eq!(server.stats().accesses, 400);
//! server.check_invariants()?;
//! # Ok(())
//! # }
//! ```

use std::sync::Mutex;

use fgcache_types::sync::{AtomicU64, Ordering};

use fgcache_cache::{Cache as _, CacheStats};
use fgcache_types::hash::mix64;
use fgcache_types::sizing::SizeCostAssigner;
use fgcache_types::{AccessOutcome, FileId, InvariantViolation, ValidationError};

use crate::aggregating::{AggregatingCache, GroupFetchStats, InsertionPolicy, MetadataSource};
use crate::builder::{AggregatingCacheBuilder, DEFAULT_SUCCESSOR_CAPACITY};

/// Capacity of each shard's pending-touch ring. Power of two; sized so
/// that hit bursts between locked operations (misses, metadata feeds,
/// aggregate reads) rarely overflow — overflow is not an error, just a
/// fall-through to the locked path, which drains the ring first.
const TOUCH_RING_SIZE: usize = 128;

/// A bounded multi-producer ring of deferred fast-path hits (file ids),
/// drained single-consumer under the owning shard's mutex.
///
/// This is the classic bounded MPMC sequence-number queue (Vyukov), built
/// from safe `AtomicU64`s only: each slot carries a sequence word that
/// tells producers when the slot is free (`seq == pos`) and the consumer
/// when it is full (`seq == pos + 1`). Pushes claim a position with a CAS
/// on `head`; the pop side is only ever called while holding the shard
/// lock, so it needs no CAS loop.
#[derive(Debug)]
struct TouchRing {
    slots: Vec<RingSlot>,
    mask: u64,
    head: AtomicU64,
    tail: AtomicU64,
}

#[derive(Debug)]
struct RingSlot {
    seq: AtomicU64,
    value: AtomicU64,
}

impl TouchRing {
    fn new(size: usize) -> Self {
        debug_assert!(size.is_power_of_two());
        TouchRing {
            slots: (0..size)
                .map(|i| RingSlot {
                    seq: AtomicU64::new(i as u64),
                    value: AtomicU64::new(0),
                })
                .collect(),
            mask: (size - 1) as u64,
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
        }
    }

    /// Attempts to enqueue `value`; returns `false` if the ring is full
    /// (the caller falls back to the locked path, which drains first).
    fn push(&self, value: u64) -> bool {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[(pos & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq.wrapping_sub(pos) as i64;
            if diff == 0 {
                match self.head.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        slot.value.store(value, Ordering::Release);
                        // Publishes the value: the consumer's Acquire load
                        // of seq observes this Release store.
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return true;
                    }
                    Err(actual) => pos = actual,
                }
            } else if diff < 0 {
                // The consumer has not freed this slot yet: full.
                return false;
            } else {
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeues the oldest pending value. Single consumer: must only be
    /// called while holding the owning shard's mutex.
    fn pop(&self) -> Option<u64> {
        let pos = self.tail.load(Ordering::Relaxed);
        let slot = &self.slots[(pos & self.mask) as usize];
        let seq = slot.seq.load(Ordering::Acquire);
        if seq == pos.wrapping_add(1) {
            let value = slot.value.load(Ordering::Acquire);
            // Free the slot for the producer one lap ahead.
            slot.seq
                .store(pos.wrapping_add(self.slots.len() as u64), Ordering::Release);
            self.tail.store(pos.wrapping_add(1), Ordering::Relaxed);
            Some(value)
        } else {
            None
        }
    }

    /// Best-effort emptiness check (exact when no producer is active,
    /// e.g. right after a drain under the lock in single-threaded tests).
    fn is_empty(&self) -> bool {
        self.head.load(Ordering::Relaxed) == self.tail.load(Ordering::Relaxed)
    }
}

/// Slot tag: no entry ever stored here (probe chains stop at these).
const SLOT_EMPTY: u64 = 0;
/// Tag bits (63:62) of an occupied slot.
const TAG_OCCUPIED: u64 = 0b10 << 62;
/// Tag bits (63:62) of a tombstone (deleted entry; probe chains continue).
const TAG_TOMBSTONE: u64 = 0b01 << 62;
const TAG_MASK: u64 = 0b11 << 62;
/// Generation field: bits 61:48 (14 bits, wraps harmlessly — see
/// DESIGN.md §10: readers compare whole words only for equality of the
/// id + tag portion, never order generations).
const GEN_SHIFT: u32 = 48;
const GEN_MASK: u64 = 0x3FFF << GEN_SHIFT;
/// Id field: bits 47:0. Files with larger ids bypass the fast path.
const ID_MASK: u64 = (1 << GEN_SHIFT) - 1;

/// Lock-free read-side residency index: one open-addressing table of
/// `AtomicU64` slots per shard, packing `[tag:2][generation:14][id:48]`.
///
/// Readers ([`contains`](Self::contains)) probe linearly from the
/// SplitMix64 hash of the id without taking any lock. Writers (insert /
/// remove / rebuild) run **only while holding the owning shard's mutex**,
/// so at most one writer mutates the table at a time and the index is
/// exactly the shard's residency set at every lock release. A reader
/// racing a writer can transiently miss a resident file (it then takes
/// the locked path — correct, just slower) but can never observe a file
/// that is not resident *at the moment of the load*, because slots are
/// published with single whole-word stores.
///
/// Deletions leave tombstones so reader probe chains stay intact; the
/// table is rebuilt in place (under the lock) when tombstones accumulate.
#[derive(Debug)]
struct ResidencyIndex {
    slots: Vec<AtomicU64>,
    mask: usize,
    /// Tombstone count; mutated only under the shard lock.
    tombstones: AtomicU64,
}

impl ResidencyIndex {
    fn new(capacity: usize) -> Self {
        // ≤ 25% load factor keeps linear-probe chains short even when
        // the shard is full; 8 bytes/slot keeps this cheap (a shard of
        // 512 files costs 16 KiB).
        let size = (capacity.max(1) * 4).next_power_of_two().max(16);
        ResidencyIndex {
            slots: (0..size).map(|_| AtomicU64::new(SLOT_EMPTY)).collect(),
            mask: size - 1,
            tombstones: AtomicU64::new(0),
        }
    }

    /// Lock-free membership probe.
    fn contains(&self, file: FileId) -> bool {
        let Some(id) = file.packed48() else {
            return false;
        };
        let mut pos = mix64(id) as usize & self.mask;
        for _ in 0..self.slots.len() {
            let word = self.slots[pos].load(Ordering::Acquire);
            if word == SLOT_EMPTY {
                return false;
            }
            if word & TAG_MASK == TAG_OCCUPIED && word & ID_MASK == id {
                return true;
            }
            pos = (pos + 1) & self.mask;
        }
        false
    }

    /// Inserts `file` (caller holds the shard lock; `file` must not be
    /// present). Ids beyond [`FileId::MAX_PACKED48`] are ignored — such
    /// files simply never take the fast path.
    fn insert(&self, file: FileId) {
        let Some(id) = file.packed48() else {
            return;
        };
        let mut pos = mix64(id) as usize & self.mask;
        let mut reuse = None;
        for _ in 0..self.slots.len() {
            let word = self.slots[pos].load(Ordering::Acquire);
            if word == SLOT_EMPTY {
                break;
            }
            if word & TAG_MASK == TAG_TOMBSTONE && reuse.is_none() {
                reuse = Some(pos);
            }
            if word & TAG_MASK == TAG_OCCUPIED && word & ID_MASK == id {
                return; // already indexed (defensive; insert implies absence)
            }
            pos = (pos + 1) & self.mask;
        }
        let target = reuse.unwrap_or(pos);
        let old = self.slots[target].load(Ordering::Acquire);
        if old & TAG_MASK == TAG_TOMBSTONE {
            self.tombstones.fetch_sub(1, Ordering::Relaxed);
        }
        let generation = (old & GEN_MASK).wrapping_add(1 << GEN_SHIFT) & GEN_MASK;
        self.slots[target].store(TAG_OCCUPIED | generation | id, Ordering::Release);
    }

    /// Removes `file` (caller holds the shard lock). Leaves a tombstone
    /// carrying the next generation so readers keep probing past it.
    fn remove(&self, file: FileId) {
        let Some(id) = file.packed48() else {
            return;
        };
        let mut pos = mix64(id) as usize & self.mask;
        for _ in 0..self.slots.len() {
            let word = self.slots[pos].load(Ordering::Acquire);
            if word == SLOT_EMPTY {
                return;
            }
            if word & TAG_MASK == TAG_OCCUPIED && word & ID_MASK == id {
                let generation = (word & GEN_MASK).wrapping_add(1 << GEN_SHIFT) & GEN_MASK;
                self.slots[pos].store(TAG_TOMBSTONE | generation | id, Ordering::Release);
                self.tombstones.fetch_add(1, Ordering::Relaxed);
                return;
            }
            pos = (pos + 1) & self.mask;
        }
    }

    /// Whether accumulated tombstones warrant an in-place rebuild.
    fn needs_rebuild(&self) -> bool {
        self.tombstones.load(Ordering::Relaxed) as usize > self.slots.len() / 4
    }

    /// Rebuilds the table in place from the true resident set (caller
    /// holds the shard lock). Concurrent readers may transiently observe
    /// cleared slots and conclude "absent" — they then take the locked
    /// path, which is always correct. They can never observe a spurious
    /// "present".
    fn rebuild(&self, residents: impl Iterator<Item = FileId>) {
        for slot in &self.slots {
            slot.store(SLOT_EMPTY, Ordering::Release);
        }
        self.tombstones.store(0, Ordering::Relaxed);
        for file in residents {
            self.insert(file);
        }
    }

    /// Clears every slot (caller holds the shard lock).
    fn clear(&self) {
        self.rebuild(std::iter::empty());
    }

    /// All ids currently marked occupied (audit only; caller holds the
    /// shard lock so the snapshot is exact).
    fn occupied_ids(&self) -> Vec<FileId> {
        self.slots
            .iter()
            .map(|s| s.load(Ordering::Acquire))
            .filter(|w| w & TAG_MASK == TAG_OCCUPIED)
            .map(|w| FileId(w & ID_MASK))
            .collect()
    }
}

/// One shard: the locked aggregating cache plus its lock-free read-side
/// structures.
#[derive(Debug)]
struct Shard {
    cache: Mutex<AggregatingCache>,
    index: ResidencyIndex,
    ring: TouchRing,
    /// Hits served without taking the mutex (relaxed counter).
    fast_hits: AtomicU64,
    /// Times this shard's mutex was acquired (relaxed counter) — the
    /// contention metric the hot-path bench reports as locks/event.
    lock_acquisitions: AtomicU64,
}

/// Maps a file to its shard with the SplitMix64 finalizer — deterministic
/// across runs and platforms, and well-mixed even for sequential ids.
fn shard_index(file: FileId, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    (mix64(file.as_u64()) % shards as u64) as usize
}

/// Splits a total capacity across `shards` slices: every shard gets
/// `total / shards`, and the remainder goes to the first shards so the
/// slice sizes differ by at most one file.
pub fn partition_capacities(total: usize, shards: usize) -> Vec<usize> {
    let base = total / shards.max(1);
    let rem = total % shards.max(1);
    (0..shards.max(1))
        .map(|i| base + usize::from(i < rem))
        .collect()
}

/// Debug-build witness for the shard-lock ordering discipline: a thread
/// holding several shard locks of one cache must have acquired them in
/// ascending shard order (deadlock freedom for [`ShardedAggregatingCache::snapshot`]
/// and any future multi-shard operation). Every acquisition routes
/// through [`ShardGuard`], which records the `(cache, shard)` pair in a
/// thread-local stack and `debug_assert`s the ordering before blocking
/// on the mutex. Release builds compile all of this away.
#[cfg(debug_assertions)]
mod lock_witness {
    use std::cell::RefCell;

    thread_local! {
        /// `(cache identity, shard index)` pairs this thread holds.
        static HELD: RefCell<Vec<(usize, usize)>> = const { RefCell::new(Vec::new()) };
    }

    /// Records acquiring shard `idx` of the cache identified by `cache`;
    /// panics if this thread already holds a shard of the same cache
    /// whose index is not strictly below `idx`.
    pub(super) fn acquire(cache: usize, idx: usize) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            let worst = held
                .iter()
                .filter(|&&(c, _)| c == cache)
                .map(|&(_, i)| i)
                .max();
            if let Some(worst) = worst {
                debug_assert!(
                    worst < idx,
                    "lock-order violation: acquiring shard {idx} while holding shard {worst} \
                     (shard locks must be taken in ascending order)"
                );
            }
            held.push((cache, idx));
        });
    }

    /// Records releasing shard `idx` of cache `cache`.
    pub(super) fn release(cache: usize, idx: usize) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            let pos = held
                .iter()
                .rposition(|&e| e == (cache, idx))
                .expect("releasing a shard lock the witness never saw acquired");
            held.remove(pos);
        });
    }
}

/// RAII guard over one shard's cache mutex. Dereferences to the locked
/// [`AggregatingCache`] and keeps the debug-build lock-order witness in
/// sync with the guard's lifetime.
struct ShardGuard<'a> {
    guard: std::sync::MutexGuard<'a, AggregatingCache>,
    #[cfg(debug_assertions)]
    witness: (usize, usize),
}

impl std::ops::Deref for ShardGuard<'_> {
    type Target = AggregatingCache;

    fn deref(&self) -> &AggregatingCache {
        &self.guard
    }
}

impl std::ops::DerefMut for ShardGuard<'_> {
    fn deref_mut(&mut self) -> &mut AggregatingCache {
        &mut self.guard
    }
}

impl Drop for ShardGuard<'_> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        lock_witness::release(self.witness.0, self.witness.1);
    }
}

/// A hash-partitioned aggregating cache safe for concurrent clients.
///
/// Construct via [`ShardedAggregatingCacheBuilder`]. All request-path
/// methods take `&self`; each locks at most the one shard the file
/// hashes to.
///
/// # Fast path
///
/// With the fast path enabled (the default), a request for a file the
/// shard's lock-free residency index reports resident
/// is answered **without acquiring the shard mutex**: the hit is counted
/// on a relaxed atomic and the recency move is deferred into a small
/// per-shard pending-touch ring, drained FIFO the next time *anything*
/// locks that shard. Misses, evictions, metadata feeds and all
/// inspection methods still take the mutex — and always drain the ring
/// first, so the locked state never lags the request stream at the
/// moment a lock is held. Single-threaded, the observable statistics
/// and final residency order are bit-identical to the fast path being
/// disabled (pinned by `tests/sharded_differential.rs`).
///
/// # Consistency model
///
/// [`snapshot`] acquires **all** shard locks in ascending shard order
/// (the only multi-lock operation besides itself being re-entered —
/// ascending order on both sides, so no deadlock), drains every pending
/// ring, and reads a single consistent cut. The aggregate accessors
/// ([`stats`], [`group_stats`], [`len`], [`metadata_entries`],
/// [`shard_accesses`], …) are built on that snapshot, so each call is a
/// consistent cut on its own — but two *separate* calls are two
/// different cuts and may disagree under concurrent traffic.
/// The relaxed telemetry counters ([`fast_path_hits`],
/// [`lock_acquisitions`]) are sampled with `Relaxed` loads and may be
/// torn across shards / lag the snapshot cut; treat them as monotonic
/// approximations, exact only after client threads have joined.
///
/// [`snapshot`]: ShardedAggregatingCache::snapshot
/// [`stats`]: ShardedAggregatingCache::stats
/// [`group_stats`]: ShardedAggregatingCache::group_stats
/// [`len`]: ShardedAggregatingCache::len
/// [`metadata_entries`]: ShardedAggregatingCache::metadata_entries
/// [`shard_accesses`]: ShardedAggregatingCache::shard_accesses
/// [`fast_path_hits`]: ShardedAggregatingCache::fast_path_hits
/// [`lock_acquisitions`]: ShardedAggregatingCache::lock_acquisitions
#[derive(Debug)]
pub struct ShardedAggregatingCache {
    shards: Vec<Shard>,
    capacity: usize,
    fast_path: bool,
}

/// One consistent cut of the whole sharded cache, taken with every shard
/// locked simultaneously (see [`ShardedAggregatingCache::snapshot`]).
#[derive(Debug, Clone)]
pub struct ShardedSnapshot {
    /// Summed cache statistics across all shards.
    pub stats: CacheStats,
    /// Summed group-fetch statistics across all shards.
    pub group_stats: GroupFetchStats,
    /// Total resident files across all shards.
    pub len: usize,
    /// Total successor-table entries across all shards.
    pub metadata_entries: usize,
    /// Requests handled per shard, in shard order.
    pub shard_accesses: Vec<u64>,
    /// Hits answered without a lock (relaxed sample — may lag the cut).
    pub fast_path_hits: u64,
    /// Mutex acquisitions across all shards (relaxed sample, including
    /// the acquisitions this snapshot itself performed).
    pub lock_acquisitions: u64,
}

impl ShardedAggregatingCache {
    fn from_shards(shards: Vec<AggregatingCache>, capacity: usize, fast_path: bool) -> Self {
        ShardedAggregatingCache {
            shards: shards
                .into_iter()
                .map(|mut cache| {
                    // The eviction log feeds index removals on the miss
                    // path; it costs nothing when the fast path is off.
                    cache.set_eviction_log(fast_path);
                    let index = ResidencyIndex::new(cache.capacity());
                    for file in cache.residents() {
                        index.insert(file);
                    }
                    Shard {
                        cache: Mutex::new(cache),
                        index,
                        ring: TouchRing::new(TOUCH_RING_SIZE),
                        fast_hits: AtomicU64::new(0),
                        lock_acquisitions: AtomicU64::new(0),
                    }
                })
                .collect(),
            capacity,
            fast_path,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total residency capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The shard `file` is assigned to.
    pub fn shard_of(&self, file: FileId) -> usize {
        shard_index(file, self.shards.len())
    }

    /// Acquires shard `i`'s mutex (counting the acquisition) and drains
    /// its pending-touch ring before returning the guard. Every locked
    /// entry point routes through here, so deferred fast-path hits are
    /// always applied — in FIFO order, exactly as the eager path would
    /// have — before any locked work observes the shard.
    fn shard(&self, i: usize) -> ShardGuard<'_> {
        let shard = &self.shards[i];
        shard.lock_acquisitions.fetch_add(1, Ordering::Relaxed);
        // Witness before blocking: an out-of-order acquisition is
        // reported as the discipline violation it is, not as the
        // deadlock it may eventually cause.
        #[cfg(debug_assertions)]
        lock_witness::acquire(self.shards.as_ptr() as usize, i);
        let mut guard = ShardGuard {
            guard: shard
                .cache
                .lock()
                .expect("a shard panicked while holding its lock"),
            #[cfg(debug_assertions)]
            witness: (self.shards.as_ptr() as usize, i),
        };
        if self.fast_path {
            while let Some(raw) = shard.ring.pop() {
                guard.apply_touch(FileId(raw));
            }
        }
        guard
    }

    /// Handles one demand request on the owning shard.
    ///
    /// Fast path (see the type-level docs): if the lock-free residency
    /// index reports the file resident and its touch fits in the pending
    /// ring, this returns [`AccessOutcome::Hit`] without locking. All
    /// other cases — misses, unindexable ids, a full ring, or the fast
    /// path disabled — take the shard mutex (one lock, never more).
    pub fn handle_access(&self, file: FileId) -> AccessOutcome {
        let i = self.shard_of(file);
        let shard = &self.shards[i];
        if self.fast_path && shard.index.contains(file) && shard.ring.push(file.as_u64()) {
            shard.fast_hits.fetch_add(1, Ordering::Relaxed);
            return AccessOutcome::Hit;
        }
        let mut guard = self.shard(i);
        let outcome = guard.handle_access(file);
        if self.fast_path && outcome.is_miss() {
            // Order matters: a miss can evict a group member from the
            // tail and re-fetch it in the same operation, so the evicted
            // and fetched sets overlap. Removals first, insertions
            // second leaves exactly the resident set indexed.
            guard.drain_evictions(|f| shard.index.remove(f));
            for &f in guard.fetched() {
                shard.index.insert(f);
            }
            if shard.index.needs_rebuild() {
                shard.index.rebuild(guard.residents());
            }
        }
        outcome
    }

    /// Feeds a metadata-only observation to the owning shard's successor
    /// table without touching residency (piggy-backed client statistics).
    pub fn observe_metadata(&self, file: FileId) {
        self.shard(self.shard_of(file)).observe_metadata(file);
    }

    /// Runs `f` against the shard owning `file` — the escape hatch for
    /// tests and future transports that need the full per-shard API.
    pub fn with_shard_of<R>(&self, file: FileId, f: impl FnOnce(&AggregatingCache) -> R) -> R {
        f(&self.shard(self.shard_of(file)))
    }

    /// Returns `true` if no shard holds any file.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` if `file` is resident (on its owning shard).
    pub fn contains(&self, file: FileId) -> bool {
        self.shard(self.shard_of(file)).contains(file)
    }

    /// Every resident file, in ascending shard order (each shard's own
    /// residency order within). Takes one shard lock at a time, so the
    /// result is per-shard consistent rather than a global cut — enough
    /// for the cluster rebalance report, which counts residents that a
    /// new membership view assigns to a different owner.
    pub fn resident_files(&self) -> Vec<FileId> {
        let mut out = Vec::new();
        for i in 0..self.shards.len() {
            let guard = self.shard(i);
            out.extend(guard.residents());
        }
        out
    }

    /// Whether the lock-free hit fast path is enabled.
    pub fn fast_path_enabled(&self) -> bool {
        self.fast_path
    }

    /// Total hits answered without taking any shard mutex. Relaxed
    /// sample — exact only once client threads have joined.
    pub fn fast_path_hits(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.fast_hits.load(Ordering::Relaxed))
            .sum()
    }

    /// Total shard-mutex acquisitions (the contention currency the hot
    /// path exists to save). Relaxed sample; inspection methods count
    /// their own acquisitions too.
    pub fn lock_acquisitions(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock_acquisitions.load(Ordering::Relaxed))
            .sum()
    }

    /// Takes one consistent cut of the whole cache: acquires every shard
    /// lock in ascending shard order, drains all pending touch rings,
    /// and reads every aggregate in a single pass while all locks are
    /// held. This is the only operation that holds more than one lock;
    /// the ascending order makes concurrent snapshots deadlock-free.
    pub fn snapshot(&self) -> ShardedSnapshot {
        let guards: Vec<_> = (0..self.shards.len()).map(|i| self.shard(i)).collect();
        let mut stats = CacheStats::new();
        let mut group_stats = GroupFetchStats::default();
        let mut len = 0;
        let mut metadata_entries = 0;
        let mut shard_accesses = Vec::with_capacity(guards.len());
        for guard in &guards {
            let s = *guard.stats();
            stats.accesses += s.accesses;
            stats.hits += s.hits;
            stats.misses += s.misses;
            stats.speculative_inserts += s.speculative_inserts;
            stats.speculative_hits += s.speculative_hits;
            stats.evictions += s.evictions;
            let g = *guard.group_stats();
            group_stats.demand_fetches += g.demand_fetches;
            group_stats.files_transferred += g.files_transferred;
            group_stats.members_already_resident += g.members_already_resident;
            group_stats.size_units_transferred += g.size_units_transferred;
            len += guard.len();
            metadata_entries += guard.metadata_entries();
            shard_accesses.push(guard.accesses());
        }
        ShardedSnapshot {
            stats,
            group_stats,
            len,
            metadata_entries,
            shard_accesses,
            fast_path_hits: self.fast_path_hits(),
            lock_acquisitions: self.lock_acquisitions(),
        }
    }

    /// Total resident files across all shards (one [`snapshot`] cut).
    ///
    /// [`snapshot`]: Self::snapshot
    pub fn len(&self) -> usize {
        self.snapshot().len
    }

    /// Summed cache statistics across all shards (one [`snapshot`] cut).
    ///
    /// [`snapshot`]: Self::snapshot
    pub fn stats(&self) -> CacheStats {
        self.snapshot().stats
    }

    /// Summed group-fetch statistics across all shards (one
    /// [`snapshot`] cut).
    ///
    /// [`snapshot`]: Self::snapshot
    pub fn group_stats(&self) -> GroupFetchStats {
        self.snapshot().group_stats
    }

    /// Total demand fetches (misses) across all shards.
    pub fn demand_fetches(&self) -> u64 {
        self.group_stats().demand_fetches
    }

    /// Aggregate demand hit rate across all shards.
    pub fn hit_rate(&self) -> f64 {
        self.stats().hit_rate()
    }

    /// Total successor-table entries across all shards (one
    /// [`snapshot`] cut).
    ///
    /// [`snapshot`]: Self::snapshot
    pub fn metadata_entries(&self) -> usize {
        self.snapshot().metadata_entries
    }

    /// Requests handled per shard, in shard order — the load profile the
    /// hash produced (one [`snapshot`] cut).
    ///
    /// [`snapshot`]: Self::snapshot
    pub fn shard_accesses(&self) -> Vec<u64> {
        self.snapshot().shard_accesses
    }

    /// Load imbalance: the busiest shard's request count divided by the
    /// mean per-shard count (1.0 = perfectly balanced; 0 with no
    /// requests).
    pub fn shard_imbalance(&self) -> f64 {
        let loads = self.shard_accesses();
        let total: u64 = loads.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mean = total as f64 / loads.len() as f64;
        let max = loads.iter().copied().max().unwrap_or(0) as f64;
        max / mean
    }

    /// Drops all resident files, successor metadata, statistics, the
    /// residency indexes, and the telemetry counters.
    pub fn clear(&self) {
        for (i, shard) in self.shards.iter().enumerate() {
            let mut guard = self.shard(i);
            guard.clear();
            shard.index.clear();
            shard.fast_hits.store(0, Ordering::Relaxed);
            shard.lock_acquisitions.store(0, Ordering::Relaxed);
        }
    }

    /// Audits every shard's internal invariants plus the cross-shard
    /// partition invariants: each shard's resident files *and* tracked
    /// successor-list keys hash to that shard, and no file is resident
    /// on two shards. With the fast path enabled it additionally
    /// cross-audits the lock-free residency index against the true
    /// resident set: every indexable resident is indexed, every indexed
    /// id is resident, and the pending-touch ring is empty once drained.
    ///
    /// # Errors
    ///
    /// Returns an [`InvariantViolation`] describing the first violated
    /// invariant.
    pub fn check_invariants(&self) -> Result<(), InvariantViolation> {
        let err = |detail: String| Err(InvariantViolation::new("ShardedAggregatingCache", detail));
        let mut total_capacity = 0;
        for i in 0..self.shards.len() {
            let guard = self.shard(i);
            guard.check_invariants()?;
            total_capacity += guard.capacity();
            for file in guard.residents() {
                let owner = shard_index(file, self.shards.len());
                if owner != i {
                    return err(format!(
                        "resident file {file} found on shard {i}, hashes to shard {owner}"
                    ));
                }
            }
            for (file, _) in guard.successor_table().iter() {
                let owner = shard_index(file, self.shards.len());
                if owner != i {
                    return err(format!(
                        "successor list for {file} found on shard {i}, hashes to shard {owner}"
                    ));
                }
            }
            let shard = &self.shards[i];
            let indexed = shard.index.occupied_ids();
            if self.fast_path {
                if !shard.ring.is_empty() {
                    return err(format!("shard {i} ring not empty after drain"));
                }
                let mut indexable = 0usize;
                for file in guard.residents() {
                    if file.packed48().is_some() {
                        indexable += 1;
                        if !shard.index.contains(file) {
                            return err(format!(
                                "resident file {file} missing from shard {i}'s residency index"
                            ));
                        }
                    }
                }
                if indexed.len() != indexable {
                    return err(format!(
                        "shard {i} index holds {} entries, residency has {indexable} indexable files",
                        indexed.len()
                    ));
                }
                for file in indexed {
                    if !guard.contains(file) {
                        return err(format!(
                            "shard {i} index lists {file}, which is not resident"
                        ));
                    }
                }
            } else if !indexed.is_empty() {
                return err(format!(
                    "shard {i} index has {} entries with the fast path disabled",
                    indexed.len()
                ));
            }
        }
        if total_capacity != self.capacity {
            return err(format!(
                "shard capacities sum to {total_capacity}, configured total is {}",
                self.capacity
            ));
        }
        Ok(())
    }
}

/// Configures and constructs a [`ShardedAggregatingCache`].
///
/// ```
/// use fgcache_core::ShardedAggregatingCacheBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let server = ShardedAggregatingCacheBuilder::new(300)
///     .shards(2)
///     .group_size(5)
///     .successor_capacity(8)
///     .build()?;
/// assert_eq!(server.shard_count(), 2);
/// assert_eq!(server.capacity(), 300);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ShardedAggregatingCacheBuilder {
    capacity: usize,
    shards: usize,
    group_size: usize,
    successor_capacity: usize,
    insertion: InsertionPolicy,
    metadata: MetadataSource,
    fast_path: bool,
    sizes: Option<SizeCostAssigner>,
    bundle_eviction: bool,
}

impl ShardedAggregatingCacheBuilder {
    /// Starts a builder for a sharded cache of `capacity` total files.
    /// Defaults: 1 shard, group size 5, successor capacity
    /// [`DEFAULT_SUCCESSOR_CAPACITY`], tail insertion, metadata from
    /// requests — matching [`AggregatingCacheBuilder`].
    pub fn new(capacity: usize) -> Self {
        ShardedAggregatingCacheBuilder {
            capacity,
            shards: 1,
            group_size: 5,
            successor_capacity: DEFAULT_SUCCESSOR_CAPACITY,
            insertion: InsertionPolicy::default(),
            metadata: MetadataSource::default(),
            fast_path: true,
            sizes: None,
            bundle_eviction: false,
        }
    }

    /// Gives files sizes and retrieval costs (see
    /// [`AggregatingCacheBuilder::sizes`]). Each shard accounts its own
    /// capacity slice in size units.
    pub fn sizes(mut self, assigner: SizeCostAssigner) -> Self {
        self.sizes = Some(assigner);
        self
    }

    /// Enables whole-group (bundle) eviction on every shard (see
    /// [`AggregatingCacheBuilder::bundle_eviction`]); requires
    /// [`Self::sizes`].
    pub fn bundle_eviction(mut self, enabled: bool) -> Self {
        self.bundle_eviction = enabled;
        self
    }

    /// Sets the shard count `N`.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the group size `g` (1 = plain sharded LRU).
    pub fn group_size(mut self, g: usize) -> Self {
        self.group_size = g;
        self
    }

    /// Sets the per-file successor list capacity.
    pub fn successor_capacity(mut self, capacity: usize) -> Self {
        self.successor_capacity = capacity;
        self
    }

    /// Sets where speculative group members are placed.
    pub fn insertion_policy(mut self, policy: InsertionPolicy) -> Self {
        self.insertion = policy;
        self
    }

    /// Sets where successor observations come from.
    pub fn metadata_source(mut self, source: MetadataSource) -> Self {
        self.metadata = source;
        self
    }

    /// Enables or disables the lock-free hit fast path (default:
    /// enabled). Disabling it routes every request through the shard
    /// mutex — the escape hatch behind the CLI's `--no-fast-path`.
    pub fn fast_path(mut self, enabled: bool) -> Self {
        self.fast_path = enabled;
        self
    }

    /// Validates the configuration and constructs the sharded cache.
    ///
    /// Feasibility is judged against the **total** capacity: a group
    /// must fit in the cache as a whole (`group_size <= capacity`), not
    /// in every shard's slice. Shards whose slice is smaller than the
    /// group size get their per-shard group size clamped to the slice —
    /// exactly the members such a shard could retain anyway (the
    /// aggregating cache never admits more than `slice - 1` speculative
    /// members alongside the requested file).
    ///
    /// # Errors
    ///
    /// Returns a [`ValidationError`] if the shard count is zero, the
    /// capacity cannot give every shard at least one file
    /// (`capacity < shards`), the group size exceeds the **total**
    /// capacity, or any shard's configuration fails
    /// [`AggregatingCacheBuilder`] validation.
    pub fn build(&self) -> Result<ShardedAggregatingCache, ValidationError> {
        if self.shards == 0 {
            return Err(ValidationError::new(
                "shards",
                "at least one shard is required",
            ));
        }
        if self.capacity < self.shards {
            return Err(ValidationError::new(
                "capacity",
                format!(
                    "capacity {} cannot give each of {} shards at least one file",
                    self.capacity, self.shards
                ),
            ));
        }
        if self.group_size > self.capacity {
            return Err(ValidationError::new(
                "group_size",
                "a whole group must fit in the cache (group_size <= total capacity)",
            ));
        }
        let slices = partition_capacities(self.capacity, self.shards);
        let mut shards = Vec::with_capacity(self.shards);
        for slice in slices {
            let mut builder = AggregatingCacheBuilder::new(slice)
                .group_size(self.group_size.min(slice))
                .successor_capacity(self.successor_capacity)
                .insertion_policy(self.insertion)
                .metadata_source(self.metadata)
                .bundle_eviction(self.bundle_eviction);
            if let Some(assigner) = self.sizes {
                builder = builder.sizes(assigner);
            }
            shards.push(builder.build()?);
        }
        Ok(ShardedAggregatingCache::from_shards(
            shards,
            self.capacity,
            self.fast_path,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sharded(capacity: usize, shards: usize) -> ShardedAggregatingCache {
        ShardedAggregatingCacheBuilder::new(capacity)
            .shards(shards)
            .group_size(3)
            .build()
            .unwrap()
    }

    #[test]
    fn snapshot_and_invariants_respect_lock_order() {
        let c = sharded(64, 4);
        for i in 0..200 {
            c.handle_access(FileId(i));
        }
        // snapshot() holds all four shard locks at once (ascending);
        // check_invariants() takes them one at a time. Both leave the
        // witness stack empty, so back-to-back passes keep working.
        let snap = c.snapshot();
        assert_eq!(snap.len, c.len());
        c.check_invariants().unwrap();
        let _ = c.snapshot();
        c.check_invariants().unwrap();
    }

    #[test]
    fn concurrent_snapshots_are_deadlock_free() {
        let c = std::sync::Arc::new(sharded(64, 4));
        let mut handles = Vec::new();
        for t in 0..2 {
            let c = std::sync::Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..300u64 {
                    c.handle_access(FileId(t * 1000 + i));
                    if i % 50 == 0 {
                        let _ = c.snapshot();
                        c.check_invariants().unwrap();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        c.check_invariants().unwrap();
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "lock-order violation")]
    fn descending_shard_acquisition_is_caught() {
        let c = sharded(64, 4);
        let _held = c.shard(1);
        let _violation = c.shard(0); // descending: the witness must fire
    }

    #[test]
    fn validation() {
        assert!(ShardedAggregatingCacheBuilder::new(10)
            .shards(0)
            .build()
            .is_err());
        // 10 files over 4 shards slices to [3, 3, 2, 2]: slices below
        // the group size are fine as long as the *total* holds a group
        // (the per-shard group size is clamped to the slice).
        assert!(ShardedAggregatingCacheBuilder::new(10)
            .shards(4)
            .group_size(3)
            .build()
            .is_ok());
        assert!(ShardedAggregatingCacheBuilder::new(12)
            .shards(4)
            .group_size(3)
            .build()
            .is_ok());
        // The total capacity is still a hard bound for the group...
        let err = ShardedAggregatingCacheBuilder::new(10)
            .shards(4)
            .group_size(11)
            .build()
            .unwrap_err();
        assert_eq!(err.parameter(), "group_size");
        // ...and every shard still needs at least one file.
        let err = ShardedAggregatingCacheBuilder::new(3)
            .shards(4)
            .build()
            .unwrap_err();
        assert_eq!(err.parameter(), "capacity");
        assert!(ShardedAggregatingCacheBuilder::new(0).build().is_err());
    }

    #[test]
    fn valid_configs_with_small_slices_build() {
        // Regression: capacity 10 over 4 shards slices to [3, 3, 2, 2];
        // with group size 5 every slice is below g even though the total
        // capacity holds two whole groups. The builder used to hand each
        // shard its raw slice and fail the per-shard `group_size <=
        // capacity` check, rejecting a perfectly valid configuration.
        let c = ShardedAggregatingCacheBuilder::new(10)
            .shards(4)
            .group_size(5)
            .build()
            .expect("total capacity 10 holds a group of 5");
        assert_eq!(c.capacity(), 10);
        assert_eq!(c.shard_count(), 4);
        for i in 0..200u64 {
            c.handle_access(FileId(i % 20));
        }
        c.check_invariants().unwrap();
        assert!(c.len() <= 10);
        // Per-shard group size is clamped to the slice, so no shard can
        // transfer more than its slice per fetch.
        let g = c.group_stats();
        assert!(g.files_transferred <= g.demand_fetches * 3);
    }

    #[test]
    fn capacity_partition_differs_by_at_most_one() {
        assert_eq!(partition_capacities(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(partition_capacities(8, 4), vec![2, 2, 2, 2]);
        assert_eq!(partition_capacities(7, 1), vec![7]);
        assert_eq!(partition_capacities(3, 3), vec![1, 1, 1]);
    }

    #[test]
    fn shard_assignment_is_stable_and_in_range() {
        let c = sharded(40, 4);
        for id in 0..1000u64 {
            let s = c.shard_of(FileId(id));
            assert!(s < 4);
            assert_eq!(s, c.shard_of(FileId(id)), "assignment must be stable");
        }
        let single = sharded(40, 1);
        assert!((0..1000u64).all(|id| single.shard_of(FileId(id)) == 0));
    }

    #[test]
    fn hash_spreads_sequential_ids() {
        let c = sharded(40, 4);
        let mut counts = [0usize; 4];
        for id in 0..4000u64 {
            counts[c.shard_of(FileId(id))] += 1;
        }
        for (i, &n) in counts.iter().enumerate() {
            assert!(
                (800..1200).contains(&n),
                "shard {i} got {n} of 4000 sequential ids"
            );
        }
    }

    #[test]
    fn basic_accounting_sums_across_shards() {
        let c = sharded(40, 4);
        for round in 0..3 {
            for id in 0..20u64 {
                let outcome = c.handle_access(FileId(id));
                if round == 0 {
                    assert!(outcome.is_miss());
                }
            }
        }
        let stats = c.stats();
        assert_eq!(stats.accesses, 60);
        assert_eq!(stats.hits + stats.misses, 60);
        assert!(c.contains(FileId(0)));
        assert!(!c.contains(FileId(999)));
        assert_eq!(c.len(), 20);
        assert_eq!(c.demand_fetches(), stats.misses);
        assert!(c.hit_rate() > 0.0);
        assert!(c.metadata_entries() > 0);
        c.check_invariants().unwrap();
    }

    #[test]
    fn shard_loads_and_imbalance() {
        let c = sharded(40, 4);
        assert_eq!(c.shard_imbalance(), 0.0); // no requests yet
        for id in 0..400u64 {
            c.handle_access(FileId(id));
        }
        let loads = c.shard_accesses();
        assert_eq!(loads.iter().sum::<u64>(), 400);
        let imb = c.shard_imbalance();
        assert!((1.0..2.0).contains(&imb), "imbalance {imb}");
    }

    #[test]
    fn concurrent_clients_agree_on_totals() {
        let c = sharded(64, 4);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let c = &c;
                scope.spawn(move || {
                    for i in 0..500u64 {
                        c.handle_access(FileId((t * 7 + i) % 100));
                    }
                });
            }
        });
        assert_eq!(c.stats().accesses, 2000);
        c.check_invariants().unwrap();
    }

    #[test]
    fn observe_metadata_feeds_owning_shard_only() {
        let c = ShardedAggregatingCacheBuilder::new(40)
            .shards(4)
            .group_size(3)
            .metadata_source(MetadataSource::External)
            .build()
            .unwrap();
        for id in 0..50u64 {
            c.observe_metadata(FileId(id));
        }
        assert_eq!(c.len(), 0); // metadata only, no residency
        c.check_invariants().unwrap();
    }

    #[test]
    fn clear_resets_everything() {
        let c = sharded(40, 2);
        for id in 0..30u64 {
            c.handle_access(FileId(id));
        }
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats().accesses, 0);
        assert_eq!(c.metadata_entries(), 0);
        c.check_invariants().unwrap();
    }

    #[test]
    fn with_shard_of_reaches_per_shard_state() {
        let c = sharded(40, 4);
        c.handle_access(FileId(5));
        let (resident, accesses) =
            c.with_shard_of(FileId(5), |s| (s.contains(FileId(5)), s.accesses()));
        assert!(resident);
        assert_eq!(accesses, 1);
    }

    #[test]
    fn fast_path_serves_hits_without_locking() {
        let c = sharded(40, 1);
        c.handle_access(FileId(1)); // miss: resident + indexed
        let locks_before = c.lock_acquisitions();
        for _ in 0..50 {
            assert_eq!(c.handle_access(FileId(1)), AccessOutcome::Hit);
        }
        assert_eq!(
            c.lock_acquisitions(),
            locks_before,
            "repeat hits must not take the shard mutex"
        );
        assert_eq!(c.fast_path_hits(), 50);
        // Draining (via stats) surfaces the deferred touches.
        assert_eq!(c.stats().hits, 50);
        assert_eq!(c.stats().accesses, 51);
        c.check_invariants().unwrap();
    }

    #[test]
    fn fast_path_off_disables_index_and_counters() {
        let c = ShardedAggregatingCacheBuilder::new(40)
            .shards(2)
            .group_size(3)
            .fast_path(false)
            .build()
            .unwrap();
        assert!(!c.fast_path_enabled());
        for _ in 0..3 {
            for id in 0..10u64 {
                c.handle_access(FileId(id));
            }
        }
        assert_eq!(c.fast_path_hits(), 0);
        assert!(c.lock_acquisitions() > 0);
        c.check_invariants().unwrap();
    }

    #[test]
    fn fast_path_matches_slow_path_exactly() {
        // Single-threaded bit-identity, including residency (MRU) order.
        let fast = sharded(30, 3);
        let slow = ShardedAggregatingCacheBuilder::new(30)
            .shards(3)
            .group_size(3)
            .fast_path(false)
            .build()
            .unwrap();
        assert!(fast.fast_path_enabled());
        let mut state = 9u64;
        for _ in 0..5000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let file = FileId((state >> 33) % 60);
            assert_eq!(fast.handle_access(file), slow.handle_access(file));
        }
        assert_eq!(fast.stats(), slow.stats());
        assert_eq!(fast.group_stats(), slow.group_stats());
        for i in 0..3 {
            let order_fast: Vec<FileId> = fast.shard(i).residents().collect();
            let order_slow: Vec<FileId> = slow.shard(i).residents().collect();
            assert_eq!(order_fast, order_slow, "shard {i} residency order diverged");
        }
        fast.check_invariants().unwrap();
        slow.check_invariants().unwrap();
    }

    #[test]
    fn ring_overflow_falls_back_to_locked_path() {
        let c = sharded(40, 1);
        c.handle_access(FileId(1));
        // Push far more hits than the ring holds without any intervening
        // locked operation: overflow must fall through, drain, and stay
        // exact.
        for _ in 0..(TOUCH_RING_SIZE * 3) {
            assert_eq!(c.handle_access(FileId(1)), AccessOutcome::Hit);
        }
        let stats = c.stats();
        assert_eq!(stats.accesses as usize, TOUCH_RING_SIZE * 3 + 1);
        assert_eq!(stats.hits as usize, TOUCH_RING_SIZE * 3);
        assert_eq!(stats.hits + stats.misses, stats.accesses);
        c.check_invariants().unwrap();
    }

    #[test]
    fn unindexable_ids_bypass_the_fast_path() {
        let c = sharded(40, 1);
        let huge = FileId(u64::MAX - 3); // above FileId::MAX_PACKED48
        c.handle_access(huge);
        let locks_before = c.lock_acquisitions();
        for _ in 0..5 {
            assert_eq!(c.handle_access(huge), AccessOutcome::Hit);
        }
        assert!(c.lock_acquisitions() > locks_before);
        assert_eq!(c.fast_path_hits(), 0);
        assert_eq!(c.stats().hits, 5);
        c.check_invariants().unwrap();
    }

    #[test]
    fn index_survives_eviction_churn_and_rebuilds() {
        // Working set far larger than capacity: every miss evicts, so
        // tombstones accumulate and force in-place rebuilds.
        let c = sharded(12, 2);
        let mut state = 77u64;
        for _ in 0..4000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            c.handle_access(FileId((state >> 33) % 300));
        }
        assert!(c.stats().evictions > 1000);
        c.check_invariants().unwrap();
    }

    #[test]
    fn snapshot_is_one_consistent_cut() {
        let c = sharded(40, 4);
        for id in 0..100u64 {
            c.handle_access(FileId(id % 30));
        }
        let snap = c.snapshot();
        assert_eq!(snap.stats.accesses, 100);
        assert_eq!(snap.stats, c.stats());
        assert_eq!(snap.group_stats, c.group_stats());
        assert_eq!(snap.len, c.len());
        assert_eq!(snap.metadata_entries, c.metadata_entries());
        assert_eq!(snap.shard_accesses.iter().sum::<u64>(), 100);
        assert!(snap.lock_acquisitions > 0);
    }

    #[test]
    fn clear_resets_fast_path_state() {
        let c = sharded(40, 2);
        for id in 0..30u64 {
            c.handle_access(FileId(id % 10));
        }
        assert!(c.fast_path_hits() > 0);
        c.clear();
        assert_eq!(c.fast_path_hits(), 0);
        assert!(c.is_empty());
        c.check_invariants().unwrap();
        // ...and the fast path still works after a clear.
        c.handle_access(FileId(3));
        assert_eq!(c.handle_access(FileId(3)), AccessOutcome::Hit);
        assert_eq!(c.fast_path_hits(), 1);
        c.check_invariants().unwrap();
    }

    #[test]
    fn concurrent_fast_path_keeps_counters_coherent() {
        let c = sharded(64, 4);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let c = &c;
                scope.spawn(move || {
                    for i in 0..2000u64 {
                        c.handle_access(FileId((t * 13 + i) % 50));
                    }
                });
            }
        });
        let stats = c.stats();
        assert_eq!(stats.accesses, 8000);
        assert_eq!(stats.hits + stats.misses, 8000);
        assert!(c.fast_path_hits() > 0);
        c.check_invariants().unwrap();
    }
}

/// Deterministic interleaving scenarios for the lock-free fast path,
/// explored under the `fgcache_model` shadow-memory runtime (see
/// `fgcache_types::sync::model` and DESIGN.md §14). Each test rebuilds
/// the structures inside the scenario closure so every explored
/// schedule starts from identical state.
#[cfg(all(test, feature = "fgcache_model"))]
mod model_tests {
    use super::*;
    use fgcache_types::sync::model::{explore, ModelMutex, ModelOptions, Scope};
    use std::sync::Mutex as LogMutex;

    fn opts() -> ModelOptions {
        ModelOptions::default()
    }

    /// Three distinct ids whose SplitMix64 hashes land in the same
    /// bucket of a 16-slot table, so probe chains cross each other.
    fn colliding_triple(mask: usize) -> (u64, u64, u64) {
        let mut buckets: std::collections::HashMap<usize, Vec<u64>> = Default::default();
        for id in 1..4096u64 {
            let b = buckets.entry(mix64(id) as usize & mask).or_default();
            b.push(id);
            if b.len() == 3 {
                return (b[0], b[1], b[2]);
            }
        }
        unreachable!("4096 ids over {} buckets must collide", mask + 1)
    }

    /// Scenario (a): a fast-path reader racing a locked eviction of the
    /// same id. The reader may transiently false-miss (it would then
    /// take the locked path), but every touch it does enqueue is drained
    /// exactly once — by the evictor or by the post-join sweep — and the
    /// eviction is visible once the lock is released.
    #[test]
    fn model_fast_hit_races_locked_eviction() {
        let report = explore(&opts(), |scope: &Scope| {
            let index = ResidencyIndex::new(1);
            let ring = TouchRing::new(2);
            index.insert(FileId(7));
            let residents = ModelMutex::new(vec![7u64]);
            let pushed = LogMutex::new(Vec::new());
            let drained = LogMutex::new(Vec::new());
            let reader = || {
                if index.contains(FileId(7)) && ring.push(7) {
                    pushed.lock().expect("push log").push(7u64);
                }
            };
            let evictor = || {
                let mut resident = residents.lock();
                while let Some(v) = ring.pop() {
                    drained.lock().expect("drain log").push(v);
                }
                resident.retain(|&v| v != 7);
                index.remove(FileId(7));
            };
            scope.threads(&[&reader, &evictor]);
            assert!(
                !index.contains(FileId(7)),
                "eviction must be visible after the lock is released"
            );
            assert!(residents.lock().is_empty());
            let mut all_drained = drained.lock().expect("drain log").clone();
            while let Some(v) = ring.pop() {
                all_drained.push(v); // detached touch left for the next drain
            }
            let pushed = pushed.lock().expect("push log").clone();
            assert_eq!(
                pushed, all_drained,
                "every enqueued touch is drained exactly once, none lost"
            );
        });
        assert!(report.schedules > 1, "scenario must actually interleave");
    }

    /// Scenario (b): the ring-full fallback racing the drain. A producer
    /// hitting a full ring takes the locked path (drain, then apply
    /// directly) while another thread drains under the same lock; every
    /// touch is applied exactly once regardless of interleaving.
    #[test]
    fn model_ring_full_fallback_races_drain() {
        explore(&opts(), |scope: &Scope| {
            let ring = TouchRing::new(2);
            assert!(ring.push(1) && ring.push(2), "setup fills the ring");
            let applied = ModelMutex::new(Vec::<u64>::new());
            let producer = || {
                if !ring.push(3) {
                    // Full: locked fallback drains first, then applies
                    // the touch directly (mirrors handle_access).
                    let mut log = applied.lock();
                    while let Some(v) = ring.pop() {
                        log.push(v);
                    }
                    log.push(3);
                }
            };
            let drainer = || {
                let mut log = applied.lock();
                while let Some(v) = ring.pop() {
                    log.push(v);
                }
            };
            scope.threads(&[&producer, &drainer]);
            let mut log = applied.lock().clone();
            while let Some(v) = ring.pop() {
                log.push(v); // push(3) won the race; still enqueued
            }
            log.sort_unstable();
            assert_eq!(log, vec![1, 2, 3], "no touch lost or duplicated");
        });
    }

    /// Scenario (c): generation-tag reuse across a tombstone rebuild. A
    /// reader probes for an id that was never inserted while its bucket
    /// neighbours go occupied → tombstone → reused-with-bumped-generation
    /// → rebuilt. The reader must keep probing past tombstones and can
    /// never false-hit the reused slot.
    #[test]
    fn model_generation_reuse_across_tombstone_rebuild() {
        let opts = ModelOptions {
            max_schedules: 500_000,
            ..ModelOptions::default()
        };
        let index_for_mask = ResidencyIndex::new(1);
        let (x, y, z) = colliding_triple(index_for_mask.mask);
        explore(&opts, |scope: &Scope| {
            let index = ResidencyIndex::new(1);
            index.insert(FileId(x));
            let lock = ModelMutex::new(());
            let reader = || {
                assert!(
                    !index.contains(FileId(z)),
                    "never-inserted id must never false-hit"
                );
                // Stale true and fresh false are both legal here.
                let _ = index.contains(FileId(x));
                assert!(!index.contains(FileId(z)));
            };
            let writer = || {
                let _guard = lock.lock();
                index.remove(FileId(x)); // tombstone, generation bumped
                index.insert(FileId(y)); // reuses the tombstone slot
                index.rebuild(std::iter::once(FileId(y)));
            };
            scope.threads(&[&reader, &writer]);
            assert!(!index.contains(FileId(x)));
            assert!(index.contains(FileId(y)));
            assert!(!index.contains(FileId(z)));
            assert_eq!(index.tombstones.load(Ordering::Relaxed), 0);
        });
    }

    /// Scenario (d): the miss path applies removals (evicted set) before
    /// insertions (fetched set), so an id in both sets — evicted and
    /// immediately refetched — stays resident, and a reader never
    /// false-misses an id that was untouched the whole time.
    #[test]
    fn model_removals_before_insertions_on_overlap() {
        explore(&opts(), |scope: &Scope| {
            let index = ResidencyIndex::new(1);
            index.insert(FileId(1)); // untouched resident
            index.insert(FileId(2)); // evicted and refetched (overlap)
            let lock = ModelMutex::new(());
            let miss_path = || {
                let _guard = lock.lock();
                index.remove(FileId(2));
                index.insert(FileId(2));
                index.insert(FileId(3));
            };
            let reader = || {
                assert!(
                    index.contains(FileId(1)),
                    "id outside both sets never false-misses"
                );
                // Overlap id and freshly fetched id: transient misses
                // are legal, false-hits of absent state are not.
                let _ = index.contains(FileId(2));
                let _ = index.contains(FileId(3));
            };
            scope.threads(&[&miss_path, &reader]);
            assert!(index.contains(FileId(1)));
            assert!(
                index.contains(FileId(2)),
                "overlapping evict+fetch must stay resident"
            );
            assert!(index.contains(FileId(3)));
        });
    }

    /// `TouchRing::push` with the seeded ordering bug this PR's checker
    /// must catch: the publication store of `seq` demoted from Release
    /// to Relaxed. Everything else is a faithful copy of the real ring.
    struct BuggyTouchRing {
        slots: Vec<RingSlot>,
        mask: u64,
        head: AtomicU64,
        tail: AtomicU64,
    }

    impl BuggyTouchRing {
        fn new(size: usize) -> Self {
            BuggyTouchRing {
                slots: (0..size)
                    .map(|i| RingSlot {
                        seq: AtomicU64::new(i as u64),
                        value: AtomicU64::new(0),
                    })
                    .collect(),
                mask: (size - 1) as u64,
                head: AtomicU64::new(0),
                tail: AtomicU64::new(0),
            }
        }

        fn push(&self, value: u64) -> bool {
            let mut pos = self.head.load(Ordering::Relaxed);
            loop {
                let slot = &self.slots[(pos & self.mask) as usize];
                let seq = slot.seq.load(Ordering::Acquire);
                let diff = seq.wrapping_sub(pos) as i64;
                if diff == 0 {
                    match self.head.compare_exchange_weak(
                        pos,
                        pos.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            slot.value.store(value, Ordering::Release);
                            // SEEDED BUG: Release demoted to Relaxed, so
                            // the consumer's Acquire load of seq gets no
                            // happens-before edge to the value store.
                            slot.seq.store(pos.wrapping_add(1), Ordering::Relaxed);
                            return true;
                        }
                        Err(actual) => pos = actual,
                    }
                } else if diff < 0 {
                    return false;
                } else {
                    pos = self.head.load(Ordering::Relaxed);
                }
            }
        }

        fn pop(&self) -> Option<u64> {
            let pos = self.tail.load(Ordering::Relaxed);
            let slot = &self.slots[(pos & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos.wrapping_add(1) {
                let value = slot.value.load(Ordering::Acquire);
                slot.seq
                    .store(pos.wrapping_add(self.slots.len() as u64), Ordering::Release);
                self.tail.store(pos.wrapping_add(1), Ordering::Relaxed);
                Some(value)
            } else {
                None
            }
        }
    }

    /// Mutation M1: the explorer must find the schedule where the
    /// consumer observes the Relaxed seq publication but reads the stale
    /// slot value — i.e. the demotion is a real bug, not a style nit.
    #[test]
    #[should_panic(expected = "stale value read through a Relaxed publication")]
    fn model_mutation_relaxed_publication_is_caught() {
        explore(&opts(), |scope: &Scope| {
            let ring = BuggyTouchRing::new(2);
            let producer = || {
                assert!(ring.push(42));
            };
            let consumer = || {
                if let Some(v) = ring.pop() {
                    assert_eq!(v, 42, "stale value read through a Relaxed publication");
                }
            };
            scope.threads(&[&producer, &consumer]);
        });
    }

    /// Mutation M2: flipping the miss path to insertions-before-removals
    /// silently evicts an id that was both evicted and refetched — the
    /// explorer (in fact even the sequential schedule) must catch it.
    #[test]
    #[should_panic(expected = "overlapping evict+fetch must stay resident")]
    fn model_mutation_insertions_before_removals_is_caught() {
        explore(&opts(), |scope: &Scope| {
            let index = ResidencyIndex::new(1);
            index.insert(FileId(2));
            let lock = ModelMutex::new(());
            let buggy_miss_path = || {
                let _guard = lock.lock();
                // SEEDED BUG: order flipped. insert() sees the id already
                // present and returns, then remove() tombstones it.
                index.insert(FileId(2));
                index.remove(FileId(2));
            };
            scope.threads(&[&buggy_miss_path]);
            assert!(
                index.contains(FileId(2)),
                "overlapping evict+fetch must stay resident"
            );
        });
    }
}

//! End-to-end pipelines across crates: generate → persist → reload →
//! simulate → analyse, plus manual compositions of the building blocks
//! (filter adapters, aggregating server caches, baselines).

use fgcache::cache::filter::{miss_stream, FilterCache};
use fgcache::cache::{Cache, LruCache, PolicyKind};
use fgcache::core::{AggregatingCacheBuilder, MetadataSource};
use fgcache::prelude::*;
use fgcache::successor::{LruSuccessorList, ProbabilityGraph};
use fgcache::trace::io;
use fgcache::trace::stats::TraceStats;

fn workload() -> Trace {
    SynthConfig::profile(WorkloadProfile::Workstation)
        .events(30_000)
        .seed(123)
        .build()
        .unwrap()
        .generate()
}

#[test]
fn persist_reload_and_simulate_identically() {
    let trace = workload();
    // Text round-trip.
    let mut text = Vec::new();
    io::write_text(&trace, &mut text).unwrap();
    let from_text = io::read_text(text.as_slice()).unwrap();
    assert_eq!(from_text, trace);
    // JSON round-trip.
    let mut json = Vec::new();
    io::write_json(&trace, &mut json).unwrap();
    let from_json = io::read_json(json.as_slice()).unwrap();
    assert_eq!(from_json, trace);
    // Simulation over the reloaded trace is identical to the original.
    let run = |t: &Trace| {
        let mut agg = AggregatingCacheBuilder::new(200)
            .group_size(5)
            .build()
            .unwrap();
        for ev in t.events() {
            agg.handle_access(ev.file);
        }
        (agg.demand_fetches(), agg.hit_rate().to_bits())
    };
    assert_eq!(run(&trace), run(&from_text));
    assert_eq!(run(&trace), run(&from_json));
}

#[test]
fn manual_two_level_composition_matches_sweep() {
    let trace = workload();
    // Hand-rolled: LRU client filter + aggregating server.
    let mut filter = FilterCache::new(LruCache::new(150));
    let mut server = AggregatingCacheBuilder::new(300)
        .group_size(5)
        .build()
        .unwrap();
    for ev in trace.events() {
        if let Some(fwd) = filter.offer(ev) {
            server.handle_access(fwd.file);
        }
    }
    // Driver: same parameters through the sweep API.
    let points = fgcache::sim::server::two_level_sweep(
        &trace,
        &fgcache::sim::server::TwoLevelConfig {
            filter_capacities: vec![150],
            server_capacity: 300,
            schemes: vec![fgcache::sim::server::ServerScheme::Aggregating { group_size: 5 }],
            successor_capacity: 8,
        },
    )
    .unwrap();
    let sweep_hit = points[0].server_hit_rate;
    let manual_hit = Cache::stats(&server).hit_rate();
    assert!(
        (sweep_hit - manual_hit).abs() < 1e-12,
        "sweep {sweep_hit} vs manual {manual_hit}"
    );
    assert_eq!(points[0].server_accesses, filter.forwarded());
}

#[test]
fn piggybacked_metadata_beats_miss_stream_metadata_at_the_server() {
    // The §4.3 ablation: a server whose successor table is fed the FULL
    // client access stream (cooperative clients piggy-backing stats)
    // should do at least as well as one that only sees its own misses.
    let trace = workload();
    let run = |cooperative: bool| {
        let mut filter = LruCache::new(200);
        let mut server = AggregatingCacheBuilder::new(300)
            .group_size(5)
            .metadata_source(if cooperative {
                MetadataSource::External
            } else {
                MetadataSource::Requests
            })
            .build()
            .unwrap();
        for ev in trace.events() {
            if cooperative {
                server.observe_metadata(ev.file);
            }
            if filter.access(ev.file).is_miss() {
                server.handle_access(ev.file);
            }
        }
        Cache::stats(&server).hit_rate()
    };
    let uncooperative = run(false);
    let cooperative = run(true);
    // The paper's point (§4.3) is that the aggregating server cache works
    // WITHOUT client cooperation. Piggy-backed full-stream statistics are
    // competitive but not strictly better: the full stream teaches the
    // server transitions its clients will absorb, while the miss stream
    // is a model of exactly the requests the server will see.
    assert!(
        cooperative >= uncooperative * 0.80,
        "cooperative {cooperative} vs uncooperative {uncooperative}"
    );
    // Both modes must beat a plain LRU server cache handily.
    let plain = {
        let mut filter = LruCache::new(200);
        let mut server = LruCache::new(300);
        for ev in trace.events() {
            if filter.access(ev.file).is_miss() {
                server.access(ev.file);
            }
        }
        server.stats().hit_rate()
    };
    assert!(
        uncooperative > plain * 1.5,
        "uncooperative {uncooperative} vs plain {plain}"
    );
    assert!(
        cooperative > plain * 1.5,
        "cooperative {cooperative} vs plain {plain}"
    );
}

#[test]
fn aggregating_cache_beats_probability_graph_baseline_on_drifting_workload() {
    // The related-work comparison: same group size, same cache capacity;
    // groups from recency successor chains vs from a lookahead-window
    // frequency graph (Griffioen–Appleton).
    let trace = workload();
    let capacity = 200;
    let g = 5;

    let mut agg = AggregatingCacheBuilder::new(capacity)
        .group_size(g)
        .build()
        .unwrap();
    for ev in trace.events() {
        agg.handle_access(ev.file);
    }

    let mut pg = ProbabilityGraph::new(g - 1, 0.05).unwrap();
    let mut cache = LruCache::new(capacity);
    let mut pg_fetches = 0u64;
    for ev in trace.events() {
        pg.record(ev.file);
        if cache.access(ev.file).is_miss() {
            pg_fetches += 1;
            let group = pg.group_for(ev.file, g);
            let members: Vec<FileId> = group.members().to_vec();
            cache.insert_speculative_batch(&members);
        }
    }

    let lru_fetches = {
        let mut lru = LruCache::new(capacity);
        trace
            .events()
            .iter()
            .filter(|ev| lru.access(ev.file).is_miss())
            .count() as u64
    };

    // Both predictors beat plain LRU...
    assert!(agg.demand_fetches() < lru_fetches);
    assert!(pg_fetches < lru_fetches);
    // ...and successor chaining is competitive with the window graph
    // (the paper's claimed advantages are generality and minimal
    // metadata, not strictly fewer fetches).
    assert!(
        (agg.demand_fetches() as f64) <= pg_fetches as f64 * 1.05,
        "agg {} vs probgraph {}",
        agg.demand_fetches(),
        pg_fetches
    );
    // The metadata argument, made concrete: the aggregating cache keeps a
    // small bounded list per file, while the lookahead graph accumulates
    // unbounded windowed edges — several times the footprint here.
    assert!(agg.metadata_entries() <= agg.successor_table().tracked_files() * 8);
    assert!(
        pg.edge_count() > 2 * agg.metadata_entries(),
        "probgraph edges {} vs successor entries {}",
        pg.edge_count(),
        agg.metadata_entries()
    );
}

#[test]
fn filtered_stream_stats_are_consistent() {
    let trace = workload();
    let mut client = LruCache::new(100);
    let misses = miss_stream(&mut client, &trace);
    let raw = TraceStats::compute(&trace);
    let filtered = TraceStats::compute(&misses);
    assert_eq!(misses.len() as u64, client.stats().misses);
    assert!(filtered.events < raw.events);
    // Filtering preserves the file universe subset property.
    assert!(filtered.unique_files <= raw.unique_files);
    // Every cold (first) access misses, so the filtered stream contains
    // every distinct file of the raw trace.
    assert_eq!(filtered.unique_files, raw.unique_files);
}

#[test]
fn all_policies_run_the_full_workload_through_trait_objects() {
    let trace = workload();
    for kind in PolicyKind::ALL {
        let mut cache = kind.build(128);
        for ev in trace.events() {
            cache.access(ev.file);
        }
        let s = cache.stats();
        assert_eq!(s.accesses as usize, trace.len(), "{kind}");
        assert!(s.hit_rate() > 0.0, "{kind} got zero hits");
        assert!(cache.len() <= 128, "{kind}");
    }
}

#[test]
fn successor_table_metadata_stays_tiny() {
    // The paper's "minimal metadata" claim: entries ≤ files × capacity,
    // and in practice far less.
    let trace = workload();
    let mut table = SuccessorTable::new(LruSuccessorList::new(4).unwrap());
    for ev in trace.events() {
        table.record(ev.file);
    }
    let stats = TraceStats::compute(&trace);
    assert!(table.tracked_files() <= stats.unique_files);
    assert!(table.metadata_entries() <= table.tracked_files() * 4);
    let per_file = table.metadata_entries() as f64 / table.tracked_files() as f64;
    assert!(per_file < 3.0, "mean successors per file {per_file}");
}

//! Event-loop integration tests: backpressure, slow clients, the
//! connection cap, and frames arriving one byte at a time — the failure
//! modes a readiness loop owns that a thread-per-connection server never
//! saw.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use fgcache_core::{ShardedAggregatingCache, ShardedAggregatingCacheBuilder};
use fgcache_net::wire::{read_frame, write_frame};
use fgcache_net::{BoundServer, GroupRequest, Message, NetClient, ServerHandle, Transport};
use fgcache_types::FileId;

fn cache(capacity: usize) -> Arc<ShardedAggregatingCache> {
    Arc::new(
        ShardedAggregatingCacheBuilder::new(capacity)
            .shards(2)
            .group_size(2)
            .build()
            .expect("valid build"),
    )
}

fn bound(capacity: usize) -> BoundServer {
    BoundServer::bind("127.0.0.1:0", cache(capacity)).expect("ephemeral bind")
}

fn req(id: u64, files: &[u64]) -> GroupRequest {
    GroupRequest::new(id, files.iter().map(|&f| FileId(f)).collect())
}

fn fetch_frame(id: u64, files: &[u64]) -> Vec<u8> {
    Message::Fetch {
        request_id: id,
        files: files.iter().map(|&f| FileId(f)).collect(),
    }
    .encode()
}

#[test]
fn pipelined_batch_larger_than_the_pending_cap_replies_in_order() {
    // 100 requests pipelined on one connection against a server that
    // allows only 8 in flight: reading pauses at the cap and resumes as
    // workers drain, and the reorder buffer still releases every reply
    // in request order (the batched client matches replies by position).
    let handle: ServerHandle = bound(300).with_queue_limits(8, 4 * 1024).spawn();
    let mut client = NetClient::connect(handle.addr()).expect("connect");
    let batch: Vec<GroupRequest> = (0..100u64).map(|i| req(i, &[i % 17, i % 5])).collect();
    let replies = client.fetch_batch(&batch);
    assert_eq!(replies.len(), 100);
    for (result, request) in replies.iter().zip(&batch) {
        let reply = result.as_ref().expect("pipelined fetch");
        assert_eq!(reply.request_id, request.request_id, "in-order release");
        assert_eq!(reply.files.len(), request.files.len());
    }
    handle.stop();
}

#[test]
fn connection_cap_defers_accepts_until_a_slot_frees() {
    // max_conns = 1: the second client's connection sits in the kernel
    // backlog (established, unaccepted) and is served — never refused,
    // never panicking — once the first client disconnects.
    let handle = bound(100).with_max_conns(1).spawn();
    let addr = handle.addr().to_string();

    let mut first = NetClient::connect(&addr).expect("first connect");
    first.fetch_group(&req(0, &[1])).expect("first fetch");

    let second_addr = addr.clone();
    let second = std::thread::spawn(move || {
        let mut client = NetClient::connect(&second_addr)
            .expect("backlogged connect")
            .with_timeout(Duration::from_secs(10));
        client.fetch_group(&req(1, &[2])).expect("deferred fetch")
    });

    // Give the second client time to be genuinely waiting, then free the
    // only slot.
    std::thread::sleep(Duration::from_millis(200));
    drop(first);

    let reply = second.join().expect("second client thread");
    assert_eq!(reply.request_id, 1);
    assert_eq!(reply.files[0].file, FileId(2));
    handle.stop();
}

#[test]
fn slow_reader_backpressure_leaves_other_connections_unaffected() {
    // A client that pipelines 300 requests and reads nothing: its
    // outbound queue fills past the (tiny) cap, the server stops reading
    // its socket, and a well-behaved client on another connection keeps
    // round-tripping normally. When the slow reader finally drains, every
    // reply arrives, in order — nothing was dropped under pressure.
    let handle = bound(400).with_queue_limits(16, 2 * 1024).spawn();

    let mut slow = TcpStream::connect(handle.addr()).expect("slow connect");
    slow.set_nodelay(true).expect("nodelay");
    slow.set_write_timeout(Some(Duration::from_secs(10)))
        .expect("write timeout");
    slow.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let files: Vec<u64> = (0..100).collect();
    for id in 0..300u64 {
        slow.write_all(&fetch_frame(id, &files)).expect("pipeline");
    }

    // The slow reader is now saturated (16 in flight, ~2 KiB of replies
    // queued, the rest parked in kernel buffers). The other connection
    // must not notice.
    let mut brisk = NetClient::connect(handle.addr()).expect("brisk connect");
    for i in 0..50u64 {
        let reply = brisk
            .fetch_group(&req(1_000_000 + i, &[i % 7]))
            .expect("brisk fetch while the slow reader is stalled");
        assert_eq!(reply.files.len(), 1);
    }

    // Now drain: all 300 replies, in request order.
    for id in 0..300u64 {
        match read_frame(&mut slow).expect("drained reply") {
            Message::FetchReply { request_id, files } => {
                assert_eq!(request_id, id, "in-order release under pressure");
                assert_eq!(files.len(), 100);
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    handle.stop();
}

#[test]
fn frame_split_across_single_byte_writes_is_reassembled() {
    let handle = bound(50).spawn();
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");

    let frame = fetch_frame(42, &[7, 8]);
    for &byte in &frame {
        stream.write_all(&[byte]).expect("one byte");
        stream.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(2));
    }
    match read_frame(&mut stream).expect("reassembled") {
        Message::FetchReply { request_id, files } => {
            assert_eq!(request_id, 42);
            assert_eq!(files.len(), 2);
            assert_eq!(files[0].file, FileId(7));
        }
        other => panic!("unexpected reply {other:?}"),
    }

    // The connection stays usable for a normally-written frame.
    write_frame(
        &mut stream,
        &Message::Fetch {
            request_id: 43,
            files: vec![FileId(9)],
        },
    )
    .expect("write");
    match read_frame(&mut stream).expect("second reply") {
        Message::FetchReply { request_id, .. } => assert_eq!(request_id, 43),
        other => panic!("unexpected reply {other:?}"),
    }
    handle.stop();
}

#[test]
fn half_close_still_flushes_every_owed_reply() {
    // A client that pipelines requests and closes its write side is owed
    // every reply before the server parts with the connection.
    let handle = bound(100).spawn();
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    for id in 0..10u64 {
        stream.write_all(&fetch_frame(id, &[id])).expect("pipeline");
    }
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    for id in 0..10u64 {
        match read_frame(&mut stream).expect("owed reply") {
            Message::FetchReply { request_id, .. } => assert_eq!(request_id, id),
            other => panic!("unexpected reply {other:?}"),
        }
    }
    // After the last owed reply the server closes; EOF, not garbage.
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("clean close");
    assert!(rest.is_empty());
    handle.stop();
}

#[test]
fn malformed_frame_hangs_up_without_poisoning_the_server() {
    let handle = bound(50).spawn();

    // Garbage with a plausible length prefix: the server must hang up on
    // that connection only.
    let mut bad = TcpStream::connect(handle.addr()).expect("connect");
    bad.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    bad.write_all(&5u32.to_le_bytes()).expect("length");
    bad.write_all(&[99, 99, 99, 99, 99]).expect("garbage");
    let mut rest = Vec::new();
    bad.read_to_end(&mut rest).expect("hangup");
    assert!(rest.is_empty(), "no reply to garbage, just a close");

    // The server is still healthy for everyone else.
    let mut client = NetClient::connect(handle.addr()).expect("connect");
    client.fetch_group(&req(0, &[3])).expect("healthy fetch");
    handle.stop();
}

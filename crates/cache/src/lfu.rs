//! Least-frequently-used cache.
//!
//! The paper's server-side baseline (Figure 4 compares LRU, LFU and the
//! aggregating cache). Eviction removes the entry with the lowest access
//! count, breaking ties by least-recent use — the common "LFU with LRU
//! tie-break" formulation. Frequencies are not decayed; this matches the
//! paper's use of plain frequency counts as the foil to recency.

use fgcache_types::hash::FastMap;
use std::collections::BTreeSet;

use fgcache_types::{AccessOutcome, FileId, InvariantViolation};

use crate::{Cache, CacheStats};

#[derive(Debug, Clone, Copy)]
struct Entry {
    freq: u64,
    stamp: u64,
    speculative: bool,
}

/// An LFU cache of [`FileId`]s with LRU tie-breaking.
///
/// Speculative inserts enter with frequency 0, below any demand-fetched
/// entry (frequency ≥ 1), so unconfirmed group members are evicted first.
///
/// ```
/// use fgcache_cache::{Cache, LfuCache};
/// use fgcache_types::FileId;
///
/// let mut c = LfuCache::new(2);
/// c.access(FileId(1));
/// c.access(FileId(1)); // freq(1) = 2
/// c.access(FileId(2)); // freq(2) = 1
/// c.access(FileId(3)); // evicts 2 (lowest frequency)
/// assert!(c.contains(FileId(1)));
/// assert!(!c.contains(FileId(2)));
/// ```
#[derive(Debug, Clone)]
pub struct LfuCache {
    capacity: usize,
    entries: FastMap<FileId, Entry>,
    // Ordered mirror of `entries` for O(log n) victim selection:
    // (freq, stamp, file) — the first element is the eviction victim.
    order: BTreeSet<(u64, u64, FileId)>,
    clock: u64,
    stats: CacheStats,
}

impl LfuCache {
    /// Creates an LFU cache holding at most `capacity` files.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be greater than zero");
        LfuCache {
            capacity,
            entries: FastMap::default(),
            order: BTreeSet::new(),
            clock: 0,
            stats: CacheStats::new(),
        }
    }

    /// The current access count of `file`, if resident.
    pub fn frequency(&self, file: FileId) -> Option<u64> {
        self.entries.get(&file).map(|e| e.freq)
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn evict_min(&mut self) {
        if let Some(&(freq, stamp, file)) = self.order.iter().next() {
            self.order.remove(&(freq, stamp, file));
            self.entries.remove(&file);
            self.stats.record_eviction();
        }
    }

    fn insert_entry(&mut self, file: FileId, freq: u64, speculative: bool) {
        let stamp = self.tick();
        self.entries.insert(
            file,
            Entry {
                freq,
                stamp,
                speculative,
            },
        );
        self.order.insert((freq, stamp, file));
    }
}

impl Cache for LfuCache {
    fn access(&mut self, file: FileId) -> AccessOutcome {
        if let Some(entry) = self.entries.get(&file).copied() {
            self.order.remove(&(entry.freq, entry.stamp, file));
            let stamp = self.tick();
            let updated = Entry {
                freq: entry.freq + 1,
                stamp,
                speculative: false,
            };
            self.entries.insert(file, updated);
            self.order.insert((updated.freq, stamp, file));
            self.stats.record_hit(entry.speculative);
            AccessOutcome::Hit
        } else {
            self.stats.record_miss();
            if self.entries.len() == self.capacity {
                self.evict_min();
            }
            self.insert_entry(file, 1, false);
            AccessOutcome::Miss
        }
    }

    fn insert_speculative(&mut self, file: FileId) -> bool {
        if self.entries.contains_key(&file) {
            return false;
        }
        if self.entries.len() == self.capacity {
            self.evict_min();
        }
        self.insert_entry(file, 0, true);
        self.stats.record_speculative_insert();
        true
    }

    fn contains(&self, file: FileId) -> bool {
        self.entries.contains_key(&file)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn name(&self) -> &'static str {
        "lfu"
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
        self.clock = 0;
        self.stats = CacheStats::new();
    }

    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        let err = |detail: String| Err(InvariantViolation::new("LfuCache", detail));
        if self.entries.len() > self.capacity {
            return err(format!(
                "len {} exceeds capacity {}",
                self.entries.len(),
                self.capacity
            ));
        }
        if self.order.len() != self.entries.len() {
            return err(format!(
                "ordered mirror has {} entries, map has {}",
                self.order.len(),
                self.entries.len()
            ));
        }
        for &(freq, stamp, file) in &self.order {
            let Some(entry) = self.entries.get(&file) else {
                return err(format!("ordered mirror holds unmapped file {file}"));
            };
            if (entry.freq, entry.stamp) != (freq, stamp) {
                return err(format!(
                    "mirror ({freq}, {stamp}) disagrees with entry ({}, {}) for {file}",
                    entry.freq, entry.stamp
                ));
            }
            if stamp > self.clock {
                return err(format!(
                    "stamp {stamp} for {file} is ahead of clock {}",
                    self.clock
                ));
            }
            if entry.speculative && entry.freq != 0 {
                return err(format!(
                    "speculative entry {file} has non-zero frequency {}",
                    entry.freq
                ));
            }
            if !entry.speculative && entry.freq == 0 {
                return err(format!("demand entry {file} has zero frequency"));
            }
        }
        self.stats.check("LfuCache")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::check_cache_conformance;

    #[test]
    fn conformance() {
        check_cache_conformance(LfuCache::new);
    }

    #[test]
    fn corrupted_mirror_is_detected() {
        let mut c = LfuCache::new(3);
        c.access(FileId(1));
        c.access(FileId(2));
        assert!(c.check_invariants().is_ok());
        // Drop one element from the ordered mirror, desynchronising it.
        let first = *c.order.iter().next().unwrap();
        c.order.remove(&first);
        assert!(c.check_invariants().is_err());
    }

    #[test]
    #[should_panic(expected = "capacity must be greater than zero")]
    fn zero_capacity_panics() {
        let _ = LfuCache::new(0);
    }

    #[test]
    fn evicts_lowest_frequency() {
        let mut c = LfuCache::new(2);
        c.access(FileId(1));
        c.access(FileId(1));
        c.access(FileId(2));
        c.access(FileId(3));
        assert!(c.contains(FileId(1)));
        assert!(c.contains(FileId(3)));
        assert!(!c.contains(FileId(2)));
    }

    #[test]
    fn tie_break_is_lru() {
        let mut c = LfuCache::new(2);
        c.access(FileId(1)); // freq 1, older
        c.access(FileId(2)); // freq 1, newer
        c.access(FileId(3)); // tie at freq 1 → evict 1 (older)
        assert!(!c.contains(FileId(1)));
        assert!(c.contains(FileId(2)));
    }

    #[test]
    fn frequency_accessor() {
        let mut c = LfuCache::new(4);
        c.access(FileId(5));
        c.access(FileId(5));
        c.access(FileId(5));
        assert_eq!(c.frequency(FileId(5)), Some(3));
        assert_eq!(c.frequency(FileId(6)), None);
    }

    #[test]
    fn speculative_entries_evicted_before_demand() {
        let mut c = LfuCache::new(2);
        c.access(FileId(1));
        c.insert_speculative(FileId(9)); // freq 0
        c.access(FileId(2)); // evicts the freq-0 speculative entry
        assert!(!c.contains(FileId(9)));
        assert!(c.contains(FileId(1)));
        assert!(c.contains(FileId(2)));
    }

    #[test]
    fn speculative_hit_starts_frequency() {
        let mut c = LfuCache::new(2);
        c.insert_speculative(FileId(9));
        assert!(c.access(FileId(9)).is_hit());
        assert_eq!(c.frequency(FileId(9)), Some(1));
        assert_eq!(c.stats().speculative_hits, 1);
    }

    #[test]
    fn heavy_hitter_survives_scan() {
        let mut c = LfuCache::new(3);
        for _ in 0..10 {
            c.access(FileId(0));
        }
        for i in 1..20 {
            c.access(FileId(i));
        }
        assert!(c.contains(FileId(0)), "frequent file was evicted");
    }

    #[test]
    fn order_and_entries_stay_in_sync() {
        let mut c = LfuCache::new(3);
        for i in 0..50 {
            c.access(FileId(i % 7));
        }
        assert_eq!(c.order.len(), c.entries.len());
        for (&(f, s, file), _) in c.order.iter().zip(0..) {
            let e = c.entries[&file];
            assert_eq!((e.freq, e.stamp), (f, s));
        }
    }
}

//! Error types shared across the workspace.

use std::error::Error;
use std::fmt;

/// Error returned by [`crate::AccessKind::from_code`] when the character is
/// not a recognised access-kind code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseAccessKindError {
    /// The character that failed to parse.
    pub found: char,
}

impl fmt::Display for ParseAccessKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unrecognised access kind code {:?}, expected one of R, W, C, D",
            self.found
        )
    }
}

impl Error for ParseAccessKindError {}

/// Error returned when a configuration or argument fails validation.
///
/// This is the common "you passed a bad parameter" error across the
/// workspace: zero capacities, empty workloads, out-of-range probabilities
/// and similar. The message names the offending parameter.
///
/// ```
/// use fgcache_types::ValidationError;
/// let err = ValidationError::new("capacity", "must be greater than zero");
/// assert_eq!(err.to_string(), "invalid capacity: must be greater than zero");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    parameter: String,
    reason: String,
}

impl ValidationError {
    /// Creates a validation error for `parameter`, explaining `reason`.
    pub fn new(parameter: impl Into<String>, reason: impl Into<String>) -> Self {
        ValidationError {
            parameter: parameter.into(),
            reason: reason.into(),
        }
    }

    /// The name of the parameter that failed validation.
    pub fn parameter(&self) -> &str {
        &self.parameter
    }

    /// Why the parameter was rejected.
    pub fn reason(&self) -> &str {
        &self.reason
    }
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {}: {}", self.parameter, self.reason)
    }
}

impl Error for ValidationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_error_accessors() {
        let err = ValidationError::new("noise", "must lie in [0, 1]");
        assert_eq!(err.parameter(), "noise");
        assert_eq!(err.reason(), "must lie in [0, 1]");
    }

    #[test]
    fn errors_implement_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<ParseAccessKindError>();
        assert_err::<ValidationError>();
    }
}

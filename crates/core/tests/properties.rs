//! Deterministic model-based tests for the aggregating cache.
//!
//! Fixed seeds drive the in-repo PRNG; every failure reproduces exactly
//! from the printed seed.

use fgcache_cache::{Cache, LruCache};
use fgcache_core::{AggregatingCacheBuilder, InsertionPolicy, MetadataSource};
use fgcache_types::rng::RandomSource;
use fgcache_types::{FileId, SeededRng};

const SEEDS: [u64; 8] = [0, 1, 2, 7, 42, 1234, 0xDEAD_BEEF, u64::MAX];

/// A random workload over files `0..max`, length `0..len`.
fn workload(rng: &mut SeededRng, max: u64, len: usize) -> Vec<u64> {
    let n = rng.gen_index(len);
    (0..n)
        .map(|_| rng.gen_range_inclusive(0, max - 1))
        .collect()
}

#[test]
fn group_size_one_is_bit_identical_to_lru() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        for capacity in [1, 2, 5, 12, 19] {
            let files = workload(&mut rng, 40, 500);
            let mut agg = AggregatingCacheBuilder::new(capacity)
                .group_size(1)
                .build()
                .unwrap();
            let mut lru = LruCache::new(capacity);
            for &f in &files {
                let a = agg.handle_access(FileId(f));
                let b = lru.access(FileId(f));
                assert_eq!(a, b, "seed {seed} capacity {capacity}");
            }
            assert_eq!(agg.demand_fetches(), lru.stats().misses);
            assert_eq!(Cache::stats(&agg).hits, lru.stats().hits);
            assert_eq!(agg.len(), lru.len());
        }
    }
}

#[test]
fn capacity_and_accounting_invariants() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        for (capacity, g) in [(2, 1), (4, 3), (8, 2), (16, 5), (29, 4)] {
            let files = workload(&mut rng, 40, 500);
            let mut agg = AggregatingCacheBuilder::new(capacity)
                .group_size(g)
                .build()
                .unwrap();
            for &f in &files {
                agg.handle_access(FileId(f));
                assert!(agg.len() <= capacity);
                // The just-requested file is always resident afterwards.
                assert!(agg.contains(FileId(f)));
            }
            agg.check_invariants()
                .unwrap_or_else(|v| panic!("seed {seed} capacity {capacity}: {v}"));
            let stats = Cache::stats(&agg);
            assert_eq!(stats.accesses, files.len() as u64);
            assert_eq!(stats.misses, agg.demand_fetches());
            assert_eq!(agg.accesses(), files.len() as u64);
            // Transfers: at least one file per fetch, at most g per fetch.
            let gs = agg.group_stats();
            assert!(gs.files_transferred >= gs.demand_fetches);
            assert!(gs.files_transferred <= gs.demand_fetches * g as u64);
        }
    }
}

#[test]
fn grouping_never_increases_demand_fetches_vs_lru_beyond_slack() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        // On arbitrary (even adversarial) workloads, grouping may waste
        // bandwidth but its *demand fetch* count stays within a modest
        // factor of LRU's: speculative members sit at the tail and can
        // only displace entries LRU would also have evicted soon.
        let files = workload(&mut rng, 15, 400);
        let capacity = 12;
        let mut lru = AggregatingCacheBuilder::new(capacity)
            .group_size(1)
            .build()
            .unwrap();
        let mut agg = AggregatingCacheBuilder::new(capacity)
            .group_size(4)
            .build()
            .unwrap();
        for &f in &files {
            lru.handle_access(FileId(f));
            agg.handle_access(FileId(f));
        }
        assert!(
            agg.demand_fetches() <= lru.demand_fetches() + files.len() as u64 / 4,
            "seed {seed}: agg {} vs lru {}",
            agg.demand_fetches(),
            lru.demand_fetches()
        );
    }
}

#[test]
fn insertion_policies_agree_on_hit_miss_counts_for_disjoint_groups() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        let files = workload(&mut rng, 40, 300);
        // Head vs tail placement must keep all invariants; totals may
        // differ slightly but both must stay capacity-bounded and sound.
        for policy in [InsertionPolicy::Tail, InsertionPolicy::Head] {
            let mut agg = AggregatingCacheBuilder::new(16)
                .group_size(4)
                .insertion_policy(policy)
                .build()
                .unwrap();
            for &f in &files {
                agg.handle_access(FileId(f));
                assert!(agg.len() <= 16);
            }
            agg.check_invariants()
                .unwrap_or_else(|v| panic!("seed {seed} {policy:?}: {v}"));
            let s = Cache::stats(&agg);
            assert_eq!(s.hits + s.misses, s.accesses);
        }
    }
}

#[test]
fn external_metadata_mode_never_learns_from_requests() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        let mut files = workload(&mut rng, 20, 200);
        files.push(rng.gen_range_inclusive(0, 19)); // at least one access
        let mut agg = AggregatingCacheBuilder::new(16)
            .group_size(4)
            .metadata_source(MetadataSource::External)
            .build()
            .unwrap();
        for &f in &files {
            agg.handle_access(FileId(f));
        }
        // No observe_metadata calls were made, so the table stays empty
        // and every group is a singleton.
        assert_eq!(agg.metadata_entries(), 0);
        assert_eq!(
            agg.group_stats().files_transferred,
            agg.group_stats().demand_fetches
        );
    }
}

#[test]
fn clear_restores_pristine_state() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        let mut files = workload(&mut rng, 20, 200);
        files.push(rng.gen_range_inclusive(0, 19)); // at least one access
        let mut agg = AggregatingCacheBuilder::new(8)
            .group_size(3)
            .build()
            .unwrap();
        for &f in &files {
            agg.handle_access(FileId(f));
        }
        agg.clear();
        assert_eq!(agg.len(), 0);
        assert_eq!(agg.demand_fetches(), 0);
        assert_eq!(agg.metadata_entries(), 0);
        assert_eq!(agg.accesses(), 0);
        // Behaves like a fresh cache afterwards.
        let mut fresh = AggregatingCacheBuilder::new(8)
            .group_size(3)
            .build()
            .unwrap();
        for &f in &files {
            assert_eq!(
                agg.handle_access(FileId(f)),
                fresh.handle_access(FileId(f)),
                "seed {seed}"
            );
        }
    }
}

#[test]
fn invariants_hold_after_every_access() {
    // A denser audit than the accounting test: check_invariants after
    // every single operation across several group sizes.
    for seed in [7u64, 0xBEEF] {
        let mut rng = SeededRng::new(seed);
        for g in [1usize, 2, 4, 6] {
            let mut agg = AggregatingCacheBuilder::new(10)
                .group_size(g)
                .build()
                .unwrap();
            for step in 0..1_500 {
                agg.handle_access(FileId(rng.gen_range_inclusive(0, 30)));
                agg.check_invariants()
                    .unwrap_or_else(|v| panic!("seed {seed} g {g} step {step}: {v}"));
            }
        }
    }
}

//! Property-based tests for the cache substrate.
//!
//! The key oracle: [`LruCache`] must behave identically to a trivially
//! correct reference model (a `Vec` ordered MRU→LRU). The other policies
//! are checked against their structural invariants under arbitrary
//! operation sequences.

use fgcache_cache::{Cache, ClockCache, FifoCache, LfuCache, LruCache, PolicyKind, TwoQCache};
use fgcache_types::FileId;
use proptest::prelude::*;

/// A trivially-correct LRU model: index 0 = MRU, last = LRU victim.
#[derive(Debug, Default)]
struct ModelLru {
    capacity: usize,
    order: Vec<FileId>,
}

impl ModelLru {
    fn new(capacity: usize) -> Self {
        ModelLru {
            capacity,
            order: Vec::new(),
        }
    }

    fn access(&mut self, f: FileId) -> bool {
        if let Some(i) = self.order.iter().position(|&x| x == f) {
            self.order.remove(i);
            self.order.insert(0, f);
            true
        } else {
            if self.order.len() == self.capacity {
                self.order.pop();
            }
            self.order.insert(0, f);
            false
        }
    }

    fn insert_speculative(&mut self, f: FileId) {
        if self.order.contains(&f) {
            return;
        }
        if self.order.len() == self.capacity {
            self.order.pop();
        }
        self.order.push(f);
    }
}

/// One step of a cache workout.
#[derive(Debug, Clone)]
enum Op {
    Access(u64),
    Speculative(u64),
}

fn ops(max_file: u64) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0..max_file).prop_map(Op::Access),
            (0..max_file).prop_map(Op::Speculative),
        ],
        0..400,
    )
}

proptest! {
    #[test]
    fn lru_matches_reference_model(
        capacity in 1usize..20,
        script in ops(30),
    ) {
        let mut real = LruCache::new(capacity);
        let mut model = ModelLru::new(capacity);
        for op in &script {
            match *op {
                Op::Access(f) => {
                    let hit = real.access(FileId(f)).is_hit();
                    let model_hit = model.access(FileId(f));
                    prop_assert_eq!(hit, model_hit, "divergent hit for {:?}", op);
                }
                Op::Speculative(f) => {
                    real.insert_speculative(FileId(f));
                    model.insert_speculative(FileId(f));
                }
            }
            prop_assert_eq!(real.len(), model.order.len());
            let real_order: Vec<FileId> = real.iter_mru().collect();
            prop_assert_eq!(&real_order, &model.order);
            prop_assert_eq!(real.lru(), model.order.last().copied());
            prop_assert_eq!(real.mru(), model.order.first().copied());
        }
    }

    #[test]
    fn every_policy_respects_capacity_and_accounting(
        kind_idx in 0usize..PolicyKind::ALL.len(),
        capacity in 1usize..16,
        script in ops(40),
    ) {
        let kind = PolicyKind::ALL[kind_idx];
        let mut cache = kind.build(capacity);
        let mut demand = 0u64;
        for op in &script {
            match *op {
                Op::Access(f) => {
                    cache.access(FileId(f));
                    demand += 1;
                    // An accessed file must be resident immediately after.
                    prop_assert!(cache.contains(FileId(f)), "{kind}: lost fresh access");
                }
                Op::Speculative(f) => {
                    cache.insert_speculative(FileId(f));
                }
            }
            prop_assert!(cache.len() <= capacity, "{kind}: capacity exceeded");
        }
        let s = cache.stats();
        prop_assert_eq!(s.accesses, demand);
        prop_assert_eq!(s.hits + s.misses, s.accesses);
        prop_assert!(s.speculative_hits <= s.speculative_inserts);
        prop_assert!(s.speculative_hits <= s.hits);
    }

    #[test]
    fn contains_agrees_with_hit_outcome(
        kind_idx in 0usize..PolicyKind::ALL.len(),
        capacity in 1usize..12,
        script in prop::collection::vec(0u64..25, 1..300),
    ) {
        let kind = PolicyKind::ALL[kind_idx];
        let mut cache = kind.build(capacity);
        for &f in &script {
            let pre = cache.contains(FileId(f));
            let hit = cache.access(FileId(f)).is_hit();
            prop_assert_eq!(pre, hit, "{}: contains() disagreed with access outcome", kind);
        }
    }

    #[test]
    fn clear_resets_everything(
        kind_idx in 0usize..PolicyKind::ALL.len(),
        script in prop::collection::vec(0u64..20, 1..100),
    ) {
        let kind = PolicyKind::ALL[kind_idx];
        let mut cache = kind.build(8);
        for &f in &script {
            cache.access(FileId(f));
        }
        cache.clear();
        prop_assert_eq!(cache.len(), 0);
        prop_assert!(cache.is_empty());
        prop_assert_eq!(cache.stats().accesses, 0);
        for &f in &script {
            prop_assert!(!cache.contains(FileId(f)));
        }
    }

    #[test]
    fn lru_batch_equals_sequence_of_tail_inserts_when_room(
        capacity in 8usize..24,
        batch in prop::collection::vec(0u64..40, 0..8),
    ) {
        // With enough free room, a batch insert must equal one-by-one
        // tail insertion.
        let files: Vec<FileId> = batch.iter().map(|&f| FileId(f)).collect();
        let mut a = LruCache::new(capacity);
        a.insert_speculative_batch(&files);
        let mut b = LruCache::new(capacity);
        let mut seen = std::collections::HashSet::new();
        for &f in &files {
            if seen.insert(f) {
                b.insert_speculative(f);
            }
        }
        let order_a: Vec<FileId> = a.iter_mru().collect();
        let order_b: Vec<FileId> = b.iter_mru().collect();
        prop_assert_eq!(order_a, order_b);
    }

    #[test]
    fn fifo_eviction_is_insertion_order(
        capacity in 1usize..10,
        script in prop::collection::vec(0u64..30, 1..200),
    ) {
        let mut cache = FifoCache::new(capacity);
        let mut inserted: Vec<FileId> = Vec::new();
        for &f in &script {
            let file = FileId(f);
            if cache.access(file).is_miss() {
                inserted.push(file);
            }
        }
        // The resident set must be exactly the most recent `len` distinct
        // insertions (FIFO never reorders).
        let resident: Vec<FileId> = inserted
            .iter()
            .rev()
            .take(cache.len())
            .copied()
            .collect();
        for f in resident {
            prop_assert!(cache.contains(f));
        }
    }

    #[test]
    fn lfu_never_evicts_the_heaviest_hitter(
        script in prop::collection::vec(1u64..12, 1..300),
    ) {
        // File 0 is accessed before every script step: it always has the
        // strictly highest count, so it must never be evicted.
        let mut cache = LfuCache::new(4);
        cache.access(FileId(0));
        for &f in &script {
            cache.access(FileId(0));
            cache.access(FileId(f));
            prop_assert!(cache.contains(FileId(0)), "heavy hitter evicted");
        }
    }

    #[test]
    fn clock_and_twoq_survive_arbitrary_churn(
        script in prop::collection::vec(0u64..60, 1..500),
    ) {
        let mut clock = ClockCache::new(7);
        let mut twoq = TwoQCache::new(7);
        for &f in &script {
            clock.access(FileId(f));
            twoq.access(FileId(f));
        }
        prop_assert!(clock.len() <= 7);
        prop_assert!(twoq.len() <= 7);
        prop_assert!(clock.len() >= 1);
        prop_assert!(twoq.len() >= 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn miss_stream_is_exactly_the_misses(
        capacity in 1usize..12,
        files in prop::collection::vec(0u64..20, 0..300),
    ) {
        use fgcache_cache::filter::miss_stream;
        use fgcache_trace::Trace;
        let trace = Trace::from_files(files.clone());
        let mut cache = LruCache::new(capacity);
        let misses = miss_stream(&mut cache, &trace);
        prop_assert_eq!(misses.len() as u64, cache.stats().misses);
        // Replaying the same trace through a fresh cache and collecting
        // misses by hand gives the same stream.
        let mut fresh = LruCache::new(capacity);
        let manual: Vec<FileId> = files
            .iter()
            .map(|&f| FileId(f))
            .filter(|&f| fresh.access(f).is_miss())
            .collect();
        prop_assert_eq!(misses.file_sequence(), manual);
    }
}

//! [`ClusterNode`]: one cache server participating in a cluster.
//!
//! A node owns a [`ShardedAggregatingCache`] and a membership view. A
//! group fetch entering the node is routed by the [ownership
//! ring](crate::ring): if this node owns the group's demand file (or the
//! ring is empty), the fetch is served from the local cache; otherwise it
//! is proxied to the owner over a [`Transport`] as a depth-bounded
//! `FetchOwned` — the owner must answer locally and never forwards
//! onward, so proxy chains cannot loop even while membership views
//! disagree mid-update.
//!
//! Concurrent proxied misses for the same group collapse through
//! [`SingleFlight`]; retries of the *same* request reuse their id and
//! deduplicate in the owner's reply cache. Local serves deduplicate in a
//! node-level [`ReplyCache`] held across execution — the node, not the
//! enclosing TCP server, is the exactly-once boundary, because the TCP
//! server must not hold its own reply cache while a proxied fetch blocks
//! on a peer (see
//! [`ServeBackend::serializes_execution`]).
//!
//! If a proxy fails after the transport's own retries are exhausted, the
//! node serves the group from its local cache instead — availability
//! over strict ownership, the same fallback groupcache ships with. The
//! fallback is counted in [`ClusterNodeStats::proxy_failures`].

use std::sync::{Arc, Mutex};

use fgcache_core::ShardedAggregatingCache;
use fgcache_net::{
    FileReply, GroupReply, GroupRequest, ReplyCache, ServeBackend, Transport, TransportStats,
    WireStats, DEFAULT_REPLY_CACHE_CAPACITY,
};
use fgcache_types::hash::FastMap;
use fgcache_types::{FileId, TransportError};

use crate::ring::{ClusterView, NodeId, OwnershipRing};
use crate::single_flight::{flight_key, SingleFlight};

/// Builds the transport to a peer, given its id and advertised address.
/// The node calls this lazily, once per (peer, view) lifetime, and
/// caches the connection.
pub type PeerConnector =
    Box<dyn Fn(NodeId, &str) -> Result<Box<dyn Transport + Send>, TransportError> + Send + Sync>;

/// Counters of what a [`ClusterNode`] did with the fetches it saw.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterNodeStats {
    /// Groups this node served from its own cache because it owned them
    /// (or the ring was empty).
    pub local_serves: u64,
    /// Owned (`FetchOwned`) groups this node served for peers.
    pub owned_serves: u64,
    /// Groups proxied to their owner (single-flight leaders).
    pub proxied: u64,
    /// Concurrent proxied fetches served from another caller's flight.
    pub collapsed: u64,
    /// Proxied fetches that failed and fell back to a local serve.
    pub proxy_failures: u64,
}

/// What `rebalance` found: which resident files this node still owns
/// under the current view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebalanceReport {
    /// The epoch the report was computed under.
    pub epoch: u64,
    /// Resident files this node still owns.
    pub owned: Vec<FileId>,
    /// Resident files now owned by another node. They stay resident
    /// (they will age out through normal eviction) but new misses for
    /// them route to their new owner.
    pub foreign: Vec<FileId>,
}

/// The mutable membership half of a node, behind one lock: the view, its
/// ring, and the cached peer transports.
struct Membership {
    view: ClusterView,
    ring: OwnershipRing,
    peers: FastMap<u64, Arc<Mutex<Box<dyn Transport + Send>>>>,
    /// Stats of transports retired by view changes, so
    /// `transport_stats` never loses history.
    retired: TransportStats,
}

/// One cluster participant. See the [module docs](self).
pub struct ClusterNode {
    id: NodeId,
    cache: Arc<ShardedAggregatingCache>,
    connector: PeerConnector,
    membership: Mutex<Membership>,
    flights: SingleFlight,
    local_dedup: Mutex<ReplyCache>,
    counters: Mutex<ClusterNodeStats>,
}

impl std::fmt::Debug for ClusterNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterNode")
            .field("id", &self.id)
            .field("epoch", &self.view().epoch())
            .field("flights", &self.flights)
            .finish_non_exhaustive()
    }
}

impl ClusterNode {
    /// Creates a node serving `cache`, starting from a self-only view at
    /// epoch 0 (so any pushed view applies). `connector` builds peer
    /// transports on demand.
    pub fn new(id: NodeId, cache: Arc<ShardedAggregatingCache>, connector: PeerConnector) -> Self {
        let view = ClusterView::new(0, [(id, String::new())]);
        let ring = view.ring();
        ClusterNode {
            id,
            cache,
            connector,
            membership: Mutex::new(Membership {
                view,
                ring,
                peers: FastMap::default(),
                retired: TransportStats::default(),
            }),
            flights: SingleFlight::new(),
            local_dedup: Mutex::new(ReplyCache::new(DEFAULT_REPLY_CACHE_CAPACITY)),
            counters: Mutex::new(ClusterNodeStats::default()),
        }
    }

    /// Overrides the node-level reply-cache window; 0 disables local
    /// retry deduplication.
    #[must_use]
    pub fn with_dedup_capacity(self, capacity: usize) -> Self {
        *self.lock_dedup() = ReplyCache::new(capacity);
        self
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The cache this node serves.
    pub fn cache(&self) -> &Arc<ShardedAggregatingCache> {
        &self.cache
    }

    /// The membership view this node currently holds.
    pub fn view(&self) -> ClusterView {
        self.lock_membership().view.clone()
    }

    fn lock_membership(&self) -> std::sync::MutexGuard<'_, Membership> {
        self.membership
            .lock()
            .expect("a cluster routing path panicked while holding the membership")
    }

    fn lock_counters(&self) -> std::sync::MutexGuard<'_, ClusterNodeStats> {
        self.counters
            .lock()
            .expect("a cluster routing path panicked while holding the counters")
    }

    fn lock_dedup(&self) -> std::sync::MutexGuard<'_, ReplyCache> {
        self.local_dedup
            .lock()
            .expect("a local serve panicked while holding the node reply cache")
    }

    /// Applies `view` if its epoch is newer than the held one, returning
    /// the epoch the node holds afterwards. Stale or equal epochs are
    /// ignored (idempotent redelivery). Transports to peers that left
    /// are retired; their stats are folded into
    /// [`transport_stats`](Self::transport_stats).
    pub fn apply_view(&self, view: ClusterView) -> u64 {
        let mut m = self.lock_membership();
        if view.epoch() <= m.view.epoch() {
            return m.view.epoch();
        }
        let ring = view.ring();
        let departed: Vec<u64> = m
            .peers
            .keys()
            .copied()
            .filter(|&id| !ring.contains(NodeId(id)))
            .collect();
        for id in departed {
            if let Some(peer) = m.peers.remove(&id) {
                let stats = peer
                    .lock()
                    .expect("a proxy fetch panicked while holding a peer transport")
                    .stats();
                m.retired.merge(&stats);
            }
        }
        m.ring = ring;
        m.view = view;
        m.view.epoch()
    }

    /// Convenience for the membership driver: the next view with `node`
    /// added, applied locally. The caller is responsible for pushing the
    /// returned view to the other members.
    pub fn join(&self, node: NodeId, addr: &str) -> ClusterView {
        let next = self.view().with_member(node, addr);
        self.apply_view(next.clone());
        next
    }

    /// Convenience for the membership driver: the next view with `node`
    /// removed, applied locally. The caller pushes it to the others.
    pub fn leave(&self, node: NodeId) -> ClusterView {
        let next = self.view().without_member(node);
        self.apply_view(next.clone());
        next
    }

    /// Serves one group fetch entering at this node, routing by
    /// ownership of the group's first (demand) file. This is the
    /// [`ServeBackend::serve_group`] entry point.
    pub fn serve(&self, request_id: u64, files: &[FileId]) -> GroupReply {
        let target = files.first().and_then(|&demand| {
            let m = self.lock_membership();
            match m.ring.owner(demand) {
                Some(owner) if owner != self.id => {
                    m.view.addr_of(owner).map(|addr| (owner, addr.to_string()))
                }
                _ => None,
            }
        });
        match target {
            None => {
                self.lock_counters().local_serves += 1;
                self.serve_local(request_id, files)
            }
            Some((owner, addr)) => self.proxy(owner, &addr, request_id, files),
        }
    }

    /// Serves a group from the local cache, exactly-once per request id
    /// via the node-level reply cache (held across execution; purely
    /// local, so it cannot deadlock against a peer).
    pub fn serve_local(&self, request_id: u64, files: &[FileId]) -> GroupReply {
        let mut dedup = self.lock_dedup();
        if let Some(remembered) = dedup.get(request_id) {
            return remembered.clone();
        }
        let replies: Vec<FileReply> = files
            .iter()
            .map(|&file| FileReply {
                file,
                outcome: self.cache.handle_access(file),
            })
            .collect();
        let reply = GroupReply {
            request_id,
            files: replies,
        };
        dedup.insert(reply.clone());
        reply
    }

    /// Proxies a group fetch to `owner`, collapsing concurrent misses
    /// for the same group through single-flight.
    fn proxy(&self, owner: NodeId, addr: &str, request_id: u64, files: &[FileId]) -> GroupReply {
        let key = flight_key(owner, files);
        let (result, collapsed) = self.flights.run(key, files, || {
            let peer = self.peer_transport(owner, addr)?;
            let mut transport = peer
                .lock()
                .expect("a proxy fetch panicked while holding a peer transport");
            transport.fetch_owned(&GroupRequest::new(request_id, files.to_vec()))
        });
        {
            let mut c = self.lock_counters();
            if collapsed {
                c.collapsed += 1;
            } else {
                c.proxied += 1;
            }
        }
        match result {
            Ok(mut reply) => {
                // A collapsed waiter gets the leader's reply; re-stamp it
                // with this caller's id so retries still match.
                reply.request_id = request_id;
                reply
            }
            Err(_) => {
                // The owner is unreachable after the transport's own
                // retries: serve locally rather than fail the client.
                self.lock_counters().proxy_failures += 1;
                self.lock_counters().local_serves += 1;
                self.serve_local(request_id, files)
            }
        }
    }

    /// The cached transport to `owner`, connecting through the
    /// [`PeerConnector`] on first use. The membership lock is *not* held
    /// while connecting (connects can block).
    fn peer_transport(
        &self,
        owner: NodeId,
        addr: &str,
    ) -> Result<Arc<Mutex<Box<dyn Transport + Send>>>, TransportError> {
        if let Some(peer) = self.lock_membership().peers.get(&owner.0) {
            return Ok(Arc::clone(peer));
        }
        let fresh = (self.connector)(owner, addr)?;
        let mut m = self.lock_membership();
        Ok(Arc::clone(
            m.peers
                .entry(owner.0)
                .or_insert_with(|| Arc::new(Mutex::new(fresh))),
        ))
    }

    /// Number of callers currently parked on another caller's in-flight
    /// proxy fetch (a deterministic-test hook; see
    /// [`SingleFlight::waiting`]).
    pub fn flight_waiters(&self) -> usize {
        self.flights.waiting()
    }

    /// What this node did with the fetches it saw.
    pub fn stats(&self) -> ClusterNodeStats {
        *self.lock_counters()
    }

    /// Merged upstream traffic: every live peer transport plus the
    /// retired ones, plus this node's own reply-cache hits.
    pub fn transport_stats(&self) -> TransportStats {
        let m = self.lock_membership();
        let mut merged = m.retired;
        for peer in m.peers.values() {
            let stats = peer
                .lock()
                .expect("a proxy fetch panicked while holding a peer transport")
                .stats();
            merged.merge(&stats);
        }
        drop(m);
        merged.reply_cache_hits += self.lock_dedup().hits();
        merged
    }

    /// Splits this node's resident files into still-owned and
    /// now-foreign under the current view. Reporting only: foreign files
    /// stay resident and age out through normal eviction, which keeps
    /// rebalancing O(moved keys) on the fetch path rather than an
    /// eager mass eviction.
    pub fn rebalance(&self) -> RebalanceReport {
        let resident = self.cache.resident_files();
        let m = self.lock_membership();
        let epoch = m.view.epoch();
        let mut owned = Vec::new();
        let mut foreign = Vec::new();
        for file in resident {
            match m.ring.owner(file) {
                Some(o) if o != self.id => foreign.push(file),
                _ => owned.push(file),
            }
        }
        RebalanceReport {
            epoch,
            owned,
            foreign,
        }
    }
}

impl ServeBackend for ClusterNode {
    fn serve_group(&self, request_id: u64, files: &[FileId]) -> GroupReply {
        self.serve(request_id, files)
    }

    /// The depth-1 bound: an owned fetch is always served locally, never
    /// re-forwarded, even if this node's view says someone else owns it.
    fn serve_owned(&self, request_id: u64, files: &[FileId]) -> GroupReply {
        self.lock_counters().owned_serves += 1;
        self.serve_local(request_id, files)
    }

    fn wire_stats(&self) -> WireStats {
        let mut stats = self.cache.wire_stats();
        stats.reply_cache_hits += self.lock_dedup().hits();
        stats
    }

    fn apply_cluster_update(&self, epoch: u64, members: &[(u64, String)]) -> Result<u64, String> {
        Ok(self.apply_view(ClusterView::from_wire(epoch, members)))
    }

    /// Proxied fetches block on a peer's server; the enclosing server
    /// must not serialise them under its own reply cache (the node-level
    /// cache supplies exactly-once for local serves).
    fn serializes_execution(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgcache_core::{CostModel, ShardedAggregatingCacheBuilder};
    use fgcache_net::SimTransport;

    fn cache(capacity: usize) -> Arc<ShardedAggregatingCache> {
        Arc::new(
            ShardedAggregatingCacheBuilder::new(capacity)
                .shards(2)
                .group_size(3)
                .build()
                .expect("valid config"),
        )
    }

    /// A two-node rig: node 1 local, node 2 reachable over a
    /// SimTransport to a shared cache.
    fn two_nodes() -> (ClusterNode, Arc<ShardedAggregatingCache>) {
        let remote = cache(64);
        let remote_for_connector = Arc::clone(&remote);
        let node = ClusterNode::new(
            NodeId(1),
            cache(64),
            Box::new(move |_peer, _addr| {
                Ok(Box::new(SimTransport::to_shared_arc(
                    Arc::clone(&remote_for_connector),
                    CostModel::remote(),
                )))
            }),
        );
        node.apply_view(ClusterView::new(
            1,
            [
                (NodeId(1), "sim://1".to_string()),
                (NodeId(2), "sim://2".to_string()),
            ],
        ));
        (node, remote)
    }

    fn owned_by(node: &ClusterNode, want: NodeId) -> FileId {
        let view = node.view();
        let ring = view.ring();
        (0..)
            .map(FileId)
            .find(|&f| ring.owner(f) == Some(want))
            .expect("rendezvous spreads ownership")
    }

    #[test]
    fn self_owned_groups_are_served_locally() {
        let (node, remote) = two_nodes();
        let file = owned_by(&node, NodeId(1));
        let reply = node.serve(1, &[file]);
        assert_eq!(reply.request_id, 1);
        assert_eq!(node.stats().local_serves, 1);
        assert_eq!(node.stats().proxied, 0);
        assert_eq!(node.cache().stats().accesses, 1);
        assert_eq!(remote.stats().accesses, 0);
    }

    #[test]
    fn foreign_groups_are_proxied_to_the_owner() {
        let (node, remote) = two_nodes();
        let file = owned_by(&node, NodeId(2));
        let reply = node.serve(1, &[file]);
        assert_eq!(reply.request_id, 1);
        assert_eq!(node.stats().proxied, 1);
        assert_eq!(node.stats().local_serves, 0);
        assert_eq!(node.cache().stats().accesses, 0, "must not touch local");
        assert_eq!(remote.stats().accesses, 1);
        assert_eq!(node.transport_stats().requests, 1);
    }

    #[test]
    fn owned_fetches_never_reforward() {
        let (node, remote) = two_nodes();
        // A file this node does NOT own still gets served locally when it
        // arrives as an owned fetch — the depth-1 bound.
        let file = owned_by(&node, NodeId(2));
        let reply = node.serve_owned(1, &[file]);
        assert_eq!(reply.request_id, 1);
        assert_eq!(node.stats().owned_serves, 1);
        assert_eq!(node.cache().stats().accesses, 1);
        assert_eq!(remote.stats().accesses, 0, "no forwarding");
    }

    #[test]
    fn local_retries_deduplicate_at_the_node() {
        let (node, _remote) = two_nodes();
        let file = owned_by(&node, NodeId(1));
        let first = node.serve(1, &[file]);
        let retry = node.serve(1, &[file]);
        assert_eq!(first, retry);
        assert_eq!(node.cache().stats().accesses, 1, "executed once");
        assert_eq!(node.wire_stats().reply_cache_hits, 1);
        assert_eq!(node.transport_stats().reply_cache_hits, 1);
    }

    #[test]
    fn stale_views_are_ignored() {
        let (node, _remote) = two_nodes();
        assert_eq!(node.view().epoch(), 1);
        let held = node.apply_view(ClusterView::new(1, [(NodeId(9), "x".to_string())]));
        assert_eq!(held, 1, "equal epoch ignored");
        assert!(node.view().addr_of(NodeId(9)).is_none());
        let held = node.apply_view(ClusterView::new(0, []));
        assert_eq!(held, 1, "older epoch ignored");
    }

    #[test]
    fn view_change_retires_departed_peer_transports() {
        let (node, _remote) = two_nodes();
        let file = owned_by(&node, NodeId(2));
        node.serve(1, &[file]);
        assert_eq!(node.transport_stats().requests, 1);
        // Node 2 leaves; its transport's stats must survive retirement.
        node.leave(NodeId(2));
        assert_eq!(node.view().epoch(), 2);
        assert_eq!(node.transport_stats().requests, 1);
        // The file is now self-owned (only member), so it serves locally.
        let _ = node.serve(2, &[file]);
        assert_eq!(node.stats().local_serves, 1);
    }

    #[test]
    fn proxy_failure_falls_back_to_a_local_serve() {
        let node = ClusterNode::new(
            NodeId(1),
            cache(64),
            Box::new(|_peer, _addr| {
                Err(TransportError::new(
                    fgcache_types::TransportErrorKind::ConnectionLost,
                    "peer unreachable",
                ))
            }),
        );
        node.apply_view(ClusterView::new(
            1,
            [(NodeId(1), "a".to_string()), (NodeId(2), "b".to_string())],
        ));
        let file = owned_by(&node, NodeId(2));
        let reply = node.serve(1, &[file]);
        assert_eq!(reply.files.len(), 1);
        assert_eq!(node.stats().proxy_failures, 1);
        assert_eq!(node.stats().local_serves, 1);
        assert_eq!(node.cache().stats().accesses, 1);
    }

    #[test]
    fn rebalance_reports_foreign_residents_without_evicting() {
        let (node, _remote) = two_nodes();
        // Fill the local cache while this node owns everything...
        node.leave(NodeId(2));
        for f in 0..20u64 {
            node.serve(f, &[FileId(f)]);
        }
        let before = node.rebalance();
        assert!(before.foreign.is_empty(), "sole member owns everything");
        let resident_before = before.owned.len();
        // ...then node 2 rejoins: some residents become foreign, none
        // are evicted.
        node.join(NodeId(2), "sim://2");
        let after = node.rebalance();
        assert_eq!(after.owned.len() + after.foreign.len(), resident_before);
        assert!(
            !after.foreign.is_empty(),
            "a 2-node ring must claim some of 20 files"
        );
        assert_eq!(after.epoch, node.view().epoch());
    }
}

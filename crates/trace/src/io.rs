//! Reading and writing traces.
//!
//! Three formats are supported:
//!
//! * **Text** — one event per line, `seq client kind file`, where `kind` is
//!   the one-character code from
//!   [`AccessKind::code`](fgcache_types::AccessKind::code). Lines starting
//!   with `#` and blank lines are ignored. This format is easy to produce
//!   from real trace data and to inspect by eye.
//! * **JSON** — `{"events":[{"seq":…,"client":…,"file":…,"kind":"Read"},…]}`
//!   via the in-repo [`fgcache_types::json`] codec, for lossless
//!   round-trips of tooling output.
//! * **Binary** — fixed-width little-endian records behind a magic header
//!   ([`write_binary`]/[`read_binary`]), for fast bulk storage.
//!
//! ```
//! use fgcache_trace::{io, Trace};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let t = Trace::from_files([1, 2, 1]);
//! let mut buf = Vec::new();
//! io::write_text(&t, &mut buf)?;
//! let back = io::read_text(buf.as_slice())?;
//! assert_eq!(back, t);
//! # Ok(())
//! # }
//! ```

use std::error::Error;
use std::fmt;
use std::io::{Read, Write};

use fgcache_types::json::Json;
use fgcache_types::{AccessEvent, AccessKind, ClientId, FileId, SeqNo, ValidationError};

use crate::Trace;

/// Error produced while reading or writing a trace.
#[derive(Debug)]
pub enum TraceIoError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A line of the text format failed to parse.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// The parsed events violated a [`Trace`] invariant.
    Validation(ValidationError),
    /// JSON (de)serialization failed.
    Json(String),
    /// The binary format was structurally invalid at a byte offset.
    Corrupt {
        /// Byte offset of the malformed construct.
        offset: u64,
        /// Explanation of the failure.
        message: String,
    },
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o failed: {e}"),
            TraceIoError::Parse { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
            TraceIoError::Validation(e) => write!(f, "trace validation failed: {e}"),
            TraceIoError::Json(e) => write!(f, "trace json error: {e}"),
            TraceIoError::Corrupt { offset, message } => {
                write!(f, "trace corrupt at byte {offset}: {message}")
            }
        }
    }
}

impl Error for TraceIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Validation(e) => Some(e),
            TraceIoError::Json(_) | TraceIoError::Parse { .. } | TraceIoError::Corrupt { .. } => {
                None
            }
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl From<ValidationError> for TraceIoError {
    fn from(e: ValidationError) -> Self {
        TraceIoError::Validation(e)
    }
}

impl From<fgcache_types::json::JsonParseError> for TraceIoError {
    fn from(e: fgcache_types::json::JsonParseError) -> Self {
        TraceIoError::Json(e.to_string())
    }
}

/// Writes `trace` in the line-oriented text format.
///
/// A `&mut` writer can be passed as well, since `Write` is implemented for
/// mutable references.
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] if the underlying writer fails.
pub fn write_text<W: Write>(trace: &Trace, mut w: W) -> Result<(), TraceIoError> {
    writeln!(w, "# fgcache trace v1: seq client kind file")?;
    for ev in trace.events() {
        writeln!(
            w,
            "{} {} {} {}",
            ev.seq.as_u64(),
            ev.client.as_u32(),
            ev.kind.code(),
            ev.file.as_u64()
        )?;
    }
    Ok(())
}

/// Reads a trace in the line-oriented text format.
///
/// A `&mut` reader can be passed as well, since `Read` is implemented for
/// mutable references.
///
/// This is a collect-adapter over the streaming
/// [`TextEvents`](crate::stream::TextEvents) reader — see
/// [`crate::stream`] for the bounded-memory path.
///
/// # Errors
///
/// Returns [`TraceIoError::Parse`] on a malformed line,
/// [`TraceIoError::Validation`] if the events are out of order, or
/// [`TraceIoError::Io`] on reader failure.
pub fn read_text<R: Read>(r: R) -> Result<Trace, TraceIoError> {
    crate::stream::collect_trace(crate::stream::TraceReader::text(r))
}

pub(crate) fn parse_line(line: &str) -> Result<AccessEvent, String> {
    let mut parts = line.split_ascii_whitespace();
    let seq: u64 = parts
        .next()
        .ok_or("missing seq field")?
        .parse()
        .map_err(|e| format!("bad seq: {e}"))?;
    let client: u32 = parts
        .next()
        .ok_or("missing client field")?
        .parse()
        .map_err(|e| format!("bad client: {e}"))?;
    let kind_str = parts.next().ok_or("missing kind field")?;
    let mut kind_chars = kind_str.chars();
    let kind_char = kind_chars.next().ok_or("empty kind field")?;
    if kind_chars.next().is_some() {
        return Err(format!("kind must be a single character, got {kind_str:?}"));
    }
    let kind = AccessKind::from_code(kind_char).map_err(|e| e.to_string())?;
    let file: u64 = parts
        .next()
        .ok_or("missing file field")?
        .parse()
        .map_err(|e| format!("bad file: {e}"))?;
    if parts.next().is_some() {
        return Err("trailing fields after file id".to_string());
    }
    Ok(AccessEvent::new(
        SeqNo(seq),
        ClientId(client),
        FileId(file),
        kind,
    ))
}

/// Full variant name used by the JSON format (matches the original serde
/// derive output, so documents written by earlier versions still load).
fn kind_name(kind: AccessKind) -> &'static str {
    match kind {
        AccessKind::Read => "Read",
        AccessKind::Write => "Write",
        AccessKind::Create => "Create",
        AccessKind::Delete => "Delete",
    }
}

fn kind_from_name(name: &str) -> Result<AccessKind, TraceIoError> {
    match name {
        "Read" => Ok(AccessKind::Read),
        "Write" => Ok(AccessKind::Write),
        "Create" => Ok(AccessKind::Create),
        "Delete" => Ok(AccessKind::Delete),
        other => Err(TraceIoError::Json(format!("unknown access kind {other:?}"))),
    }
}

/// Serializes `trace` as JSON:
/// `{"events":[{"seq":…,"client":…,"file":…,"kind":"Read"},…]}`.
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] on writer failure.
pub fn write_json<W: Write>(trace: &Trace, mut w: W) -> Result<(), TraceIoError> {
    let events = trace.events().iter().map(event_to_json).collect();
    let doc = Json::Obj(vec![("events".to_string(), Json::Arr(events))]);
    w.write_all(doc.to_text().as_bytes())?;
    Ok(())
}

/// The JSON object form of one event — shared by [`write_json`] and the
/// streaming [`JsonSink`](crate::stream::JsonSink) so their output cannot
/// diverge.
pub(crate) fn event_to_json(ev: &AccessEvent) -> Json {
    Json::Obj(vec![
        ("seq".to_string(), Json::UInt(ev.seq.as_u64())),
        ("client".to_string(), Json::UInt(ev.client.as_u32().into())),
        ("file".to_string(), Json::UInt(ev.file.as_u64())),
        (
            "kind".to_string(),
            Json::Str(kind_name(ev.kind).to_string()),
        ),
    ])
}

/// Decodes one event from its JSON object form (`i` is the 0-based event
/// index, used only in error messages) — shared by the materialized and
/// streaming JSON readers.
pub(crate) fn event_from_json(i: usize, ev: &Json) -> Result<AccessEvent, TraceIoError> {
    let field = |name: &str| -> Result<u64, TraceIoError> {
        ev.get(name).and_then(Json::as_u64).ok_or_else(|| {
            TraceIoError::Json(format!("event {i}: missing or non-integer {name:?}"))
        })
    };
    let seq = field("seq")?;
    let client = field("client")?;
    let client = u32::try_from(client)
        .map_err(|_| TraceIoError::Json(format!("event {i}: client {client} exceeds u32 range")))?;
    let file = field("file")?;
    let kind = ev
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| TraceIoError::Json(format!("event {i}: missing \"kind\"")))
        .and_then(kind_from_name)?;
    Ok(AccessEvent::new(
        SeqNo(seq),
        ClientId(client),
        FileId(file),
        kind,
    ))
}

/// Deserializes a trace from the JSON format written by [`write_json`].
///
/// This is a collect-adapter over the streaming
/// [`JsonEvents`](crate::stream::JsonEvents) reader — see
/// [`crate::stream`] for the bounded-memory path.
///
/// # Errors
///
/// Returns [`TraceIoError::Json`] if the input is not a valid trace
/// document, [`TraceIoError::Validation`] if the events are out of order,
/// or [`TraceIoError::Io`] on reader failure.
pub fn read_json<R: Read>(r: R) -> Result<Trace, TraceIoError> {
    crate::stream::collect_trace(crate::stream::TraceReader::json(r))
}

/// Magic bytes opening the binary trace format.
pub(crate) const BINARY_MAGIC: &[u8; 8] = b"FGTRACE1";

/// Writes the fixed-width little-endian record of one event — shared by
/// [`write_binary`] and the streaming
/// [`BinarySink`](crate::stream::BinarySink).
pub(crate) fn write_binary_record<W: Write>(
    w: &mut W,
    ev: &AccessEvent,
) -> Result<(), TraceIoError> {
    w.write_all(&ev.seq.as_u64().to_le_bytes())?;
    w.write_all(&ev.client.as_u32().to_le_bytes())?;
    w.write_all(&[ev.kind.code() as u8])?;
    w.write_all(&ev.file.as_u64().to_le_bytes())?;
    Ok(())
}

/// Writes `trace` in the compact binary format: an 8-byte magic, a u64
/// event count, then fixed-width little-endian records of
/// `(seq: u64, client: u32, kind: u8, file: u64)` — 21 bytes per event.
/// Comparable in size to the text format but constant-time to parse and
/// immune to whitespace/locale concerns.
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] if the underlying writer fails.
pub fn write_binary<W: Write>(trace: &Trace, mut w: W) -> Result<(), TraceIoError> {
    w.write_all(BINARY_MAGIC)?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    for ev in trace.events() {
        write_binary_record(&mut w, ev)?;
    }
    Ok(())
}

/// Reads a trace in the binary format produced by [`write_binary`].
///
/// This is a collect-adapter over the streaming
/// [`BinaryEvents`](crate::stream::BinaryEvents) reader — see
/// [`crate::stream`] for the bounded-memory path. Records arrive one at a
/// time, so a corrupt header's record count can never drive a huge
/// allocation; truncation and trailing garbage are rejected with the
/// exact byte offset.
///
/// # Errors
///
/// Returns [`TraceIoError::Corrupt`] if the magic, header or any record
/// is malformed, [`TraceIoError::Validation`] if the events are out of
/// order, or [`TraceIoError::Io`] on reader failure.
pub fn read_binary<R: Read>(r: R) -> Result<Trace, TraceIoError> {
    crate::stream::collect_trace(crate::stream::TraceReader::binary(r))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_roundtrip() {
        let t = Trace::from_files([10, 20, 10, 30]);
        let mut buf = Vec::new();
        write_text(&t, &mut buf).unwrap();
        let back = read_text(buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn text_skips_comments_and_blanks() {
        let input = "# header\n\n0 0 R 5\n  \n1 1 W 6\n";
        let t = read_text(input.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.events()[1].kind, AccessKind::Write);
        assert_eq!(t.events()[1].client, ClientId(1));
    }

    #[test]
    fn text_rejects_bad_kind() {
        let err = read_text("0 0 Z 5".as_bytes()).unwrap_err();
        match err {
            TraceIoError::Parse { line, message } => {
                assert_eq!(line, 1);
                assert!(message.contains('Z'), "message was {message:?}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn text_rejects_missing_fields() {
        assert!(read_text("0 0 R".as_bytes()).is_err());
        assert!(read_text("0".as_bytes()).is_err());
    }

    #[test]
    fn text_rejects_trailing_fields() {
        assert!(read_text("0 0 R 5 junk".as_bytes()).is_err());
    }

    #[test]
    fn text_rejects_multichar_kind() {
        assert!(read_text("0 0 RW 5".as_bytes()).is_err());
    }

    #[test]
    fn text_rejects_out_of_order_seq() {
        let err = read_text("5 0 R 1\n3 0 R 2".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceIoError::Validation(_)));
    }

    #[test]
    fn text_rejects_non_numeric() {
        assert!(read_text("x 0 R 5".as_bytes()).is_err());
        assert!(read_text("0 y R 5".as_bytes()).is_err());
        assert!(read_text("0 0 R z".as_bytes()).is_err());
    }

    #[test]
    fn json_roundtrip() {
        let t = Trace::from_files([1, 2, 3]);
        let mut buf = Vec::new();
        write_json(&t, &mut buf).unwrap();
        let back = read_json(buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(matches!(
            read_json("not json".as_bytes()),
            Err(TraceIoError::Json(_))
        ));
    }

    #[test]
    fn error_display_mentions_line() {
        let err = TraceIoError::Parse {
            line: 7,
            message: "boom".into(),
        };
        assert!(err.to_string().contains("line 7"));
    }

    #[test]
    fn empty_input_gives_empty_trace() {
        let t = read_text("".as_bytes()).unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn binary_roundtrip() {
        let t: Trace = vec![
            AccessEvent::new(SeqNo(0), ClientId(3), FileId(7), AccessKind::Read),
            AccessEvent::new(SeqNo(1), ClientId(0), FileId(u64::MAX), AccessKind::Create),
            AccessEvent::new(SeqNo(9), ClientId(u32::MAX), FileId(0), AccessKind::Delete),
        ]
        .into_iter()
        .collect();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        assert_eq!(buf.len(), 16 + 21 * 3);
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn binary_empty_trace() {
        let mut buf = Vec::new();
        write_binary(&Trace::default(), &mut buf).unwrap();
        assert_eq!(read_binary(buf.as_slice()).unwrap(), Trace::default());
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_binary(&b"NOTMAGIC        "[..]).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn binary_rejects_truncation() {
        let t = Trace::from_files([1, 2, 3]);
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(read_binary(buf.as_slice()).is_err());
    }

    #[test]
    fn binary_rejects_bad_kind_byte() {
        let t = Trace::from_files([1]);
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        buf[16 + 12] = b'Z'; // corrupt the kind byte of record 0
        assert!(read_binary(buf.as_slice()).is_err());
    }

    #[test]
    fn binary_size_is_exactly_fixed_width() {
        let t = Trace::from_files((0..1000u64).map(|i| 1_000_000_000 + i));
        let mut bin = Vec::new();
        write_binary(&t, &mut bin).unwrap();
        assert_eq!(bin.len(), 16 + 21 * 1000);
    }
}

//! Property-based tests for traces, trace IO and the workload generator.

use fgcache_trace::synth::{SynthConfig, WorkloadProfile};
use fgcache_trace::{io, stats::TraceStats, Trace};
use fgcache_types::{AccessEvent, AccessKind, ClientId, FileId, SeqNo};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = AccessKind> {
    prop_oneof![
        Just(AccessKind::Read),
        Just(AccessKind::Write),
        Just(AccessKind::Create),
        Just(AccessKind::Delete),
    ]
}

fn arb_events() -> impl Strategy<Value = Vec<AccessEvent>> {
    prop::collection::vec((0u32..5, 0u64..1000, arb_kind()), 0..200).prop_map(|items| {
        items
            .into_iter()
            .enumerate()
            .map(|(i, (client, file, kind))| {
                AccessEvent::new(SeqNo(i as u64), ClientId(client), FileId(file), kind)
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn text_io_roundtrips(events in arb_events()) {
        let trace = Trace::new(events).unwrap();
        let mut buf = Vec::new();
        io::write_text(&trace, &mut buf).unwrap();
        let back = io::read_text(buf.as_slice()).unwrap();
        prop_assert_eq!(back, trace);
    }

    #[test]
    fn binary_io_roundtrips(events in arb_events()) {
        let trace = Trace::new(events).unwrap();
        let mut buf = Vec::new();
        io::write_binary(&trace, &mut buf).unwrap();
        let back = io::read_binary(buf.as_slice()).unwrap();
        prop_assert_eq!(back, trace);
    }

    #[test]
    fn json_io_roundtrips(events in arb_events()) {
        let trace = Trace::new(events).unwrap();
        let mut buf = Vec::new();
        io::write_json(&trace, &mut buf).unwrap();
        let back = io::read_json(buf.as_slice()).unwrap();
        prop_assert_eq!(back, trace);
    }

    #[test]
    fn filtered_preserves_relative_order(
        files in prop::collection::vec(0u64..50, 0..200),
        keep_mod in 1u64..7,
    ) {
        let trace = Trace::from_files(files.clone());
        let filtered = trace.filtered(|e| e.file.as_u64() % keep_mod == 0);
        let expected: Vec<FileId> = files
            .iter()
            .copied()
            .filter(|f| f % keep_mod == 0)
            .map(FileId)
            .collect();
        prop_assert_eq!(filtered.file_sequence(), expected);
        // Renumbered consecutively.
        for (i, ev) in filtered.events().iter().enumerate() {
            prop_assert_eq!(ev.seq, SeqNo(i as u64));
        }
    }

    #[test]
    fn stats_are_internally_consistent(events in arb_events()) {
        let trace = Trace::new(events).unwrap();
        let s = TraceStats::compute(&trace);
        prop_assert_eq!(s.events, trace.len());
        prop_assert_eq!(s.reads + s.writes + s.creates + s.deletes, s.events);
        prop_assert!(s.unique_files <= s.events);
        prop_assert!(s.singleton_files <= s.unique_files);
        prop_assert_eq!(s.repeat_accesses, s.events - s.unique_files);
        prop_assert!(s.repeat_fraction() >= 0.0 && s.repeat_fraction() <= 1.0);
        prop_assert!(s.mutation_fraction() >= 0.0 && s.mutation_fraction() <= 1.0);
        prop_assert!(s.max_file_accesses <= s.events);
        prop_assert!((0.0..=1.0).contains(&s.top_percent_share));
    }

    #[test]
    fn generator_is_deterministic_and_well_formed(
        seed in 0u64..1000,
        profile_idx in 0usize..4,
        events in 0usize..2000,
    ) {
        let profile = WorkloadProfile::ALL[profile_idx];
        let gen = SynthConfig::profile(profile)
            .events(events)
            .seed(seed)
            .build()
            .unwrap();
        let a = gen.generate();
        let b = gen.generate();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), events);
        // Sequence numbers strictly increase from zero.
        for (i, ev) in a.events().iter().enumerate() {
            prop_assert_eq!(ev.seq, SeqNo(i as u64));
        }
        // Clients stay within the configured stream count.
        let max_streams = match profile {
            WorkloadProfile::Users => 12,
            WorkloadProfile::Write => 4,
            WorkloadProfile::Workstation => 3,
            WorkloadProfile::Server => 2,
        };
        for ev in a.events() {
            prop_assert!((ev.client.as_u32() as usize) < max_streams);
        }
    }

    #[test]
    fn generator_prefix_stability(
        seed in 0u64..200,
        short_len in 1usize..500,
        extra in 1usize..500,
    ) {
        let short = SynthConfig::profile(WorkloadProfile::Workstation)
            .events(short_len)
            .seed(seed)
            .build()
            .unwrap()
            .generate();
        let long = SynthConfig::profile(WorkloadProfile::Workstation)
            .events(short_len + extra)
            .seed(seed)
            .build()
            .unwrap()
            .generate();
        prop_assert_eq!(short.events(), &long.events()[..short_len]);
    }

    #[test]
    fn collect_always_renumbers(events in arb_events()) {
        let trace: Trace = events.into_iter().collect();
        for (i, ev) in trace.events().iter().enumerate() {
            prop_assert_eq!(ev.seq.as_u64(), i as u64);
        }
    }
}

//! Deterministic model-based tests for traces, trace IO and the workload
//! generator.
//!
//! The workspace is hermetic (no `proptest`), so these tests draw their
//! randomized inputs from the in-repo [`SeededRng`] with fixed seeds: every
//! run explores exactly the same inputs, and a failure reproduces by seed.

use fgcache_trace::stream::{collect_trace, TraceReader, TraceSink};
use fgcache_trace::synth::{SynthConfig, WorkloadProfile};
use fgcache_trace::{io, stats::TraceStats, Trace};
use fgcache_types::rng::RandomSource;
use fgcache_types::{AccessEvent, AccessKind, ClientId, FileId, SeededRng, SeqNo};

/// Seeds used by every randomized test in this file.
const SEEDS: [u64; 8] = [0, 1, 2, 7, 42, 1234, 0xDEAD_BEEF, u64::MAX];

fn random_kind(rng: &mut SeededRng) -> AccessKind {
    AccessKind::ALL[rng.gen_index(AccessKind::ALL.len())]
}

/// Generates a well-formed random event vector: up to 200 events over
/// 5 clients and 1000 files, consecutively numbered from zero.
fn random_events(rng: &mut SeededRng) -> Vec<AccessEvent> {
    let n = rng.gen_index(201);
    (0..n)
        .map(|i| {
            AccessEvent::new(
                SeqNo(i as u64),
                ClientId(rng.gen_index(5) as u32),
                FileId(rng.gen_range_inclusive(0, 999)),
                random_kind(rng),
            )
        })
        .collect()
}

#[test]
fn text_io_roundtrips() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        for _ in 0..16 {
            let trace = Trace::new(random_events(&mut rng)).unwrap();
            let mut buf = Vec::new();
            io::write_text(&trace, &mut buf).unwrap();
            let back = io::read_text(buf.as_slice()).unwrap();
            assert_eq!(back, trace, "text roundtrip failed for seed {seed}");
        }
    }
}

#[test]
fn binary_io_roundtrips() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        for _ in 0..16 {
            let trace = Trace::new(random_events(&mut rng)).unwrap();
            let mut buf = Vec::new();
            io::write_binary(&trace, &mut buf).unwrap();
            let back = io::read_binary(buf.as_slice()).unwrap();
            assert_eq!(back, trace, "binary roundtrip failed for seed {seed}");
        }
    }
}

#[test]
fn json_io_roundtrips() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        for _ in 0..16 {
            let trace = Trace::new(random_events(&mut rng)).unwrap();
            let mut buf = Vec::new();
            io::write_json(&trace, &mut buf).unwrap();
            let back = io::read_json(buf.as_slice()).unwrap();
            assert_eq!(back, trace, "json roundtrip failed for seed {seed}");
        }
    }
}

#[test]
fn streaming_readers_match_materialized_readers() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        for _ in 0..16 {
            let trace = Trace::new(random_events(&mut rng)).unwrap();

            let mut text = Vec::new();
            io::write_text(&trace, &mut text).unwrap();
            let streamed: Vec<AccessEvent> = TraceReader::text(text.as_slice())
                .map(|r| r.unwrap())
                .collect();
            assert_eq!(streamed, trace.events(), "text stream, seed {seed}");

            let mut json = Vec::new();
            io::write_json(&trace, &mut json).unwrap();
            let streamed: Vec<AccessEvent> = TraceReader::json(json.as_slice())
                .map(|r| r.unwrap())
                .collect();
            assert_eq!(streamed, trace.events(), "json stream, seed {seed}");

            let mut bin = Vec::new();
            io::write_binary(&trace, &mut bin).unwrap();
            let streamed: Vec<AccessEvent> =
                TraceReader::binary_with_len(bin.as_slice(), bin.len() as u64)
                    .map(|r| r.unwrap())
                    .collect();
            assert_eq!(streamed, trace.events(), "binary stream, seed {seed}");
        }
    }
}

#[test]
fn streaming_sinks_roundtrip_through_streaming_readers() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        for _ in 0..8 {
            let trace = Trace::new(random_events(&mut rng)).unwrap();
            let make = |mut sink: TraceSink<std::io::Cursor<Vec<u8>>>| {
                for ev in trace.events() {
                    sink.push(ev).unwrap();
                }
                sink.finish().unwrap().into_inner()
            };

            let text = make(TraceSink::text(std::io::Cursor::new(Vec::new())).unwrap());
            let back = collect_trace(TraceReader::text(text.as_slice())).unwrap();
            assert_eq!(back, trace, "text sink roundtrip, seed {seed}");

            let json = make(TraceSink::json(std::io::Cursor::new(Vec::new())).unwrap());
            let back = collect_trace(TraceReader::json(json.as_slice())).unwrap();
            assert_eq!(back, trace, "json sink roundtrip, seed {seed}");

            let bin = make(TraceSink::binary(std::io::Cursor::new(Vec::new())).unwrap());
            let back = collect_trace(TraceReader::binary_with_len(
                bin.as_slice(),
                bin.len() as u64,
            ))
            .unwrap();
            assert_eq!(back, trace, "binary sink roundtrip, seed {seed}");
        }
    }
}

#[test]
fn filtered_preserves_relative_order() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        for _ in 0..16 {
            let n = rng.gen_index(201);
            let files: Vec<u64> = (0..n).map(|_| rng.gen_range_inclusive(0, 49)).collect();
            let keep_mod = rng.gen_range_inclusive(1, 6);
            let trace = Trace::from_files(files.clone());
            let filtered = trace.filtered(|e| e.file.as_u64() % keep_mod == 0);
            let expected: Vec<FileId> = files
                .iter()
                .copied()
                .filter(|f| f % keep_mod == 0)
                .map(FileId)
                .collect();
            assert_eq!(filtered.file_sequence(), expected);
            // Renumbered consecutively.
            for (i, ev) in filtered.events().iter().enumerate() {
                assert_eq!(ev.seq, SeqNo(i as u64));
            }
        }
    }
}

#[test]
fn stats_are_internally_consistent() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        for _ in 0..16 {
            let trace = Trace::new(random_events(&mut rng)).unwrap();
            let s = TraceStats::compute(&trace);
            assert_eq!(s.events, trace.len());
            assert_eq!(s.reads + s.writes + s.creates + s.deletes, s.events);
            assert!(s.unique_files <= s.events);
            assert!(s.singleton_files <= s.unique_files);
            assert_eq!(s.repeat_accesses, s.events - s.unique_files);
            assert!(s.repeat_fraction() >= 0.0 && s.repeat_fraction() <= 1.0);
            assert!(s.mutation_fraction() >= 0.0 && s.mutation_fraction() <= 1.0);
            assert!(s.max_file_accesses <= s.events);
            assert!((0.0..=1.0).contains(&s.top_percent_share));
        }
    }
}

#[test]
fn generator_is_deterministic_and_well_formed() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        for _ in 0..4 {
            let gen_seed = rng.next_u64() % 1000;
            let profile = WorkloadProfile::ALL[rng.gen_index(WorkloadProfile::ALL.len())];
            let events = rng.gen_index(2000);
            let gen = SynthConfig::profile(profile)
                .events(events)
                .seed(gen_seed)
                .build()
                .unwrap();
            let a = gen.generate();
            let b = gen.generate();
            assert_eq!(a, b, "generator not deterministic for seed {gen_seed}");
            assert_eq!(a.len(), events);
            // Sequence numbers strictly increase from zero.
            for (i, ev) in a.events().iter().enumerate() {
                assert_eq!(ev.seq, SeqNo(i as u64));
            }
            // Clients stay within the configured stream count.
            let max_streams = match profile {
                WorkloadProfile::Users => 12,
                WorkloadProfile::Write => 4,
                WorkloadProfile::Workstation => 3,
                WorkloadProfile::Server => 2,
            };
            for ev in a.events() {
                assert!((ev.client.as_u32() as usize) < max_streams);
            }
        }
    }
}

#[test]
fn generator_prefix_stability() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        for _ in 0..4 {
            let gen_seed = rng.next_u64() % 200;
            let short_len = 1 + rng.gen_index(499);
            let extra = 1 + rng.gen_index(499);
            let short = SynthConfig::profile(WorkloadProfile::Workstation)
                .events(short_len)
                .seed(gen_seed)
                .build()
                .unwrap()
                .generate();
            let long = SynthConfig::profile(WorkloadProfile::Workstation)
                .events(short_len + extra)
                .seed(gen_seed)
                .build()
                .unwrap()
                .generate();
            assert_eq!(short.events(), &long.events()[..short_len]);
        }
    }
}

#[test]
fn collect_always_renumbers() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        for _ in 0..16 {
            let trace: Trace = random_events(&mut rng).into_iter().collect();
            for (i, ev) in trace.events().iter().enumerate() {
                assert_eq!(ev.seq.as_u64(), i as u64);
            }
        }
    }
}

//! Plain-text, CSV and JSON tabulation of experiment results.
//!
//! JSON output goes through the workspace's own emitter
//! ([`fgcache_types::json`]) — no external serialisation framework is
//! linked, keeping the build hermetic.

use std::fmt;

use fgcache_types::json::Json;

/// A simple column-aligned table, rendered as text or CSV.
///
/// ```
/// use fgcache_sim::Table;
///
/// let mut t = Table::new("demo", ["x", "y"]);
/// t.push_row(["1", "2"]);
/// let text = t.render();
/// assert!(text.contains("demo"));
/// assert!(t.to_csv().starts_with("x,y\n"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    pub fn new<S, I>(title: impl Into<String>, columns: I) -> Self
    where
        S: Into<String>,
        I: IntoIterator<Item = S>,
    {
        Table {
            title: title.into(),
            columns: columns.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row. Rows shorter than the header are padded with
    /// empty cells; longer rows are truncated.
    pub fn push_row<S, I>(&mut self, cells: I)
    where
        S: Into<String>,
        I: IntoIterator<Item = S>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.columns.len(), String::new());
        self.rows.push(row);
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as aligned text (what the `repro_*` binaries
    /// print).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(header.join("  ").len()));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            out.push_str(&cells.join("  "));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (header row first). Cells containing
    /// commas or quotes are quoted.
    pub fn to_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .columns
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Represents the table as a JSON value:
    /// `{"title": ..., "columns": [...], "rows": [[...], ...]}`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("title", Json::str(&self.title)),
            (
                "columns",
                Json::Arr(self.columns.iter().map(Json::str).collect()),
            ),
            (
                "rows",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|row| Json::Arr(row.iter().map(Json::str).collect()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Serialises the table as a compact JSON document.
    pub fn to_json_text(&self) -> String {
        self.to_json().to_text()
    }

    /// Reconstructs a table from the JSON produced by
    /// [`Table::to_json_text`].
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the text is not valid JSON
    /// or lacks the expected shape.
    pub fn from_json_text(text: &str) -> Result<Self, String> {
        let value = Json::parse(text).map_err(|e| e.to_string())?;
        let title = value
            .get("title")
            .and_then(Json::as_str)
            .ok_or("missing \"title\"")?
            .to_string();
        let columns: Vec<String> = value
            .get("columns")
            .and_then(Json::as_array)
            .ok_or("missing \"columns\"")?
            .iter()
            .map(|c| c.as_str().map(str::to_string).ok_or("non-string column"))
            .collect::<Result<_, _>>()?;
        let mut table = Table {
            title,
            columns,
            rows: Vec::new(),
        };
        for row in value
            .get("rows")
            .and_then(Json::as_array)
            .ok_or("missing \"rows\"")?
        {
            let cells: Vec<String> = row
                .as_array()
                .ok_or("non-array row")?
                .iter()
                .map(|c| c.as_str().map(str::to_string).ok_or("non-string cell"))
                .collect::<Result<_, _>>()?;
            table.push_row(cells);
        }
        Ok(table)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a float with 2 decimal places (common in reports).
pub fn fmt2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("t", ["name", "v"]);
        t.push_row(["a", "1000"]);
        t.push_row(["long-name", "2"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[1].contains("name"));
        // All data lines have equal length thanks to padding.
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn short_rows_padded_long_rows_truncated() {
        let mut t = Table::new("t", ["a", "b"]);
        t.push_row(["only"]);
        t.push_row(["x", "y", "z"]);
        assert_eq!(t.row_count(), 2);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(csv.lines().nth(1).unwrap(), "only,");
        assert_eq!(csv.lines().nth(2).unwrap(), "x,y");
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("t", ["a"]);
        t.push_row(["x,y"]);
        t.push_row(["say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn helpers() {
        assert_eq!(fmt2(1.2345), "1.23");
        assert_eq!(pct(0.4567), "45.7%");
    }

    #[test]
    fn display_matches_render() {
        let t = Table::new("x", ["c"]);
        assert_eq!(t.to_string(), t.render());
    }

    #[test]
    fn json_roundtrip() {
        let mut t = Table::new("fig3", ["g", "fetches"]);
        t.push_row(["1", "5417"]);
        t.push_row(["4", "2204"]);
        let text = t.to_json_text();
        assert!(text.starts_with(r#"{"title":"fig3""#));
        let back = Table::from_json_text(&text).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn json_rejects_malformed_documents() {
        assert!(Table::from_json_text("not json").is_err());
        assert!(Table::from_json_text("{}").is_err());
        assert!(Table::from_json_text(r#"{"title":"t","columns":[1],"rows":[]}"#).is_err());
    }
}

//! Minimal scoped-thread parallel map for parameter sweeps.
//!
//! Sweep points are independent simulations over a shared read-only
//! trace, so a work-stealing pool would be overkill: workers pull
//! indices from one shared atomic counter, accumulate `(index, result)`
//! pairs in a thread-local chunk, and the caller reassembles the chunks
//! into input order after joining — no per-item locks, no allocation in
//! the steady state beyond each chunk's growth. Built entirely on
//! `std::thread::scope` — the workspace is hermetic and links no
//! external runtime.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every item, in parallel, returning results in input
/// order. Falls back to sequential execution for tiny inputs.
///
/// ```
/// use fgcache_sim::parallel::parallel_map;
/// let squares = parallel_map(&[1, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
///
/// # Panics
///
/// Propagates the first panic from `f` (workers are joined in spawn
/// order and the panic payload is resumed on the caller's thread).
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len().max(1));
    map_with_threads(items, f, threads)
}

/// The worker-pool body with an explicit thread count, so tests exercise
/// the parallel path regardless of the host's core count.
fn map_with_threads<T, R, F>(items: &[T], f: F, threads: usize) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut chunk = Vec::new();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= items.len() {
                            break;
                        }
                        chunk.push((idx, f(&items[idx])));
                    }
                    chunk
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(chunk) => {
                    for (idx, value) in chunk {
                        results[idx] = Some(value);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    results
        .into_iter()
        .map(|slot| slot.expect("every index was claimed by exactly one worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let out = parallel_map(&input, |&x| x + 1);
        assert_eq!(out, (1..=1000).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(&[] as &[u32], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(&[7], |&x| x * 2), vec![14]);
    }

    #[test]
    fn deterministic_across_runs() {
        let input: Vec<u64> = (0..200).collect();
        let a = parallel_map(&input, |&x| x.wrapping_mul(2654435761));
        let b = parallel_map(&input, |&x| x.wrapping_mul(2654435761));
        assert_eq!(a, b);
    }

    #[test]
    fn heavy_closure_uses_all_slots() {
        // Results land in the right slots even when work is uneven.
        let input: Vec<u64> = (0..97).collect();
        let out = parallel_map(&input, |&x| {
            let mut acc = x;
            for _ in 0..(x % 13) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    fn worker_pool_preserves_order_at_every_thread_count() {
        // Force the pooled path even on single-core hosts, at thread
        // counts below, equal to and above the item count.
        let input: Vec<usize> = (0..253).collect();
        for threads in [2, 3, 8, 253, 400] {
            let out = map_with_threads(&input, |&x| x * 3, threads);
            assert_eq!(
                out,
                input.iter().map(|&x| x * 3).collect::<Vec<_>>(),
                "order broken at {threads} threads"
            );
        }
    }

    #[test]
    fn worker_pool_propagates_panics() {
        let input: Vec<u32> = (0..50).collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            map_with_threads(
                &input,
                |&x| {
                    if x == 31 {
                        panic!("boom at {x}");
                    }
                    x
                },
                4,
            )
        }));
        let payload = caught.expect_err("panic must cross the pool boundary");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert_eq!(message, "boom at 31");
    }

    #[test]
    fn panic_in_sequential_fallback_also_propagates() {
        let caught = std::panic::catch_unwind(|| {
            map_with_threads(&[1u32], |_| -> u32 { panic!("seq boom") }, 1)
        });
        assert!(caught.is_err());
    }
}

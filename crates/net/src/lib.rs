//! **fgcache-net** — the pluggable fetch transport for the fgcache
//! workspace.
//!
//! The paper's aggregating cache turns demand misses into *group fetches*
//! (§3); everything upstream of the cache — simulator, benchmarks, a real
//! server — only needs a way to execute those fetches. This crate is that
//! seam, in three layers:
//!
//! 1. **The [`Transport`] trait** ([`transport`]): `fetch_group` /
//!    pipelined `fetch_batch` over explicit [`GroupRequest`]s, with
//!    [`DirectTransport`] as the zero-cost in-process baseline.
//! 2. **Simulated transports**: [`SimTransport`] ([`sim`]) advances a
//!    deterministic virtual clock priced by
//!    [`CostModel`](fgcache_core::CostModel) with seeded latency jitter;
//!    [`FaultyTransport`] ([`fault`]) injects drops, duplicates and
//!    timeouts from a seeded schedule; [`RetryingTransport`] ([`retry`])
//!    adds bounded exponential backoff. The decorators compose:
//!    `Retrying(Faulty(Sim))` is the fault-injection test rig.
//! 3. **A real TCP path**: a length-prefixed binary [wire protocol](wire),
//!    an event-driven [`BoundServer`] ([`server`]) wrapping a
//!    [`ShardedAggregatingCache`](fgcache_core::ShardedAggregatingCache)
//!    behind a readiness loop and a bounded worker pool, and a pooled
//!    [`NetClient`] ([`client`]).
//!
//! # Idempotency by request id
//!
//! The invariant the whole crate is built around: **a fetch executes at
//! most once per request id**. Retries re-send the same id; servers (real
//! and simulated) remember recent replies in a bounded [`ReplyCache`]
//! ([`dedup`]) and re-deliver rather than re-execute. This is what makes
//! a networked run produce *byte-identical* cache statistics to an
//! in-process run even when the network loses replies — which the
//! loopback differential test demands.
//!
//! # Examples
//!
//! A retrying client over a lossy simulated network:
//!
//! ```
//! use fgcache_core::CostModel;
//! use fgcache_net::{
//!     FaultConfig, FaultyTransport, GroupRequest, RetryPolicy, RetryingTransport,
//!     SimTransport, Transport,
//! };
//! use fgcache_types::FileId;
//!
//! let sim = SimTransport::to_origin(CostModel::remote());
//! let lossy = FaultyTransport::new(sim, FaultConfig::lossy(42));
//! let mut client = RetryingTransport::new(lossy, RetryPolicy::virtual_time(4, 42));
//! for i in 0..100u64 {
//!     let request = GroupRequest::new(i, vec![FileId(i)]);
//!     client.fetch_group(&request).expect("4 attempts beat a 9% fault rate");
//! }
//! // Faults happened, retries happened — but every fetch executed exactly
//! // once at the backend, and every round trip was either an execution or
//! // an idempotent re-delivery.
//! assert_eq!(client.stats().requests, 100);
//! assert_eq!(client.stats().requests + client.stats().dedup_hits,
//!            client.stats().round_trips);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
pub mod dedup;
pub mod fault;
pub mod retry;
pub mod server;
pub mod sim;
pub mod transport;
pub mod wire;

pub use client::NetClient;
pub use dedup::{ReplyCache, DEFAULT_REPLY_CACHE_CAPACITY};
pub use fault::{FaultConfig, FaultStats, FaultyTransport};
pub use retry::{RetryPolicy, RetryingTransport};
pub use server::{
    BoundServer, ServeBackend, ServerHandle, DEFAULT_MAX_CONNS, DEFAULT_MAX_OUTBOUND_BYTES,
    DEFAULT_MAX_PENDING, DEFAULT_WORKERS,
};
pub use sim::{SimBackend, SimTransport};
pub use transport::{
    request_id, DirectTransport, FileReply, GroupReply, GroupRequest, Transport, TransportStats,
};
pub use wire::{
    decode_fetch_into, FetchFrame, Message, WireStats, MAX_FRAME_LEN, MAX_MEMBER_ADDR_LEN,
    WIRE_VERSION,
};

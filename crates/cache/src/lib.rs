//! Cache simulation substrate.
//!
//! The paper evaluates whole-file caches driven by access traces. This
//! crate provides the [`Cache`] trait those simulations are written
//! against, plus eight replacement policies:
//!
//! * [`LruCache`] — least-recently-used; the paper's client cache and the
//!   base of the aggregating cache.
//! * [`LfuCache`] — least-frequently-used; the paper's server baseline.
//! * [`FifoCache`], [`ClockCache`] — classic baselines.
//! * [`TwoQCache`] (2Q), [`MqCache`] (Multi-Queue, Zhou et al. 2001 — cited
//!   by the paper for second-level caches), [`ArcCache`] (ARC) — stronger
//!   baselines showing grouping is orthogonal to replacement policy.
//! * [`LandlordCache`] — Young's size/cost-aware Landlord algorithm;
//!   with uniform sizes and costs it is bit-identical to LRU.
//!
//! All policies support **speculative insertion** — placing a file at the
//! lowest retention priority without counting a demand access — which is
//! how group members enter a cache in the paper's §3 ("the remaining
//! members of the group appended to the end" of the LRU list).
//!
//! [`filter::miss_stream`] runs a trace through an *intervening cache* and
//! returns the miss stream, the workload a file server actually observes
//! (paper §4.3).
//!
//! # Examples
//!
//! ```
//! use fgcache_cache::{Cache, LruCache};
//! use fgcache_types::FileId;
//!
//! let mut cache = LruCache::new(2);
//! assert!(cache.access(FileId(1)).is_miss());
//! assert!(cache.access(FileId(2)).is_miss());
//! assert!(cache.access(FileId(1)).is_hit());
//! assert!(cache.access(FileId(3)).is_miss()); // evicts 2, the LRU entry
//! assert!(!cache.contains(FileId(2)));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod arc;
mod clock;
mod fifo;
pub mod filter;
mod landlord;
mod lfu;
mod list;
mod lru;
mod mq;
mod policy;
mod stats;
mod twoq;

pub use arc::ArcCache;
pub use clock::ClockCache;
pub use fifo::FifoCache;
pub use filter::FilterCache;
pub use landlord::LandlordCache;
pub use lfu::LfuCache;
pub use lru::LruCache;
pub use mq::MqCache;
pub use policy::{ParsePolicyError, PolicyKind};
pub use stats::CacheStats;
pub use twoq::TwoQCache;

use fgcache_types::{AccessOutcome, FileId, InvariantViolation};

/// A whole-file cache with a fixed capacity (in files).
///
/// Implementations maintain [`CacheStats`] and never exceed their capacity.
/// The trait is object-safe; experiment drivers use `Box<dyn Cache>` to
/// sweep across policies (see [`PolicyKind::build`]).
pub trait Cache {
    /// Processes a demand access to `file`.
    ///
    /// On a hit the entry's retention priority is refreshed according to
    /// the policy; on a miss the file is fetched into the cache (evicting
    /// if full). Statistics are updated either way.
    fn access(&mut self, file: FileId) -> AccessOutcome;

    /// Inserts `file` speculatively at the lowest retention priority the
    /// policy supports, without recording a demand access.
    ///
    /// Used for group members fetched alongside a requested file. If the
    /// file is already resident its priority is left unchanged. Returns
    /// `true` if the file was newly inserted.
    fn insert_speculative(&mut self, file: FileId) -> bool;

    /// Inserts a batch of speculative entries, preserving `files` order as
    /// the retention order among the batch (first = retained longest).
    ///
    /// The default implementation simply inserts one by one **in reverse**,
    /// which gives the same relative order for policies whose speculative
    /// inserts go to the eviction end. Policies may override this to make
    /// room for the whole batch up front so that batch members do not
    /// evict each other (see [`LruCache`]).
    fn insert_speculative_batch(&mut self, files: &[FileId]) {
        for &f in files.iter().rev() {
            self.insert_speculative(f);
        }
    }

    /// Returns `true` if `file` is resident.
    fn contains(&self, file: FileId) -> bool;

    /// Number of resident files.
    fn len(&self) -> usize;

    /// Returns `true` if no files are resident.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of resident files.
    fn capacity(&self) -> usize;

    /// Accumulated statistics.
    fn stats(&self) -> &CacheStats;

    /// Short, stable policy name (e.g. `"lru"`).
    fn name(&self) -> &'static str;

    /// Drops all resident files and resets statistics.
    fn clear(&mut self);

    /// Audits the cache's internal redundant state (index maps vs ordered
    /// structures, size bounds, statistics arithmetic) and reports the
    /// first inconsistency found.
    ///
    /// This is a debug facility: it may walk every entry and is not meant
    /// for hot paths. The workspace's differential fuzzer calls it after
    /// every operation; `xtask lint` requires every policy to provide it.
    ///
    /// # Errors
    ///
    /// Returns an [`InvariantViolation`] describing the first violated
    /// structural invariant.
    fn check_invariants(&self) -> Result<(), InvariantViolation>;
}

impl<C: Cache + ?Sized> Cache for Box<C> {
    fn access(&mut self, file: FileId) -> AccessOutcome {
        (**self).access(file)
    }
    fn insert_speculative(&mut self, file: FileId) -> bool {
        (**self).insert_speculative(file)
    }
    fn insert_speculative_batch(&mut self, files: &[FileId]) {
        (**self).insert_speculative_batch(files)
    }
    fn contains(&self, file: FileId) -> bool {
        (**self).contains(file)
    }
    fn len(&self) -> usize {
        (**self).len()
    }
    fn capacity(&self) -> usize {
        (**self).capacity()
    }
    fn stats(&self) -> &CacheStats {
        (**self).stats()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn clear(&mut self) {
        (**self).clear()
    }
    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        (**self).check_invariants()
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared conformance tests run against every policy.

    use super::*;

    /// Exercises the invariants every `Cache` implementation must uphold.
    pub(crate) fn check_cache_conformance<C: Cache>(make: impl Fn(usize) -> C) {
        // Capacity is never exceeded and len tracks contents.
        let mut c = make(3);
        for i in 0..10 {
            c.access(FileId(i));
            assert!(c.len() <= 3, "{}: len exceeded capacity", c.name());
            c.check_invariants()
                .unwrap_or_else(|v| panic!("{}: {v}", c.name()));
        }
        // Some policies (e.g. 2Q) intentionally hold fewer residents than
        // capacity under a pure sequential scan, so only bound the size.
        assert!(
            c.len() >= 1 && c.len() <= 3,
            "{}: len {} out of range",
            c.name(),
            c.len()
        );
        assert_eq!(c.capacity(), 3);

        // Hit/miss accounting adds up.
        let s = c.stats();
        assert_eq!(s.accesses, 10);
        assert_eq!(s.hits + s.misses, s.accesses);

        // A resident file hits; contains() agrees with access outcomes.
        let mut c = make(2);
        assert!(c.access(FileId(7)).is_miss());
        assert!(c.contains(FileId(7)));
        assert!(c.access(FileId(7)).is_hit());

        // Speculative insertion does not count accesses, does hold the file.
        let mut c = make(4);
        assert!(c.insert_speculative(FileId(1)));
        assert!(c.contains(FileId(1)));
        assert_eq!(c.stats().accesses, 0);
        assert_eq!(c.stats().speculative_inserts, 1);
        // Re-inserting an already-resident file reports false.
        assert!(!c.insert_speculative(FileId(1)));

        // A demand hit on a speculative entry is counted as a speculative hit.
        let mut c = make(4);
        c.insert_speculative(FileId(9));
        assert!(c.access(FileId(9)).is_hit(), "{}", c.name());
        assert_eq!(c.stats().speculative_hits, 1);
        // Only the first hit counts as speculative.
        c.access(FileId(9));
        assert_eq!(c.stats().speculative_hits, 1);

        // clear() empties the cache and resets statistics.
        let mut c = make(2);
        c.access(FileId(1));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats().accesses, 0);
        assert!(!c.contains(FileId(1)));

        // Batch speculative insertion never exceeds capacity.
        let mut c = make(2);
        c.insert_speculative_batch(&[FileId(1), FileId(2), FileId(3)]);
        assert!(c.len() <= 2, "{}: batch overflowed", c.name());

        // Eviction accounting: inserted-but-not-resident files were evicted.
        let mut c = make(2);
        for i in 0..6 {
            c.access(FileId(i));
        }
        let s = c.stats();
        assert_eq!(
            s.misses as usize - c.len(),
            s.evictions as usize,
            "{}: eviction accounting",
            c.name()
        );
    }
}

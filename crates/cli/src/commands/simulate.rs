//! `fgcache simulate` — run one cache over a trace, optionally as `K`
//! clients against a sharded aggregating server.
//!
//! Both modes replay the event stream in a single pass (the multi-client
//! mode via [`run_multiclient_stream`], which attributes event `i` to
//! client `i % K`), so simulation memory is bounded by the caches being
//! simulated — never by the trace length.

use std::error::Error;

use fgcache_cache::{Cache, LandlordCache, PolicyKind};
use fgcache_core::{AggregatingCacheBuilder, ShardedAggregatingCacheBuilder};
use fgcache_sim::multiclient::run_multiclient_stream;
use fgcache_trace::io::TraceIoError;
#[cfg(test)]
use fgcache_trace::Trace;
use fgcache_types::sizing::{SizeCostAssigner, SizeDistribution};
use fgcache_types::AccessEvent;

/// Size/cost options shared by the single-cache and multi-client modes.
///
/// `--sizes <uniform|pareto|bimodal>` gives every file a deterministic
/// seeded size and retrieval cost; it applies to `--policy landlord`
/// (cost-aware replacement) and `--policy agg` (unit-accounted residency
/// with bundle-aware group admission; add `--bundle true` for whole-group
/// eviction). Other policies are count-based, so `--sizes` is rejected.
#[derive(Clone, Copy, Default)]
pub(crate) struct SizingOpts {
    pub assigner: Option<SizeCostAssigner>,
    pub bundle: bool,
}

impl SizingOpts {
    fn parse(args: &crate::args::Args) -> Result<Self, Box<dyn Error>> {
        let assigner = match args.flag("sizes") {
            Some(raw) => {
                let dist: SizeDistribution = raw.parse()?;
                Some(SizeCostAssigner::new(
                    dist,
                    args.flag_or("size-seed", 42u64)?,
                ))
            }
            None => None,
        };
        let bundle = args.flag_or("bundle", false)?;
        if bundle && assigner.is_none() {
            return Err("--bundle requires --sizes".into());
        }
        Ok(SizingOpts { assigner, bundle })
    }
}

use crate::args::Args;
use crate::commands::open_trace_events;

/// Adapts an in-memory trace to the streaming cores (used by the
/// `&Trace` wrappers the unit tests drive).
#[cfg(test)]
fn ok_events(trace: &Trace) -> impl Iterator<Item = Result<AccessEvent, TraceIoError>> + '_ {
    trace
        .events()
        .iter()
        .map(|ev| Ok::<AccessEvent, TraceIoError>(*ev))
}

#[cfg(test)] // the materialized twin survives as the differential-test oracle
pub(crate) fn simulate(
    trace: &Trace,
    policy: &str,
    capacity: usize,
    group: usize,
    successors: usize,
) -> Result<String, Box<dyn Error>> {
    simulate_events(
        ok_events(trace),
        policy,
        capacity,
        group,
        successors,
        SizingOpts::default(),
    )
}

#[cfg(test)]
pub(crate) fn simulate_sized(
    trace: &Trace,
    policy: &str,
    capacity: usize,
    group: usize,
    sizing: SizingOpts,
) -> Result<String, Box<dyn Error>> {
    simulate_events(ok_events(trace), policy, capacity, group, 8, sizing)
}

/// Streaming single-cache replay: consumes the events once.
pub(crate) fn simulate_events<I>(
    events: I,
    policy: &str,
    capacity: usize,
    group: usize,
    successors: usize,
    sizing: SizingOpts,
) -> Result<String, Box<dyn Error>>
where
    I: IntoIterator<Item = Result<AccessEvent, TraceIoError>>,
{
    let mut out = String::new();
    if policy == "agg" {
        let mut builder = AggregatingCacheBuilder::new(capacity)
            .group_size(group)
            .successor_capacity(successors)
            .bundle_eviction(sizing.bundle);
        if let Some(assigner) = sizing.assigner {
            builder = builder.sizes(assigner);
        }
        let mut cache = builder.build()?;
        for ev in events {
            cache.handle_access(ev?.file);
        }
        let stats = Cache::stats(&cache);
        out.push_str(&format!(
            "aggregating cache: capacity {capacity}, group size {group}, successors {successors}\n"
        ));
        if let Some(assigner) = sizing.assigner {
            out.push_str(&format!(
                "size model        {} (seed-assigned){}\n",
                assigner.distribution(),
                if sizing.bundle {
                    ", whole-group eviction"
                } else {
                    ""
                }
            ));
        }
        out.push_str(&format!("accesses          {}\n", stats.accesses));
        out.push_str(&format!("demand fetches    {}\n", cache.demand_fetches()));
        out.push_str(&format!(
            "hit rate          {:.1}%\n",
            stats.hit_rate() * 100.0
        ));
        out.push_str(&format!(
            "files transferred {} ({:.2} per fetch)\n",
            cache.group_stats().files_transferred,
            cache.group_stats().mean_group_size()
        ));
        out.push_str(&format!(
            "prefetch accuracy {:.1}%\n",
            stats.speculative_accuracy() * 100.0
        ));
        out.push_str(&format!("metadata entries  {}\n", cache.metadata_entries()));
        if sizing.assigner.is_some() {
            out.push_str(&format!(
                "units transferred {}\n",
                cache.group_stats().size_units_transferred
            ));
            out.push_str(&format!(
                "units resident    {}/{}\n",
                cache.units_used(),
                capacity
            ));
        }
    } else {
        let kind: PolicyKind = policy
            .parse()
            .map_err(|e| format!("{e} (or \"agg\" for the aggregating cache)"))?;
        if sizing.assigner.is_some() && kind != PolicyKind::Landlord {
            return Err(
                "--sizes applies to cost-aware caches only (--policy landlord or agg)".into(),
            );
        }
        let mut cache: Box<dyn Cache> = match sizing.assigner {
            Some(assigner) => Box::new(LandlordCache::with_assigner(capacity, assigner)),
            None => kind.build(capacity),
        };
        for ev in events {
            cache.access(ev?.file);
        }
        let stats = cache.stats();
        out.push_str(&format!("{kind} cache: capacity {capacity}\n"));
        if let Some(assigner) = sizing.assigner {
            out.push_str(&format!(
                "size model     {} (seed-assigned)\n",
                assigner.distribution()
            ));
        }
        out.push_str(&format!("accesses       {}\n", stats.accesses));
        out.push_str(&format!("misses         {}\n", stats.misses));
        out.push_str(&format!(
            "hit rate       {:.1}%\n",
            stats.hit_rate() * 100.0
        ));
        out.push_str(&format!("evictions      {}\n", stats.evictions));
    }
    Ok(out)
}

/// Options for the `--clients K` multi-client mode, gathered into one
/// struct so the flag set can grow without widening call signatures.
pub(crate) struct MulticlientOpts {
    pub clients: usize,
    pub shards: usize,
    pub filter: usize,
    pub capacity: usize,
    pub group: usize,
    pub successors: usize,
    /// `--no-fast-path true` routes every server request through the
    /// shard mutex (results are identical; only lock traffic changes).
    pub no_fast_path: bool,
    /// Size/cost model for the sharded server (`--sizes`, `--bundle`).
    pub sizing: SizingOpts,
}

/// The `--clients K` mode: event `i` of the stream belongs to client
/// `i % K`; each client sits behind a private LRU filter in front of one
/// shared sharded aggregating server. The single-pass streaming replay
/// produces the same counters as splitting the trace round-robin and
/// replaying the deterministic interleave, so the report is reproducible.
#[cfg(test)] // the materialized twin survives as the differential-test oracle
pub(crate) fn simulate_multiclient(
    trace: &Trace,
    opts: &MulticlientOpts,
) -> Result<String, Box<dyn Error>> {
    simulate_multiclient_events(ok_events(trace), opts)
}

/// Streaming core of the `--clients K` mode.
pub(crate) fn simulate_multiclient_events<I>(
    events: I,
    opts: &MulticlientOpts,
) -> Result<String, Box<dyn Error>>
where
    I: IntoIterator<Item = Result<AccessEvent, TraceIoError>>,
{
    let MulticlientOpts {
        clients,
        shards,
        filter,
        capacity,
        group,
        successors,
        no_fast_path,
        sizing: _,
    } = *opts;
    if clients == 0 {
        return Err("--clients must be greater than zero".into());
    }
    let mut builder = ShardedAggregatingCacheBuilder::new(capacity)
        .shards(shards)
        .group_size(group)
        .successor_capacity(successors)
        .fast_path(!no_fast_path)
        .bundle_eviction(opts.sizing.bundle);
    if let Some(assigner) = opts.sizing.assigner {
        builder = builder.sizes(assigner);
    }
    let server = builder.build()?;
    let point = run_multiclient_stream(&server, events, clients, filter)?;
    let mut out = String::new();
    out.push_str(&format!(
        "sharded aggregating server: capacity {capacity}, {shards} shard(s), group size {group}{}\n",
        if no_fast_path { ", fast path disabled" } else { "" }
    ));
    out.push_str(&format!(
        "clients           {} (filter capacity {filter})\n",
        point.clients
    ));
    out.push_str(&format!("events            {}\n", point.events));
    out.push_str(&format!(
        "client hit rate   {:.1}%\n",
        point.client_hit_rate * 100.0
    ));
    out.push_str(&format!("server accesses   {}\n", point.server_accesses));
    out.push_str(&format!(
        "server hit rate   {:.1}%\n",
        point.server_hit_rate * 100.0
    ));
    out.push_str(&format!("demand fetches    {}\n", point.demand_fetches));
    out.push_str(&format!("shard imbalance   {:.2}\n", point.imbalance));
    Ok(out)
}

pub fn run(tokens: &[String]) -> Result<(), Box<dyn Error>> {
    let args = Args::parse(tokens.iter().cloned())?;
    args.check_known(&[
        "format",
        "policy",
        "capacity",
        "group",
        "successors",
        "clients",
        "shards",
        "filter",
        "no-fast-path",
        "sizes",
        "size-seed",
        "bundle",
    ])?;
    let path = args.require_positional(0, "trace")?;
    let capacity: usize = args.require_flag("capacity")?;
    let policy = args.flag("policy").unwrap_or("agg");
    let group = args.flag_or("group", 5usize)?;
    let successors = args.flag_or("successors", 8usize)?;
    let sizing = SizingOpts::parse(&args)?;
    let events = open_trace_events(path, args.flag("format"))?;
    if args.flag("clients").is_some() || args.flag("shards").is_some() {
        if policy != "agg" {
            return Err("--clients/--shards require the aggregating server (--policy agg)".into());
        }
        let opts = MulticlientOpts {
            clients: args.flag_or("clients", 1usize)?,
            shards: args.flag_or("shards", 1usize)?,
            filter: args.flag_or("filter", 100usize)?,
            capacity,
            group,
            successors,
            no_fast_path: args.flag_or("no-fast-path", false)?,
            sizing,
        };
        print!("{}", simulate_multiclient_events(events, &opts)?);
    } else {
        print!(
            "{}",
            simulate_events(events, policy, capacity, group, successors, sizing)?
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Trace {
        Trace::from_files((0..500u64).map(|i| i % 17))
    }

    #[test]
    fn plain_policy_report() {
        let text = simulate(&trace(), "lru", 10, 5, 8).unwrap();
        assert!(text.contains("lru cache: capacity 10"));
        assert!(text.contains("accesses       500"));
    }

    #[test]
    fn aggregating_report() {
        let text = simulate(&trace(), "agg", 10, 3, 4).unwrap();
        assert!(text.contains("aggregating cache"));
        assert!(text.contains("demand fetches"));
        assert!(text.contains("metadata entries"));
    }

    #[test]
    fn bad_policy_rejected() {
        assert!(simulate(&trace(), "belady", 10, 3, 4).is_err());
    }

    #[test]
    fn bad_group_rejected() {
        assert!(simulate(&trace(), "agg", 2, 5, 4).is_err());
    }

    fn opts(clients: usize, shards: usize, filter: usize, capacity: usize) -> MulticlientOpts {
        MulticlientOpts {
            clients,
            shards,
            filter,
            capacity,
            group: 3,
            successors: 4,
            no_fast_path: false,
            sizing: SizingOpts::default(),
        }
    }

    fn sized(dist: SizeDistribution, bundle: bool) -> SizingOpts {
        SizingOpts {
            assigner: Some(SizeCostAssigner::new(dist, 42)),
            bundle,
        }
    }

    #[test]
    fn landlord_policy_report() {
        let text = simulate(&trace(), "landlord", 10, 5, 8).unwrap();
        assert!(text.contains("landlord cache: capacity 10"));
    }

    #[test]
    fn landlord_sized_report() {
        let text = simulate_sized(
            &trace(),
            "landlord",
            10,
            5,
            sized(SizeDistribution::Pareto, false),
        )
        .unwrap();
        assert!(text.contains("size model     pareto"), "{text}");
        assert!(text.contains("accesses       500"));
    }

    #[test]
    fn sized_landlord_uniform_matches_plain_lru_numbers() {
        let lru = simulate(&trace(), "lru", 10, 5, 8).unwrap();
        let sizedrun = simulate_sized(
            &trace(),
            "landlord",
            10,
            5,
            sized(SizeDistribution::Uniform, false),
        )
        .unwrap();
        // Same misses/hit-rate/evictions lines (skip the differing headers).
        let tail = |s: &str| {
            s.lines()
                .filter(|l| !l.contains("cache:") && !l.contains("size model"))
                .map(String::from)
                .collect::<Vec<_>>()
        };
        assert_eq!(tail(&lru), tail(&sizedrun));
    }

    #[test]
    fn aggregating_sized_report() {
        let text = simulate_sized(
            &trace(),
            "agg",
            20,
            3,
            sized(SizeDistribution::Bimodal, true),
        )
        .unwrap();
        assert!(text.contains("size model        bimodal"), "{text}");
        assert!(text.contains("whole-group eviction"));
        assert!(text.contains("units transferred"));
        assert!(text.contains("units resident"));
    }

    #[test]
    fn sizes_rejected_for_count_based_policies() {
        assert!(simulate_sized(
            &trace(),
            "arc",
            10,
            5,
            sized(SizeDistribution::Pareto, false)
        )
        .is_err());
    }

    #[test]
    fn multiclient_report() {
        let text = simulate_multiclient(&trace(), &opts(4, 2, 10, 30)).unwrap();
        assert!(text.contains("2 shard(s)"));
        assert!(text.contains("clients           4"));
        assert!(text.contains("events            500"));
        assert!(text.contains("shard imbalance"));
    }

    #[test]
    fn multiclient_single_shard_matches_aggregate_totals() {
        // 1 client / 1 shard / huge filter-less path sanity: the server
        // sees exactly the client's misses.
        let text = simulate_multiclient(&trace(), &opts(1, 1, 1000, 30)).unwrap();
        // A 1000-entry filter over 17 distinct files absorbs everything
        // after the cold misses: the server sees 17 accesses.
        assert!(text.contains("server accesses   17"), "{text}");
    }

    #[test]
    fn multiclient_validation() {
        assert!(simulate_multiclient(&trace(), &opts(0, 1, 10, 30)).is_err());
        // A 30-file server over 16 shards has slices below group size 3,
        // which now builds (shards clamp); a group larger than the whole
        // server does not.
        assert!(simulate_multiclient(&trace(), &opts(2, 16, 10, 30)).is_ok());
        assert!(simulate_multiclient(
            &trace(),
            &MulticlientOpts {
                group: 31,
                ..opts(2, 16, 10, 30)
            }
        )
        .is_err());
    }

    #[test]
    fn no_fast_path_escape_hatch_matches_fast_path_output() {
        let fast = simulate_multiclient(&trace(), &opts(4, 2, 10, 30)).unwrap();
        let slow = simulate_multiclient(
            &trace(),
            &MulticlientOpts {
                no_fast_path: true,
                ..opts(4, 2, 10, 30)
            },
        )
        .unwrap();
        assert!(slow.contains("fast path disabled"));
        assert!(!fast.contains("fast path disabled"));
        // Everything after the header line is identical: the fast path
        // never changes results.
        let tail = |s: &str| s.lines().skip(1).map(String::from).collect::<Vec<_>>();
        assert_eq!(tail(&fast), tail(&slow));
    }
}

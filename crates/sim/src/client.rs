//! Figure 3: client-side aggregating cache — demand fetches as a function
//! of cache capacity, one series per group size.
//!
//! Group size 1 *is* the LRU baseline (identical code path, no grouping),
//! so the baseline and treatment are measured by the same machinery.

use fgcache_core::AggregatingCacheBuilder;
use fgcache_trace::Trace;
use fgcache_types::ValidationError;

use crate::parallel::parallel_map;
use crate::report::Table;

/// Parameter grid for the client sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientSweepConfig {
    /// Client cache capacities to test (the x-axis; paper: 100–800).
    pub capacities: Vec<usize>,
    /// Group sizes, one series each (paper: 1, 2, 3, 5, 7, 10).
    pub group_sizes: Vec<usize>,
    /// Per-file successor list capacity.
    pub successor_capacity: usize,
}

impl ClientSweepConfig {
    /// The paper's Figure 3 grid.
    pub fn paper() -> Self {
        ClientSweepConfig {
            capacities: vec![100, 200, 300, 400, 500, 600, 700, 800],
            group_sizes: vec![1, 2, 3, 5, 7, 10],
            successor_capacity: 8,
        }
    }

    /// A reduced grid for quick runs and tests.
    pub fn quick() -> Self {
        ClientSweepConfig {
            capacities: vec![100, 300, 500],
            group_sizes: vec![1, 5],
            successor_capacity: 8,
        }
    }
}

/// One measured point of the client sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientSweepPoint {
    /// Client cache capacity (files).
    pub capacity: usize,
    /// Group size `g` (1 = plain LRU).
    pub group_size: usize,
    /// Demand fetches performed (the paper's y-axis; equals misses).
    pub demand_fetches: u64,
    /// Demand hit rate.
    pub hit_rate: f64,
    /// Accesses driven.
    pub accesses: u64,
    /// Fraction of speculative inserts that were later demand-hit.
    pub speculative_accuracy: f64,
    /// Mean files transferred per demand fetch.
    pub mean_group_size: f64,
}

/// Runs the Figure 3 sweep: every `(capacity, group_size)` combination
/// over `trace`, in parallel, returning points in grid order (capacity
/// major, group size minor).
///
/// # Errors
///
/// Returns a [`ValidationError`] if the grid is empty or any parameter is
/// invalid (zero capacity or group size, group larger than cache).
pub fn client_sweep(
    trace: &Trace,
    config: &ClientSweepConfig,
) -> Result<Vec<ClientSweepPoint>, ValidationError> {
    if config.capacities.is_empty() {
        return Err(ValidationError::new("capacities", "must not be empty"));
    }
    if config.group_sizes.is_empty() {
        return Err(ValidationError::new("group_sizes", "must not be empty"));
    }
    let mut grid = Vec::new();
    for &capacity in &config.capacities {
        for &g in &config.group_sizes {
            // Validate every point up front so the parallel phase cannot
            // fail.
            AggregatingCacheBuilder::new(capacity)
                .group_size(g)
                .successor_capacity(config.successor_capacity)
                .build()?;
            grid.push((capacity, g));
        }
    }
    let successor_capacity = config.successor_capacity;
    Ok(parallel_map(&grid, |&(capacity, g)| {
        let mut cache = AggregatingCacheBuilder::new(capacity)
            .group_size(g)
            .successor_capacity(successor_capacity)
            .build()
            .expect("validated above");
        for ev in trace.events() {
            cache.handle_access(ev.file);
        }
        ClientSweepPoint {
            capacity,
            group_size: g,
            demand_fetches: cache.demand_fetches(),
            hit_rate: cache.hit_rate(),
            accesses: cache.accesses(),
            speculative_accuracy: fgcache_cache::Cache::stats(&cache).speculative_accuracy(),
            mean_group_size: cache.group_stats().mean_group_size(),
        }
    }))
}

/// Renders sweep results in the paper's Figure 3 layout: one row per
/// capacity, one column per group size, cells = demand fetches.
pub fn fetches_table(title: &str, points: &[ClientSweepPoint]) -> Table {
    let mut group_sizes: Vec<usize> = points.iter().map(|p| p.group_size).collect();
    group_sizes.sort_unstable();
    group_sizes.dedup();
    let mut capacities: Vec<usize> = points.iter().map(|p| p.capacity).collect();
    capacities.sort_unstable();
    capacities.dedup();
    let mut columns = vec!["capacity".to_string()];
    for g in &group_sizes {
        columns.push(if *g == 1 {
            "lru".to_string()
        } else {
            format!("g{g}")
        });
    }
    let mut table = Table::new(title, columns);
    for &cap in &capacities {
        let mut row = vec![cap.to_string()];
        for &g in &group_sizes {
            let cell = points
                .iter()
                .find(|p| p.capacity == cap && p.group_size == g)
                .map(|p| p.demand_fetches.to_string())
                .unwrap_or_default();
            row.push(cell);
        }
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgcache_trace::synth::{SynthConfig, WorkloadProfile};

    fn server_trace(events: usize) -> Trace {
        // High repeat rates mean only ~1 in 5 events advances the
        // inter-file sequence; scale event counts accordingly.
        SynthConfig::profile(WorkloadProfile::Server)
            .events(events)
            .seed(42)
            .build()
            .unwrap()
            .generate()
    }

    #[test]
    fn empty_grid_rejected() {
        let t = Trace::from_files([1, 2]);
        let cfg = ClientSweepConfig {
            capacities: vec![],
            group_sizes: vec![1],
            successor_capacity: 4,
        };
        assert!(client_sweep(&t, &cfg).is_err());
        let cfg = ClientSweepConfig {
            capacities: vec![10],
            group_sizes: vec![],
            successor_capacity: 4,
        };
        assert!(client_sweep(&t, &cfg).is_err());
    }

    #[test]
    fn invalid_point_rejected_up_front() {
        let t = Trace::from_files([1, 2]);
        let cfg = ClientSweepConfig {
            capacities: vec![2],
            group_sizes: vec![5], // group larger than cache
            successor_capacity: 4,
        };
        assert!(client_sweep(&t, &cfg).is_err());
    }

    #[test]
    fn sweep_covers_grid_in_order() {
        let t = server_trace(3_000);
        let cfg = ClientSweepConfig {
            capacities: vec![50, 100],
            group_sizes: vec![1, 3],
            successor_capacity: 4,
        };
        let points = client_sweep(&t, &cfg).unwrap();
        assert_eq!(points.len(), 4);
        assert_eq!((points[0].capacity, points[0].group_size), (50, 1));
        assert_eq!((points[3].capacity, points[3].group_size), (100, 3));
        for p in &points {
            assert_eq!(p.accesses, 3_000);
            assert!(p.demand_fetches <= p.accesses);
        }
    }

    #[test]
    fn grouping_beats_lru_on_predictable_workload() {
        let t = server_trace(40_000);
        let cfg = ClientSweepConfig {
            capacities: vec![150],
            group_sizes: vec![1, 5],
            successor_capacity: 8,
        };
        let points = client_sweep(&t, &cfg).unwrap();
        let lru = points.iter().find(|p| p.group_size == 1).unwrap();
        let g5 = points.iter().find(|p| p.group_size == 5).unwrap();
        assert!(
            (g5.demand_fetches as f64) < 0.7 * lru.demand_fetches as f64,
            "g5 {} vs lru {}",
            g5.demand_fetches,
            lru.demand_fetches
        );
    }

    #[test]
    fn bigger_caches_never_fetch_more() {
        let t = server_trace(5_000);
        let cfg = ClientSweepConfig {
            capacities: vec![50, 200, 800],
            group_sizes: vec![1],
            successor_capacity: 4,
        };
        let points = client_sweep(&t, &cfg).unwrap();
        assert!(points[0].demand_fetches >= points[1].demand_fetches);
        assert!(points[1].demand_fetches >= points[2].demand_fetches);
    }

    #[test]
    fn table_layout() {
        let t = server_trace(2_000);
        let cfg = ClientSweepConfig {
            capacities: vec![50, 100],
            group_sizes: vec![1, 2],
            successor_capacity: 4,
        };
        let points = client_sweep(&t, &cfg).unwrap();
        let table = fetches_table("fig3", &points);
        let text = table.render();
        assert!(text.contains("lru"));
        assert!(text.contains("g2"));
        assert_eq!(table.row_count(), 2);
    }
}

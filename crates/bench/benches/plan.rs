//! Analytic-planner throughput: Che fixed-point solves, inverse
//! capacity queries and the full two-level grid plan, plus one
//! planner-vs-simulator validation point.
//!
//! Each scenario reports solves/sec (or events/sec for the validation
//! replay). Every run doubles as a live correctness check: the
//! two-level plan must clear its target hit rate and the validation
//! point must sit inside the pinned planner tolerance — a silent
//! regression in the solver turns into a nonzero exit here, not a
//! quietly wrong capacity table.
//!
//! Flags (after `--`): `--smoke` shrinks the problem sizes for CI,
//! `--json PATH` writes a machine-readable summary.

use fgcache_bench::harness;
use fgcache_plan::{
    capacity_for_hit_rate, characteristic_time, hit_rate_at_time, plan, zipf_popularities,
    PlanRequest,
};
use fgcache_sim::plan_validation::{validate_lru, LruValidationCase, PLAN_TOLERANCE};
use std::time::Instant;

const ALPHA: f64 = 0.9;
const FULL_UNIVERSE: usize = 200_000;
const SMOKE_UNIVERSE: usize = 50_000;
const FULL_EVENTS: u64 = 2_000_000;
const SMOKE_EVENTS: u64 = 200_000;
const SEED: u64 = 2002;

struct Scenario {
    name: String,
    per_sec: f64,
    unit: &'static str,
}

/// Times `work` over the harness iteration count, keeping the best run.
fn best_of<T>(mut work: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..harness::iterations() + 1 {
        let start = Instant::now();
        let out = work();
        let secs = start.elapsed().as_secs_f64();
        if secs < best {
            best = secs;
        }
        last = Some(out);
    }
    (best, last.expect("at least one pass ran"))
}

fn bench_characteristic_time(probs: &[f64]) -> Scenario {
    let capacity = probs.len() as f64 / 20.0;
    let (best, t) = best_of(|| characteristic_time(probs, capacity).expect("valid inputs"));
    // Live check: the solved T reproduces the requested occupancy.
    let hit = hit_rate_at_time(probs, t);
    assert!(
        (0.0..1.0).contains(&hit),
        "hit rate at solved T out of range: {hit}"
    );
    Scenario {
        name: "che/characteristic_time".into(),
        per_sec: 1.0 / best,
        unit: "solves/s",
    }
}

fn bench_inverse_capacity(probs: &[f64]) -> Scenario {
    let (best, capacity) = best_of(|| capacity_for_hit_rate(probs, 0.7).expect("valid inputs"));
    assert!(
        capacity > 0.0 && capacity < probs.len() as f64,
        "inverse capacity out of range: {capacity}"
    );
    Scenario {
        name: "che/inverse_capacity".into(),
        per_sec: 1.0 / best,
        unit: "solves/s",
    }
}

fn bench_two_level_plan(universe: usize) -> Scenario {
    let request = PlanRequest {
        alpha: ALPHA,
        universe,
        clients: 16,
        target_hit_rate: 0.8,
        sizes: None,
    };
    let (best, report) = best_of(|| plan(&request).expect("valid request"));
    // Live check: the recommended capacities actually clear the target.
    assert!(
        report.combined_hit_rate >= request.target_hit_rate - 1e-9,
        "plan misses its target: {} < {}",
        report.combined_hit_rate,
        request.target_hit_rate
    );
    Scenario {
        name: "plan/two_level_grid".into(),
        per_sec: 1.0 / best,
        unit: "plans/s",
    }
}

fn bench_validation_point(events: u64) -> Scenario {
    let case = LruValidationCase {
        alpha: ALPHA,
        universe: 20_000,
        capacity: 2_000,
    };
    let (best, point) = best_of(|| validate_lru(case, events, SEED).expect("valid case"));
    // Live check: the streamed replay agrees with the Che prediction.
    assert!(
        point.delta < PLAN_TOLERANCE,
        "validation point diverged: delta {} ≥ tolerance {PLAN_TOLERANCE}",
        point.delta
    );
    Scenario {
        name: "validate/lru_point".into(),
        per_sec: events as f64 / best,
        unit: "events/s",
    }
}

fn write_json(path: &str, universe: usize, events: u64, scenarios: &[Scenario]) {
    let mut body = String::from("{\n");
    body.push_str(&format!("  \"universe\": {universe},\n"));
    body.push_str(&format!("  \"events\": {events},\n"));
    body.push_str("  \"scenarios\": [\n");
    for (i, s) in scenarios.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"name\": \"{}\", \"per_sec\": {:.0}, \"unit\": \"{}\"}}{}\n",
            s.name,
            s.per_sec,
            s.unit,
            if i + 1 == scenarios.len() { "" } else { "," }
        ));
    }
    body.push_str("  ]\n}\n");
    std::fs::write(path, body).expect("write json summary");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let universe = if smoke { SMOKE_UNIVERSE } else { FULL_UNIVERSE };
    let events = if smoke { SMOKE_EVENTS } else { FULL_EVENTS };

    println!("# plan: zipf({ALPHA}) over {universe} files, {events}-event validation replay");

    let probs = zipf_popularities(universe, ALPHA).expect("valid popularity vector");
    let scenarios = vec![
        bench_characteristic_time(&probs),
        bench_inverse_capacity(&probs),
        bench_two_level_plan(universe),
        bench_validation_point(events),
    ];

    for s in &scenarios {
        println!("{:<24} {:>14.0} {}", s.name, s.per_sec, s.unit);
    }

    if let Some(path) = json_path {
        write_json(&path, universe, events, &scenarios);
        println!("# wrote {path}");
    }
}

//! Core identifier and event types shared across the `fgcache` workspace.
//!
//! The paper ("Group-Based Management of Distributed File Caches", Amer,
//! Long & Burns, ICDCS 2002) models a file system workload as a *sequence*
//! of whole-file access events — deliberately discarding wall-clock timing,
//! which is workload- and system-load-dependent. These types encode that
//! model: [`FileId`] names a file, [`AccessEvent`] is one event in the
//! sequence, and [`SeqNo`] is a position in the sequence (the only notion of
//! "time" in the whole workspace).
//!
//! # Examples
//!
//! ```
//! use fgcache_types::{AccessEvent, AccessKind, ClientId, FileId, SeqNo};
//!
//! let ev = AccessEvent::new(SeqNo(0), ClientId(1), FileId(42), AccessKind::Read);
//! assert_eq!(ev.file, FileId(42));
//! assert!(ev.kind.is_read());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;

pub mod audit;
pub mod error;
pub mod hash;
pub mod json;
pub mod math;
pub mod rng;
pub mod sizing;
pub mod sync;

pub use audit::InvariantViolation;
pub use error::{ParseAccessKindError, TransportError, TransportErrorKind, ValidationError};
pub use hash::{BuildSplitMix64, FastMap, FastSet};
pub use rng::SeededRng;
pub use sizing::{SizeCostAssigner, SizeDistribution};

/// Identifier of a file in the simulated file system.
///
/// The simulation operates at whole-file granularity (the paper measures
/// hit rates of a whole-file cache on `open` requests), so a `FileId` is the
/// unit that caches store, successor lists track and groups contain.
///
/// `FileId` is a transparent newtype over `u64`; construct one directly from
/// its literal index:
///
/// ```
/// use fgcache_types::FileId;
/// let f = FileId(7);
/// assert_eq!(f.as_u64(), 7);
/// assert_eq!(format!("{f}"), "f7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FileId(pub u64);

impl FileId {
    /// The largest id representable in a 48-bit packed word — see
    /// [`FileId::packed48`].
    pub const MAX_PACKED48: u64 = (1 << 48) - 1;

    /// Returns the raw numeric identifier.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the id as a 48-bit field for packed-word layouts (the
    /// sharded residency index packs `[tag:2][gen:14][id:48]` into one
    /// atomic `u64`), or `None` if the id does not fit in 48 bits.
    ///
    /// This is the *only* sanctioned way to narrow a file id: the
    /// `xtask analyze` gate rejects truncating `as` casts on id values
    /// in non-test code precisely so every narrowing goes through this
    /// checked helper.
    ///
    /// ```
    /// use fgcache_types::FileId;
    /// assert_eq!(FileId(7).packed48(), Some(7));
    /// assert_eq!(FileId(FileId::MAX_PACKED48).packed48(), Some(FileId::MAX_PACKED48));
    /// assert_eq!(FileId(FileId::MAX_PACKED48 + 1).packed48(), None);
    /// ```
    #[inline]
    pub fn packed48(self) -> Option<u64> {
        if self.0 <= Self::MAX_PACKED48 {
            Some(self.0)
        } else {
            None
        }
    }
}

impl From<u64> for FileId {
    #[inline]
    fn from(raw: u64) -> Self {
        FileId(raw)
    }
}

impl From<FileId> for u64 {
    #[inline]
    fn from(id: FileId) -> Self {
        id.0
    }
}

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Identifier of the client (user, host or process stream) that issued an
/// access.
///
/// The paper's traces are gathered per-host; multi-client workloads (the
/// `users` profile) interleave several clients' access streams. Client
/// identity is carried on every event so that predictive models *may*
/// differentiate per-client behaviour, although the paper's core model
/// deliberately does not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ClientId(pub u32);

impl ClientId {
    /// Returns the raw numeric identifier.
    #[inline]
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl From<u32> for ClientId {
    #[inline]
    fn from(raw: u32) -> Self {
        ClientId(raw)
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Position of an event in an access sequence.
///
/// This is the only notion of time in the workspace: the paper bases all
/// predictions on the *order* of access events, never on wall-clock
/// timestamps, because timing is perturbed by system load and by the
/// predictive mechanism itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SeqNo(pub u64);

impl SeqNo {
    /// Returns the raw sequence number.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the next sequence number.
    ///
    /// ```
    /// use fgcache_types::SeqNo;
    /// assert_eq!(SeqNo(3).next(), SeqNo(4));
    /// ```
    #[inline]
    #[must_use]
    pub fn next(self) -> SeqNo {
        SeqNo(self.0 + 1)
    }
}

impl From<u64> for SeqNo {
    #[inline]
    fn from(raw: u64) -> Self {
        SeqNo(raw)
    }
}

impl fmt::Display for SeqNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The kind of a file access event.
///
/// The grouping model treats every kind as an access in the sequence; the
/// distinction matters to the *workload generator* (write-heavy workloads
/// create fresh, unpredictable files) and to trace statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessKind {
    /// A read access (`open` for reading in the paper's trace model).
    Read,
    /// A write access to an existing file.
    Write,
    /// Creation of a new file (first access to a fresh [`FileId`]).
    Create,
    /// Deletion of a file. Deletions still appear in the access sequence
    /// (the file is touched), but generators use them to retire ids.
    Delete,
}

impl AccessKind {
    /// All access kinds, in a fixed order (useful for tabulation).
    pub const ALL: [AccessKind; 4] = [
        AccessKind::Read,
        AccessKind::Write,
        AccessKind::Create,
        AccessKind::Delete,
    ];

    /// Returns `true` for [`AccessKind::Read`].
    #[inline]
    pub fn is_read(self) -> bool {
        matches!(self, AccessKind::Read)
    }

    /// Returns `true` for any mutating kind (write, create or delete).
    #[inline]
    pub fn is_mutation(self) -> bool {
        !self.is_read()
    }

    /// A stable one-character code used by the text trace format.
    ///
    /// ```
    /// use fgcache_types::AccessKind;
    /// assert_eq!(AccessKind::Read.code(), 'R');
    /// ```
    #[inline]
    pub fn code(self) -> char {
        match self {
            AccessKind::Read => 'R',
            AccessKind::Write => 'W',
            AccessKind::Create => 'C',
            AccessKind::Delete => 'D',
        }
    }

    /// Parses the one-character code produced by [`AccessKind::code`].
    ///
    /// # Errors
    ///
    /// Returns [`ParseAccessKindError`] if `code` is not one of `R`, `W`,
    /// `C`, `D`.
    pub fn from_code(code: char) -> Result<Self, ParseAccessKindError> {
        match code {
            'R' => Ok(AccessKind::Read),
            'W' => Ok(AccessKind::Write),
            'C' => Ok(AccessKind::Create),
            'D' => Ok(AccessKind::Delete),
            other => Err(ParseAccessKindError { found: other }),
        }
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::Create => "create",
            AccessKind::Delete => "delete",
        };
        f.write_str(name)
    }
}

/// One whole-file access event in a workload sequence.
///
/// Events are ordered by [`SeqNo`]; equal sequence numbers never occur
/// within one trace (validated by `fgcache-trace`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccessEvent {
    /// Position of this event in the access sequence.
    pub seq: SeqNo,
    /// Client that issued the access.
    pub client: ClientId,
    /// File being accessed.
    pub file: FileId,
    /// Kind of access.
    pub kind: AccessKind,
}

impl AccessEvent {
    /// Creates a new access event.
    ///
    /// ```
    /// use fgcache_types::{AccessEvent, AccessKind, ClientId, FileId, SeqNo};
    /// let ev = AccessEvent::new(SeqNo(9), ClientId(0), FileId(3), AccessKind::Write);
    /// assert!(ev.kind.is_mutation());
    /// ```
    #[inline]
    pub fn new(seq: SeqNo, client: ClientId, file: FileId, kind: AccessKind) -> Self {
        AccessEvent {
            seq,
            client,
            file,
            kind,
        }
    }

    /// Convenience constructor for a read by client 0 — the common case in
    /// unit tests and examples that only care about the file sequence.
    #[inline]
    pub fn read(seq: u64, file: u64) -> Self {
        AccessEvent::new(SeqNo(seq), ClientId(0), FileId(file), AccessKind::Read)
    }
}

impl fmt::Display for AccessEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {}",
            self.seq, self.client, self.kind, self.file
        )
    }
}

/// Outcome of a demand access against a cache: hit or miss.
///
/// Used pervasively by `fgcache-cache` and `fgcache-core`; defined here so
/// both crates (and downstream users) share one vocabulary type rather than
/// a `bool`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessOutcome {
    /// The file was resident when requested.
    Hit,
    /// The file was absent and had to be fetched.
    Miss,
}

impl AccessOutcome {
    /// Returns `true` for [`AccessOutcome::Hit`].
    #[inline]
    pub fn is_hit(self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }

    /// Returns `true` for [`AccessOutcome::Miss`].
    #[inline]
    pub fn is_miss(self) -> bool {
        matches!(self, AccessOutcome::Miss)
    }
}

impl fmt::Display for AccessOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessOutcome::Hit => "hit",
            AccessOutcome::Miss => "miss",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_id_roundtrip_and_display() {
        let id = FileId::from(99u64);
        assert_eq!(u64::from(id), 99);
        assert_eq!(id.as_u64(), 99);
        assert_eq!(id.to_string(), "f99");
    }

    #[test]
    fn file_id_ordering_matches_raw() {
        assert!(FileId(1) < FileId(2));
        assert_eq!(FileId::default(), FileId(0));
    }

    #[test]
    fn client_id_roundtrip_and_display() {
        let c = ClientId::from(7u32);
        assert_eq!(c.as_u32(), 7);
        assert_eq!(c.to_string(), "c7");
    }

    #[test]
    fn seq_no_next_increments() {
        assert_eq!(SeqNo(0).next(), SeqNo(1));
        assert_eq!(SeqNo(41).next().as_u64(), 42);
        assert_eq!(SeqNo(5).to_string(), "#5");
    }

    #[test]
    fn access_kind_codes_roundtrip() {
        for kind in AccessKind::ALL {
            assert_eq!(AccessKind::from_code(kind.code()).unwrap(), kind);
        }
    }

    #[test]
    fn access_kind_rejects_unknown_code() {
        let err = AccessKind::from_code('x').unwrap_err();
        assert_eq!(err.found, 'x');
        assert!(err.to_string().contains('x'));
    }

    #[test]
    fn access_kind_read_write_predicates() {
        assert!(AccessKind::Read.is_read());
        assert!(!AccessKind::Read.is_mutation());
        assert!(AccessKind::Write.is_mutation());
        assert!(AccessKind::Create.is_mutation());
        assert!(AccessKind::Delete.is_mutation());
    }

    #[test]
    fn access_event_constructors() {
        let ev = AccessEvent::read(3, 10);
        assert_eq!(ev.seq, SeqNo(3));
        assert_eq!(ev.client, ClientId(0));
        assert_eq!(ev.file, FileId(10));
        assert_eq!(ev.kind, AccessKind::Read);
    }

    #[test]
    fn access_event_display_is_nonempty_and_stable() {
        let ev = AccessEvent::new(SeqNo(1), ClientId(2), FileId(3), AccessKind::Write);
        assert_eq!(ev.to_string(), "#1 c2 write f3");
    }

    #[test]
    fn access_outcome_predicates() {
        assert!(AccessOutcome::Hit.is_hit());
        assert!(!AccessOutcome::Hit.is_miss());
        assert!(AccessOutcome::Miss.is_miss());
        assert_eq!(AccessOutcome::Hit.to_string(), "hit");
        assert_eq!(AccessOutcome::Miss.to_string(), "miss");
    }

    #[test]
    fn rng_is_reexported() {
        use crate::rng::RandomSource;
        let mut rng = SeededRng::new(7);
        let a = rng.next_u64();
        let mut again = SeededRng::new(7);
        assert_eq!(again.next_u64(), a);
    }

    #[test]
    fn types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FileId>();
        assert_send_sync::<ClientId>();
        assert_send_sync::<SeqNo>();
        assert_send_sync::<AccessEvent>();
        assert_send_sync::<AccessOutcome>();
    }
}

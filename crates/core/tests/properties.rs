//! Property-based tests for the aggregating cache.

use fgcache_cache::{Cache, LruCache};
use fgcache_core::{AggregatingCacheBuilder, InsertionPolicy, MetadataSource};
use fgcache_types::FileId;
use proptest::prelude::*;

fn workload() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..40, 0..500)
}

proptest! {
    #[test]
    fn group_size_one_is_bit_identical_to_lru(
        capacity in 1usize..20,
        files in workload(),
    ) {
        let mut agg = AggregatingCacheBuilder::new(capacity)
            .group_size(1)
            .build()
            .unwrap();
        let mut lru = LruCache::new(capacity);
        for &f in &files {
            let a = agg.handle_access(FileId(f));
            let b = lru.access(FileId(f));
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(agg.demand_fetches(), lru.stats().misses);
        prop_assert_eq!(Cache::stats(&agg).hits, lru.stats().hits);
        prop_assert_eq!(agg.len(), lru.len());
    }

    #[test]
    fn capacity_and_accounting_invariants(
        capacity in 2usize..30,
        g in 1usize..6,
        files in workload(),
    ) {
        prop_assume!(g <= capacity);
        let mut agg = AggregatingCacheBuilder::new(capacity)
            .group_size(g)
            .build()
            .unwrap();
        for &f in &files {
            agg.handle_access(FileId(f));
            prop_assert!(agg.len() <= capacity);
            // The just-requested file is always resident afterwards.
            prop_assert!(agg.contains(FileId(f)));
        }
        let stats = Cache::stats(&agg);
        prop_assert_eq!(stats.accesses, files.len() as u64);
        prop_assert_eq!(stats.misses, agg.demand_fetches());
        prop_assert_eq!(agg.accesses(), files.len() as u64);
        // Transfers: at least one file per fetch, at most g per fetch.
        let gs = agg.group_stats();
        prop_assert!(gs.files_transferred >= gs.demand_fetches);
        prop_assert!(gs.files_transferred <= gs.demand_fetches * g as u64);
    }

    #[test]
    fn grouping_never_increases_demand_fetches_vs_lru_beyond_slack(
        files in prop::collection::vec(0u64..15, 0..400),
    ) {
        // On arbitrary (even adversarial) workloads, grouping may waste
        // bandwidth but its *demand fetch* count stays within a modest
        // factor of LRU's: speculative members sit at the tail and can
        // only displace entries LRU would also have evicted soon.
        let capacity = 12;
        let mut lru = AggregatingCacheBuilder::new(capacity).group_size(1).build().unwrap();
        let mut agg = AggregatingCacheBuilder::new(capacity).group_size(4).build().unwrap();
        for &f in &files {
            lru.handle_access(FileId(f));
            agg.handle_access(FileId(f));
        }
        prop_assert!(
            agg.demand_fetches() <= lru.demand_fetches() + files.len() as u64 / 4,
            "agg {} vs lru {}",
            agg.demand_fetches(),
            lru.demand_fetches()
        );
    }

    #[test]
    fn insertion_policies_agree_on_hit_miss_counts_for_disjoint_groups(
        files in prop::collection::vec(0u64..40, 0..300),
    ) {
        // Head vs tail placement must keep all invariants; totals may
        // differ slightly but both must stay capacity-bounded and sound.
        for policy in [InsertionPolicy::Tail, InsertionPolicy::Head] {
            let mut agg = AggregatingCacheBuilder::new(16)
                .group_size(4)
                .insertion_policy(policy)
                .build()
                .unwrap();
            for &f in &files {
                agg.handle_access(FileId(f));
                prop_assert!(agg.len() <= 16);
            }
            let s = Cache::stats(&agg);
            prop_assert_eq!(s.hits + s.misses, s.accesses);
        }
    }

    #[test]
    fn external_metadata_mode_never_learns_from_requests(
        files in prop::collection::vec(0u64..20, 1..200),
    ) {
        let mut agg = AggregatingCacheBuilder::new(16)
            .group_size(4)
            .metadata_source(MetadataSource::External)
            .build()
            .unwrap();
        for &f in &files {
            agg.handle_access(FileId(f));
        }
        // No observe_metadata calls were made, so the table stays empty
        // and every group is a singleton.
        prop_assert_eq!(agg.metadata_entries(), 0);
        prop_assert_eq!(
            agg.group_stats().files_transferred,
            agg.group_stats().demand_fetches
        );
    }

    #[test]
    fn clear_restores_pristine_state(files in prop::collection::vec(0u64..20, 1..200)) {
        let mut agg = AggregatingCacheBuilder::new(8).group_size(3).build().unwrap();
        for &f in &files {
            agg.handle_access(FileId(f));
        }
        agg.clear();
        prop_assert_eq!(agg.len(), 0);
        prop_assert_eq!(agg.demand_fetches(), 0);
        prop_assert_eq!(agg.metadata_entries(), 0);
        prop_assert_eq!(agg.accesses(), 0);
        // Behaves like a fresh cache afterwards.
        let mut fresh = AggregatingCacheBuilder::new(8).group_size(3).build().unwrap();
        for &f in &files {
            prop_assert_eq!(agg.handle_access(FileId(f)), fresh.handle_access(FileId(f)));
        }
    }
}

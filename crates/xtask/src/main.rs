//! `xtask` — the workspace's static-analysis gate.
//!
//! ```text
//! cargo run -p xtask -- lint        # pure static checks, no cargo subprocesses
//! cargo run -p xtask -- analyze     # atomics / lock-discipline passes (token-based)
//! cargo run -p xtask -- fuzz        # differential fuzzers over the pinned seed set
//! cargo run -p xtask -- fuzz --minutes N   # soak: fresh derived seeds until N minutes pass
//! cargo run -p xtask -- bench-smoke [--threads N] # smoke benches → BENCH_*.json
//! cargo run -p xtask -- ci [--miri] # fmt, clippy, lint, analyze, build, test, model suites, …
//! ```
//!
//! `lint` enforces the hermetic-build policy without compiling anything:
//!
//! 1. **Dependency allowlist** — every `[dependencies]`,
//!    `[dev-dependencies]` and `[build-dependencies]` entry in every
//!    workspace manifest must name another workspace crate. Any external
//!    crate fails the gate; the workspace builds from `std` alone.
//! 2. **Crate attributes** — every crate root carries
//!    `#![forbid(unsafe_code)]` and `#![deny(missing_docs)]`.
//! 3. **Panic-free library code** — no `.unwrap()`, `todo!()` or
//!    `unimplemented!()` outside `#[cfg(test)]` modules in any `src/`
//!    file (`.expect("why")` is allowed: it documents the invariant).
//! 4. **Mutex lock discipline** — no `.lock().unwrap()` chain (even
//!    split across lines) outside `#[cfg(test)]`; a poisoned-mutex
//!    bailout must say what was poisoned via `.expect("...")`.
//! 5. **Socket confinement** — `std::net` appears only in `fgcache-net`.
//!    Every other crate goes through the `Transport` trait, so simulations
//!    stay deterministic and the wire protocol has one implementation.
//!    In particular `fgcache-cluster` proxies to peers via injected
//!    transports and never dials sockets itself.
//!
//! `fuzz` runs the differential fuzzers — the sharded-composition suite
//! and the policy/two-level suite — over a bounded deterministic seed
//! set (exported as `FGCACHE_FUZZ_SEEDS`), so CI exercises more seeds
//! than the in-repo defaults without ever becoming flaky.
//!
//! `bench-smoke` runs the smoke benchmarks for fixed small event counts
//! and writes `BENCH_hot_path.json`, `BENCH_cost.json`,
//! `BENCH_cluster.json`, `BENCH_server.json` and `BENCH_plan.json` at
//! the workspace root.
//! The server bench is also the high-connection smoke: it holds 256+
//! idle connections on the event-driven server, replays an active
//! workload, and exits nonzero unless the served stats are
//! byte-identical to the in-process oracle and RSS growth stays
//! bounded. `--threads N` is forwarded to the hot-path bench's
//! multi-threaded sharding scenarios (the multi-core scaling
//! measurement; defaults to the host's available parallelism). It is a
//! run-only gate otherwise: the numbers are recorded so the perf
//! trajectory accumulates, but no wall-clock thresholds are enforced —
//! the CI host is a single core, where wall-clock cannot show
//! contention wins (locks/event can).
//!
//! `analyze` is the concurrency-discipline gate, companion to the
//! deterministic interleaving explorer in `fgcache_types::sync::model`
//! (run under `--features fgcache_model`). It lexes every source file
//! with the small tokenizer in [`lexer`] — so comments, strings and
//! test-gated items are structurally excluded — and enforces:
//!
//! 1. **`SeqCst` ban** — `Ordering::SeqCst` never appears in library
//!    code, workspace-wide. Every ordering must say what it publishes
//!    or acquires; a total order is never needed here and the model
//!    runtime does not provide one.
//! 2. **Atomics discipline** — in files that import the
//!    `fgcache_types::sync` facade: atomic stores are `Release`, loads
//!    are `Acquire`, and `Relaxed` is allowed only on the allowlisted
//!    diagnostic/position counters (`head`, `tail`, `tombstones`,
//!    `fast_hits`, `lock_acquisitions`).
//! 3. **Ascending lock loops** — a loop that acquires shard locks must
//!    not iterate in reverse (`.rev()`); the lock-order witness enforces
//!    the same discipline at runtime in debug builds.
//! 4. **Checked id narrowing** — no truncating `as` cast on u64 file
//!    ids; 48-bit packing goes through `FileId::packed48()`, the one
//!    checked helper.
//!
//! The lint and analyze checks are dependency-free (lexer included):
//! the gate itself must not need anything the gate forbids.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod lexer;

use lexer::{match_backward, match_forward, strip_test_code, tokenize, Token, TokenKind};

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

/// One gate violation: where it is and what rule it breaks.
#[derive(Debug)]
struct Violation {
    file: PathBuf,
    line: Option<usize>,
    message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(n) => write!(f, "{}:{}: {}", self.file.display(), n, self.message),
            None => write!(f, "{}: {}", self.file.display(), self.message),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = workspace_root();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&root),
        Some("analyze") => analyze(&root),
        Some("fuzz") => match parse_minutes(&args[1..]) {
            Ok(None) => fuzz(&root),
            Ok(Some(minutes)) => fuzz_soak(&root, minutes),
            Err(e) => {
                eprintln!("xtask fuzz: {e}");
                ExitCode::FAILURE
            }
        },
        Some("bench-smoke") => match parse_threads(&args[1..]) {
            Ok(threads) => bench_smoke(&root, threads),
            Err(e) => {
                eprintln!("xtask bench-smoke: {e}");
                ExitCode::FAILURE
            }
        },
        Some("ci") => ci(&root, args[1..].iter().any(|a| a == "--miri")),
        _ => {
            eprintln!(
                "usage: cargo run -p xtask -- \
                 <lint|analyze|fuzz [--minutes N]|bench-smoke [--threads N]|ci [--miri]>"
            );
            ExitCode::FAILURE
        }
    }
}

/// Parses `--minutes N` out of a `fuzz` argument list.
fn parse_minutes(args: &[String]) -> Result<Option<u64>, String> {
    match args.iter().position(|a| a == "--minutes") {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .ok_or_else(|| "--minutes needs a value".to_string())?
            .parse::<u64>()
            .map(Some)
            .map_err(|_| "--minutes value must be a whole number of minutes".to_string()),
    }
}

/// Parses `--threads N` out of a `bench-smoke` argument list (`None`
/// leaves the hot-path bench at its default: the host's available
/// parallelism).
fn parse_threads(args: &[String]) -> Result<Option<u64>, String> {
    match args.iter().position(|a| a == "--threads") {
        None => Ok(None),
        Some(i) => {
            let n = args
                .get(i + 1)
                .ok_or_else(|| "--threads needs a value".to_string())?
                .parse::<u64>()
                .map_err(|_| "--threads value must be a whole number of threads".to_string())?;
            if n == 0 {
                return Err("--threads must be at least 1".to_string());
            }
            Ok(Some(n))
        }
    }
}

/// The workspace root: the manifest dir's grandparent (`crates/xtask`).
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

/// Runs all static checks; prints violations and returns the exit code.
fn lint(root: &Path) -> ExitCode {
    let members = workspace_members(root);
    let allowed: Vec<String> = members.iter().map(|m| m.name.clone()).collect();

    let mut violations = Vec::new();
    check_dependency_allowlist(root, &members, &allowed, &mut violations);
    check_crate_attributes(&members, &mut violations);
    check_panic_free_sources(&members, &mut violations);
    check_lock_discipline(&members, &mut violations);
    check_socket_confinement(&members, &mut violations);

    if violations.is_empty() {
        println!(
            "xtask lint: {} crates clean (allowlist, attributes, panic-free sources, \
             lock discipline, socket confinement)",
            members.len()
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("error: {v}");
        }
        eprintln!("xtask lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

/// The bounded deterministic seed set the differential fuzzers run under
/// in CI — a superset of the suites' built-in defaults. Growing this list
/// grows coverage linearly and deterministically; no seed here ever makes
/// the gate flaky.
const FUZZ_SEEDS: &str = "0xfeedface,0xbadc0ffe,1,42,20020702";

/// Runs the differential fuzzers over [`FUZZ_SEEDS`]: the sharded
/// aggregating-cache composition suite and the trace malformed-input
/// suite (both read `FGCACHE_FUZZ_SEEDS`), plus the policy + two-level
/// suite (fixed internal seeds).
fn fuzz(root: &Path) -> ExitCode {
    fuzz_with_seeds(root, FUZZ_SEEDS)
}

/// One pass of all fuzz suites under an explicit seed list.
fn fuzz_with_seeds(root: &Path, seeds: &str) -> ExitCode {
    let suites: [(&str, &[&str]); 3] = [
        (
            "sharded composition fuzzer",
            &[
                "test",
                "-q",
                "-p",
                "fgcache-core",
                "--test",
                "sharded_differential",
            ],
        ),
        (
            "policy + two-level fuzzer",
            &[
                "test",
                "-q",
                "-p",
                "fgcache-cache",
                "--test",
                "differential",
            ],
        ),
        (
            "trace malformed-input fuzzer",
            &["test", "-q", "-p", "fgcache-trace", "--test", "malformed"],
        ),
    ];
    for (label, cargo_args) in suites {
        println!("==> fuzz: {label} (FGCACHE_FUZZ_SEEDS={seeds})");
        let ok = Command::new("cargo")
            .args(cargo_args)
            .env("FGCACHE_FUZZ_SEEDS", seeds)
            .current_dir(root)
            .status()
            .map(|s| s.success())
            .unwrap_or(false);
        if !ok {
            eprintln!("xtask fuzz: suite failed: {label}");
            return ExitCode::FAILURE;
        }
    }
    println!("xtask fuzz: all suites passed");
    ExitCode::SUCCESS
}

/// Runs the smoke benchmarks (small fixed event counts) and writes the
/// `BENCH_*.json` artifacts at the workspace root. The `event_server`
/// bench doubles as the high-connection smoke: it panics (nonzero exit)
/// if 256+ concurrent connections stop being byte-identical with the
/// in-process oracle or RSS growth exceeds its bound — that part IS
/// enforced. Wall-clock numbers are run-only: thresholds would be noise
/// on a shared single-core host. `threads` forwards `--threads N` to
/// the hot-path bench's multi-core scaling scenarios.
fn bench_smoke(root: &Path, threads: Option<u64>) -> ExitCode {
    // The bench binaries' working directory is the package root, so the
    // JSON paths are made absolute to land at the workspace root.
    for (bench, json_name) in [
        ("hot_path", "BENCH_hot_path.json"),
        ("cost_aware", "BENCH_cost.json"),
        ("cluster", "BENCH_cluster.json"),
        ("event_server", "BENCH_server.json"),
        ("plan", "BENCH_plan.json"),
    ] {
        println!("==> bench-smoke: {bench} (--smoke) -> {json_name}");
        let json = root.join(json_name);
        let mut cmd = Command::new("cargo");
        cmd.args([
            "bench",
            "-p",
            "fgcache-bench",
            "--bench",
            bench,
            "--",
            "--smoke",
            "--json",
        ])
        .arg(&json);
        if bench == "hot_path" {
            if let Some(n) = threads {
                cmd.args(["--threads", &n.to_string()]);
            }
        }
        let ok = cmd
            .current_dir(root)
            .status()
            .map(|s| s.success())
            .unwrap_or(false);
        if !ok {
            eprintln!("xtask bench-smoke: {bench} bench failed");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Runs the full local gate in order, stopping at the first failure.
/// With `miri` true, adds the interpreter job (visibly skipped when the
/// nightly Miri toolchain is not installed).
fn ci(root: &Path, miri: bool) -> ExitCode {
    let steps: [(&str, &[&str]); 6] = [
        ("cargo fmt --check", &["fmt", "--check"]),
        (
            "cargo clippy --workspace --all-targets -- -D warnings",
            &[
                "clippy",
                "--workspace",
                "--all-targets",
                "--",
                "-D",
                "warnings",
            ],
        ),
        (
            "cargo build --release --workspace",
            &["build", "--release", "--workspace"],
        ),
        ("cargo test -q --workspace", &["test", "-q", "--workspace"]),
        (
            "cargo test -q -p fgcache-types --features fgcache_model (interleaving explorer)",
            &[
                "test",
                "-q",
                "-p",
                "fgcache-types",
                "--features",
                "fgcache_model",
            ],
        ),
        (
            "cargo test -q -p fgcache-core --features fgcache_model --lib (model scenarios)",
            &[
                "test",
                "-q",
                "-p",
                "fgcache-core",
                "--features",
                "fgcache_model",
                "--lib",
            ],
        ),
    ];
    // lint + analyze run between clippy and build, in-process.
    for (i, (label, cargo_args)) in steps.iter().enumerate() {
        if i == 2 && (lint(root) != ExitCode::SUCCESS || analyze(root) != ExitCode::SUCCESS) {
            return ExitCode::FAILURE;
        }
        println!("==> {label}");
        let ok = Command::new("cargo")
            .args(*cargo_args)
            .current_dir(root)
            .status()
            .map(|s| s.success())
            .unwrap_or(false);
        if !ok {
            eprintln!("xtask ci: step failed: {label}");
            return ExitCode::FAILURE;
        }
    }
    // The loopback smoke rides on the release build from step 3: the
    // bench-net differential check exits nonzero unless the TCP server's
    // stats are byte-identical to the in-process replay.
    println!("==> loopback smoke: fgcache bench-net");
    let ok = Command::new(root.join("target/release/fgcache"))
        .args([
            "bench-net",
            "--loopback",
            "true",
            "--clients",
            "2",
            "--events",
            "2000",
            "--capacity",
            "200",
            "--shards",
            "2",
            "--batch",
            "1,8",
            "--seed",
            "2002",
        ])
        .current_dir(root)
        .status()
        .map(|s| s.success())
        .unwrap_or(false);
    if !ok {
        eprintln!("xtask ci: step failed: loopback smoke");
        return ExitCode::FAILURE;
    }
    // The planner validation gate replays seeded Zipf traces through
    // the streamed LRU simulator across the (α, capacity) grid and
    // exits nonzero if the Che prediction drifts past the pinned 2pp
    // tolerance. CI-sized events: big enough that simulator noise sits
    // well under the tolerance, small enough to stay quick in release.
    println!("==> planner validation: fgcache plan --validate");
    let ok = Command::new(root.join("target/release/fgcache"))
        .args([
            "plan",
            "--validate",
            "true",
            "--events",
            "10000000",
            "--seed",
            "2002",
        ])
        .current_dir(root)
        .status()
        .map(|s| s.success())
        .unwrap_or(false);
    if !ok {
        eprintln!("xtask ci: step failed: planner validation");
        return ExitCode::FAILURE;
    }
    // The cluster smoke spawns three real `fgcache serve` processes,
    // pushes membership epochs (full view, a leave, a rejoin) mid-replay
    // over TCP, and exits nonzero unless every node's stats are
    // byte-identical to the single-process routing oracle.
    println!("==> cluster smoke: fgcache bench-cluster");
    let ok = Command::new(root.join("target/release/fgcache"))
        .args([
            "bench-cluster",
            "--nodes",
            "3",
            "--events",
            "6000",
            "--seed",
            "2002",
        ])
        .current_dir(root)
        .status()
        .map(|s| s.success())
        .unwrap_or(false);
    if !ok {
        eprintln!("xtask ci: step failed: cluster smoke");
        return ExitCode::FAILURE;
    }
    // Smoke benches: record the BENCH_*.json artifacts. The
    // event_server bench inside is also the 256-connection smoke —
    // byte-identity with the oracle and the RSS bound are enforced
    // (panic → nonzero exit); wall-clock numbers are record-only.
    if bench_smoke(root, None) != ExitCode::SUCCESS {
        return ExitCode::FAILURE;
    }
    // The extended-seed fuzz pass rides on the build the test step made.
    if fuzz(root) != ExitCode::SUCCESS {
        return ExitCode::FAILURE;
    }
    if miri && miri_job(root) != ExitCode::SUCCESS {
        return ExitCode::FAILURE;
    }
    println!("xtask ci: all steps passed");
    ExitCode::SUCCESS
}

/// The optional Miri job: runs the fgcache-types unit tests under the
/// nightly Miri interpreter when it is installed; otherwise prints a
/// visible skip notice and succeeds, so `--miri` is safe to pass on
/// hosts without the nightly toolchain.
fn miri_job(root: &Path) -> ExitCode {
    let probe = Command::new("cargo")
        .args(["+nightly", "miri", "--version"])
        .current_dir(root)
        .output();
    let available = probe.map(|o| o.status.success()).unwrap_or(false);
    if !available {
        println!(
            "==> miri: SKIPPED — nightly Miri is not installed on this host \
             (install with `rustup toolchain install nightly --component miri`)"
        );
        return ExitCode::SUCCESS;
    }
    println!("==> miri: cargo +nightly miri test -q -p fgcache-types --lib");
    let ok = Command::new("cargo")
        .args([
            "+nightly",
            "miri",
            "test",
            "-q",
            "-p",
            "fgcache-types",
            "--lib",
        ])
        .current_dir(root)
        .status()
        .map(|s| s.success())
        .unwrap_or(false);
    if ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask ci: step failed: miri");
        ExitCode::FAILURE
    }
}

/// SplitMix64 — the same mixer the workspace uses, reimplemented here
/// so the soak seed schedule is deterministic without a dependency.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Soak mode: reruns the differential fuzz suites with a fresh derived
/// seed set each round until `minutes` have elapsed (at least one round
/// always runs). Round 0 uses the pinned [`FUZZ_SEEDS`]; round `r`
/// derives five seeds from `splitmix64(r)`, so any failure names a
/// round whose exact seed list is reproducible offline.
fn fuzz_soak(root: &Path, minutes: u64) -> ExitCode {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(minutes * 60);
    let mut round: u64 = 0;
    loop {
        let seeds = if round == 0 {
            FUZZ_SEEDS.to_string()
        } else {
            (0..5)
                .map(|i| format!("{:#x}", splitmix64(round.wrapping_mul(8) + i)))
                .collect::<Vec<_>>()
                .join(",")
        };
        println!("==> fuzz soak: round {round} (seeds {seeds})");
        if fuzz_with_seeds(root, &seeds) != ExitCode::SUCCESS {
            eprintln!("xtask fuzz: soak round {round} failed (seeds {seeds})");
            return ExitCode::FAILURE;
        }
        round += 1;
        if std::time::Instant::now() >= deadline {
            break;
        }
    }
    println!("xtask fuzz: soak finished after {round} round(s) / {minutes} minute(s)");
    ExitCode::SUCCESS
}

/// A workspace member crate: package name, manifest path, crate root.
struct Member {
    name: String,
    manifest: PathBuf,
    src_dir: PathBuf,
    crate_root: PathBuf,
}

/// Enumerates workspace members: the root package plus every `crates/*`
/// directory containing a `Cargo.toml`.
fn workspace_members(root: &Path) -> Vec<Member> {
    let mut manifests = vec![root.join("Cargo.toml")];
    let crates_dir = root.join("crates");
    let mut dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map(|rd| {
            rd.filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.join("Cargo.toml").is_file())
                .collect()
        })
        .unwrap_or_default();
    dirs.sort();
    manifests.extend(dirs.iter().map(|d| d.join("Cargo.toml")));

    manifests
        .into_iter()
        .filter_map(|manifest| {
            let dir = manifest.parent()?.to_path_buf();
            let text = fs::read_to_string(&manifest).ok()?;
            let name = package_name(&text)?;
            let src_dir = dir.join("src");
            let lib = src_dir.join("lib.rs");
            let crate_root = if lib.is_file() {
                lib
            } else {
                src_dir.join("main.rs")
            };
            Some(Member {
                name,
                manifest,
                src_dir,
                crate_root,
            })
        })
        .collect()
}

/// Extracts `name = "..."` from a manifest's `[package]` section.
fn package_name(manifest_text: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest_text.lines() {
        let line = line.trim();
        if let Some(section) = line.strip_prefix('[') {
            in_package = section.trim_end_matches(']') == "package";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(value) = rest.strip_prefix('=') {
                    return Some(value.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// Check 1: every dependency in every manifest is a workspace crate.
fn check_dependency_allowlist(
    root: &Path,
    members: &[Member],
    allowed: &[String],
    violations: &mut Vec<Violation>,
) {
    for member in members {
        let Ok(text) = fs::read_to_string(&member.manifest) else {
            violations.push(Violation {
                file: member.manifest.clone(),
                line: None,
                message: "unreadable manifest".into(),
            });
            continue;
        };
        let is_root = member.manifest == root.join("Cargo.toml");
        let mut in_deps = false;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if let Some(section) = line.strip_prefix('[') {
                let section = section.trim_end_matches(']');
                // The root manifest also declares [workspace.dependencies];
                // member manifests reference those entries by name.
                in_deps = section.ends_with("dependencies")
                    && (is_root || !section.starts_with("workspace"));
                continue;
            }
            if !in_deps || line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some(dep) = line.split('=').next().map(str::trim) else {
                continue;
            };
            // `foo.workspace = true` is a dotted key: the dep is `foo`.
            let dep = dep.split('.').next().unwrap_or(dep).trim_matches('"');
            if dep.is_empty() {
                continue;
            }
            if !allowed.iter().any(|a| a == dep) {
                violations.push(Violation {
                    file: member.manifest.clone(),
                    line: Some(idx + 1),
                    message: format!(
                        "external dependency `{dep}` — the workspace is hermetic; \
                         only workspace crates are allowed"
                    ),
                });
            }
        }
    }
}

/// Check 2: every crate root forbids unsafe code and denies missing docs.
fn check_crate_attributes(members: &[Member], violations: &mut Vec<Violation>) {
    for member in members {
        let Ok(text) = fs::read_to_string(&member.crate_root) else {
            violations.push(Violation {
                file: member.crate_root.clone(),
                line: None,
                message: "unreadable crate root".into(),
            });
            continue;
        };
        for required in ["#![forbid(unsafe_code)]", "#![deny(missing_docs)]"] {
            if !text.lines().any(|l| l.trim() == required) {
                violations.push(Violation {
                    file: member.crate_root.clone(),
                    line: None,
                    message: format!("crate root is missing `{required}`"),
                });
            }
        }
    }
}

/// Check 3: no `.unwrap()` / `todo!()` / `unimplemented!()` outside
/// `#[cfg(test)]` in any `src/` file.
fn check_panic_free_sources(members: &[Member], violations: &mut Vec<Violation>) {
    for member in members {
        for file in rust_sources(&member.src_dir) {
            let Ok(text) = fs::read_to_string(&file) else {
                continue;
            };
            scan_panic_markers(&file, &text, violations);
        }
    }
}

/// Recursively lists `.rs` files under `dir`, sorted for stable output.
fn rust_sources(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(rd) = fs::read_dir(&d) else {
            continue;
        };
        for entry in rd.filter_map(Result::ok) {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Scans one source file for forbidden panic constructs, skipping
/// comments and everything from the first `#[cfg(test)]` on (test
/// modules sit at the end of each file in this workspace; a forbidden
/// call *above* the test module is still caught).
fn scan_panic_markers(file: &Path, text: &str, violations: &mut Vec<Violation>) {
    // Escapes keep this file's own source text free of the markers it
    // hunts for (the scanner would otherwise flag this very line).
    const MARKERS: [&str; 3] = [".unwr\u{61}p()", "tod\u{6f}!(", "unimplement\u{65}d!("];
    for (idx, raw) in text.lines().enumerate() {
        let trimmed = raw.trim_start();
        if trimmed.starts_with("#[cfg(test)]") {
            break;
        }
        if trimmed.starts_with("//") {
            continue; // doc comments and ordinary comments (incl. doctests)
        }
        let code = raw.split("//").next().unwrap_or(raw);
        for marker in MARKERS {
            if code.contains(marker) {
                violations.push(Violation {
                    file: file.to_path_buf(),
                    line: Some(idx + 1),
                    message: format!(
                        "`{marker}` in library code — return an error or use \
                         `.expect(\"reason\")` to document the invariant"
                    ),
                });
            }
        }
    }
}

/// Check 4: no `.lock().unwrap()` chain in any `src/` file outside
/// test-gated items, however the chain is formatted. Token-based: the
/// chain is matched as a token sequence, so line breaks, interleaved
/// comments and string literals containing the chain are all handled
/// correctly — and code *after* a mid-file test module is still
/// scanned, which the old truncate-at-`#[cfg(test)]` line scan missed.
fn check_lock_discipline(members: &[Member], violations: &mut Vec<Violation>) {
    for member in members {
        for file in rust_sources(&member.src_dir) {
            let Ok(text) = fs::read_to_string(&file) else {
                continue;
            };
            scan_lock_unwrap(&file, &text, violations);
        }
    }
}

/// Library-code tokens of one source file: lexed, comments dropped,
/// test-gated items structurally removed.
fn code_tokens(text: &str) -> Vec<Token> {
    strip_test_code(&tokenize(text))
}

/// `true` if `tokens[i..]` is exactly `.name()` — a no-argument method
/// call of `name`.
fn is_nullary_call(tokens: &[Token], i: usize, name: &str) -> bool {
    tokens.get(i).is_some_and(|t| t.is_punct('.'))
        && tokens.get(i + 1).is_some_and(|t| t.is_ident(name))
        && tokens.get(i + 2).is_some_and(|t| t.is_punct('('))
        && tokens.get(i + 3).is_some_and(|t| t.is_punct(')'))
}

/// Scans one source file for `.lock()` whose next chained call is the
/// forbidden unwrap.
fn scan_lock_unwrap(file: &Path, text: &str, violations: &mut Vec<Violation>) {
    // Escaped so this file's own source never contains the hunted chain.
    let unwrap_name: String = "unwr\u{61}p".to_string();
    let tokens = code_tokens(text);
    for i in 0..tokens.len() {
        if is_nullary_call(&tokens, i, "lock") && is_nullary_call(&tokens, i + 4, &unwrap_name) {
            violations.push(Violation {
                file: file.to_path_buf(),
                line: Some(tokens[i + 1].line),
                message: format!(
                    "`.lock().{unwrap_name}()` in library code — the workspace standard \
                     is `.lock().expect(\"what was poisoned\")`"
                ),
            });
        }
    }
}

/// Check 5: sockets only in `fgcache-net`. Any other crate mentioning
/// `std::net` in library code bypasses the `Transport` abstraction (and
/// would make a simulation nondeterministic); tests and comments are
/// exempt, same as the panic scan. `fgcache-cluster` is deliberately
/// NOT exempt: cluster nodes reach their peers only through injected
/// `Transport`s, which is what lets the virtual fleet run socket-free.
fn check_socket_confinement(members: &[Member], violations: &mut Vec<Violation>) {
    for member in members {
        if member.name == "fgcache-net" || member.name == "xtask" {
            continue; // net owns the sockets; xtask scans for the marker
        }
        for file in rust_sources(&member.src_dir) {
            let Ok(text) = fs::read_to_string(&file) else {
                continue;
            };
            scan_socket_use(&file, &text, violations);
        }
    }
}

/// Scans one source file for the `std::net` path outside comments,
/// string literals and test-gated items. Token-based, so a mention in a
/// doc string is no longer a false positive and code after a mid-file
/// test module is still scanned.
fn scan_socket_use(file: &Path, text: &str, violations: &mut Vec<Violation>) {
    let net_name: String = "ne\u{74}".to_string(); // escaped: never self-flags
    let tokens = code_tokens(text);
    for i in 0..tokens.len() {
        if tokens[i].is_ident("std")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 3).is_some_and(|t| t.is_ident(&net_name))
        {
            violations.push(Violation {
                file: file.to_path_buf(),
                line: Some(tokens[i].line),
                message: format!(
                    "`std::{net_name}` outside fgcache-net — go through the `Transport` \
                     trait; only fgcache-net may open sockets"
                ),
            });
        }
    }
}

/// Runs the concurrency-discipline passes; prints violations and
/// returns the exit code. See the crate docs for the rule list.
fn analyze(root: &Path) -> ExitCode {
    let members = workspace_members(root);
    let mut violations = Vec::new();
    check_seqcst_ban(&members, &mut violations);
    check_atomics_discipline(&members, &mut violations);
    check_lock_loop_order(&members, &mut violations);
    check_id_narrowing(&members, &mut violations);
    if violations.is_empty() {
        println!(
            "xtask analyze: {} crates clean (SeqCst ban, atomics discipline, \
             ascending lock loops, checked id narrowing)",
            members.len()
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("error: {v}");
        }
        eprintln!("xtask analyze: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

/// Diagnostic counters and ring position words where `Relaxed` is the
/// documented, intended ordering (single-consumer positions are proven
/// by the interleaving explorer; the counters are monotonic statistics
/// read only after threads join).
const RELAXED_ALLOWLIST: [&str; 5] = [
    "head",
    "tail",
    "tombstones",
    "fast_hits",
    "lock_acquisitions",
];

/// Memory-ordering method names whose call sites the discipline pass
/// inspects.
const ATOMIC_METHODS: [&str; 6] = [
    "load",
    "store",
    "fetch_add",
    "fetch_sub",
    "swap",
    "compare_exchange",
];

/// Analyze check 1: the `SeqCst` ordering never appears in library
/// code, in any crate. (The token text is assembled at runtime so the
/// ban does not flag its own implementation.)
fn check_seqcst_ban(members: &[Member], violations: &mut Vec<Violation>) {
    let banned: String = "Seq\u{43}st".to_string();
    for member in members {
        for file in rust_sources(&member.src_dir) {
            let Ok(text) = fs::read_to_string(&file) else {
                continue;
            };
            for t in code_tokens(&text) {
                if t.kind == TokenKind::Ident && t.text == banned {
                    violations.push(Violation {
                        file: file.clone(),
                        line: Some(t.line),
                        message: format!(
                            "`Ordering::{banned}` is banned workspace-wide — say what the \
                             access publishes (Release) or acquires (Acquire); no code here \
                             needs a single total order"
                        ),
                    });
                }
            }
        }
    }
}

/// The receiver identifier of a method call whose `.` sits at token
/// index `dot`: `self.head.load(..)` → `head`; `self.slots[pos].load(..)`
/// → `slots` (the indexed collection). `None` when the receiver is not
/// a simple field/identifier chain.
fn receiver_name(tokens: &[Token], dot: usize) -> Option<String> {
    let prev = dot.checked_sub(1)?;
    let t = &tokens[prev];
    if t.kind == TokenKind::Ident {
        return Some(t.text.clone());
    }
    if t.is_punct(']') {
        let open = match_backward(tokens, prev, '[', ']')?;
        let before = tokens.get(open.checked_sub(1)?)?;
        if before.kind == TokenKind::Ident {
            return Some(before.text.clone());
        }
    }
    if t.is_punct(')') {
        let open = match_backward(tokens, prev, '(', ')')?;
        let before = tokens.get(open.checked_sub(1)?)?;
        if before.kind == TokenKind::Ident {
            return Some(before.text.clone());
        }
    }
    None
}

/// All `Ordering::X` variant names appearing between `open` and its
/// matching close paren.
fn orderings_in_call(tokens: &[Token], open: usize) -> Option<(Vec<String>, usize)> {
    let close = match_forward(tokens, open, '(', ')')?;
    let mut orderings = Vec::new();
    let mut i = open + 1;
    while i + 3 <= close {
        if tokens[i].is_ident("Ordering")
            && tokens[i + 1].is_punct(':')
            && tokens[i + 2].is_punct(':')
            && tokens[i + 3].kind == TokenKind::Ident
        {
            orderings.push(tokens[i + 3].text.clone());
            i += 4;
        } else {
            i += 1;
        }
    }
    Some((orderings, close))
}

/// Analyze check 2: atomics discipline in files importing the
/// `fgcache_types::sync` facade — stores publish with `Release`, loads
/// synchronize with `Acquire`, and `Relaxed` appears only on receivers
/// in [`RELAXED_ALLOWLIST`].
fn check_atomics_discipline(members: &[Member], violations: &mut Vec<Violation>) {
    for member in members {
        for file in rust_sources(&member.src_dir) {
            let Ok(text) = fs::read_to_string(&file) else {
                continue;
            };
            let tokens = code_tokens(&text);
            let imports_facade = tokens.windows(4).any(|w| {
                w[0].is_ident("fgcache_types")
                    && w[1].is_punct(':')
                    && w[2].is_punct(':')
                    && w[3].is_ident("sync")
            });
            if !imports_facade {
                continue;
            }
            scan_atomic_orderings(&file, &tokens, violations);
        }
    }
}

/// The ordering rules for one file's tokens (split out for fixtures).
fn scan_atomic_orderings(file: &Path, tokens: &[Token], violations: &mut Vec<Violation>) {
    for i in 0..tokens.len() {
        if !tokens[i].is_punct('.') {
            continue;
        }
        let Some(method) = tokens.get(i + 1) else {
            continue;
        };
        if method.kind != TokenKind::Ident {
            continue;
        }
        let name = method.text.trim_end_matches("_weak");
        if !ATOMIC_METHODS.contains(&name) {
            continue;
        }
        if !tokens.get(i + 2).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let Some((orderings, _)) = orderings_in_call(tokens, i + 2) else {
            continue;
        };
        if orderings.is_empty() {
            continue; // not an atomic call (e.g. Vec::swap)
        }
        let receiver = receiver_name(tokens, i);
        let allowlisted = receiver
            .as_deref()
            .is_some_and(|r| RELAXED_ALLOWLIST.contains(&r));
        let receiver_label = receiver.as_deref().unwrap_or("<expr>").to_string();
        for ordering in &orderings {
            let ok = match (name, ordering.as_str()) {
                ("load", "Acquire") => true,
                ("store", "Release") => true,
                // RMWs that both read and publish.
                ("fetch_add" | "fetch_sub" | "swap" | "compare_exchange", "Acquire")
                | ("fetch_add" | "fetch_sub" | "swap" | "compare_exchange", "Release")
                | ("fetch_add" | "fetch_sub" | "swap" | "compare_exchange", "AcqRel") => true,
                (_, "Relaxed") => allowlisted,
                _ => false,
            };
            if !ok {
                violations.push(Violation {
                    file: file.to_path_buf(),
                    line: Some(method.line),
                    message: format!(
                        "`{receiver_label}.{}(… Ordering::{ordering} …)` breaks the atomics \
                         discipline: stores publish with Release, loads synchronize with \
                         Acquire; Relaxed is reserved for the allowlisted counters \
                         ({})",
                        method.text,
                        RELAXED_ALLOWLIST.join(", ")
                    ),
                });
            }
        }
    }
}

/// Analyze check 3: a loop body that acquires shard locks must not
/// iterate in reverse. Ascending acquisition order is the deadlock-
/// freedom discipline the runtime witness asserts in debug builds; a
/// `.rev()` in the loop header with a `shard(...)` call in the body is
/// a violation even if today only one such loop exists.
fn check_lock_loop_order(members: &[Member], violations: &mut Vec<Violation>) {
    for member in members {
        for file in rust_sources(&member.src_dir) {
            let Ok(text) = fs::read_to_string(&file) else {
                continue;
            };
            scan_lock_loops(&file, &code_tokens(&text), violations);
        }
    }
}

/// The reverse-shard-loop rule for one file's tokens.
fn scan_lock_loops(file: &Path, tokens: &[Token], violations: &mut Vec<Violation>) {
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("for") {
            continue;
        }
        // Loop header: tokens up to the body `{` (struct literals are
        // not valid in a `for` iterator expression without parens).
        let Some(body_open) = (i + 1..tokens.len()).find(|&j| tokens[j].is_punct('{')) else {
            continue;
        };
        let header = &tokens[i + 1..body_open];
        let reversed = header.iter().any(|t| t.is_ident("rev"));
        if !reversed {
            continue;
        }
        let Some(body_close) = match_forward(tokens, body_open, '{', '}') else {
            continue;
        };
        let body = &tokens[body_open..body_close];
        let acquires_shard = body
            .windows(2)
            .any(|w| w[0].kind == TokenKind::Ident && w[0].text == "shard" && w[1].is_punct('('));
        if acquires_shard {
            violations.push(Violation {
                file: file.to_path_buf(),
                line: Some(tokens[i].line),
                message: "loop acquires shard locks while iterating in reverse — shard \
                          locks must be taken in ascending shard order (the debug-build \
                          lock witness enforces the same rule at runtime)"
                    .to_string(),
            });
        }
    }
}

/// Integer types narrower than the 64-bit file-id space.
const NARROWING_TARGETS: [&str; 9] = [
    "u8", "u16", "u32", "usize", "i8", "i16", "i32", "i64", "isize",
];

/// Identifier names the id-narrowing rule treats as file ids.
const ID_NAMES: [&str; 4] = ["id", "file", "fid", "file_id"];

/// Analyze check 4: no truncating `as` cast on u64 file ids — flags
/// `….as_u64() as <narrow>`, `<id>.0 as <narrow>` and `<id> as
/// <narrow>`. The one sanctioned narrowing is `FileId::packed48()`,
/// which checks the 48-bit bound and returns `Option`.
fn check_id_narrowing(members: &[Member], violations: &mut Vec<Violation>) {
    for member in members {
        for file in rust_sources(&member.src_dir) {
            let Ok(text) = fs::read_to_string(&file) else {
                continue;
            };
            scan_id_narrowing(&file, &code_tokens(&text), violations);
        }
    }
}

/// The id-narrowing rule for one file's tokens.
fn scan_id_narrowing(file: &Path, tokens: &[Token], violations: &mut Vec<Violation>) {
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("as") {
            continue;
        }
        let Some(target) = tokens.get(i + 1) else {
            continue;
        };
        if target.kind != TokenKind::Ident || !NARROWING_TARGETS.contains(&target.text.as_str()) {
            continue;
        }
        let Some(prev) = i.checked_sub(1) else {
            continue;
        };
        let source = &tokens[prev];
        let flagged = if source.is_punct(')') {
            // `expr.as_u64() as u32` — the call being cast is as_u64.
            match_backward(tokens, prev, '(', ')')
                .and_then(|open| open.checked_sub(1))
                .and_then(|j| tokens.get(j))
                .is_some_and(|t| t.is_ident("as_u64"))
        } else if source.kind == TokenKind::Number && source.text == "0" {
            // `file.0 as usize` — raw tuple access on an id binding.
            prev.checked_sub(2)
                .map(|j| {
                    tokens[j + 1].is_punct('.')
                        && tokens[j].kind == TokenKind::Ident
                        && ID_NAMES.contains(&tokens[j].text.as_str())
                })
                .unwrap_or(false)
        } else {
            // `id as u32` — a bare id binding cast narrower.
            source.kind == TokenKind::Ident && ID_NAMES.contains(&source.text.as_str())
        };
        if flagged {
            violations.push(Violation {
                file: file.to_path_buf(),
                line: Some(target.line),
                message: format!(
                    "truncating `as {}` cast on a u64 file id — ids are 64-bit; 48-bit \
                     packing must go through the checked `FileId::packed48()` helper",
                    target.text
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_name_parses_quoted_value() {
        let toml = "[package]\nname = \"fgcache-cache\"\nversion = \"0.1.0\"\n";
        assert_eq!(package_name(toml).as_deref(), Some("fgcache-cache"));
    }

    #[test]
    fn package_name_ignores_other_sections() {
        let toml = "[dependencies]\nname = \"nope\"\n[package]\nname = \"real\"\n";
        assert_eq!(package_name(toml).as_deref(), Some("real"));
    }

    #[test]
    fn panic_scan_flags_unwrap_but_not_comments_or_tests() {
        let src = "\
fn f() {\n\
    let x = g().unwrap();\n\
    // a comment mentioning .unwrap() is fine\n\
}\n\
#[cfg(test)]\n\
mod tests {\n\
    fn t() { h().unwrap(); }\n\
}\n";
        let mut v = Vec::new();
        scan_panic_markers(Path::new("x.rs"), src, &mut v);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, Some(2));
    }

    #[test]
    fn panic_scan_flags_todo_and_unimplemented() {
        let src = "fn a() { todo!() }\nfn b() { unimplemented!(\"later\") }\n";
        let mut v = Vec::new();
        scan_panic_markers(Path::new("x.rs"), src, &mut v);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn lint_passes_on_this_workspace() {
        let root = workspace_root();
        let members = workspace_members(&root);
        assert!(
            members.iter().any(|m| m.name == "xtask"),
            "xtask must lint itself"
        );
        let allowed: Vec<String> = members.iter().map(|m| m.name.clone()).collect();
        let mut violations = Vec::new();
        check_dependency_allowlist(&root, &members, &allowed, &mut violations);
        check_crate_attributes(&members, &mut violations);
        check_panic_free_sources(&members, &mut violations);
        check_lock_discipline(&members, &mut violations);
        check_socket_confinement(&members, &mut violations);
        let rendered: Vec<String> = violations.iter().map(Violation::to_string).collect();
        assert!(rendered.is_empty(), "violations: {rendered:#?}");
    }

    #[test]
    fn socket_scan_flags_use_but_not_comments_or_tests() {
        let src = "\
use std::net::TcpStream;\n\
// a comment mentioning std::net is fine\n\
fn f() {}\n\
#[cfg(test)]\n\
mod tests {\n\
    use std::net::TcpListener;\n\
}\n";
        let mut v = Vec::new();
        scan_socket_use(Path::new("x.rs"), src, &mut v);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, Some(1));
    }

    #[test]
    fn socket_confinement_exempts_the_net_crate() {
        let root = workspace_root();
        let members = workspace_members(&root);
        let net: Vec<&Member> = members.iter().filter(|m| m.name == "fgcache-net").collect();
        assert_eq!(net.len(), 1, "fgcache-net must be a workspace member");
        // Sanity: the net crate really does use sockets, so the exemption
        // is load-bearing rather than vacuous.
        let server = net[0].src_dir.join("server.rs");
        let text = fs::read_to_string(server).unwrap();
        assert!(text.contains(concat!("std::ne", "t")));
    }

    #[test]
    fn socket_confinement_covers_the_cluster_crate() {
        let root = workspace_root();
        let cluster: Vec<Member> = workspace_members(&root)
            .into_iter()
            .filter(|m| m.name == "fgcache-cluster")
            .collect();
        assert_eq!(
            cluster.len(),
            1,
            "fgcache-cluster must be a workspace member"
        );
        // The cluster crate reaches peers via injected Transports only —
        // its sources must scan clean, and the scan must actually run
        // (no exemption): a seeded socket use at a cluster-like path is
        // flagged by the same scanner the check applies to the crate.
        let mut v = Vec::new();
        check_socket_confinement(&cluster, &mut v);
        assert!(v.is_empty(), "cluster must not touch sockets: {v:?}");
        let seeded = "use std::net::TcpStream;\nfn dial() {}\n";
        scan_socket_use(Path::new("crates/cluster/src/node.rs"), seeded, &mut v);
        assert_eq!(v.len(), 1, "a socket use in cluster code must be flagged");
    }

    #[test]
    fn lock_scan_flags_single_line_chain() {
        let src = "fn f(m: &std::sync::Mutex<u32>) { let _ = m.lock().unwrap(); }\n";
        let mut v = Vec::new();
        scan_lock_unwrap(Path::new("x.rs"), src, &mut v);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, Some(1));
        assert!(
            v[0].to_string().contains("lock discipline") || v[0].to_string().contains("expect")
        );
    }

    #[test]
    fn lock_scan_flags_chain_split_across_lines() {
        let src = "\
fn f(m: &std::sync::Mutex<u32>) {\n\
    let _ = m\n\
        .lock()\n\
        .unwrap();\n\
}\n";
        let mut v = Vec::new();
        scan_lock_unwrap(Path::new("x.rs"), src, &mut v);
        assert_eq!(v.len(), 1, "{v:?}");
        // The violation points at the `.lock()` line.
        assert_eq!(v[0].line, Some(3));
    }

    #[test]
    fn lock_scan_allows_expect_and_skips_tests_and_comments() {
        let src = "\
fn f(m: &std::sync::Mutex<u32>) {\n\
    let _ = m.lock().expect(\"shard poisoned\");\n\
    // commentary: .lock().unwrap() is forbidden\n\
}\n\
#[cfg(test)]\n\
mod tests {\n\
    fn t(m: &std::sync::Mutex<u32>) { m.lock().unwrap(); }\n\
}\n";
        let mut v = Vec::new();
        scan_lock_unwrap(Path::new("x.rs"), src, &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn lock_scan_catches_violation_after_mid_file_test_module() {
        // Regression: the old line scan truncated at the first
        // `#[cfg(test)]` and never saw library code below it.
        let src = "\
#[cfg(test)]\n\
mod tests {\n\
    fn t(m: &std::sync::Mutex<u32>) { m.lock().unwrap(); }\n\
}\n\
fn f(m: &std::sync::Mutex<u32>) {\n\
    let _ = m.lock().unwrap();\n\
}\n";
        let mut v = Vec::new();
        scan_lock_unwrap(Path::new("x.rs"), src, &mut v);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, Some(6));
    }

    #[test]
    fn lock_scan_ignores_chain_inside_string_literal() {
        let src = "fn f() -> &'static str { \"call .lock().unwrap() they said\" }\n";
        let mut v = Vec::new();
        scan_lock_unwrap(Path::new("x.rs"), src, &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn lock_scan_survives_comment_between_calls() {
        let src = "\
fn f(m: &std::sync::Mutex<u32>) {\n\
    let _ = m\n\
        .lock()\n\
        // why would anyone write this\n\
        .unwrap();\n\
}\n";
        let mut v = Vec::new();
        scan_lock_unwrap(Path::new("x.rs"), src, &mut v);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, Some(3));
    }

    #[test]
    fn socket_scan_ignores_string_and_sees_past_test_module() {
        let src = "\
fn f() -> &'static str { \"std::net is mentioned here\" }\n\
#[cfg(test)]\n\
mod tests {}\n\
use std::net::TcpStream;\n";
        let mut v = Vec::new();
        scan_socket_use(Path::new("x.rs"), src, &mut v);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, Some(4));
    }

    /// Runs one tokenizer-based scanner over fixture source text.
    fn scan_fixture(
        src: &str,
        scan: impl Fn(&Path, &[Token], &mut Vec<Violation>),
    ) -> Vec<Violation> {
        let mut v = Vec::new();
        scan(Path::new("fixture.rs"), &code_tokens(src), &mut v);
        v
    }

    #[test]
    fn seqcst_ban_flags_code_not_comments_or_tests() {
        // Assembled at runtime so this test file never contains the
        // banned token itself.
        let banned = "Seq\u{43}st";
        let src = format!(
            "// Ordering::{banned} in a comment is fine\n\
             fn f(a: &std::sync::atomic::AtomicU64) {{\n\
                 a.store(1, Ordering::{banned});\n\
             }}\n\
             #[cfg(test)]\n\
             mod tests {{\n\
                 fn t(a: &std::sync::atomic::AtomicU64) {{ a.load(Ordering::{banned}); }}\n\
             }}\n"
        );
        let mut v = Vec::new();
        for t in code_tokens(&src) {
            if t.kind == TokenKind::Ident && t.text == banned {
                v.push(t.line);
            }
        }
        assert_eq!(v, vec![3]);
    }

    #[test]
    fn atomics_discipline_accepts_the_documented_patterns() {
        let src = "\
use fgcache_types::sync::{AtomicU64, Ordering};\n\
fn f(s: &Shard) {\n\
    let _ = s.slots[0].load(Ordering::Acquire);\n\
    s.slots[0].store(1, Ordering::Release);\n\
    let _ = s.head.load(Ordering::Relaxed);\n\
    s.tail.store(2, Ordering::Relaxed);\n\
    s.fast_hits.fetch_add(1, Ordering::Relaxed);\n\
    let _ = s.head.compare_exchange_weak(0, 1, Ordering::Relaxed, Ordering::Relaxed);\n\
}\n";
        let v = scan_fixture(src, scan_atomic_orderings);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn atomics_discipline_flags_relaxed_outside_the_allowlist() {
        let src = "\
use fgcache_types::sync::{AtomicU64, Ordering};\n\
fn f(s: &Shard) {\n\
    let _ = s.slots[0].load(Ordering::Relaxed);\n\
    s.value.store(1, Ordering::Relaxed);\n\
}\n";
        let v = scan_fixture(src, scan_atomic_orderings);
        assert_eq!(v.len(), 2, "{v:?}");
        assert_eq!(v[0].line, Some(3));
        assert_eq!(v[1].line, Some(4));
        assert!(v[0].to_string().contains("atomics discipline"));
    }

    #[test]
    fn atomics_discipline_is_scoped_to_facade_importers() {
        // Same violations, but the file does not import the facade:
        // the discipline pass must not fire (check_atomics_discipline
        // applies the scope test before scanning).
        let src = "\
use std::sync::atomic::{AtomicU64, Ordering};\n\
fn f(s: &Shard) { let _ = s.value.load(Ordering::Relaxed); }\n";
        let tokens = code_tokens(src);
        let imports_facade = tokens.windows(4).any(|w| {
            w[0].is_ident("fgcache_types")
                && w[1].is_punct(':')
                && w[2].is_punct(':')
                && w[3].is_ident("sync")
        });
        assert!(!imports_facade);
    }

    #[test]
    fn lock_loop_order_flags_reverse_iteration() {
        let src = "\
fn snapshot(&self) {\n\
    for i in (0..self.shards.len()).rev() {\n\
        let _guard = self.shard(i);\n\
    }\n\
}\n";
        let v = scan_fixture(src, scan_lock_loops);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, Some(2));
        assert!(v[0].to_string().contains("ascending"));
    }

    #[test]
    fn lock_loop_order_accepts_ascending_and_unrelated_rev() {
        let src = "\
fn ok(&self) {\n\
    for i in 0..self.shards.len() {\n\
        let _guard = self.shard(i);\n\
    }\n\
    for x in self.names.iter().rev() {\n\
        println!(\"{x}\");\n\
    }\n\
}\n";
        let v = scan_fixture(src, scan_lock_loops);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn id_narrowing_flags_each_truncating_pattern() {
        let src = "\
fn f(file: FileId, id: u64) {\n\
    let a = file.as_u64() as u32;\n\
    let b = file.0 as usize;\n\
    let c = id as u16;\n\
}\n";
        let v = scan_fixture(src, scan_id_narrowing);
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v[0].to_string().contains("packed48"));
    }

    #[test]
    fn id_narrowing_accepts_hashes_and_checked_helper() {
        let src = "\
fn f(file: FileId, id: u64) -> Option<u64> {\n\
    let pos = mix64(id) as usize;\n\
    let n = values.len() as u32;\n\
    let d = seq.wrapping_sub(pos) as i64;\n\
    file.packed48()\n\
}\n";
        let v = scan_fixture(src, scan_id_narrowing);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn analyze_passes_on_this_workspace() {
        let root = workspace_root();
        let members = workspace_members(&root);
        let mut violations = Vec::new();
        check_seqcst_ban(&members, &mut violations);
        check_atomics_discipline(&members, &mut violations);
        check_lock_loop_order(&members, &mut violations);
        check_id_narrowing(&members, &mut violations);
        let rendered: Vec<String> = violations.iter().map(Violation::to_string).collect();
        assert!(rendered.is_empty(), "violations: {rendered:#?}");
    }

    #[test]
    fn soak_seed_schedule_is_deterministic_and_distinct() {
        let r1: Vec<u64> = (0..5).map(|i| splitmix64(8 + i)).collect();
        let r1_again: Vec<u64> = (0..5).map(|i| splitmix64(8 + i)).collect();
        let r2: Vec<u64> = (0..5).map(|i| splitmix64(16 + i)).collect();
        assert_eq!(r1, r1_again);
        assert_ne!(r1, r2);
    }

    #[test]
    fn parse_minutes_accepts_and_rejects() {
        let args = |s: &[&str]| s.iter().map(|a| a.to_string()).collect::<Vec<_>>();
        assert_eq!(parse_minutes(&args(&[])), Ok(None));
        assert_eq!(parse_minutes(&args(&["--minutes", "3"])), Ok(Some(3)));
        assert!(parse_minutes(&args(&["--minutes"])).is_err());
        assert!(parse_minutes(&args(&["--minutes", "soon"])).is_err());
    }

    #[test]
    fn parse_threads_accepts_and_rejects() {
        let args = |s: &[&str]| s.iter().map(|a| a.to_string()).collect::<Vec<_>>();
        assert_eq!(parse_threads(&args(&[])), Ok(None));
        assert_eq!(parse_threads(&args(&["--threads", "4"])), Ok(Some(4)));
        assert!(parse_threads(&args(&["--threads"])).is_err());
        assert!(parse_threads(&args(&["--threads", "0"])).is_err());
        assert!(parse_threads(&args(&["--threads", "many"])).is_err());
    }

    #[test]
    fn allowlist_rejects_external_crates() {
        let tmp = std::env::temp_dir().join("xtask-allowlist-test");
        let crate_dir = tmp.join("crates").join("demo");
        fs::create_dir_all(crate_dir.join("src")).unwrap();
        fs::write(
            tmp.join("Cargo.toml"),
            "[package]\nname = \"demo-root\"\n[dependencies]\nserde = \"1\"\n",
        )
        .unwrap();
        fs::write(
            crate_dir.join("Cargo.toml"),
            "[package]\nname = \"demo\"\n[dependencies]\ndemo-root = \"0.1\"\n",
        )
        .unwrap();
        fs::write(crate_dir.join("src").join("lib.rs"), "").unwrap();
        let members = workspace_members(&tmp);
        let allowed: Vec<String> = members.iter().map(|m| m.name.clone()).collect();
        let mut violations = Vec::new();
        check_dependency_allowlist(&tmp, &members, &allowed, &mut violations);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].to_string().contains("serde"));
        fs::remove_dir_all(&tmp).ok();
    }
}

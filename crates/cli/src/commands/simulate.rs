//! `fgcache simulate` — run one cache over a trace.

use std::error::Error;

use fgcache_cache::{Cache, PolicyKind};
use fgcache_core::AggregatingCacheBuilder;
use fgcache_trace::Trace;

use crate::args::Args;
use crate::commands::load_trace;

pub(crate) fn simulate(
    trace: &Trace,
    policy: &str,
    capacity: usize,
    group: usize,
    successors: usize,
) -> Result<String, Box<dyn Error>> {
    let mut out = String::new();
    if policy == "agg" {
        let mut cache = AggregatingCacheBuilder::new(capacity)
            .group_size(group)
            .successor_capacity(successors)
            .build()?;
        for ev in trace.events() {
            cache.handle_access(ev.file);
        }
        let stats = Cache::stats(&cache);
        out.push_str(&format!(
            "aggregating cache: capacity {capacity}, group size {group}, successors {successors}\n"
        ));
        out.push_str(&format!("accesses          {}\n", stats.accesses));
        out.push_str(&format!("demand fetches    {}\n", cache.demand_fetches()));
        out.push_str(&format!(
            "hit rate          {:.1}%\n",
            stats.hit_rate() * 100.0
        ));
        out.push_str(&format!(
            "files transferred {} ({:.2} per fetch)\n",
            cache.group_stats().files_transferred,
            cache.group_stats().mean_group_size()
        ));
        out.push_str(&format!(
            "prefetch accuracy {:.1}%\n",
            stats.speculative_accuracy() * 100.0
        ));
        out.push_str(&format!("metadata entries  {}\n", cache.metadata_entries()));
    } else {
        let kind: PolicyKind = policy
            .parse()
            .map_err(|e| format!("{e} (or \"agg\" for the aggregating cache)"))?;
        let mut cache = kind.build(capacity);
        for ev in trace.events() {
            cache.access(ev.file);
        }
        let stats = cache.stats();
        out.push_str(&format!("{kind} cache: capacity {capacity}\n"));
        out.push_str(&format!("accesses       {}\n", stats.accesses));
        out.push_str(&format!("misses         {}\n", stats.misses));
        out.push_str(&format!(
            "hit rate       {:.1}%\n",
            stats.hit_rate() * 100.0
        ));
        out.push_str(&format!("evictions      {}\n", stats.evictions));
    }
    Ok(out)
}

pub fn run(tokens: &[String]) -> Result<(), Box<dyn Error>> {
    let args = Args::parse(tokens.iter().cloned())?;
    args.check_known(&["format", "policy", "capacity", "group", "successors"])?;
    let path = args.require_positional(0, "trace")?;
    let trace = load_trace(path, args.flag("format"))?;
    let capacity: usize = args.require_flag("capacity")?;
    let policy = args.flag("policy").unwrap_or("agg");
    let group = args.flag_or("group", 5usize)?;
    let successors = args.flag_or("successors", 8usize)?;
    print!("{}", simulate(&trace, policy, capacity, group, successors)?);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Trace {
        Trace::from_files((0..500u64).map(|i| i % 17))
    }

    #[test]
    fn plain_policy_report() {
        let text = simulate(&trace(), "lru", 10, 5, 8).unwrap();
        assert!(text.contains("lru cache: capacity 10"));
        assert!(text.contains("accesses       500"));
    }

    #[test]
    fn aggregating_report() {
        let text = simulate(&trace(), "agg", 10, 3, 4).unwrap();
        assert!(text.contains("aggregating cache"));
        assert!(text.contains("demand fetches"));
        assert!(text.contains("metadata entries"));
    }

    #[test]
    fn bad_policy_rejected() {
        assert!(simulate(&trace(), "belady", 10, 3, 4).is_err());
    }

    #[test]
    fn bad_group_rejected() {
        assert!(simulate(&trace(), "agg", 2, 5, 4).is_err());
    }
}

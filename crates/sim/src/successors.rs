//! Figure 5: likelihood of a successor replacement policy evicting a
//! future successor, as a function of the per-file list capacity.

use fgcache_successor::eval::evaluate_replacement;
use fgcache_successor::{
    DecayedSuccessorList, LfuSuccessorList, LruSuccessorList, OracleSuccessorList,
};
use fgcache_trace::Trace;
use fgcache_types::ValidationError;

use crate::parallel::parallel_map;
use crate::report::{fmt2, Table};

/// A successor-list replacement scheme under test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplacementScheme {
    /// Recency-managed list (the paper's choice).
    Lru,
    /// Frequency-managed list.
    Lfu,
    /// Unbounded oracle (upper bound; capacity is ignored).
    Oracle,
    /// Exponentially-decayed frequency with the given decay factor
    /// (future-work hybrid).
    Decayed(f64),
}

impl ReplacementScheme {
    /// Stable label used in tables.
    pub fn label(&self) -> String {
        match self {
            ReplacementScheme::Lru => "lru".to_string(),
            ReplacementScheme::Lfu => "lfu".to_string(),
            ReplacementScheme::Oracle => "oracle".to_string(),
            ReplacementScheme::Decayed(d) => format!("decay{d:.2}"),
        }
    }
}

/// Parameter grid for the successor-replacement evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct SuccessorEvalConfig {
    /// Successor-list capacities — the x-axis (paper: 1–10).
    pub capacities: Vec<usize>,
    /// Schemes to compare (paper: Oracle, LRU, LFU).
    pub schemes: Vec<ReplacementScheme>,
}

impl SuccessorEvalConfig {
    /// The paper's Figure 5 grid.
    pub fn paper() -> Self {
        SuccessorEvalConfig {
            capacities: (1..=10).collect(),
            schemes: vec![
                ReplacementScheme::Oracle,
                ReplacementScheme::Lru,
                ReplacementScheme::Lfu,
            ],
        }
    }
}

/// One measured point of the evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct SuccessorEvalPoint {
    /// Successor-list capacity.
    pub capacity: usize,
    /// Scheme label.
    pub scheme: String,
    /// Probability of missing a future successor.
    pub miss_probability: f64,
    /// Transitions evaluated.
    pub transitions: u64,
}

/// Runs the Figure 5 evaluation over `trace`.
///
/// # Errors
///
/// Returns a [`ValidationError`] if the grid is empty, a capacity is
/// zero, or a decay factor is invalid.
pub fn successor_eval(
    trace: &Trace,
    config: &SuccessorEvalConfig,
) -> Result<Vec<SuccessorEvalPoint>, ValidationError> {
    if config.capacities.is_empty() {
        return Err(ValidationError::new("capacities", "must not be empty"));
    }
    if config.schemes.is_empty() {
        return Err(ValidationError::new("schemes", "must not be empty"));
    }
    // Validate all points up front.
    for &cap in &config.capacities {
        for scheme in &config.schemes {
            match scheme {
                ReplacementScheme::Lru => {
                    LruSuccessorList::new(cap)?;
                }
                ReplacementScheme::Lfu => {
                    LfuSuccessorList::new(cap)?;
                }
                ReplacementScheme::Decayed(d) => {
                    DecayedSuccessorList::new(cap, *d)?;
                }
                ReplacementScheme::Oracle => {}
            }
        }
    }
    let mut grid = Vec::new();
    for &cap in &config.capacities {
        for scheme in &config.schemes {
            grid.push((cap, *scheme));
        }
    }
    Ok(parallel_map(&grid, |&(capacity, scheme)| {
        let result = match scheme {
            ReplacementScheme::Lru => evaluate_replacement(
                trace,
                LruSuccessorList::new(capacity).expect("validated above"),
            ),
            ReplacementScheme::Lfu => evaluate_replacement(
                trace,
                LfuSuccessorList::new(capacity).expect("validated above"),
            ),
            ReplacementScheme::Oracle => evaluate_replacement(trace, OracleSuccessorList::new()),
            ReplacementScheme::Decayed(d) => evaluate_replacement(
                trace,
                DecayedSuccessorList::new(capacity, d).expect("validated above"),
            ),
        };
        SuccessorEvalPoint {
            capacity,
            scheme: scheme.label(),
            miss_probability: result.miss_probability(),
            transitions: result.transitions,
        }
    }))
}

/// Renders the evaluation in the paper's Figure 5 layout: one row per
/// capacity, one column per scheme, cells = miss probability.
pub fn miss_probability_table(title: &str, points: &[SuccessorEvalPoint]) -> Table {
    let mut schemes: Vec<String> = points.iter().map(|p| p.scheme.clone()).collect();
    schemes.sort();
    schemes.dedup();
    let mut capacities: Vec<usize> = points.iter().map(|p| p.capacity).collect();
    capacities.sort_unstable();
    capacities.dedup();
    let mut columns = vec!["successors".to_string()];
    columns.extend(schemes.iter().cloned());
    let mut table = Table::new(title, columns);
    for &cap in &capacities {
        let mut row = vec![cap.to_string()];
        for s in &schemes {
            let cell = points
                .iter()
                .find(|p| p.capacity == cap && &p.scheme == s)
                .map(|p| fmt2(p.miss_probability))
                .unwrap_or_default();
            row.push(cell);
        }
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgcache_trace::synth::{SynthConfig, WorkloadProfile};

    fn trace() -> Trace {
        // Long enough for workload drift to make frequency counters
        // stale — the regime the paper's traces (days to a year) live in.
        SynthConfig::profile(WorkloadProfile::Server)
            .events(120_000)
            .seed(5)
            .build()
            .unwrap()
            .generate()
    }

    #[test]
    fn validation() {
        let t = Trace::from_files([1, 2]);
        assert!(successor_eval(
            &t,
            &SuccessorEvalConfig {
                capacities: vec![],
                schemes: vec![ReplacementScheme::Lru]
            }
        )
        .is_err());
        assert!(successor_eval(
            &t,
            &SuccessorEvalConfig {
                capacities: vec![1],
                schemes: vec![]
            }
        )
        .is_err());
        assert!(successor_eval(
            &t,
            &SuccessorEvalConfig {
                capacities: vec![0],
                schemes: vec![ReplacementScheme::Lru]
            }
        )
        .is_err());
        assert!(successor_eval(
            &t,
            &SuccessorEvalConfig {
                capacities: vec![1],
                schemes: vec![ReplacementScheme::Decayed(2.0)]
            }
        )
        .is_err());
    }

    #[test]
    fn oracle_bounds_all_schemes_at_every_capacity() {
        let t = trace();
        let points = successor_eval(&t, &SuccessorEvalConfig::paper()).unwrap();
        for cap in 1..=10usize {
            let get = |s: &str| {
                points
                    .iter()
                    .find(|p| p.capacity == cap && p.scheme == s)
                    .unwrap()
                    .miss_probability
            };
            let oracle = get("oracle");
            assert!(oracle <= get("lru") + 1e-12, "cap {cap}");
            assert!(oracle <= get("lfu") + 1e-12, "cap {cap}");
        }
    }

    #[test]
    fn recency_beats_frequency_for_successor_lists() {
        // The paper's Figure 5 finding. On drifting workloads frequency
        // counters go stale; recency adapts. The advantage concentrates
        // at moderate-to-large list capacities; at 2-4 entries the two
        // are within noise of each other, so we assert the mean over the
        // full 1-10 range plus per-capacity consistency (LRU never worse
        // than LFU by more than a whisker).
        let t = SynthConfig::profile(WorkloadProfile::Workstation)
            .events(120_000)
            .seed(5)
            .build()
            .unwrap()
            .generate();
        let points = successor_eval(&t, &SuccessorEvalConfig::paper()).unwrap();
        let series = |s: &str| -> Vec<f64> {
            points
                .iter()
                .filter(|p| p.scheme == s)
                .map(|p| p.miss_probability)
                .collect()
        };
        let lru = series("lru");
        let lfu = series("lfu");
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&lru) < mean(&lfu),
            "mean lru {} vs lfu {}",
            mean(&lru),
            mean(&lfu)
        );
        for (i, (l, f)) in lru.iter().zip(&lfu).enumerate() {
            assert!(l <= &(f + 0.02), "capacity {}: lru {l} vs lfu {f}", i + 1);
        }
        // The advantage is decisive once stale entries can accumulate.
        assert!(
            lru[9] < lfu[9],
            "at capacity 10: lru {} vs lfu {}",
            lru[9],
            lfu[9]
        );
    }

    #[test]
    fn miss_probability_decreases_with_capacity() {
        let t = trace();
        let cfg = SuccessorEvalConfig {
            capacities: vec![1, 4, 10],
            schemes: vec![ReplacementScheme::Lru],
        };
        let points = successor_eval(&t, &cfg).unwrap();
        assert!(points[0].miss_probability >= points[1].miss_probability - 1e-9);
        assert!(points[1].miss_probability >= points[2].miss_probability - 1e-9);
    }

    #[test]
    fn oracle_flat_across_capacities() {
        let t = trace();
        let cfg = SuccessorEvalConfig {
            capacities: vec![1, 5, 10],
            schemes: vec![ReplacementScheme::Oracle],
        };
        let points = successor_eval(&t, &cfg).unwrap();
        assert!((points[0].miss_probability - points[2].miss_probability).abs() < 1e-12);
    }

    #[test]
    fn table_layout() {
        let t = trace();
        let cfg = SuccessorEvalConfig {
            capacities: vec![1, 2],
            schemes: vec![ReplacementScheme::Lru, ReplacementScheme::Oracle],
        };
        let points = successor_eval(&t, &cfg).unwrap();
        let table = miss_probability_table("fig5", &points);
        assert!(table.render().contains("oracle"));
        assert_eq!(table.row_count(), 2);
    }

    #[test]
    fn decayed_label() {
        assert_eq!(ReplacementScheme::Decayed(0.5).label(), "decay0.50");
    }
}

//! Minimal, dependency-free argument parsing.
//!
//! The CLI keeps the workspace's dependency footprint unchanged by
//! hand-rolling flag parsing: flags are `--name value` pairs plus
//! positional arguments, which is all the subcommands need.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Parsed command-line arguments: positionals plus `--flag value` pairs.
#[derive(Debug, Clone, Default)]
pub struct Args {
    positional: Vec<String>,
    flags: HashMap<String, String>,
}

/// Error produced when arguments cannot be parsed or validated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgsError(pub String);

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Error for ArgsError {}

impl Args {
    /// Parses a raw token stream (without the program/subcommand names).
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError`] if a `--flag` has no value or a flag is
    /// repeated.
    pub fn parse<I, S>(tokens: I) -> Result<Self, ArgsError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut positional = Vec::new();
        let mut flags = HashMap::new();
        let mut iter = tokens.into_iter().map(Into::into).peekable();
        while let Some(tok) = iter.next() {
            if let Some(name) = tok.strip_prefix("--") {
                let value = iter
                    .next()
                    .ok_or_else(|| ArgsError(format!("flag --{name} requires a value")))?;
                if flags.insert(name.to_string(), value).is_some() {
                    return Err(ArgsError(format!("flag --{name} given twice")));
                }
            } else {
                positional.push(tok);
            }
        }
        Ok(Args { positional, flags })
    }

    /// The `i`-th positional argument, if present.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positional.get(i).map(String::as_str)
    }

    /// The `i`-th positional argument, or an error naming it.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError`] if the positional is missing.
    pub fn require_positional(&self, i: usize, name: &str) -> Result<&str, ArgsError> {
        self.positional(i)
            .ok_or_else(|| ArgsError(format!("missing required argument <{name}>")))
    }

    /// A string flag, if present.
    pub fn flag(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// A parsed flag with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError`] if the flag is present but unparsable.
    pub fn flag_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgsError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| ArgsError(format!("invalid value {raw:?} for --{name}"))),
        }
    }

    /// A required parsed flag.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError`] if the flag is missing or unparsable.
    pub fn require_flag<T: std::str::FromStr>(&self, name: &str) -> Result<T, ArgsError> {
        let raw = self
            .flags
            .get(name)
            .ok_or_else(|| ArgsError(format!("missing required flag --{name}")))?;
        raw.parse()
            .map_err(|_| ArgsError(format!("invalid value {raw:?} for --{name}")))
    }

    /// Rejects flags outside `allowed` (typo protection).
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError`] naming the first unknown flag.
    pub fn check_known(&self, allowed: &[&str]) -> Result<(), ArgsError> {
        for name in self.flags.keys() {
            if !allowed.contains(&name.as_str()) {
                return Err(ArgsError(format!(
                    "unknown flag --{name} (expected one of: {})",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_positionals_and_flags() {
        let a = Args::parse(["trace.txt", "--capacity", "300", "--policy", "lru"]).unwrap();
        assert_eq!(a.positional(0), Some("trace.txt"));
        assert_eq!(a.flag("capacity"), Some("300"));
        assert_eq!(a.flag_or("capacity", 0usize).unwrap(), 300);
        assert_eq!(a.flag_or("missing", 7usize).unwrap(), 7);
        assert_eq!(a.require_flag::<String>("policy").unwrap(), "lru");
    }

    #[test]
    fn missing_value_rejected() {
        let err = Args::parse(["--capacity"]).unwrap_err();
        assert!(err.to_string().contains("--capacity"));
    }

    #[test]
    fn duplicate_flag_rejected() {
        assert!(Args::parse(["--x", "1", "--x", "2"]).is_err());
    }

    #[test]
    fn unparsable_flag_value() {
        let a = Args::parse(["--n", "abc"]).unwrap();
        assert!(a.flag_or("n", 0usize).is_err());
        assert!(a.require_flag::<usize>("n").is_err());
    }

    #[test]
    fn required_things() {
        let a = Args::parse(Vec::<String>::new()).unwrap();
        assert!(a.require_positional(0, "trace").is_err());
        assert!(a.require_flag::<usize>("capacity").is_err());
    }

    #[test]
    fn unknown_flags_detected() {
        let a = Args::parse(["--ok", "1", "--oops", "2"]).unwrap();
        assert!(a.check_known(&["ok"]).is_err());
        assert!(a.check_known(&["ok", "oops"]).is_ok());
    }
}

//! Landlord: size- and cost-aware caching (Young, *On-Line File
//! Caching*, SODA 1998).
//!
//! Every file carries a **size** (capacity units it occupies) and a
//! **retrieval cost** (what fetching it is worth); both come from a
//! deterministic [`SizeCostAssigner`]. Each resident holds a *credit* in
//! `[0, cost]`. On a fetch the file is admitted with full credit; when
//! room is needed, every resident's credit is taxed proportionally to
//! its size (`credit -= δ·size`, with `δ` the smallest credit density
//! `credit/size` present) and a zero-credit file is evicted. A hit
//! renews the credit to the full cost. Landlord is `k`-competitive — the
//! generalisation of LRU the ROADMAP's cost/size item calls for.
//!
//! With the uniform assigner (size = cost = 1) the algorithm degenerates
//! **exactly** to LRU: all credit densities tie, the tie-break is LRU
//! order, and one tax round zeroes every credit uniformly. The
//! [`lru_equivalence`](#method.new) differential tests pin this
//! bit-for-bit, residency order included — which is what lets the
//! policy slot into fixed-cost experiments without perturbing them.
//!
//! Implementation notes: residency uses the same slab + intrusive-list
//! shape as [`LruCache`](crate::LruCache) (O(1) recency moves), but
//! victim selection scans all residents for the minimum credit density —
//! O(n) per eviction. That is the textbook trade: Landlord is a
//! simulation policy here, not the hot path, and the scan keeps the
//! arithmetic exactly reproducible by the naive reference model the
//! differential fuzzer checks against. Ties in credit density are broken
//! toward the least-recently-used entry, deterministically.

use fgcache_types::hash::FastMap;
use fgcache_types::sizing::SizeCostAssigner;
use fgcache_types::{AccessOutcome, FileId, InvariantViolation};

use crate::{Cache, CacheStats};

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node {
    file: FileId,
    prev: usize,
    next: usize,
    speculative: bool,
    size: u32,
    cost: u32,
    credit: f64,
}

/// A cost/size-aware cache running Young's Landlord algorithm.
///
/// `capacity` is a budget in *size units*, not files; with the uniform
/// assigner every file has size 1 and the two coincide.
///
/// ```
/// use fgcache_cache::{Cache, LandlordCache};
/// use fgcache_types::FileId;
///
/// let mut c = LandlordCache::new(2);
/// c.access(FileId(1));
/// c.access(FileId(2));
/// c.access(FileId(1));
/// c.access(FileId(3)); // evicts 2 — uniform Landlord is exactly LRU
/// assert!(!c.contains(FileId(2)));
/// assert!(c.contains(FileId(1)));
/// ```
#[derive(Debug, Clone)]
pub struct LandlordCache {
    capacity: usize,
    assigner: SizeCostAssigner,
    map: FastMap<FileId, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    used: u64,
    stats: CacheStats,
    batch_scratch: Vec<FileId>,
}

impl LandlordCache {
    /// Creates a Landlord cache with the uniform assigner (size = cost
    /// = 1 for every file), under which it behaves exactly like LRU.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        Self::with_assigner(capacity, SizeCostAssigner::uniform())
    }

    /// Creates a Landlord cache holding at most `capacity` size units,
    /// with sizes and costs drawn from `assigner`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_assigner(capacity: usize, assigner: SizeCostAssigner) -> Self {
        assert!(capacity > 0, "cache capacity must be greater than zero");
        LandlordCache {
            capacity,
            assigner,
            map: FastMap::with_capacity_and_hasher(capacity.min(1 << 20), Default::default()),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            used: 0,
            stats: CacheStats::new(),
            batch_scratch: Vec::new(),
        }
    }

    /// The configured size/cost assigner.
    pub fn assigner(&self) -> SizeCostAssigner {
        self.assigner
    }

    /// Size units currently occupied (≤ [`Cache::capacity`]).
    pub fn used_units(&self) -> u64 {
        self.used
    }

    /// Returns the resident files from most- to least-recently used.
    pub fn residents(&self) -> impl Iterator<Item = FileId> + '_ {
        let mut cursor = self.head;
        std::iter::from_fn(move || {
            if cursor == NIL {
                return None;
            }
            let node = &self.nodes[cursor];
            cursor = node.next;
            Some(node.file)
        })
    }

    fn alloc(&mut self, file: FileId, speculative: bool, credit: f64) -> usize {
        let node = Node {
            file,
            prev: NIL,
            next: NIL,
            speculative,
            size: self.assigner.size_of(file),
            cost: self.assigner.cost_of(file),
            credit,
        };
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = node;
            idx
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
    }

    fn push_head(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn push_tail(&mut self, idx: usize) {
        self.nodes[idx].next = NIL;
        self.nodes[idx].prev = self.tail;
        if self.tail != NIL {
            self.nodes[self.tail].next = idx;
        }
        self.tail = idx;
        if self.head == NIL {
            self.head = idx;
        }
    }

    /// The eviction victim: the resident with the minimum credit
    /// density `credit/size`, ties broken toward the LRU tail. Scanning
    /// tail→head with a strict `<` makes the first minimum seen (the
    /// most tail-ward) win, which is what keeps uniform Landlord
    /// bit-identical to LRU.
    fn victim(&self) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        let mut cursor = self.tail;
        while cursor != NIL {
            let node = &self.nodes[cursor];
            let density = node.credit / f64::from(node.size);
            if best.is_none_or(|(_, d)| density < d) {
                best = Some((cursor, density));
            }
            cursor = node.prev;
        }
        best.map(|(idx, _)| idx)
    }

    fn evict(&mut self, idx: usize) {
        let file = self.nodes[idx].file;
        self.used -= u64::from(self.nodes[idx].size);
        self.detach(idx);
        self.map.remove(&file);
        self.free.push(idx);
        self.stats.record_eviction();
    }

    /// Frees space until `need` more units fit. Callers guarantee
    /// `need <= capacity`, so the loop always terminates.
    fn make_room(&mut self, need: u64) {
        debug_assert!(need <= self.capacity as u64);
        while self.used + need > self.capacity as u64 {
            let Some(victim) = self.victim() else {
                break; // unreachable under the caller guarantee
            };
            let v = &self.nodes[victim];
            let delta = v.credit / f64::from(v.size);
            if delta > 0.0 {
                // Tax every resident in proportion to its size. Each
                // entry's update depends only on its own state and δ,
                // so iteration order cannot affect the outcome.
                for &idx in self.map.values() {
                    let node = &mut self.nodes[idx];
                    node.credit = (node.credit - delta * f64::from(node.size)).max(0.0);
                }
            }
            self.evict(victim);
        }
    }
}

impl Cache for LandlordCache {
    fn access(&mut self, file: FileId) -> AccessOutcome {
        if let Some(&idx) = self.map.get(&file) {
            let node = &mut self.nodes[idx];
            let was_speculative = std::mem::replace(&mut node.speculative, false);
            // Landlord permits renewing to anything up to the full
            // cost; renew fully (the LRU-generalising choice).
            node.credit = f64::from(node.cost);
            self.detach(idx);
            self.push_head(idx);
            self.stats.record_hit(was_speculative);
            return AccessOutcome::Hit;
        }
        self.stats.record_miss();
        let size = u64::from(self.assigner.size_of(file));
        if size > self.capacity as u64 {
            // The file cannot fit even in an empty cache: serve the
            // miss without admitting (evicting the entire cache for an
            // uncacheable file would be strictly worse).
            return AccessOutcome::Miss;
        }
        self.make_room(size);
        let cost = f64::from(self.assigner.cost_of(file));
        let idx = self.alloc(file, false, cost);
        self.push_head(idx);
        self.map.insert(file, idx);
        self.used += size;
        AccessOutcome::Miss
    }

    fn insert_speculative(&mut self, file: FileId) -> bool {
        if self.map.contains_key(&file) {
            return false;
        }
        let size = u64::from(self.assigner.size_of(file));
        if size > self.capacity as u64 {
            return false;
        }
        self.make_room(size);
        // Zero credit: speculative entries are the first taxed away,
        // exactly as LRU-tail insertion makes them the first evicted.
        let idx = self.alloc(file, true, 0.0);
        self.push_tail(idx);
        self.map.insert(file, idx);
        self.used += size;
        self.stats.record_speculative_insert();
        true
    }

    /// Appends the batch at the LRU tail in `files` order, making room
    /// for the whole batch up front so members never evict each other
    /// (mirrors [`LruCache`](crate::LruCache)'s batch semantics; at
    /// uniform sizes the two are bit-identical).
    fn insert_speculative_batch(&mut self, files: &[FileId]) {
        let mut fresh = std::mem::take(&mut self.batch_scratch);
        fresh.clear();
        let mut batch_units = 0u64;
        for &file in files {
            let size = u64::from(self.assigner.size_of(file));
            if batch_units + size > self.capacity as u64 {
                break;
            }
            if !self.map.contains_key(&file) && !fresh.contains(&file) {
                fresh.push(file);
                batch_units += size;
            }
        }
        self.make_room(batch_units);
        for &file in &fresh {
            let idx = self.alloc(file, true, 0.0);
            self.push_tail(idx);
            self.map.insert(file, idx);
            self.used += u64::from(self.nodes[idx].size);
            self.stats.record_speculative_insert();
        }
        self.batch_scratch = fresh;
    }

    fn contains(&self, file: FileId) -> bool {
        self.map.contains_key(&file)
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn name(&self) -> &'static str {
        "landlord"
    }

    fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.used = 0;
        self.stats = CacheStats::new();
    }

    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        let err = |detail: String| Err(InvariantViolation::new("LandlordCache", detail));
        if self.used > self.capacity as u64 {
            return err(format!(
                "{} units used exceeds capacity {}",
                self.used, self.capacity
            ));
        }
        if self.map.len() + self.free.len() != self.nodes.len() {
            return err(format!(
                "slab accounting: {} mapped + {} free != {} slots",
                self.map.len(),
                self.free.len(),
                self.nodes.len()
            ));
        }
        // Walk head→tail checking links, map agreement, credit bounds
        // and the size/cost assignment, summing occupancy as we go.
        let mut seen = 0usize;
        let mut units = 0u64;
        let mut prev = NIL;
        let mut cursor = self.head;
        while cursor != NIL {
            if cursor >= self.nodes.len() {
                return err(format!("link points to out-of-slab index {cursor}"));
            }
            let node = &self.nodes[cursor];
            if node.prev != prev {
                return err(format!(
                    "broken back-link at slot {cursor} ({} != expected {})",
                    node.prev, prev
                ));
            }
            if self.map.get(&node.file) != Some(&cursor) {
                return err(format!("map disagrees with chain for {}", node.file));
            }
            if node.size != self.assigner.size_of(node.file)
                || node.cost != self.assigner.cost_of(node.file)
            {
                return err(format!(
                    "{} carries size {} cost {} but the assigner says {} / {}",
                    node.file,
                    node.size,
                    node.cost,
                    self.assigner.size_of(node.file),
                    self.assigner.cost_of(node.file)
                ));
            }
            if !(0.0..=f64::from(node.cost)).contains(&node.credit) {
                return err(format!(
                    "{} credit {} outside [0, cost {}]",
                    node.file, node.credit, node.cost
                ));
            }
            units += u64::from(node.size);
            seen += 1;
            if seen > self.map.len() {
                return err("chain longer than map (cycle or stray node)".to_string());
            }
            prev = cursor;
            cursor = node.next;
        }
        if seen != self.map.len() {
            return err(format!(
                "chain has {seen} nodes, map has {}",
                self.map.len()
            ));
        }
        if prev != self.tail {
            return err(format!("tail is {}, walk ended at {prev}", self.tail));
        }
        if units != self.used {
            return err(format!(
                "occupancy counter {} != {} summed over residents",
                self.used, units
            ));
        }
        for &idx in &self.free {
            if idx >= self.nodes.len() {
                return err(format!("free list holds out-of-slab index {idx}"));
            }
            if self.map.get(&self.nodes[idx].file) == Some(&idx) {
                return err(format!("slot {idx} is both free and mapped"));
            }
        }
        self.stats.check("LandlordCache")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::check_cache_conformance;
    use crate::LruCache;
    use fgcache_types::rng::RandomSource;
    use fgcache_types::sizing::SizeDistribution;
    use fgcache_types::SeededRng;

    fn sized(capacity: usize, dist: SizeDistribution, seed: u64) -> LandlordCache {
        LandlordCache::with_assigner(capacity, SizeCostAssigner::new(dist, seed))
    }

    #[test]
    fn conformance() {
        check_cache_conformance(LandlordCache::new);
    }

    #[test]
    #[should_panic(expected = "capacity must be greater than zero")]
    fn zero_capacity_panics() {
        let _ = LandlordCache::new(0);
    }

    #[test]
    fn uniform_is_bit_identical_to_lru() {
        // Same outcomes, same statistics, same residency order, for a
        // long randomized demand/speculative mix at several capacities.
        for capacity in [1usize, 2, 5, 16, 64] {
            let mut rng = SeededRng::new(0xFEED_FACE ^ capacity as u64);
            let mut lru = LruCache::new(capacity);
            let mut ll = LandlordCache::new(capacity);
            let universe = (capacity as u64) * 3 + 8;
            for step in 0..4_000 {
                let f = FileId(rng.gen_range_inclusive(0, universe));
                if rng.chance(0.75) {
                    let a = lru.access(f);
                    let b = ll.access(f);
                    assert_eq!(a, b, "capacity {capacity} step {step}: outcome diverged");
                } else {
                    assert_eq!(
                        lru.insert_speculative(f),
                        ll.insert_speculative(f),
                        "capacity {capacity} step {step}: speculative diverged"
                    );
                }
                if step % 7 == 0 {
                    let batch: Vec<FileId> = (0..3)
                        .map(|_| FileId(rng.gen_range_inclusive(0, universe)))
                        .collect();
                    lru.insert_speculative_batch(&batch);
                    ll.insert_speculative_batch(&batch);
                }
                let lru_order: Vec<FileId> = lru.iter_mru().collect();
                let ll_order: Vec<FileId> = ll.residents().collect();
                assert_eq!(
                    lru_order, ll_order,
                    "capacity {capacity} step {step}: residency order diverged"
                );
                ll.check_invariants().unwrap();
            }
            assert_eq!(lru.stats(), ll.stats());
        }
    }

    #[test]
    fn sized_files_occupy_their_size() {
        let mut c = sized(100, SizeDistribution::Bimodal, 1);
        let a = c.assigner();
        // Find one large (size 64) and several small files.
        let large = (0..10_000u64)
            .map(FileId)
            .find(|&f| a.size_of(f) == 64)
            .expect("bimodal population has large files");
        c.access(large);
        assert_eq!(c.used_units(), 64);
        let mut small = (0..10_000u64)
            .map(FileId)
            .filter(|&f| f != large && a.size_of(f) == 1);
        for _ in 0..36 {
            c.access(small.next().unwrap());
        }
        assert_eq!(c.used_units(), 100);
        c.check_invariants().unwrap();
        // One more unit must displace something.
        c.access(small.next().unwrap());
        assert!(c.used_units() <= 100);
        assert!(c.stats().evictions >= 1);
        c.check_invariants().unwrap();
    }

    #[test]
    fn oversized_file_is_served_but_not_admitted() {
        let mut c = sized(8, SizeDistribution::Bimodal, 1);
        let a = c.assigner();
        let large = (0..10_000u64)
            .map(FileId)
            .find(|&f| a.size_of(f) == 64)
            .unwrap();
        let small = (0..10_000u64)
            .map(FileId)
            .find(|&f| a.size_of(f) == 1)
            .unwrap();
        c.access(small);
        assert!(c.access(large).is_miss());
        assert!(!c.contains(large), "a 64-unit file cannot fit 8 units");
        assert!(c.contains(small), "resident files must survive");
        assert!(!c.insert_speculative(large));
        c.check_invariants().unwrap();
    }

    #[test]
    fn low_density_files_are_evicted_first_unlike_lru() {
        // Cost-awareness in one scenario LRU gets wrong: a large file
        // has cost 8 + 64 = 72 spread over 64 units — credit density
        // ~1.1 — while a small file's cost 9 sits on one unit (density
        // 9). Under pressure Landlord evicts the cheap-per-unit large
        // file even when it is the MOST recently used resident, where
        // LRU would instead kill the oldest small file.
        let mut c = sized(256, SizeDistribution::Bimodal, 1);
        let a = c.assigner();
        let large = (0..10_000u64)
            .map(FileId)
            .find(|&f| a.size_of(f) == 64)
            .unwrap();
        let smalls: Vec<FileId> = (0..10_000u64)
            .map(FileId)
            .filter(|&f| f != large && a.size_of(f) == 1)
            .take(193)
            .collect();
        for &f in &smalls[..192] {
            c.access(f);
        }
        c.access(large); // fills to exactly 256 units, large is MRU
        assert_eq!(c.used_units(), 256);
        c.access(smalls[192]); // needs 1 unit -> someone must go
        assert!(
            !c.contains(large),
            "the cheap-per-unit large file must be the victim"
        );
        for &f in &smalls {
            assert!(c.contains(f), "{f} should have outlived the large file");
        }
        c.check_invariants().unwrap();
    }

    #[test]
    fn batch_members_do_not_evict_each_other() {
        let mut c = LandlordCache::new(4);
        for i in 1..=4 {
            c.access(FileId(i));
        }
        c.insert_speculative_batch(&[FileId(10), FileId(11), FileId(12)]);
        assert_eq!(c.len(), 4);
        for f in [4, 10, 11, 12] {
            assert!(c.contains(FileId(f)));
        }
        c.check_invariants().unwrap();
    }

    #[test]
    fn batch_trims_to_byte_budget() {
        let mut c = sized(70, SizeDistribution::Bimodal, 1);
        let a = c.assigner();
        let large: Vec<FileId> = (0..10_000u64)
            .map(FileId)
            .filter(|&f| a.size_of(f) == 64)
            .take(2)
            .collect();
        // Two 64-unit files cannot both fit in 70 units: the batch is
        // trimmed at the budget, keeping the prefix.
        c.insert_speculative_batch(&large);
        assert!(c.contains(large[0]));
        assert!(!c.contains(large[1]));
        assert_eq!(c.used_units(), 64);
        c.check_invariants().unwrap();
    }

    // ------------------------------------------------ mutation tests ----
    // The PR-1 auditor pattern: corrupt each piece of redundant state
    // and prove check_invariants reports it.

    #[test]
    fn corrupted_occupancy_counter_is_detected() {
        let mut c = sized(100, SizeDistribution::Pareto, 5);
        for i in 0..10 {
            c.access(FileId(i));
        }
        assert!(c.check_invariants().is_ok());
        c.used += 1;
        assert!(c.check_invariants().is_err());
    }

    #[test]
    fn credit_above_cost_is_detected() {
        let mut c = sized(100, SizeDistribution::Pareto, 5);
        c.access(FileId(1));
        assert!(c.check_invariants().is_ok());
        let idx = c.map[&FileId(1)];
        c.nodes[idx].credit = f64::from(c.nodes[idx].cost) + 1.0;
        assert!(c.check_invariants().is_err());
    }

    #[test]
    fn negative_credit_is_detected() {
        let mut c = LandlordCache::new(4);
        c.access(FileId(1));
        let idx = c.map[&FileId(1)];
        c.nodes[idx].credit = -0.5;
        assert!(c.check_invariants().is_err());
    }

    #[test]
    fn corrupted_size_is_detected() {
        let mut c = sized(100, SizeDistribution::Pareto, 5);
        c.access(FileId(1));
        let idx = c.map[&FileId(1)];
        c.nodes[idx].size += 1;
        assert!(c.check_invariants().is_err());
    }

    #[test]
    fn corrupted_index_is_detected() {
        let mut c = LandlordCache::new(3);
        c.access(FileId(1));
        c.access(FileId(2));
        let idx = c.map[&FileId(1)];
        c.map.insert(FileId(1), (idx + 1) % c.nodes.len());
        assert!(c.check_invariants().is_err());
    }

    #[test]
    fn corrupted_stats_are_detected() {
        let mut c = LandlordCache::new(3);
        c.access(FileId(1));
        c.stats.hits += 1;
        assert!(c.check_invariants().is_err());
    }
}

//! The **aggregating cache** — the paper's primary contribution (§3).
//!
//! An aggregating cache is an LRU cache that, on every demand miss,
//! fetches a *group* of files instead of one: the requested file plus up
//! to `g − 1` predicted companions, found by chaining most-likely
//! immediate successors from a tiny per-file successor table. The
//! requested file enters at the MRU head; the speculative members are
//! appended at the LRU tail so that wrong guesses cost almost nothing
//! ("this avoids assigning a high priority to unconfirmed successors").
//!
//! The same component serves both of the paper's deployments:
//!
//! * **Client cache** (§4.2 / Figure 3) — sits on the raw access stream;
//!   every access feeds the successor table (stats are piggy-backed to
//!   wherever the table lives), and each miss becomes a *group* fetch from
//!   the server. The metric is demand fetches:
//!   [`AggregatingCache::demand_fetches`].
//! * **Server cache** (§4.3 / Figure 4) — sits behind an intervening
//!   client cache and sees only the *miss stream*; with no client
//!   cooperation its table is built from exactly the requests it receives
//!   ([`MetadataSource::Requests`]). With cooperating clients, piggy-backed
//!   full-stream statistics can be fed via
//!   [`AggregatingCache::observe_metadata`] ([`MetadataSource::External`]).
//!
//! The type implements [`Cache`](fgcache_cache::Cache), so it drops into
//! any simulation slot a plain policy fits — including as the server side
//! of a two-level system.
//!
//! # Examples
//!
//! ```
//! use fgcache_core::AggregatingCacheBuilder;
//! use fgcache_types::FileId;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut agg = AggregatingCacheBuilder::new(100).group_size(5).build()?;
//! // A repetitive workload: after one round, groups prefetch the rest.
//! for _ in 0..50 {
//!     for id in 0..10u64 {
//!         agg.handle_access(FileId(id));
//!     }
//! }
//! assert!(agg.hit_rate() > 0.9);
//! assert!(agg.demand_fetches() < 50); // far fewer fetches than accesses
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod aggregating;
mod builder;
pub mod cost;
pub mod sharded;

pub use aggregating::{AggregatingCache, GroupFetchStats, InsertionPolicy, MetadataSource};
pub use builder::{AggregatingCacheBuilder, DEFAULT_SUCCESSOR_CAPACITY};
pub use cost::CostModel;
pub use sharded::{ShardedAggregatingCache, ShardedAggregatingCacheBuilder};

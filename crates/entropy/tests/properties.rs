//! Property-based tests for successor entropy.

use fgcache_entropy::{
    analyze, entropy_profile, filtered_entropy, successor_entropy, successor_sequence_entropy,
};
use fgcache_trace::Trace;
use fgcache_types::FileId;
use proptest::prelude::*;

fn files(max: u64, len: usize) -> impl Strategy<Value = Vec<FileId>> {
    prop::collection::vec((0..max).prop_map(FileId), 0..len)
}

proptest! {
    #[test]
    fn entropy_is_finite_and_nonnegative(seq in files(30, 400), k in 1usize..6) {
        let h = successor_sequence_entropy(&seq, k).unwrap();
        prop_assert!(h.is_finite());
        prop_assert!(h >= 0.0);
    }

    #[test]
    fn entropy_bounded_by_alphabet(seq in files(16, 400)) {
        // H_S is a weighted average of conditional entropies, each of
        // which is at most log2(#distinct successor symbols) <= log2(16).
        let h = successor_entropy(&seq);
        prop_assert!(h <= 4.0 + 1e-9, "h = {h}");
    }

    #[test]
    fn constant_sequence_has_zero_entropy(len in 2usize..200, f in 0u64..5) {
        let seq = vec![FileId(f); len];
        prop_assert_eq!(successor_entropy(&seq), 0.0);
    }

    #[test]
    fn entropy_invariant_under_relabelling(seq in files(10, 300), k in 1usize..4) {
        // Renaming file ids must not change the entropy.
        let relabelled: Vec<FileId> = seq.iter().map(|f| FileId(f.as_u64() * 7 + 1000)).collect();
        let a = successor_sequence_entropy(&seq, k).unwrap();
        let b = successor_sequence_entropy(&relabelled, k).unwrap();
        prop_assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn repetition_reduces_entropy_contribution(seq in files(8, 60)) {
        // Repeating the whole sequence many times converges H toward the
        // "steady" conditional structure; it must never become negative
        // and stays bounded.
        let repeated: Vec<FileId> = seq
            .iter()
            .cycle()
            .take(seq.len() * 10)
            .copied()
            .collect();
        let h = successor_entropy(&repeated);
        prop_assert!(h >= 0.0 && h.is_finite());
    }

    #[test]
    fn analysis_consistent_with_entropy(seq in files(12, 300), k in 1usize..4) {
        let a = analyze(&seq, k).unwrap();
        let direct = successor_sequence_entropy(&seq, k).unwrap();
        prop_assert!((a.entropy - direct).abs() < 1e-12);
        // Recomputing the weighted sum from the per-file breakdown agrees.
        let recomputed: f64 = a
            .per_file
            .iter()
            .map(|e| e.weight * e.conditional_entropy)
            .sum();
        prop_assert!((recomputed - a.entropy).abs() < 1e-9);
        for e in &a.per_file {
            prop_assert!(e.weight > 0.0 && e.weight <= 1.0);
            prop_assert!(e.conditional_entropy >= 0.0);
            prop_assert!(e.distinct_successors as u64 <= e.transitions);
        }
    }

    #[test]
    fn profile_matches_pointwise_calls(seq in files(10, 200)) {
        let ks = [1usize, 2, 3];
        let profile = entropy_profile(&seq, &ks).unwrap();
        for (k, h) in profile {
            let direct = successor_sequence_entropy(&seq, k).unwrap();
            prop_assert!((h - direct).abs() < 1e-12);
        }
    }

    #[test]
    fn filtered_entropy_is_finite(
        ids in prop::collection::vec(0u64..25, 0..300),
        cap in 1usize..20,
        k in 1usize..4,
    ) {
        let trace = Trace::from_files(ids);
        let h = filtered_entropy(&trace, cap, k).unwrap();
        prop_assert!(h.is_finite() && h >= 0.0);
    }
}

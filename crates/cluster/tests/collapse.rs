//! Single-flight collapse through a whole [`ClusterNode`], asserted via
//! [`TransportStats`]: N threads missing on the same non-owned group
//! must cost exactly one upstream fetch.

use std::sync::{Arc, Condvar, Mutex};

use fgcache_cluster::{ClusterNode, ClusterView, NodeId};
use fgcache_core::{CostModel, ShardedAggregatingCache, ShardedAggregatingCacheBuilder};
use fgcache_net::{GroupReply, GroupRequest, SimTransport, Transport, TransportStats};
use fgcache_types::{FileId, TransportError};

/// A gate shared between the test driver and the in-flight leader: the
/// leader blocks inside its upstream fetch until the driver opens it.
#[derive(Default)]
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn wait(&self) {
        let mut open = self.open.lock().expect("gate");
        while !*open {
            open = self.cv.wait(open).expect("gate");
        }
    }

    fn release(&self) {
        *self.open.lock().expect("gate") = true;
        self.cv.notify_all();
    }
}

/// Wraps the peer transport so the leader's fetch parks on the gate,
/// guaranteeing every other thread joins the flight as a waiter.
struct GatedTransport {
    inner: SimTransport<'static>,
    gate: Arc<Gate>,
}

impl Transport for GatedTransport {
    fn fetch_group(&mut self, request: &GroupRequest) -> Result<GroupReply, TransportError> {
        self.gate.wait();
        self.inner.fetch_group(request)
    }

    fn fetch_owned(&mut self, request: &GroupRequest) -> Result<GroupReply, TransportError> {
        self.gate.wait();
        self.inner.fetch_owned(request)
    }

    fn stats(&self) -> TransportStats {
        self.inner.stats()
    }
}

fn cache() -> Arc<ShardedAggregatingCache> {
    Arc::new(
        ShardedAggregatingCacheBuilder::new(64)
            .shards(2)
            .group_size(3)
            .build()
            .expect("valid config"),
    )
}

#[test]
fn concurrent_misses_for_one_group_cost_one_upstream_fetch() {
    const THREADS: usize = 8;
    let gate = Arc::new(Gate::default());
    let remote = cache();
    let node = Arc::new(ClusterNode::new(NodeId(1), cache(), {
        let gate = Arc::clone(&gate);
        let remote = Arc::clone(&remote);
        Box::new(move |_peer, _addr| {
            Ok(Box::new(GatedTransport {
                inner: SimTransport::to_shared_arc(Arc::clone(&remote), CostModel::remote()),
                gate: Arc::clone(&gate),
            }))
        })
    }));
    node.apply_view(ClusterView::new(
        1,
        [
            (NodeId(1), "sim://1".to_string()),
            (NodeId(2), "sim://2".to_string()),
        ],
    ));
    // A group owned by the peer, so every serve must proxy.
    let view = node.view();
    let ring = view.ring();
    let file = (0..)
        .map(FileId)
        .find(|&f| ring.owner(f) == Some(NodeId(2)))
        .expect("rendezvous spreads ownership");

    let handles: Vec<_> = (0..THREADS)
        .map(|i| {
            let node = Arc::clone(&node);
            std::thread::spawn(move || node.serve(i as u64, &[file]))
        })
        .collect();
    // Park until all non-leader threads are waiting on the flight, then
    // let the leader's upstream fetch proceed. This makes the collapse
    // deterministic rather than a race the test usually wins.
    while node.flight_waiters() < THREADS - 1 {
        std::thread::yield_now();
    }
    gate.release();
    for handle in handles {
        let reply = handle.join().expect("serve thread");
        assert_eq!(reply.files.len(), 1);
    }

    // The acceptance assertion: one executed upstream request for eight
    // concurrent misses, visible in TransportStats.
    let upstream = node.transport_stats();
    assert_eq!(upstream.requests, 1, "collapsed into one upstream fetch");
    assert_eq!(upstream.round_trips, 1);
    let stats = node.stats();
    assert_eq!(stats.proxied, 1, "one leader");
    assert_eq!(stats.collapsed as usize, THREADS - 1, "the rest collapsed");
    assert_eq!(stats.local_serves, 0);
    assert_eq!(remote.stats().accesses, 1, "the owner executed once");
}

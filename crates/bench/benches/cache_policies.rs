//! Throughput of every replacement policy (and the aggregating cache)
//! driving a realistic workload — accesses per second at simulation
//! scale. These are performance benches for the substrate; the figure
//! *reproductions* live in `benches/figures.rs` and the `repro_*` bins.

use fgcache_bench::harness;
use fgcache_cache::{Cache, LruCache, PolicyKind};
use fgcache_core::AggregatingCacheBuilder;
use fgcache_trace::synth::{SynthConfig, WorkloadProfile};
use fgcache_trace::Trace;
use fgcache_types::FileId;
use std::hint::black_box;

const EVENTS: usize = 20_000;
const CAPACITY: usize = 300;

fn workload() -> Trace {
    SynthConfig::profile(WorkloadProfile::Workstation)
        .events(EVENTS)
        .seed(42)
        .build()
        .expect("profile is valid")
        .generate()
}

fn main() {
    let trace = workload();

    for kind in PolicyKind::ALL {
        harness::run(
            &format!("policy_access/{kind}"),
            Some(EVENTS as u64),
            || {
                let mut cache = kind.build(CAPACITY);
                for ev in trace.events() {
                    black_box(cache.access(ev.file));
                }
                cache.stats().hits
            },
        );
    }

    for g in [1usize, 2, 5, 10] {
        harness::run(
            &format!("aggregating_access/group_size_{g}"),
            Some(EVENTS as u64),
            || {
                let mut cache = AggregatingCacheBuilder::new(CAPACITY)
                    .group_size(g)
                    .build()
                    .expect("valid config");
                for ev in trace.events() {
                    black_box(cache.handle_access(ev.file));
                }
                cache.demand_fetches()
            },
        );
    }

    let batch: Vec<FileId> = (0..8u64).map(FileId).collect();
    let mut cache = LruCache::new(CAPACITY);
    for i in 0..CAPACITY as u64 {
        cache.access(FileId(1000 + i));
    }
    harness::run("lru_speculative_batch_8", Some(8), || {
        cache.insert_speculative_batch(black_box(&batch));
        for f in &batch {
            cache.access(*f); // reset for next iteration's realism
        }
    });
}

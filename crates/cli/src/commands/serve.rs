//! `fgcache serve` — run a TCP group-fetch server over a sharded
//! aggregating cache, standalone or as one cluster node.
//!
//! ```text
//! fgcache serve --capacity 400 [--addr 127.0.0.1:0] [--shards 4]
//!               [--group 5] [--successors 8] [--dedup 1024]
//!               [--max-conns 1024] [--workers 4]
//!               [--node-id 1 [--peers 1=HOST:PORT,2=HOST:PORT,...]]
//! ```
//!
//! The server prints `listening on HOST:PORT` (useful with port 0, which
//! binds an ephemeral port) and then blocks until a client sends the
//! wire-protocol `Shutdown` message — which `fgcache bench-net` does, and
//! which any `NetClient::send_shutdown` call can do.
//!
//! With `--node-id` the server becomes a cluster node: fetches for
//! groups another node owns (by the rendezvous ring over the current
//! membership view) are proxied to that owner over TCP as depth-bounded
//! owned fetches. `--peers` seeds the membership view at epoch 1;
//! without it the node starts alone at epoch 0 and waits for a
//! `ClusterUpdate` push (this is how `bench-cluster` starts nodes, since
//! ephemeral ports are unknowable before bind).

use std::error::Error;
use std::sync::Arc;

use fgcache_cluster::{ClusterNode, ClusterView, NodeId};
use fgcache_core::{ShardedAggregatingCache, ShardedAggregatingCacheBuilder};
use fgcache_net::{BoundServer, NetClient, Transport};

use crate::args::Args;

/// Validates the event-loop sizing flags: both are hard bounds the
/// server relies on, so zero is a configuration error, not a "no limit".
pub(crate) fn validate_serving_limits(
    max_conns: usize,
    workers: usize,
) -> Result<(), Box<dyn Error>> {
    if max_conns == 0 {
        return Err("--max-conns must be at least 1".into());
    }
    if workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    Ok(())
}

/// Builds the server-side cache from the parsed flags (separated from
/// `run` so validation is unit-testable without binding sockets).
pub(crate) fn build_cache(
    capacity: usize,
    shards: usize,
    group: usize,
    successors: usize,
) -> Result<ShardedAggregatingCache, Box<dyn Error>> {
    Ok(ShardedAggregatingCacheBuilder::new(capacity)
        .shards(shards)
        .group_size(group)
        .successor_capacity(successors)
        .build()?)
}

/// Parses `--peers` (`"1=host:port,2=host:port"`) into view members.
pub(crate) fn parse_peers(raw: &str) -> Result<Vec<(NodeId, String)>, Box<dyn Error>> {
    raw.split(',')
        .map(|tok| {
            let tok = tok.trim();
            let (id, addr) = tok
                .split_once('=')
                .ok_or_else(|| format!("invalid peer {tok:?} in --peers (want ID=HOST:PORT)"))?;
            let id: u64 = id
                .trim()
                .parse()
                .map_err(|_| format!("invalid peer id {id:?} in --peers"))?;
            let addr = addr.trim();
            if addr.is_empty() {
                return Err(format!("empty address for peer {id} in --peers").into());
            }
            Ok((NodeId(id), addr.to_string()))
        })
        .collect()
}

/// Builds the cluster node for `--node-id` mode: peers are dialled
/// lazily over TCP on first proxy.
pub(crate) fn build_cluster_node(
    node_id: u64,
    cache: Arc<ShardedAggregatingCache>,
    peers: Option<Vec<(NodeId, String)>>,
) -> ClusterNode {
    let node = ClusterNode::new(
        NodeId(node_id),
        cache,
        Box::new(
            |_peer, addr| Ok(Box::new(NetClient::connect(addr)?) as Box<dyn Transport + Send>),
        ),
    );
    if let Some(members) = peers {
        node.apply_view(ClusterView::new(1, members));
    }
    node
}

pub fn run(tokens: &[String]) -> Result<(), Box<dyn Error>> {
    let args = Args::parse(tokens.iter().cloned())?;
    args.check_known(&[
        "addr",
        "capacity",
        "shards",
        "group",
        "successors",
        "dedup",
        "max-conns",
        "workers",
        "node-id",
        "peers",
    ])?;
    let capacity: usize = args.require_flag("capacity")?;
    let shards = args.flag_or("shards", 4usize)?;
    let group = args.flag_or("group", 5usize)?;
    let successors = args.flag_or("successors", 8usize)?;
    let addr = args.flag("addr").unwrap_or("127.0.0.1:0");
    let dedup = args.flag_or("dedup", fgcache_net::DEFAULT_REPLY_CACHE_CAPACITY)?;
    let max_conns = args.flag_or("max-conns", fgcache_net::DEFAULT_MAX_CONNS)?;
    let workers = args.flag_or("workers", fgcache_net::DEFAULT_WORKERS)?;
    validate_serving_limits(max_conns, workers)?;
    let node_id: Option<u64> = match args.flag("node-id") {
        Some(_) => Some(args.require_flag("node-id")?),
        None => None,
    };
    let peers = match args.flag("peers") {
        Some(raw) => Some(parse_peers(raw)?),
        None => None,
    };
    if peers.is_some() && node_id.is_none() {
        return Err("--peers requires --node-id (cluster mode)".into());
    }

    let cache = Arc::new(build_cache(capacity, shards, group, successors)?);
    let server = match node_id {
        Some(id) => {
            let node = Arc::new(build_cluster_node(id, cache, peers));
            BoundServer::bind_backend(addr, node)
        }
        None => BoundServer::bind(addr, cache),
    }
    .map_err(|e| format!("cannot bind {addr}: {e}"))?
    .with_dedup_capacity(dedup)
    .with_max_conns(max_conns)
    .with_workers(workers);
    println!("listening on {}", server.local_addr());
    server.run();
    println!("server stopped");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_flags_are_validated() {
        assert!(build_cache(400, 4, 5, 8).is_ok());
        // Slices below the group size are fine (each shard clamps its
        // group size to what it can hold); only configs where the total
        // capacity cannot fit a group, or a shard cannot hold one file,
        // are rejected.
        assert!(build_cache(30, 16, 5, 8).is_ok());
        assert!(build_cache(30, 16, 31, 8).is_err());
        assert!(build_cache(8, 16, 5, 8).is_err());
    }

    #[test]
    fn serving_limits_reject_zero() {
        assert!(validate_serving_limits(1024, 4).is_ok());
        assert!(validate_serving_limits(1, 1).is_ok());
        let err = validate_serving_limits(0, 4).expect_err("zero max-conns");
        assert!(err.to_string().contains("--max-conns"), "{err}");
        let err = validate_serving_limits(1024, 0).expect_err("zero workers");
        assert!(err.to_string().contains("--workers"), "{err}");

        // Through the full flag path, without binding a socket: the
        // validation error must win over any bind attempt.
        let tokens: Vec<String> = vec![
            "--capacity".into(),
            "100".into(),
            "--max-conns".into(),
            "0".into(),
        ];
        let err = run(&tokens).expect_err("zero max-conns via flags");
        assert!(err.to_string().contains("--max-conns"), "{err}");
        let tokens: Vec<String> = vec![
            "--capacity".into(),
            "100".into(),
            "--workers".into(),
            "0".into(),
        ];
        let err = run(&tokens).expect_err("zero workers via flags");
        assert!(err.to_string().contains("--workers"), "{err}");
    }

    #[test]
    fn unknown_flags_rejected() {
        let tokens: Vec<String> = vec![
            "--capacity".into(),
            "10".into(),
            "--oops".into(),
            "1".into(),
        ];
        assert!(run(&tokens).is_err());
    }

    #[test]
    fn capacity_is_required() {
        let tokens: Vec<String> = vec![];
        assert!(run(&tokens).is_err());
    }

    #[test]
    fn peers_parse_and_validate() {
        let peers = parse_peers("1=127.0.0.1:7001, 2 = 127.0.0.1:7002").unwrap();
        assert_eq!(
            peers,
            vec![
                (NodeId(1), "127.0.0.1:7001".to_string()),
                (NodeId(2), "127.0.0.1:7002".to_string()),
            ]
        );
        assert!(parse_peers("1").is_err());
        assert!(parse_peers("x=127.0.0.1:1").is_err());
        assert!(parse_peers("3=").is_err());
    }

    #[test]
    fn peers_without_node_id_rejected() {
        let tokens: Vec<String> = vec![
            "--capacity".into(),
            "100".into(),
            "--peers".into(),
            "1=127.0.0.1:7001".into(),
        ];
        let err = run(&tokens).expect_err("peers without node-id");
        assert!(err.to_string().contains("--node-id"), "{err}");
    }

    #[test]
    fn cluster_node_seeds_the_view_from_peers() {
        let cache = Arc::new(build_cache(100, 2, 3, 4).unwrap());
        let node = build_cluster_node(
            1,
            cache,
            Some(vec![
                (NodeId(1), "a:1".to_string()),
                (NodeId(2), "b:2".to_string()),
            ]),
        );
        let view = node.view();
        assert_eq!(view.epoch(), 1);
        assert_eq!(view.addr_of(NodeId(2)), Some("b:2"));
        // Without peers: self-only at epoch 0, so any push applies.
        let cache = Arc::new(build_cache(100, 2, 3, 4).unwrap());
        assert_eq!(build_cluster_node(7, cache, None).view().epoch(), 0);
    }
}

//! Cache statistics accounting.

use std::fmt;

use fgcache_types::InvariantViolation;

/// Counters maintained by every [`Cache`](crate::Cache) implementation.
///
/// The paper's two headline metrics derive directly from these: the number
/// of *demand fetches* a client performs equals `misses` (Figure 3), and a
/// server cache's *hit rate* is [`CacheStats::hit_rate`] (Figure 4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses processed.
    pub accesses: u64,
    /// Demand accesses that found the file resident.
    pub hits: u64,
    /// Demand accesses that required a fetch.
    pub misses: u64,
    /// Files inserted speculatively (group members).
    pub speculative_inserts: u64,
    /// Demand hits whose entry was still speculative (i.e. the prefetch
    /// paid off before the entry was demand-accessed or evicted).
    pub speculative_hits: u64,
    /// Files evicted to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        CacheStats::default()
    }

    /// Fraction of accesses that hit; 0 when no accesses were made.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Fraction of accesses that missed; 0 when no accesses were made.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Fraction of speculative inserts that were later demand-hit while
    /// still speculative — the prefetch *accuracy*; 0 when nothing was
    /// inserted speculatively.
    pub fn speculative_accuracy(&self) -> f64 {
        if self.speculative_inserts == 0 {
            0.0
        } else {
            self.speculative_hits as f64 / self.speculative_inserts as f64
        }
    }

    /// Audits the counters' arithmetic relations; `where_` names the
    /// owning cache in the violation report.
    pub fn check(&self, where_: &str) -> Result<(), InvariantViolation> {
        if self.hits + self.misses != self.accesses {
            return Err(InvariantViolation::new(
                where_,
                format!(
                    "stats: {} hits + {} misses != {} accesses",
                    self.hits, self.misses, self.accesses
                ),
            ));
        }
        if self.speculative_hits > self.speculative_inserts {
            return Err(InvariantViolation::new(
                where_,
                format!(
                    "stats: {} speculative hits exceed {} speculative inserts",
                    self.speculative_hits, self.speculative_inserts
                ),
            ));
        }
        if self.speculative_hits > self.hits {
            return Err(InvariantViolation::new(
                where_,
                format!(
                    "stats: {} speculative hits exceed {} total hits",
                    self.speculative_hits, self.hits
                ),
            ));
        }
        Ok(())
    }

    pub(crate) fn record_hit(&mut self, was_speculative: bool) {
        self.accesses += 1;
        self.hits += 1;
        if was_speculative {
            self.speculative_hits += 1;
        }
    }

    pub(crate) fn record_miss(&mut self) {
        self.accesses += 1;
        self.misses += 1;
    }

    pub(crate) fn record_eviction(&mut self) {
        self.evictions += 1;
    }

    pub(crate) fn record_speculative_insert(&mut self) {
        self.speculative_inserts += 1;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "accesses {} hits {} ({:.1}%) misses {} spec-ins {} spec-hits {} evictions {}",
            self.accesses,
            self.hits,
            self.hit_rate() * 100.0,
            self.misses,
            self.speculative_inserts,
            self.speculative_hits,
            self.evictions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_rates() {
        let s = CacheStats::new();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.speculative_accuracy(), 0.0);
    }

    #[test]
    fn rates_compute() {
        let mut s = CacheStats::new();
        s.record_hit(false);
        s.record_hit(true);
        s.record_miss();
        s.record_miss();
        assert_eq!(s.accesses, 4);
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 2);
        assert_eq!(s.speculative_hits, 1);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        assert!((s.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn speculative_accuracy() {
        let mut s = CacheStats::new();
        s.record_speculative_insert();
        s.record_speculative_insert();
        s.record_hit(true);
        assert!((s.speculative_accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_contains_counts() {
        let mut s = CacheStats::new();
        s.record_miss();
        let text = s.to_string();
        assert!(text.contains("accesses 1"));
        assert!(text.contains("misses 1"));
    }
}

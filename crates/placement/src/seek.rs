//! Head-movement cost of replaying a trace against a [`Layout`].
//!
//! The cost model is deliberately simple (the paper's own placement
//! discussion is qualitative): the medium is one-dimensional, the head
//! sits at the slot of the last accessed file, and serving an access
//! costs the absolute slot distance. Files absent from the layout (e.g.
//! created after the layout was computed) are charged a full end-to-end
//! sweep — the worst case for a file "appended at the end".

use fgcache_trace::Trace;

use crate::layout::Layout;

/// Summary of a seek-cost replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeekReport {
    /// Accesses replayed.
    pub accesses: u64,
    /// Total head movement, in slots.
    pub total_distance: u64,
    /// Accesses to files missing from the layout.
    pub unplaced: u64,
}

impl SeekReport {
    /// Mean head movement per access; 0 for an empty replay.
    pub fn mean(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.total_distance as f64 / self.accesses as f64
        }
    }
}

/// Replays `trace` against `layout` and reports head movement.
pub fn replay(layout: &Layout, trace: &Trace) -> SeekReport {
    let span = layout.len().max(1) as u64;
    let mut head: Option<usize> = None;
    let mut total = 0u64;
    let mut unplaced = 0u64;
    for file in trace.files() {
        match layout.slot(file) {
            Some(slot) => {
                if let Some(pos) = head {
                    total += (pos as i64 - slot as i64).unsigned_abs();
                }
                head = Some(slot);
            }
            None => {
                unplaced += 1;
                total += span; // full sweep to the "new file" region
                head = Some(layout.len().saturating_sub(1));
            }
        }
    }
    SeekReport {
        accesses: trace.len() as u64,
        total_distance: total,
        unplaced,
    }
}

/// Convenience: the mean head movement of replaying `trace` on `layout`.
pub fn mean_seek(layout: &Layout, trace: &Trace) -> f64 {
    replay(layout, trace).mean()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgcache_types::FileId;

    #[test]
    fn empty_replay() {
        let layout = Layout::from_order([FileId(1)]);
        let r = replay(&layout, &Trace::default());
        assert_eq!(r.accesses, 0);
        assert_eq!(r.mean(), 0.0);
    }

    #[test]
    fn adjacent_files_cost_one() {
        let layout = Layout::from_order([FileId(1), FileId(2)]);
        let trace = Trace::from_files([1, 2, 1, 2]);
        let r = replay(&layout, &trace);
        assert_eq!(r.total_distance, 3); // 1→2→1→2 after free first seek
        assert_eq!(r.unplaced, 0);
    }

    #[test]
    fn far_files_cost_distance() {
        let layout = Layout::from_order((0..11u64).map(FileId));
        let trace = Trace::from_files([0, 10, 0]);
        let r = replay(&layout, &trace);
        assert_eq!(r.total_distance, 20);
    }

    #[test]
    fn repeats_cost_nothing() {
        let layout = Layout::from_order([FileId(4), FileId(5)]);
        let trace = Trace::from_files([4, 4, 4, 4]);
        assert_eq!(replay(&layout, &trace).total_distance, 0);
    }

    #[test]
    fn unplaced_files_charged_full_sweep() {
        let layout = Layout::from_order([FileId(1), FileId(2)]);
        let trace = Trace::from_files([1, 99]);
        let r = replay(&layout, &trace);
        assert_eq!(r.unplaced, 1);
        assert_eq!(r.total_distance, 2); // span of the 2-slot layout
    }

    #[test]
    fn grouped_beats_hashed_on_sequential_working_sets() {
        // Two activities of 6 files each, replayed many times.
        let mut ids = Vec::new();
        for _ in 0..50 {
            ids.extend(10..16u64);
            ids.extend(20..26u64);
        }
        let history = Trace::from_files(ids.clone());
        let future = Trace::from_files(ids);
        let grouped = Layout::grouped(&history, 6);
        let hashed = Layout::hashed(&history);
        assert!(
            mean_seek(&grouped, &future) < mean_seek(&hashed, &future),
            "grouped {} vs hashed {}",
            mean_seek(&grouped, &future),
            mean_seek(&hashed, &future)
        );
    }
}

//! Converters from foreign trace formats into fgcache traces.
//!
//! The paper's evaluation uses CMU DFSTrace recordings; real-world
//! validation data also commonly arrives as `strace` logs. Both are
//! path-and-process shaped rather than id-shaped, so conversion is a
//! *remapping pass*: paths become dense [`FileId`]s and client/process
//! tokens become dense [`ClientId`]s in first-seen order, while events
//! are renumbered consecutively from zero ([`Remapper`]). The converters
//! are streaming iterators — memory is bounded by the id maps (one entry
//! per distinct path/client), never by the trace length — and compose
//! directly with the sinks in [`crate::stream`], which is exactly what
//! `fgcache convert` does.
//!
//! * [`DfstraceEvents`] parses DFSTrace-style text
//!   (`<timestamp> <client> <op> <path>` per line) **strictly**: a
//!   malformed line is an error, but a structurally valid line with an
//!   *unknown operation* is skipped and counted, since real recordings
//!   contain many operation types outside our four access kinds.
//! * [`StraceEvents`] parses `strace -f` output **leniently**: syscalls
//!   without a path, failed calls, signal/exit notices and unfinished
//!   lines are skipped and counted, because strace logs are noisy by
//!   nature and per-line errors would make every real log unusable.
//!
//! ```
//! use fgcache_trace::convert::DfstraceEvents;
//! use fgcache_trace::stream::collect_trace;
//!
//! let log = "100.5 mozart open /usr/bin/cc\n100.9 ives write /tmp/a.o\n";
//! let mut reader = DfstraceEvents::new(log.as_bytes());
//! let trace = collect_trace(reader.by_ref()).unwrap();
//! assert_eq!(trace.len(), 2);
//! assert_eq!(reader.report().events, 2);
//! ```

use std::io::BufRead;

use fgcache_types::hash::FastMap;
use fgcache_types::{AccessEvent, AccessKind, ClientId, FileId, SeqNo};

use crate::io::TraceIoError;

/// Dense-id remapping state shared by all converters.
///
/// Paths map to [`FileId`]s and client tokens to [`ClientId`]s in
/// first-seen order; sequence numbers are handed out consecutively from
/// zero, so any converter output satisfies the [`crate::Trace`] invariant
/// by construction.
#[derive(Debug, Default)]
pub struct Remapper {
    files: FastMap<String, FileId>,
    clients: FastMap<String, ClientId>,
    next_seq: u64,
}

impl Remapper {
    /// An empty remapper.
    pub fn new() -> Self {
        Remapper::default()
    }

    /// Maps one foreign access into an [`AccessEvent`] with dense ids and
    /// the next sequence number.
    pub fn map(&mut self, client_token: &str, path: &str, kind: AccessKind) -> AccessEvent {
        let file = match self.files.get(path) {
            Some(&f) => f,
            None => {
                let f = FileId(self.files.len() as u64);
                self.files.insert(path.to_string(), f);
                f
            }
        };
        let client = match self.clients.get(client_token) {
            Some(&c) => c,
            None => {
                let c = ClientId(self.clients.len() as u32);
                self.clients.insert(client_token.to_string(), c);
                c
            }
        };
        let seq = SeqNo(self.next_seq);
        self.next_seq += 1;
        AccessEvent::new(seq, client, file, kind)
    }

    /// Number of distinct paths seen so far.
    pub fn unique_files(&self) -> usize {
        self.files.len()
    }

    /// Number of distinct client tokens seen so far.
    pub fn unique_clients(&self) -> usize {
        self.clients.len()
    }
}

/// Counters describing a conversion run, read after the converter has
/// been drained.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConvertReport {
    /// Physical input lines read (including comments and blanks).
    pub lines: u64,
    /// Events emitted.
    pub events: u64,
    /// Structurally valid lines skipped (unknown operations, failed
    /// syscalls, pathless calls, signal/exit notices).
    pub skipped: u64,
    /// Distinct paths mapped to file ids.
    pub unique_files: usize,
    /// Distinct client tokens mapped to client ids.
    pub unique_clients: usize,
}

impl ConvertReport {
    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} lines -> {} events ({} skipped) | {} files, {} clients",
            self.lines, self.events, self.skipped, self.unique_files, self.unique_clients
        )
    }
}

/// Maps a DFSTrace-style operation name to an access kind; `None` for
/// operations outside our model (those lines are skipped and counted).
fn dfstrace_kind(op: &str) -> Option<AccessKind> {
    // Compare case-insensitively without allocating.
    let matches = |name: &str| op.eq_ignore_ascii_case(name);
    if [
        "open", "read", "close", "lookup", "stat", "getattr", "access", "readlink",
    ]
    .iter()
    .any(|n| matches(n))
    {
        Some(AccessKind::Read)
    } else if ["write", "store", "truncate", "setattr", "chmod", "chown"]
        .iter()
        .any(|n| matches(n))
    {
        Some(AccessKind::Write)
    } else if ["create", "creat", "mkdir", "mknod", "symlink", "link"]
        .iter()
        .any(|n| matches(n))
    {
        Some(AccessKind::Create)
    } else if ["unlink", "remove", "rmdir"].iter().any(|n| matches(n)) {
        Some(AccessKind::Delete)
    } else {
        None
    }
}

/// Streaming converter for DFSTrace-style text logs.
///
/// Input lines are `<timestamp> <client> <op> <path>`; `#` comments and
/// blank lines are ignored. The timestamp must parse as a number and the
/// path must be a single whitespace-free token — anything else is a
/// [`TraceIoError::Parse`] with the physical 1-based line number. Lines
/// whose `<op>` is not one of the recognised operations (see
/// [`crate::convert`] module docs) are skipped and counted in
/// [`ConvertReport::skipped`].
#[derive(Debug)]
pub struct DfstraceEvents<R> {
    reader: R,
    line: String,
    remap: Remapper,
    report: ConvertReport,
    done: bool,
}

impl<R: BufRead> DfstraceEvents<R> {
    /// Wraps a buffered reader over the log text.
    pub fn new(reader: R) -> Self {
        DfstraceEvents {
            reader,
            line: String::new(),
            remap: Remapper::new(),
            report: ConvertReport::default(),
            done: false,
        }
    }

    /// Conversion counters; complete once the iterator has been drained.
    pub fn report(&self) -> ConvertReport {
        ConvertReport {
            unique_files: self.remap.unique_files(),
            unique_clients: self.remap.unique_clients(),
            ..self.report
        }
    }

    fn parse(&mut self) -> Result<Option<AccessEvent>, String> {
        let trimmed = self.line.trim();
        let mut parts = trimmed.split_whitespace();
        let ts = parts.next().ok_or("missing timestamp field")?;
        ts.parse::<f64>()
            .map_err(|_| format!("bad timestamp {ts:?}: not a number"))?;
        let client = parts.next().ok_or("missing client field")?.to_string();
        let op = parts.next().ok_or("missing op field")?.to_string();
        let path = parts.next().ok_or("missing path field")?;
        if parts.next().is_some() {
            return Err("trailing fields after path".to_string());
        }
        match dfstrace_kind(&op) {
            Some(kind) => Ok(Some(self.remap.map(&client, path, kind))),
            None => Ok(None),
        }
    }
}

impl<R: BufRead> Iterator for DfstraceEvents<R> {
    type Item = Result<AccessEvent, TraceIoError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            self.line.clear();
            match self.reader.read_line(&mut self.line) {
                Ok(0) => {
                    self.done = true;
                    return None;
                }
                Ok(_) => {}
                Err(e) => {
                    self.done = true;
                    return Some(Err(TraceIoError::Io(e)));
                }
            }
            self.report.lines += 1;
            let trimmed = self.line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let lineno = self.report.lines as usize;
            // `parse` borrows self.line internally via trim; split the
            // borrow by taking the line first.
            match self.parse() {
                Ok(Some(ev)) => {
                    self.report.events += 1;
                    return Some(Ok(ev));
                }
                Ok(None) => {
                    self.report.skipped += 1;
                    continue;
                }
                Err(message) => {
                    self.done = true;
                    return Some(Err(TraceIoError::Parse {
                        line: lineno,
                        message,
                    }));
                }
            }
        }
    }
}

/// Maps an strace syscall name (plus its flag text) to an access kind;
/// `None` for syscalls we do not model.
fn strace_kind(syscall: &str, args: &str) -> Option<AccessKind> {
    match syscall {
        "open" | "openat" | "openat2" => {
            if args.contains("O_CREAT") {
                Some(AccessKind::Create)
            } else if args.contains("O_WRONLY") || args.contains("O_RDWR") {
                Some(AccessKind::Write)
            } else {
                Some(AccessKind::Read)
            }
        }
        "creat" | "mkdir" | "mkdirat" | "mknod" | "symlink" | "symlinkat" | "link" | "linkat" => {
            Some(AccessKind::Create)
        }
        "stat" | "lstat" | "statx" | "access" | "faccessat" | "readlink" | "readlinkat"
        | "execve" | "getxattr" | "lgetxattr" => Some(AccessKind::Read),
        "truncate" | "chmod" | "fchmodat" | "chown" | "lchown" | "utime" | "utimensat"
        | "setxattr" => Some(AccessKind::Write),
        "unlink" | "unlinkat" | "rmdir" => Some(AccessKind::Delete),
        _ => None,
    }
}

/// Streaming converter for `strace`/`strace -f` logs.
///
/// Recognises the common line shapes: an optional `[pid N]` or leading
/// bare-pid prefix (used as the client token; `0` when absent), a syscall
/// name before `(`, the first double-quoted argument as the path, and the
/// return value after the final `=`. Lines that carry no usable access —
/// pathless syscalls, failed calls (negative return), `--- SIG… ---` and
/// `+++ exited +++` notices, `<unfinished …>`/`resumed` fragments, or
/// syscalls outside our model — are skipped and counted rather than
/// treated as errors, because real strace output is noisy by design.
#[derive(Debug)]
pub struct StraceEvents<R> {
    reader: R,
    line: String,
    remap: Remapper,
    report: ConvertReport,
    done: bool,
}

impl<R: BufRead> StraceEvents<R> {
    /// Wraps a buffered reader over the log text.
    pub fn new(reader: R) -> Self {
        StraceEvents {
            reader,
            line: String::new(),
            remap: Remapper::new(),
            report: ConvertReport::default(),
            done: false,
        }
    }

    /// Conversion counters; complete once the iterator has been drained.
    pub fn report(&self) -> ConvertReport {
        ConvertReport {
            unique_files: self.remap.unique_files(),
            unique_clients: self.remap.unique_clients(),
            ..self.report
        }
    }

    /// Attempts to extract one access from the current line; `None` means
    /// the line is noise (counted by the caller).
    fn parse(&mut self) -> Option<AccessEvent> {
        let mut rest = self.line.trim();
        if rest.starts_with("---") || rest.starts_with("+++") {
            return None;
        }
        // Client token: "[pid 1234] ..." or "1234  ..." prefixes.
        let mut client = "0";
        if let Some(tail) = rest.strip_prefix("[pid") {
            let (pid, tail) = tail.split_once(']')?;
            client = pid.trim();
            rest = tail.trim_start();
        } else if rest.starts_with(|c: char| c.is_ascii_digit()) {
            let split = rest.find(|c: char| c.is_whitespace())?;
            let (pid, tail) = rest.split_at(split);
            if pid.chars().all(|c| c.is_ascii_digit()) {
                client = pid;
                rest = tail.trim_start();
            }
        }
        if rest.starts_with("<...") {
            return None; // "<... open resumed> ..." fragment
        }
        // Syscall name runs up to the opening parenthesis.
        let paren = rest.find('(')?;
        let syscall = &rest[..paren];
        if !syscall
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_')
            || syscall.is_empty()
        {
            return None;
        }
        let args = &rest[paren + 1..];
        if args.contains("<unfinished") {
            return None;
        }
        // Failed or missing return value → no access happened.
        let ret = args.rsplit_once('=').map(|(_, r)| r.trim())?;
        if ret.is_empty() || ret.starts_with('-') || ret.starts_with('?') {
            return None;
        }
        let kind = strace_kind(syscall, args)?;
        // First double-quoted argument is the path (strace escapes quotes
        // inside paths with a backslash).
        let path = {
            let open = args.find('"')?;
            let body = &args[open + 1..];
            let mut end = None;
            let bytes = body.as_bytes();
            let mut i = 0;
            while i < bytes.len() {
                match bytes[i] {
                    b'\\' => i += 2,
                    b'"' => {
                        end = Some(i);
                        break;
                    }
                    _ => i += 1,
                }
            }
            &body[..end?]
        };
        let client = client.to_string();
        Some(self.remap.map(&client, path, kind))
    }
}

impl<R: BufRead> Iterator for StraceEvents<R> {
    type Item = Result<AccessEvent, TraceIoError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            self.line.clear();
            match self.reader.read_line(&mut self.line) {
                Ok(0) => {
                    self.done = true;
                    return None;
                }
                Ok(_) => {}
                Err(e) => {
                    self.done = true;
                    return Some(Err(TraceIoError::Io(e)));
                }
            }
            self.report.lines += 1;
            if self.line.trim().is_empty() {
                continue;
            }
            match self.parse() {
                Some(ev) => {
                    self.report.events += 1;
                    return Some(Ok(ev));
                }
                None => {
                    self.report.skipped += 1;
                    continue;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::collect_trace;

    #[test]
    fn remapper_assigns_dense_first_seen_ids() {
        let mut r = Remapper::new();
        let a = r.map("c1", "/x", AccessKind::Read);
        let b = r.map("c2", "/y", AccessKind::Read);
        let c = r.map("c1", "/x", AccessKind::Write);
        assert_eq!(a.file, FileId(0));
        assert_eq!(b.file, FileId(1));
        assert_eq!(c.file, FileId(0));
        assert_eq!(a.client, ClientId(0));
        assert_eq!(b.client, ClientId(1));
        assert_eq!(c.client, ClientId(0));
        assert_eq!(
            (a.seq, b.seq, c.seq),
            (SeqNo(0), SeqNo(1), SeqNo(2)),
            "consecutive renumbering"
        );
        assert_eq!(r.unique_files(), 2);
        assert_eq!(r.unique_clients(), 2);
    }

    #[test]
    fn dfstrace_basic_conversion() {
        let log = "\
# DFSTrace excerpt
773917882.1 mozart open /usr/lib/libc.so
773917882.2 mozart read /usr/lib/libc.so
773917883.0 ives write /tmp/out
773917883.5 mozart ioctl /dev/tty
773917884.0 ives unlink /tmp/out
";
        let mut r = DfstraceEvents::new(log.as_bytes());
        let trace = collect_trace(r.by_ref()).unwrap();
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.events()[0].kind, AccessKind::Read);
        assert_eq!(trace.events()[2].kind, AccessKind::Write);
        assert_eq!(trace.events()[3].kind, AccessKind::Delete);
        // Same path → same file id across clients and kinds.
        assert_eq!(trace.events()[0].file, trace.events()[1].file);
        let report = r.report();
        assert_eq!(report.lines, 6);
        assert_eq!(report.events, 4);
        assert_eq!(report.skipped, 1, "ioctl is outside the model");
        // Skipped lines never reach the remapper: /dev/tty gets no id.
        assert_eq!(report.unique_files, 2);
        assert_eq!(report.unique_clients, 2);
    }

    #[test]
    fn dfstrace_rejects_malformed_lines_with_line_numbers() {
        let cases = [
            ("notatime mozart open /x", "timestamp"),
            ("1.0 mozart open", "path"),
            ("1.0 mozart", "op"),
            ("1.0", "client"),
            ("1.0 mozart open /x junk", "trailing"),
        ];
        for (line, expect) in cases {
            let log = format!("# header\n1.0 c open /ok\n{line}\n");
            let err = collect_trace(DfstraceEvents::new(log.as_bytes())).unwrap_err();
            match err {
                TraceIoError::Parse { line, ref message } => {
                    assert_eq!(line, 3, "physical line number for {message:?}");
                    assert!(message.contains(expect), "{message:?} vs {expect}");
                }
                other => panic!("expected parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn strace_basic_conversion() {
        let log = r#"openat(AT_FDCWD, "/etc/ld.so.cache", O_RDONLY|O_CLOEXEC) = 3
close(3) = 0
[pid 204] open("/tmp/build.log", O_WRONLY|O_CREAT|O_APPEND, 0644) = 4
204   write(4, "x", 1) = 1
open("/missing", O_RDONLY) = -1 ENOENT (No such file or directory)
--- SIGCHLD {si_signo=SIGCHLD} ---
+++ exited with 0 +++
unlink("/tmp/build.log") = 0
open("/late", O_RDONLY <unfinished ...>
<... open resumed> ) = 5
stat("/etc/passwd", {st_mode=S_IFREG|0644}) = 0
"#;
        let mut r = StraceEvents::new(log.as_bytes());
        let trace = collect_trace(r.by_ref()).unwrap();
        // openat(read), open O_CREAT(create), unlink(delete), stat(read).
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.events()[0].kind, AccessKind::Read);
        assert_eq!(trace.events()[1].kind, AccessKind::Create);
        assert_eq!(trace.events()[2].kind, AccessKind::Delete);
        assert_eq!(trace.events()[3].kind, AccessKind::Read);
        // [pid 204] is a distinct client from the unprefixed "0".
        assert_ne!(trace.events()[0].client, trace.events()[1].client);
        let report = r.report();
        assert_eq!(report.events, 4);
        assert_eq!(report.lines, 11);
        assert_eq!(report.skipped, 7);
        assert_eq!(report.unique_clients, 2);
    }

    #[test]
    fn strace_write_flags_map_to_write() {
        let log = "open(\"/f\", O_RDWR) = 3\nopen(\"/f\", O_WRONLY) = 3\n";
        let trace = collect_trace(StraceEvents::new(log.as_bytes())).unwrap();
        assert!(trace.events().iter().all(|e| e.kind == AccessKind::Write));
    }

    #[test]
    fn strace_escaped_quote_in_path() {
        let log = r#"open("/tmp/we\"ird", O_RDONLY) = 3"#;
        let trace = collect_trace(StraceEvents::new(log.as_bytes())).unwrap();
        assert_eq!(trace.len(), 1);
    }

    #[test]
    fn converter_output_always_satisfies_trace_invariant() {
        // Interleaved clients and repeated paths: the output must always
        // collect into a valid Trace (strictly increasing seq).
        let mut log = String::new();
        for i in 0..500 {
            log.push_str(&format!("{}.0 c{} open /f{}\n", i, i % 7, i % 23));
        }
        let trace = collect_trace(DfstraceEvents::new(log.as_bytes())).unwrap();
        assert_eq!(trace.len(), 500);
        assert_eq!(trace.clients().len(), 7);
    }
}

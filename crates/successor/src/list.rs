//! Bounded per-file successor lists with pluggable replacement.
//!
//! A successor list answers one question: *given that this file was just
//! accessed, which files are likely next?* The paper keeps these lists
//! deliberately tiny (a handful of entries) and shows that recency-managed
//! lists dominate frequency-managed ones (Figure 5).
//!
//! Lists are intentionally `Vec`-backed with linear scans: capacities are
//! single-digit in every experiment, so a linear scan beats any hashed
//! structure and keeps entries in likelihood order for free.

use fgcache_types::{FileId, ValidationError};

/// A bounded list of likely immediate successors for one file.
///
/// Implementations are prototypes: a [`SuccessorTable`](crate::SuccessorTable)
/// holds one instance as a template and calls [`SuccessorList::fresh`] to
/// spawn an empty list (with identical parameters) for each newly-seen
/// file.
pub trait SuccessorList: Clone + std::fmt::Debug {
    /// Records that `succ` was observed to immediately follow this list's
    /// file, updating likelihood ranking and evicting per policy if the
    /// list is full.
    fn observe(&mut self, succ: FileId);

    /// Returns `true` if `succ` is currently in the list (i.e. would have
    /// been predicted).
    fn contains(&self, succ: FileId) -> bool;

    /// The single most likely successor, if any.
    fn most_likely(&self) -> Option<FileId>;

    /// Successors ranked from most to least likely.
    fn ranked(&self) -> Vec<FileId>;

    /// Appends the ranked successors to `out` without clearing it.
    ///
    /// Semantically identical to `out.extend(self.ranked())`; hot-path
    /// callers pass a reused scratch buffer so steady-state prediction
    /// allocates nothing. Implementations with a cheap borrowed view
    /// (e.g. recency lists already stored in rank order) override the
    /// default to skip the intermediate `Vec`.
    fn ranked_into(&self, out: &mut Vec<FileId>) {
        out.extend(self.ranked());
    }

    /// Number of successors currently tracked.
    fn len(&self) -> usize;

    /// Returns `true` if no successors have been observed yet.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Capacity bound, or `None` for unbounded lists (the oracle).
    fn capacity(&self) -> Option<usize>;

    /// An empty list with the same configuration as `self`.
    fn fresh(&self) -> Self;
}

/// Recency-managed successor list: most recently observed first.
///
/// This is the paper's choice. Eviction drops the least recently observed
/// successor; the most likely successor is simply the most recent one.
///
/// ```
/// use fgcache_successor::{LruSuccessorList, SuccessorList};
/// use fgcache_types::FileId;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut l = LruSuccessorList::new(2)?;
/// l.observe(FileId(1));
/// l.observe(FileId(2));
/// l.observe(FileId(3)); // evicts 1 (least recent)
/// assert!(!l.contains(FileId(1)));
/// assert_eq!(l.most_likely(), Some(FileId(3)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LruSuccessorList {
    capacity: usize,
    // Front = most recently observed = most likely.
    items: Vec<FileId>,
}

impl LruSuccessorList {
    /// Creates a recency-managed list of at most `capacity` successors.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidationError`] if `capacity` is zero.
    pub fn new(capacity: usize) -> Result<Self, ValidationError> {
        if capacity == 0 {
            return Err(ValidationError::new(
                "capacity",
                "successor list capacity must be at least 1",
            ));
        }
        Ok(LruSuccessorList {
            capacity,
            items: Vec::with_capacity(capacity),
        })
    }
}

impl SuccessorList for LruSuccessorList {
    fn observe(&mut self, succ: FileId) {
        if let Some(pos) = self.items.iter().position(|&f| f == succ) {
            self.items.remove(pos);
        } else if self.items.len() == self.capacity {
            self.items.pop();
        }
        self.items.insert(0, succ);
    }

    fn contains(&self, succ: FileId) -> bool {
        self.items.contains(&succ)
    }

    fn most_likely(&self) -> Option<FileId> {
        self.items.first().copied()
    }

    fn ranked(&self) -> Vec<FileId> {
        self.items.clone()
    }

    fn ranked_into(&self, out: &mut Vec<FileId>) {
        out.extend_from_slice(&self.items);
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn capacity(&self) -> Option<usize> {
        Some(self.capacity)
    }

    fn fresh(&self) -> Self {
        LruSuccessorList {
            capacity: self.capacity,
            items: Vec::with_capacity(self.capacity),
        }
    }
}

/// Frequency-managed successor list: highest observation count first.
///
/// The paper's foil: plain frequency counts with least-frequent eviction
/// (ties broken by least recent). Consistently worse than
/// [`LruSuccessorList`] at equal capacity (Figure 5).
#[derive(Debug, Clone)]
pub struct LfuSuccessorList {
    capacity: usize,
    // (successor, count, last-observed stamp)
    items: Vec<(FileId, u64, u64)>,
    clock: u64,
}

impl LfuSuccessorList {
    /// Creates a frequency-managed list of at most `capacity` successors.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidationError`] if `capacity` is zero.
    pub fn new(capacity: usize) -> Result<Self, ValidationError> {
        if capacity == 0 {
            return Err(ValidationError::new(
                "capacity",
                "successor list capacity must be at least 1",
            ));
        }
        Ok(LfuSuccessorList {
            capacity,
            items: Vec::with_capacity(capacity),
            clock: 0,
        })
    }

    /// The observation count for `succ`, if tracked.
    pub fn count(&self, succ: FileId) -> Option<u64> {
        self.items.iter().find(|(f, _, _)| *f == succ).map(|t| t.1)
    }
}

impl SuccessorList for LfuSuccessorList {
    fn observe(&mut self, succ: FileId) {
        self.clock += 1;
        if let Some(item) = self.items.iter_mut().find(|(f, _, _)| *f == succ) {
            item.1 += 1;
            item.2 = self.clock;
            return;
        }
        if self.items.len() == self.capacity {
            // Evict lowest count; tie-break least recently observed.
            let victim = self
                .items
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, count, stamp))| (*count, *stamp))
                .map(|(i, _)| i)
                .expect("list is full, hence non-empty");
            self.items.remove(victim);
        }
        self.items.push((succ, 1, self.clock));
    }

    fn contains(&self, succ: FileId) -> bool {
        self.items.iter().any(|(f, _, _)| *f == succ)
    }

    fn most_likely(&self) -> Option<FileId> {
        self.items
            .iter()
            .max_by_key(|(_, count, stamp)| (*count, *stamp))
            .map(|(f, _, _)| *f)
    }

    fn ranked(&self) -> Vec<FileId> {
        let mut sorted = self.items.clone();
        sorted.sort_by_key(|&(_, count, stamp)| std::cmp::Reverse((count, stamp)));
        sorted.into_iter().map(|(f, _, _)| f).collect()
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn capacity(&self) -> Option<usize> {
        Some(self.capacity)
    }

    fn fresh(&self) -> Self {
        LfuSuccessorList {
            capacity: self.capacity,
            items: Vec::with_capacity(self.capacity),
            clock: 0,
        }
    }
}

/// Unbounded successor list: remembers every successor ever observed.
///
/// The paper's oracle (Figure 5): "an oracle that has perfect knowledge of
/// all previously observed immediate successor events". It upper-bounds
/// any bounded online policy — it can still miss, but only on successors
/// never seen before.
#[derive(Debug, Clone, Default)]
pub struct OracleSuccessorList {
    // Recency order, front = most recent; unbounded.
    items: Vec<FileId>,
}

impl OracleSuccessorList {
    /// Creates an empty oracle list.
    pub fn new() -> Self {
        OracleSuccessorList::default()
    }
}

impl SuccessorList for OracleSuccessorList {
    fn observe(&mut self, succ: FileId) {
        if let Some(pos) = self.items.iter().position(|&f| f == succ) {
            self.items.remove(pos);
        }
        self.items.insert(0, succ);
    }

    fn contains(&self, succ: FileId) -> bool {
        self.items.contains(&succ)
    }

    fn most_likely(&self) -> Option<FileId> {
        self.items.first().copied()
    }

    fn ranked(&self) -> Vec<FileId> {
        self.items.clone()
    }

    fn ranked_into(&self, out: &mut Vec<FileId>) {
        out.extend_from_slice(&self.items);
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn capacity(&self) -> Option<usize> {
        None
    }

    fn fresh(&self) -> Self {
        OracleSuccessorList::new()
    }
}

/// Exponentially-decayed frequency list: the paper's future-work hybrid.
///
/// Each successor carries a score; observing a successor adds 1 to its
/// score after decaying all scores by `decay^Δt` (Δt in observations of
/// this list). `decay = 1.0` degenerates to pure frequency; `decay → 0`
/// approaches pure recency. Eviction removes the lowest score.
///
/// The paper concludes "the ideal likelihood estimate may well be based on
/// a combination of recency and frequency"; this list makes that hybrid
/// concrete and sweepable (see the ablation benches).
#[derive(Debug, Clone)]
pub struct DecayedSuccessorList {
    capacity: usize,
    decay: f64,
    // (successor, score-at-last-update, stamp-of-last-update)
    items: Vec<(FileId, f64, u64)>,
    clock: u64,
}

impl DecayedSuccessorList {
    /// Creates a decayed-frequency list.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidationError`] if `capacity` is zero or `decay` is
    /// not in `(0, 1]`.
    pub fn new(capacity: usize, decay: f64) -> Result<Self, ValidationError> {
        if capacity == 0 {
            return Err(ValidationError::new(
                "capacity",
                "successor list capacity must be at least 1",
            ));
        }
        if !(decay > 0.0 && decay <= 1.0) {
            return Err(ValidationError::new("decay", "must lie in (0, 1]"));
        }
        Ok(DecayedSuccessorList {
            capacity,
            decay,
            items: Vec::with_capacity(capacity),
            clock: 0,
        })
    }

    fn score_now(&self, score: f64, stamp: u64) -> f64 {
        score * self.decay.powi((self.clock - stamp) as i32)
    }

    /// The current (decayed) score of `succ`, if tracked.
    pub fn score(&self, succ: FileId) -> Option<f64> {
        self.items
            .iter()
            .find(|(f, _, _)| *f == succ)
            .map(|&(_, s, t)| self.score_now(s, t))
    }
}

impl SuccessorList for DecayedSuccessorList {
    fn observe(&mut self, succ: FileId) {
        self.clock += 1;
        if let Some(i) = self.items.iter().position(|(f, _, _)| *f == succ) {
            let (_, s, t) = self.items[i];
            let updated = self.score_now(s, t) + 1.0;
            self.items[i] = (succ, updated, self.clock);
            return;
        }
        if self.items.len() == self.capacity {
            let victim = self
                .items
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let sa = self.score_now(a.1, a.2);
                    let sb = self.score_now(b.1, b.2);
                    sa.partial_cmp(&sb)
                        .expect("scores are finite")
                        .then(a.2.cmp(&b.2))
                })
                .map(|(i, _)| i)
                .expect("list is full, hence non-empty");
            self.items.remove(victim);
        }
        let clock = self.clock;
        self.items.push((succ, 1.0, clock));
    }

    fn contains(&self, succ: FileId) -> bool {
        self.items.iter().any(|(f, _, _)| *f == succ)
    }

    fn most_likely(&self) -> Option<FileId> {
        self.items
            .iter()
            .max_by(|a, b| {
                let sa = self.score_now(a.1, a.2);
                let sb = self.score_now(b.1, b.2);
                sa.partial_cmp(&sb)
                    .expect("scores are finite")
                    .then(a.2.cmp(&b.2))
            })
            .map(|(f, _, _)| *f)
    }

    fn ranked(&self) -> Vec<FileId> {
        let mut scored: Vec<(FileId, f64, u64)> = self
            .items
            .iter()
            .map(|&(f, s, t)| (f, self.score_now(s, t), t))
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("scores are finite")
                .then(b.2.cmp(&a.2))
        });
        scored.into_iter().map(|(f, _, _)| f).collect()
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn capacity(&self) -> Option<usize> {
        Some(self.capacity)
    }

    fn fresh(&self) -> Self {
        DecayedSuccessorList {
            capacity: self.capacity,
            decay: self.decay,
            items: Vec::with_capacity(self.capacity),
            clock: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conformance<L: SuccessorList>(make: impl Fn() -> L) {
        // Fresh lists are empty.
        let l = make();
        assert!(l.is_empty());
        assert_eq!(l.most_likely(), None);
        assert!(l.ranked().is_empty());

        // Observation makes a successor visible and most likely.
        let mut l = make();
        l.observe(FileId(5));
        assert!(l.contains(FileId(5)));
        assert_eq!(l.most_likely(), Some(FileId(5)));
        assert_eq!(l.len(), 1);

        // Capacity is never exceeded.
        let mut l = make();
        for i in 0..20 {
            l.observe(FileId(i));
            if let Some(cap) = l.capacity() {
                assert!(l.len() <= cap);
            }
        }

        // ranked() agrees with most_likely() and contains().
        let mut l = make();
        for i in [1u64, 2, 1, 3, 1, 2] {
            l.observe(FileId(i));
        }
        let ranked = l.ranked();
        assert_eq!(ranked.first().copied(), l.most_likely());
        for f in &ranked {
            assert!(l.contains(*f));
        }
        assert_eq!(ranked.len(), l.len());

        // ranked_into() appends exactly ranked().
        let mut scratch = vec![FileId(999)];
        l.ranked_into(&mut scratch);
        assert_eq!(scratch[0], FileId(999));
        assert_eq!(&scratch[1..], ranked.as_slice());

        // fresh() is empty with the same capacity.
        let f = l.fresh();
        assert!(f.is_empty());
        assert_eq!(f.capacity(), l.capacity());
    }

    #[test]
    fn lru_conformance() {
        conformance(|| LruSuccessorList::new(3).unwrap());
    }

    #[test]
    fn lfu_conformance() {
        conformance(|| LfuSuccessorList::new(3).unwrap());
    }

    #[test]
    fn oracle_conformance() {
        conformance(OracleSuccessorList::new);
    }

    #[test]
    fn decayed_conformance() {
        conformance(|| DecayedSuccessorList::new(3, 0.5).unwrap());
    }

    #[test]
    fn constructors_validate() {
        assert!(LruSuccessorList::new(0).is_err());
        assert!(LfuSuccessorList::new(0).is_err());
        assert!(DecayedSuccessorList::new(0, 0.5).is_err());
        assert!(DecayedSuccessorList::new(3, 0.0).is_err());
        assert!(DecayedSuccessorList::new(3, 1.5).is_err());
        assert!(DecayedSuccessorList::new(3, f64::NAN).is_err());
        assert!(DecayedSuccessorList::new(3, 1.0).is_ok());
    }

    #[test]
    fn lru_eviction_order() {
        let mut l = LruSuccessorList::new(2).unwrap();
        l.observe(FileId(1));
        l.observe(FileId(2));
        l.observe(FileId(1)); // refresh 1
        l.observe(FileId(3)); // evicts 2
        assert!(l.contains(FileId(1)));
        assert!(!l.contains(FileId(2)));
        assert_eq!(l.ranked(), vec![FileId(3), FileId(1)]);
    }

    #[test]
    fn lfu_prefers_frequent() {
        let mut l = LfuSuccessorList::new(2).unwrap();
        l.observe(FileId(1));
        l.observe(FileId(1));
        l.observe(FileId(2));
        l.observe(FileId(3)); // evicts 2 (count 1, older than 3? no - 2 older)
        assert!(l.contains(FileId(1)));
        assert!(!l.contains(FileId(2)));
        assert_eq!(l.most_likely(), Some(FileId(1)));
        assert_eq!(l.count(FileId(1)), Some(2));
    }

    #[test]
    fn lfu_tie_breaks_by_recency() {
        let mut l = LfuSuccessorList::new(2).unwrap();
        l.observe(FileId(1));
        l.observe(FileId(2));
        l.observe(FileId(3)); // counts all 1 → evict 1 (oldest)
        assert!(!l.contains(FileId(1)));
        assert!(l.contains(FileId(2)));
        assert!(l.contains(FileId(3)));
    }

    #[test]
    fn oracle_never_forgets() {
        let mut l = OracleSuccessorList::new();
        for i in 0..1000 {
            l.observe(FileId(i));
        }
        assert_eq!(l.len(), 1000);
        assert!(l.contains(FileId(0)));
        assert_eq!(l.capacity(), None);
        assert_eq!(l.most_likely(), Some(FileId(999)));
    }

    #[test]
    fn decayed_with_full_decay_is_frequency() {
        // decay = 1.0: scores are plain counts.
        let mut l = DecayedSuccessorList::new(3, 1.0).unwrap();
        l.observe(FileId(1));
        l.observe(FileId(2));
        l.observe(FileId(2));
        l.observe(FileId(1));
        l.observe(FileId(1));
        assert_eq!(l.most_likely(), Some(FileId(1)));
        assert!((l.score(FileId(1)).unwrap() - 3.0).abs() < 1e-9);
        assert!((l.score(FileId(2)).unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn decayed_with_strong_decay_tracks_recency() {
        // Strong decay: a burst of old observations loses to one recent.
        let mut l = DecayedSuccessorList::new(3, 0.1).unwrap();
        for _ in 0..5 {
            l.observe(FileId(1));
        }
        l.observe(FileId(2));
        assert_eq!(l.most_likely(), Some(FileId(2)));
    }

    #[test]
    fn decayed_eviction_removes_lowest_score() {
        // Gentle decay: two observations of 1 (score ≈ 1.54 after decay)
        // outweigh the single fresher observation of 2 (score 0.9).
        let mut l = DecayedSuccessorList::new(2, 0.9).unwrap();
        l.observe(FileId(1));
        l.observe(FileId(1));
        l.observe(FileId(2));
        l.observe(FileId(3)); // lowest score is 2
        assert!(l.contains(FileId(1)));
        assert!(!l.contains(FileId(2)));
        assert!(l.contains(FileId(3)));
    }

    #[test]
    fn reobservation_does_not_grow_list() {
        let mut l = LruSuccessorList::new(3).unwrap();
        for _ in 0..10 {
            l.observe(FileId(7));
        }
        assert_eq!(l.len(), 1);
    }
}

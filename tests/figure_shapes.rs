//! Integration tests asserting the *shape* of every reproduced figure at
//! reduced scale — the acceptance criteria from DESIGN.md §5.
//!
//! These run the same drivers as the `repro_*` binaries, on smaller
//! traces, and check the qualitative claims of the paper: who wins, by
//! roughly what factor, and where the crossovers fall.

use fgcache::cache::PolicyKind;
use fgcache::prelude::*;
use fgcache::sim::client::{client_sweep, ClientSweepConfig};
use fgcache::sim::entropy_exp::{entropy_sweep, filtered_entropy_sweep};
use fgcache::sim::headline::headline_summary;
use fgcache::sim::server::{two_level_sweep, ServerScheme, TwoLevelConfig};
use fgcache::sim::successors::{successor_eval, ReplacementScheme, SuccessorEvalConfig};

const EVENTS: usize = 60_000;
const SEED: u64 = 77;

fn trace(profile: WorkloadProfile) -> Trace {
    SynthConfig::profile(profile)
        .events(EVENTS)
        .seed(SEED)
        .build()
        .expect("profiles are valid")
        .generate()
}

#[test]
fn fig3_shape_grouping_cuts_fetches_with_diminishing_returns() {
    let t = trace(WorkloadProfile::Server);
    let points = client_sweep(
        &t,
        &ClientSweepConfig {
            capacities: vec![100, 400],
            group_sizes: vec![1, 2, 3, 5, 7, 10],
            successor_capacity: 8,
        },
    )
    .unwrap();
    for &capacity in &[100usize, 400] {
        let fetches = |g: usize| {
            points
                .iter()
                .find(|p| p.capacity == capacity && p.group_size == g)
                .unwrap()
                .demand_fetches
        };
        let lru = fetches(1);
        // Every group size beats plain LRU.
        for g in [2, 3, 5, 7, 10] {
            assert!(fetches(g) < lru, "cap {capacity}: g{g} did not beat LRU");
        }
        // Substantial reduction by g5 (paper: > 60 % on server). At the
        // larger capacity the compulsory-miss floor leaves less headroom,
        // so the bar is lower there.
        let bar = if capacity == 100 { 0.55 } else { 0.70 };
        assert!(
            (fetches(5) as f64) < bar * lru as f64,
            "cap {capacity}: g5 {} vs lru {lru}",
            fetches(5)
        );
        // Monotone in group size: larger groups never fetch more.
        assert!(fetches(3) <= fetches(2));
        assert!(fetches(5) <= fetches(3));
        assert!(fetches(7) <= fetches(5));
        assert!(fetches(10) <= fetches(7));
        // Diminishing returns past g5: the g5→g10 step is smaller than
        // the LRU→g5 step.
        let early_gain = lru - fetches(5);
        let late_gain = fetches(5) - fetches(10);
        assert!(
            late_gain * 4 < early_gain,
            "no taper: {early_gain} vs {late_gain}"
        );
    }
}

#[test]
fn fig3_shape_write_workload_gains_least() {
    let reduction = |profile: WorkloadProfile| {
        let t = trace(profile);
        let points = client_sweep(
            &t,
            &ClientSweepConfig {
                capacities: vec![200],
                group_sizes: vec![1, 5],
                successor_capacity: 8,
            },
        )
        .unwrap();
        let lru = points
            .iter()
            .find(|p| p.group_size == 1)
            .unwrap()
            .demand_fetches;
        let g5 = points
            .iter()
            .find(|p| p.group_size == 5)
            .unwrap()
            .demand_fetches;
        1.0 - g5 as f64 / lru as f64
    };
    let write = reduction(WorkloadProfile::Write);
    let server = reduction(WorkloadProfile::Server);
    assert!(
        write < server,
        "write workload should gain least: write {write:.2} vs server {server:.2}"
    );
}

#[test]
fn fig4_shape_plain_caches_collapse_aggregating_survives() {
    let t = trace(WorkloadProfile::Workstation);
    let points = two_level_sweep(
        &t,
        &TwoLevelConfig {
            filter_capacities: vec![50, 300, 450],
            server_capacity: 300,
            schemes: vec![
                ServerScheme::Aggregating { group_size: 5 },
                ServerScheme::Policy(PolicyKind::Lru),
                ServerScheme::Policy(PolicyKind::Lfu),
            ],
            successor_capacity: 8,
        },
    )
    .unwrap();
    let hit = |filter: usize, scheme: &str| {
        points
            .iter()
            .find(|p| p.filter_capacity == filter && p.scheme == scheme)
            .unwrap()
            .server_hit_rate
    };
    // LRU degrades sharply as the filter grows toward the server size.
    assert!(hit(50, "lru") > 3.0 * hit(450, "lru").max(0.01));
    // The aggregating cache wins at every filter size...
    for f in [50usize, 300, 450] {
        assert!(hit(f, "g5") > hit(f, "lru"), "filter {f}");
        assert!(hit(f, "g5") > hit(f, "lfu"), "filter {f}");
    }
    // ...and stays genuinely useful (paper: 30-60 %) where LRU is dead.
    assert!(
        hit(450, "g5") > 0.30,
        "aggregating hit rate {} at filter 450",
        hit(450, "g5")
    );
    assert!(hit(450, "lru") < 0.10);
    // LRU >= LFU ("it is no surprise that LRU outperforms LFU").
    assert!(hit(50, "lru") >= hit(50, "lfu"));
}

#[test]
fn fig5_shape_sharp_drop_lru_tracks_oracle() {
    let t = trace(WorkloadProfile::Server);
    let points = successor_eval(
        &t,
        &SuccessorEvalConfig {
            capacities: vec![1, 2, 4, 10],
            schemes: vec![
                ReplacementScheme::Oracle,
                ReplacementScheme::Lru,
                ReplacementScheme::Lfu,
            ],
        },
    )
    .unwrap();
    let p = |cap: usize, s: &str| {
        points
            .iter()
            .find(|x| x.capacity == cap && x.scheme == s)
            .unwrap()
            .miss_probability
    };
    // Sharp drop from one to a few entries.
    assert!(p(2, "lru") < 0.6 * p(1, "lru"));
    // Oracle bounds everything at every capacity.
    for cap in [1usize, 2, 4, 10] {
        assert!(p(cap, "oracle") <= p(cap, "lru") + 1e-12);
        assert!(p(cap, "oracle") <= p(cap, "lfu") + 1e-12);
    }
    // A handful of recency-managed entries lands near the oracle.
    assert!(
        p(10, "lru") - p(10, "oracle") < 0.05,
        "lru@10 {} vs oracle {}",
        p(10, "lru"),
        p(10, "oracle")
    );
    // Recency is never materially worse than frequency.
    for cap in [1usize, 2, 4, 10] {
        assert!(p(cap, "lru") <= p(cap, "lfu") + 0.02, "cap {cap}");
    }
}

#[test]
fn fig7_shape_single_successors_most_predictable_server_lowest() {
    let traces: Vec<(String, Trace)> = WorkloadProfile::ALL
        .iter()
        .map(|&p| (p.name().to_string(), trace(p)))
        .collect();
    let labelled: Vec<(String, &Trace)> = traces.iter().map(|(l, t)| (l.clone(), t)).collect();
    let series = entropy_sweep(&labelled, &[1, 2, 4, 8, 16]).unwrap();
    let get = |label: &str| &series.iter().find(|s| s.label == label).unwrap().points;
    // Monotone non-decreasing in k for every workload.
    for s in &series {
        for pair in s.points.windows(2) {
            assert!(
                pair[1].1 >= pair[0].1 - 0.02,
                "{}: entropy fell from k={} to k={}",
                s.label,
                pair[0].0,
                pair[1].0
            );
        }
    }
    // Server is the most predictable at k = 1, below one bit; users least.
    let at1 = |label: &str| get(label)[0].1;
    assert!(at1("server") < 1.0, "server {}", at1("server"));
    for other in ["workstation", "users", "write"] {
        assert!(at1("server") < at1(other), "server vs {other}");
    }
    assert!(at1("users") > at1("workstation"));
}

#[test]
fn fig8_shape_small_filters_hurt_large_filters_help_predictability() {
    let t = trace(WorkloadProfile::Write);
    let raw = fgcache::entropy::successor_entropy(&t.file_sequence());
    let series = filtered_entropy_sweep(&t, &[10, 50, 500, 1000], &[1]).unwrap();
    let h = |label: &str| series.iter().find(|s| s.label == label).unwrap().points[0].1;
    // A tiny filter strips the predictable immediate re-accesses → the
    // miss stream is LESS predictable than the raw workload.
    assert!(
        h("filter=10") > raw,
        "filter=10 {} vs raw {raw}",
        h("filter=10")
    );
    // Large filters expose the orderly first-access structure → MORE
    // predictable than raw, and monotonically so.
    assert!(h("filter=500") < raw);
    assert!(h("filter=1000") < h("filter=500"));
    assert!(h("filter=50") < h("filter=10"));
}

#[test]
fn headline_shape_all_claims_in_direction() {
    let traces: Vec<(String, Trace)> = WorkloadProfile::ALL
        .iter()
        .map(|&p| (p.name().to_string(), trace(p)))
        .collect();
    let labelled: Vec<(String, &Trace)> = traces.iter().map(|(l, t)| (l.clone(), t)).collect();
    let summary = headline_summary(&labelled).unwrap();
    assert_eq!(summary.rows.len(), 4);
    for row in &summary.rows {
        assert!(
            row.fetch_reduction > 0.15,
            "{}: reduction {}",
            row.workload,
            row.fetch_reduction
        );
        assert!(row.small_filter_g5_hit > row.small_filter_lru_hit);
        assert!(row.large_filter_g5_hit > row.large_filter_lru_hit);
        // Behind the large filter LRU is (near) dead while grouping lives.
        assert!(row.large_filter_lru_hit < 0.10, "{}", row.workload);
        assert!(row.large_filter_g5_hit > 0.15, "{}", row.workload);
        if let Some(gain) = row.small_filter_gain() {
            assert!(gain > 0.20, "{}: gain {gain}", row.workload);
        }
    }
    // The server workload gains the most from grouping on the client.
    let server = summary
        .rows
        .iter()
        .find(|r| r.workload == "server")
        .unwrap();
    for row in &summary.rows {
        assert!(server.fetch_reduction >= row.fetch_reduction - 1e-9);
    }
}

//! Production side of the atomics facade: a zero-cost transparent
//! wrapper over `std::sync::atomic::AtomicU64`.

use std::sync::atomic::Ordering;

/// A 64-bit atomic integer routed through the fgcache atomics facade.
///
/// In this (default) configuration every method is an `#[inline]`
/// delegation to [`std::sync::atomic::AtomicU64`]; the wrapper exists
/// only so a `fgcache_model` build can substitute the instrumented
/// variant without touching call sites.
#[derive(Debug, Default)]
#[repr(transparent)]
pub struct AtomicU64(std::sync::atomic::AtomicU64);

impl AtomicU64 {
    /// Creates a new atomic initialized to `value`.
    #[inline]
    pub const fn new(value: u64) -> Self {
        AtomicU64(std::sync::atomic::AtomicU64::new(value))
    }

    /// Loads the current value.
    #[inline]
    pub fn load(&self, order: Ordering) -> u64 {
        self.0.load(order)
    }

    /// Stores `value`.
    #[inline]
    pub fn store(&self, value: u64, order: Ordering) {
        self.0.store(value, order)
    }

    /// Adds `value`, returning the previous value.
    #[inline]
    pub fn fetch_add(&self, value: u64, order: Ordering) -> u64 {
        self.0.fetch_add(value, order)
    }

    /// Subtracts `value`, returning the previous value.
    #[inline]
    pub fn fetch_sub(&self, value: u64, order: Ordering) -> u64 {
        self.0.fetch_sub(value, order)
    }

    /// Swaps in `value`, returning the previous value.
    #[inline]
    pub fn swap(&self, value: u64, order: Ordering) -> u64 {
        self.0.swap(value, order)
    }

    /// Compare-and-exchange; see [`std::sync::atomic::AtomicU64::compare_exchange`].
    #[inline]
    pub fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        self.0.compare_exchange(current, new, success, failure)
    }

    /// Weak compare-and-exchange (may spuriously fail); see
    /// [`std::sync::atomic::AtomicU64::compare_exchange_weak`].
    #[inline]
    pub fn compare_exchange_weak(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        self.0.compare_exchange_weak(current, new, success, failure)
    }
}

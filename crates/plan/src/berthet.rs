//! Berthet's closed-form power-law specialization of the Che fixed point.
//!
//! For Zipf(α) popularities `pᵢ = i^{−α}/H_{N,α}` with α > 1, the
//! occupancy sum in the Che fixed point is well approximated by the
//! integral `∫₀^∞ (1 − e^{−T·x^{−α}/H}) dx = (T/H)^{1/α}·Γ(1 − 1/α)`,
//! which makes the characteristic time **explicit**:
//!
//! ```text
//!     T ≈ H_{N,α} · (C / Γ(1 − 1/α))^α
//! ```
//!
//! and collapses the miss rate `Σᵢ pᵢ·e^{−pᵢT}` (by the same
//! substitution) to
//!
//! ```text
//!     MR ≈ Γ(1 − 1/α)^α · C^{1−α} / (α · H_{N,α})
//! ```
//!
//! — the closed form of Berthet (arXiv:1705.10738), building on Fagin's
//! 1977 asymptotics; the same expression appears as the α > 1 asymptotic
//! of Fricker, Robert & Roberts. Its validity window is `α > 1` and
//! `1 ≪ C ≪ N`: the continuous relaxation overweights the head of the
//! distribution at single-digit capacities and ignores the finite-universe
//! truncation as `C → N`. Inside the window it tracks the fixed-point
//! solution (crate [`che`](crate::che)) to a few parts in a thousand,
//! for the cost of two `Γ` evaluations — see the cross-check tests below
//! and the tolerances pinned in `fgcache-sim::plan_validation`.

use fgcache_types::math::{gamma, generalized_harmonic};
use fgcache_types::ValidationError;

fn validate(universe: usize, alpha: f64, capacity: f64) -> Result<(), ValidationError> {
    if universe == 0 {
        return Err(ValidationError::new(
            "universe",
            "must be greater than zero",
        ));
    }
    if !alpha.is_finite() || alpha <= 1.0 {
        return Err(ValidationError::new(
            "alpha",
            "the closed form requires a finite exponent greater than 1 \
             (use the fixed-point solver below the power-law regime)",
        ));
    }
    if !capacity.is_finite() || capacity <= 0.0 {
        return Err(ValidationError::new(
            "capacity",
            "must be positive and finite",
        ));
    }
    if capacity > universe as f64 {
        return Err(ValidationError::new(
            "capacity",
            "must not exceed the universe",
        ));
    }
    Ok(())
}

/// Closed-form characteristic time `T ≈ H_{N,α}·(C/Γ(1−1/α))^α` for
/// Zipf(α) over `universe` files, valid for `α > 1`.
///
/// # Errors
///
/// Returns a [`ValidationError`] if `α ≤ 1` (or non-finite), the
/// universe is empty, or `capacity` is outside `(0, universe]`.
pub fn closed_form_characteristic_time(
    universe: usize,
    alpha: f64,
    capacity: f64,
) -> Result<f64, ValidationError> {
    validate(universe, alpha, capacity)?;
    let h = generalized_harmonic(universe, alpha)?;
    let g = gamma(1.0 - 1.0 / alpha);
    Ok(h * (capacity / g).powf(alpha))
}

/// Closed-form LRU miss rate `MR ≈ Γ(1−1/α)^α·C^{1−α}/(α·H_{N,α})` for
/// Zipf(α) over `universe` files, clamped into `[0, 1]` (the continuous
/// relaxation can exceed 1 at capacities below its validity window).
///
/// # Errors
///
/// Returns a [`ValidationError`] under the same conditions as
/// [`closed_form_characteristic_time`].
pub fn closed_form_miss_rate(
    universe: usize,
    alpha: f64,
    capacity: f64,
) -> Result<f64, ValidationError> {
    validate(universe, alpha, capacity)?;
    let h = generalized_harmonic(universe, alpha)?;
    let g = gamma(1.0 - 1.0 / alpha);
    let mr = g.powf(alpha) * capacity.powf(1.0 - alpha) / (alpha * h);
    Ok(mr.clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::che;
    use crate::popularity::zipf_popularities;

    #[test]
    fn rejects_out_of_regime_inputs() {
        assert!(closed_form_miss_rate(0, 1.5, 10.0).is_err());
        assert!(closed_form_miss_rate(100, 1.0, 10.0).is_err()); // α ≤ 1
        assert!(closed_form_miss_rate(100, 0.8, 10.0).is_err());
        assert!(closed_form_miss_rate(100, f64::NAN, 10.0).is_err());
        assert!(closed_form_miss_rate(100, 1.5, 0.0).is_err());
        assert!(closed_form_miss_rate(100, 1.5, 101.0).is_err());
    }

    #[test]
    fn miss_rate_decreases_with_capacity_and_skew() {
        let m1 = closed_form_miss_rate(100_000, 1.3, 100.0).unwrap();
        let m2 = closed_form_miss_rate(100_000, 1.3, 1000.0).unwrap();
        let m3 = closed_form_miss_rate(100_000, 1.8, 1000.0).unwrap();
        assert!(m1 > m2, "more cache must miss less: {m1} vs {m2}");
        assert!(m2 > m3, "more skew must miss less: {m2} vs {m3}");
        assert!(m3 > 0.0 && m1 < 1.0);
    }

    #[test]
    fn tracks_the_fixed_point_inside_the_validity_window() {
        // α > 1, 1 ≪ C ≪ N: closed form vs fixed-point solver, with the
        // tolerance widening as α → 1⁺ (the integral relaxation converges
        // like the harmonic tail there — measured, not assumed).
        for &(alpha, universe, capacity, tol) in &[
            (1.5, 20_000, 200.0, 0.02),
            (1.3, 50_000, 500.0, 0.05),
            (2.0, 20_000, 100.0, 0.01),
        ] {
            let p = zipf_popularities(universe, alpha).unwrap();
            let exact = che::solve(&p, capacity).unwrap();
            let mr = closed_form_miss_rate(universe, alpha, capacity).unwrap();
            let delta = ((1.0 - mr) - exact.hit_rate).abs();
            assert!(
                delta < tol,
                "α={alpha} N={universe} C={capacity}: closed-form hit {} vs fixed point {} (Δ={delta})",
                1.0 - mr,
                exact.hit_rate
            );
            let t_cf = closed_form_characteristic_time(universe, alpha, capacity).unwrap();
            let ratio = t_cf / exact.characteristic_time;
            assert!(
                (0.5..1.5).contains(&ratio),
                "α={alpha}: T ratio {ratio} out of band"
            );
        }
    }
}

//! Sharded multi-client aggregating cache — the server-position tier.
//!
//! The paper's server deployment (§4.3) funnels *many* clients' miss
//! streams into one aggregating cache. A single-threaded
//! [`AggregatingCache`] serializes that convergence; this module
//! partitions both the residency directory and the successor table
//! across `N` shards so concurrent clients contend only on the shard
//! their requested file hashes to.
//!
//! # Shard layout
//!
//! Every [`FileId`] is assigned to exactly one shard by a fixed
//! SplitMix64-finalizer hash ([`ShardedAggregatingCache::shard_of`]).
//! Each shard owns a complete [`AggregatingCache`] — an LRU residency
//! slice plus its own successor table — guarded by one
//! [`std::sync::Mutex`]. The hash-partitioning invariant follows
//! directly: a file's residency entry *and* its successor list live on
//! exactly one shard, so no operation ever takes more than one lock and
//! lock order cannot deadlock.
//!
//! Each shard therefore learns successor relationships from the
//! sub-stream of requests that hash to it. With `shards == 1` the
//! composition degenerates to a plain [`AggregatingCache`] and is
//! bit-identical to it (same hit/miss sequence, same statistics) — the
//! differential fuzzer in `tests/sharded_differential.rs` pins both
//! this and the general `N`-shard equivalence to `N` independent
//! per-partition caches.
//!
//! The shard boundary is where a networked fetch transport will later
//! plug in: a shard is a self-contained server tier for its slice of
//! the id space.
//!
//! # Examples
//!
//! ```
//! use fgcache_core::ShardedAggregatingCacheBuilder;
//! use fgcache_types::FileId;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let server = ShardedAggregatingCacheBuilder::new(400)
//!     .shards(4)
//!     .group_size(5)
//!     .build()?;
//! std::thread::scope(|scope| {
//!     for client in 0..4u64 {
//!         let server = &server;
//!         scope.spawn(move || {
//!             for i in 0..100u64 {
//!                 server.handle_access(FileId(client * 1000 + i % 10));
//!             }
//!         });
//!     }
//! });
//! assert_eq!(server.stats().accesses, 400);
//! server.check_invariants()?;
//! # Ok(())
//! # }
//! ```

use std::sync::Mutex;

use fgcache_cache::{Cache as _, CacheStats};
use fgcache_types::{AccessOutcome, FileId, InvariantViolation, ValidationError};

use crate::aggregating::{AggregatingCache, GroupFetchStats, InsertionPolicy, MetadataSource};
use crate::builder::{AggregatingCacheBuilder, DEFAULT_SUCCESSOR_CAPACITY};

/// Maps a file to its shard with the SplitMix64 finalizer — deterministic
/// across runs and platforms, and well-mixed even for sequential ids.
fn shard_index(file: FileId, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let mut z = file.as_u64().wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % shards as u64) as usize
}

/// Splits a total capacity across `shards` slices: every shard gets
/// `total / shards`, and the remainder goes to the first shards so the
/// slice sizes differ by at most one file.
pub fn partition_capacities(total: usize, shards: usize) -> Vec<usize> {
    let base = total / shards.max(1);
    let rem = total % shards.max(1);
    (0..shards.max(1))
        .map(|i| base + usize::from(i < rem))
        .collect()
}

/// A hash-partitioned aggregating cache safe for concurrent clients.
///
/// Construct via [`ShardedAggregatingCacheBuilder`]. All request-path
/// methods take `&self`; each locks exactly the one shard the file
/// hashes to. Aggregate inspection methods ([`stats`], [`group_stats`],
/// …) lock the shards one at a time and sum, so they are linearizable
/// per shard but only quiescently consistent across shards — call them
/// after the client threads have joined for exact totals.
///
/// [`stats`]: ShardedAggregatingCache::stats
/// [`group_stats`]: ShardedAggregatingCache::group_stats
#[derive(Debug)]
pub struct ShardedAggregatingCache {
    shards: Vec<Mutex<AggregatingCache>>,
    capacity: usize,
}

impl ShardedAggregatingCache {
    fn from_shards(shards: Vec<AggregatingCache>, capacity: usize) -> Self {
        ShardedAggregatingCache {
            shards: shards.into_iter().map(Mutex::new).collect(),
            capacity,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total residency capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The shard `file` is assigned to.
    pub fn shard_of(&self, file: FileId) -> usize {
        shard_index(file, self.shards.len())
    }

    fn shard(&self, i: usize) -> std::sync::MutexGuard<'_, AggregatingCache> {
        self.shards[i]
            .lock()
            .expect("a shard panicked while holding its lock")
    }

    /// Handles one demand request on the owning shard (one lock).
    pub fn handle_access(&self, file: FileId) -> AccessOutcome {
        self.shard(self.shard_of(file)).handle_access(file)
    }

    /// Feeds a metadata-only observation to the owning shard's successor
    /// table without touching residency (piggy-backed client statistics).
    pub fn observe_metadata(&self, file: FileId) {
        self.shard(self.shard_of(file)).observe_metadata(file);
    }

    /// Runs `f` against the shard owning `file` — the escape hatch for
    /// tests and future transports that need the full per-shard API.
    pub fn with_shard_of<R>(&self, file: FileId, f: impl FnOnce(&AggregatingCache) -> R) -> R {
        f(&self.shard(self.shard_of(file)))
    }

    /// Total resident files across all shards.
    pub fn len(&self) -> usize {
        (0..self.shards.len()).map(|i| self.shard(i).len()).sum()
    }

    /// Returns `true` if no shard holds any file.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` if `file` is resident (on its owning shard).
    pub fn contains(&self, file: FileId) -> bool {
        self.shard(self.shard_of(file)).contains(file)
    }

    /// Summed cache statistics across all shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::new();
        for i in 0..self.shards.len() {
            let s = *self.shard(i).stats();
            total.accesses += s.accesses;
            total.hits += s.hits;
            total.misses += s.misses;
            total.speculative_inserts += s.speculative_inserts;
            total.speculative_hits += s.speculative_hits;
            total.evictions += s.evictions;
        }
        total
    }

    /// Summed group-fetch statistics across all shards.
    pub fn group_stats(&self) -> GroupFetchStats {
        let mut total = GroupFetchStats::default();
        for i in 0..self.shards.len() {
            let s = *self.shard(i).group_stats();
            total.demand_fetches += s.demand_fetches;
            total.files_transferred += s.files_transferred;
            total.members_already_resident += s.members_already_resident;
        }
        total
    }

    /// Total demand fetches (misses) across all shards.
    pub fn demand_fetches(&self) -> u64 {
        self.group_stats().demand_fetches
    }

    /// Aggregate demand hit rate across all shards.
    pub fn hit_rate(&self) -> f64 {
        self.stats().hit_rate()
    }

    /// Total successor-table entries across all shards.
    pub fn metadata_entries(&self) -> usize {
        (0..self.shards.len())
            .map(|i| self.shard(i).metadata_entries())
            .sum()
    }

    /// Requests handled per shard, in shard order — the load profile the
    /// hash produced.
    pub fn shard_accesses(&self) -> Vec<u64> {
        (0..self.shards.len())
            .map(|i| self.shard(i).accesses())
            .collect()
    }

    /// Load imbalance: the busiest shard's request count divided by the
    /// mean per-shard count (1.0 = perfectly balanced; 0 with no
    /// requests).
    pub fn shard_imbalance(&self) -> f64 {
        let loads = self.shard_accesses();
        let total: u64 = loads.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mean = total as f64 / loads.len() as f64;
        let max = loads.iter().copied().max().unwrap_or(0) as f64;
        max / mean
    }

    /// Drops all resident files, successor metadata and statistics.
    pub fn clear(&self) {
        for i in 0..self.shards.len() {
            self.shard(i).clear();
        }
    }

    /// Audits every shard's internal invariants plus the cross-shard
    /// partition invariants: each shard's resident files *and* tracked
    /// successor-list keys hash to that shard, and no file is resident
    /// on two shards.
    ///
    /// # Errors
    ///
    /// Returns an [`InvariantViolation`] describing the first violated
    /// invariant.
    pub fn check_invariants(&self) -> Result<(), InvariantViolation> {
        let err = |detail: String| Err(InvariantViolation::new("ShardedAggregatingCache", detail));
        let mut total_capacity = 0;
        for i in 0..self.shards.len() {
            let shard = self.shard(i);
            shard.check_invariants()?;
            total_capacity += shard.capacity();
            for file in shard.residents() {
                let owner = shard_index(file, self.shards.len());
                if owner != i {
                    return err(format!(
                        "resident file {file} found on shard {i}, hashes to shard {owner}"
                    ));
                }
            }
            for (file, _) in shard.successor_table().iter() {
                let owner = shard_index(file, self.shards.len());
                if owner != i {
                    return err(format!(
                        "successor list for {file} found on shard {i}, hashes to shard {owner}"
                    ));
                }
            }
        }
        if total_capacity != self.capacity {
            return err(format!(
                "shard capacities sum to {total_capacity}, configured total is {}",
                self.capacity
            ));
        }
        Ok(())
    }
}

/// Configures and constructs a [`ShardedAggregatingCache`].
///
/// ```
/// use fgcache_core::ShardedAggregatingCacheBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let server = ShardedAggregatingCacheBuilder::new(300)
///     .shards(2)
///     .group_size(5)
///     .successor_capacity(8)
///     .build()?;
/// assert_eq!(server.shard_count(), 2);
/// assert_eq!(server.capacity(), 300);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ShardedAggregatingCacheBuilder {
    capacity: usize,
    shards: usize,
    group_size: usize,
    successor_capacity: usize,
    insertion: InsertionPolicy,
    metadata: MetadataSource,
}

impl ShardedAggregatingCacheBuilder {
    /// Starts a builder for a sharded cache of `capacity` total files.
    /// Defaults: 1 shard, group size 5, successor capacity
    /// [`DEFAULT_SUCCESSOR_CAPACITY`], tail insertion, metadata from
    /// requests — matching [`AggregatingCacheBuilder`].
    pub fn new(capacity: usize) -> Self {
        ShardedAggregatingCacheBuilder {
            capacity,
            shards: 1,
            group_size: 5,
            successor_capacity: DEFAULT_SUCCESSOR_CAPACITY,
            insertion: InsertionPolicy::default(),
            metadata: MetadataSource::default(),
        }
    }

    /// Sets the shard count `N`.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the group size `g` (1 = plain sharded LRU).
    pub fn group_size(mut self, g: usize) -> Self {
        self.group_size = g;
        self
    }

    /// Sets the per-file successor list capacity.
    pub fn successor_capacity(mut self, capacity: usize) -> Self {
        self.successor_capacity = capacity;
        self
    }

    /// Sets where speculative group members are placed.
    pub fn insertion_policy(mut self, policy: InsertionPolicy) -> Self {
        self.insertion = policy;
        self
    }

    /// Sets where successor observations come from.
    pub fn metadata_source(mut self, source: MetadataSource) -> Self {
        self.metadata = source;
        self
    }

    /// Validates the configuration and constructs the sharded cache.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidationError`] if the shard count is zero, or if
    /// any shard's capacity slice fails [`AggregatingCacheBuilder`]
    /// validation (in particular, the *smallest* slice must still hold a
    /// whole group: `capacity / shards >= group_size`).
    pub fn build(&self) -> Result<ShardedAggregatingCache, ValidationError> {
        if self.shards == 0 {
            return Err(ValidationError::new(
                "shards",
                "at least one shard is required",
            ));
        }
        let slices = partition_capacities(self.capacity, self.shards);
        let mut shards = Vec::with_capacity(self.shards);
        for slice in slices {
            shards.push(
                AggregatingCacheBuilder::new(slice)
                    .group_size(self.group_size)
                    .successor_capacity(self.successor_capacity)
                    .insertion_policy(self.insertion)
                    .metadata_source(self.metadata)
                    .build()?,
            );
        }
        Ok(ShardedAggregatingCache::from_shards(shards, self.capacity))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sharded(capacity: usize, shards: usize) -> ShardedAggregatingCache {
        ShardedAggregatingCacheBuilder::new(capacity)
            .shards(shards)
            .group_size(3)
            .build()
            .unwrap()
    }

    #[test]
    fn validation() {
        assert!(ShardedAggregatingCacheBuilder::new(10)
            .shards(0)
            .build()
            .is_err());
        // 10 files over 4 shards → smallest slice is 2 < group size 3.
        assert!(ShardedAggregatingCacheBuilder::new(10)
            .shards(4)
            .group_size(3)
            .build()
            .is_err());
        assert!(ShardedAggregatingCacheBuilder::new(12)
            .shards(4)
            .group_size(3)
            .build()
            .is_ok());
        assert!(ShardedAggregatingCacheBuilder::new(0).build().is_err());
    }

    #[test]
    fn capacity_partition_differs_by_at_most_one() {
        assert_eq!(partition_capacities(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(partition_capacities(8, 4), vec![2, 2, 2, 2]);
        assert_eq!(partition_capacities(7, 1), vec![7]);
        assert_eq!(partition_capacities(3, 3), vec![1, 1, 1]);
    }

    #[test]
    fn shard_assignment_is_stable_and_in_range() {
        let c = sharded(40, 4);
        for id in 0..1000u64 {
            let s = c.shard_of(FileId(id));
            assert!(s < 4);
            assert_eq!(s, c.shard_of(FileId(id)), "assignment must be stable");
        }
        let single = sharded(40, 1);
        assert!((0..1000u64).all(|id| single.shard_of(FileId(id)) == 0));
    }

    #[test]
    fn hash_spreads_sequential_ids() {
        let c = sharded(40, 4);
        let mut counts = [0usize; 4];
        for id in 0..4000u64 {
            counts[c.shard_of(FileId(id))] += 1;
        }
        for (i, &n) in counts.iter().enumerate() {
            assert!(
                (800..1200).contains(&n),
                "shard {i} got {n} of 4000 sequential ids"
            );
        }
    }

    #[test]
    fn basic_accounting_sums_across_shards() {
        let c = sharded(40, 4);
        for round in 0..3 {
            for id in 0..20u64 {
                let outcome = c.handle_access(FileId(id));
                if round == 0 {
                    assert!(outcome.is_miss());
                }
            }
        }
        let stats = c.stats();
        assert_eq!(stats.accesses, 60);
        assert_eq!(stats.hits + stats.misses, 60);
        assert!(c.contains(FileId(0)));
        assert!(!c.contains(FileId(999)));
        assert_eq!(c.len(), 20);
        assert_eq!(c.demand_fetches(), stats.misses);
        assert!(c.hit_rate() > 0.0);
        assert!(c.metadata_entries() > 0);
        c.check_invariants().unwrap();
    }

    #[test]
    fn shard_loads_and_imbalance() {
        let c = sharded(40, 4);
        assert_eq!(c.shard_imbalance(), 0.0); // no requests yet
        for id in 0..400u64 {
            c.handle_access(FileId(id));
        }
        let loads = c.shard_accesses();
        assert_eq!(loads.iter().sum::<u64>(), 400);
        let imb = c.shard_imbalance();
        assert!((1.0..2.0).contains(&imb), "imbalance {imb}");
    }

    #[test]
    fn concurrent_clients_agree_on_totals() {
        let c = sharded(64, 4);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let c = &c;
                scope.spawn(move || {
                    for i in 0..500u64 {
                        c.handle_access(FileId((t * 7 + i) % 100));
                    }
                });
            }
        });
        assert_eq!(c.stats().accesses, 2000);
        c.check_invariants().unwrap();
    }

    #[test]
    fn observe_metadata_feeds_owning_shard_only() {
        let c = ShardedAggregatingCacheBuilder::new(40)
            .shards(4)
            .group_size(3)
            .metadata_source(MetadataSource::External)
            .build()
            .unwrap();
        for id in 0..50u64 {
            c.observe_metadata(FileId(id));
        }
        assert_eq!(c.len(), 0); // metadata only, no residency
        c.check_invariants().unwrap();
    }

    #[test]
    fn clear_resets_everything() {
        let c = sharded(40, 2);
        for id in 0..30u64 {
            c.handle_access(FileId(id));
        }
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats().accesses, 0);
        assert_eq!(c.metadata_entries(), 0);
        c.check_invariants().unwrap();
    }

    #[test]
    fn with_shard_of_reaches_per_shard_state() {
        let c = sharded(40, 4);
        c.handle_access(FileId(5));
        let (resident, accesses) =
            c.with_shard_of(FileId(5), |s| (s.contains(FileId(5)), s.accesses()));
        assert!(resident);
        assert_eq!(accesses, 1);
    }
}

//! Zipf popularity vectors — the planner's input distribution.

use fgcache_types::math::generalized_harmonic;
use fgcache_types::ValidationError;

/// The Zipf(α) popularity vector over `universe` files: rank `i`
/// (0-based, most popular first) has probability
/// `p_i = (i+1)^{-α} / H_{N,α}`.
///
/// This is exactly the distribution `fgcache_trace::synth::Zipf` samples
/// from (its cumulative table is built from the same `1/k^α` weights), so
/// analytic predictions computed from this vector are directly
/// comparable to replays of `zipf_stream` traces.
///
/// # Errors
///
/// Returns a [`ValidationError`] if `universe == 0`, or if `alpha` is
/// negative or not finite.
pub fn zipf_popularities(universe: usize, alpha: f64) -> Result<Vec<f64>, ValidationError> {
    if !alpha.is_finite() || alpha < 0.0 {
        return Err(ValidationError::new(
            "alpha",
            "exponent must be finite and non-negative",
        ));
    }
    let h = generalized_harmonic(universe, alpha)?;
    Ok((1..=universe)
        .map(|k| (k as f64).powf(-alpha) / h)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_inputs() {
        assert!(zipf_popularities(0, 1.0).is_err());
        assert!(zipf_popularities(10, -0.5).is_err());
        assert!(zipf_popularities(10, f64::NAN).is_err());
    }

    #[test]
    fn sums_to_one_and_decreases() {
        for alpha in [0.0, 0.6, 1.0, 1.4] {
            let p = zipf_popularities(500, alpha).unwrap();
            let total: f64 = p.iter().sum();
            assert!((total - 1.0).abs() < 1e-12, "α={alpha}: Σp = {total}");
            assert!(p.windows(2).all(|w| w[0] >= w[1]), "α={alpha} not sorted");
        }
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let p = zipf_popularities(8, 0.0).unwrap();
        for &pi in &p {
            assert!((pi - 0.125).abs() < 1e-12);
        }
    }

    #[test]
    fn alpha_one_is_harmonic() {
        // p_1/p_2 = 2 exactly under the harmonic special case.
        let p = zipf_popularities(100, 1.0).unwrap();
        assert!((p[0] / p[1] - 2.0).abs() < 1e-12);
    }
}

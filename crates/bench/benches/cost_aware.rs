//! Cost-aware caching microbenchmark: the fixed-cost LRU baseline vs
//! Landlord and the unit-accounted aggregating cache, under a fixed
//! seed, on a Zipf-ish hot/cold workload over Pareto-sized files.
//!
//! Two things are measured per scenario:
//!
//!   * throughput (events/sec) — how much the size/cost bookkeeping
//!     costs on the hot path;
//!   * hit rate and units moved — whether the cost-aware policies earn
//!     that bookkeeping back in retrieval work saved.
//!
//! The `landlord/uniform` scenario doubles as a live bit-identity check:
//! with uniform sizes Landlord must reproduce the LRU hit rate exactly
//! (the differential fuzzers prove the stronger per-operation claim;
//! this bench asserts the end-to-end count on every run).
//!
//! Flags (after `--`): `--smoke` shrinks the event count for CI,
//! `--json PATH` writes a machine-readable summary.

use fgcache_bench::{harness, ratio};
use fgcache_cache::{Cache, LandlordCache, LruCache};
use fgcache_core::AggregatingCacheBuilder;
use fgcache_types::rng::{RandomSource, SeededRng};
use fgcache_types::sizing::{SizeCostAssigner, SizeDistribution};
use fgcache_types::FileId;
use std::hint::black_box;
use std::time::Instant;

/// Unit capacity for every cache (files for the count-based baseline).
const CAPACITY: usize = 2048;
const WORKING_SET: usize = 280; // ~7 units/file mean → ~2000 units hot
const COLD_UNIVERSE: usize = 100_000;
const GROUP_SIZE: usize = 5;
const FULL_EVENTS: usize = 400_000;
const SMOKE_EVENTS: usize = 20_000;
const SEED: u64 = 0xC057_0DE1;

struct Scenario {
    name: String,
    events_per_sec: f64,
    hit_rate: f64,
    units_moved: u64,
}

fn workload(events: usize, seed: u64) -> Vec<FileId> {
    let mut rng = SeededRng::new(seed);
    let mut out = Vec::with_capacity(events);
    for _ in 0..events {
        let id = if rng.chance(0.02) {
            WORKING_SET as u64 + rng.gen_index(COLD_UNIVERSE) as u64
        } else {
            rng.gen_index(WORKING_SET) as u64
        };
        out.push(FileId(id));
    }
    out
}

/// Times repeated passes of `access` over `trace` against a warmed
/// cache; returns the best-of-N events/sec.
fn best_events_per_sec(trace: &[FileId], mut access: impl FnMut(FileId)) -> f64 {
    for &f in trace {
        access(f); // warm
    }
    let mut best = f64::INFINITY;
    for _ in 0..harness::iterations() {
        let start = Instant::now();
        for &f in trace {
            access(black_box(f));
        }
        let secs = start.elapsed().as_secs_f64();
        if secs < best {
            best = secs;
        }
    }
    trace.len() as f64 / best
}

fn bench_cache(
    name: &str,
    trace: &[FileId],
    mut cache: impl Cache,
    sizes: SizeCostAssigner,
) -> Scenario {
    let mut units_moved = 0u64;
    let events_per_sec = best_events_per_sec(trace, |f| {
        if cache.access(f).is_miss() {
            units_moved += u64::from(sizes.size_of(f));
        }
    });
    let stats = cache.stats();
    Scenario {
        name: name.to_string(),
        events_per_sec,
        hit_rate: ratio(stats.hits, stats.accesses),
        units_moved,
    }
}

fn bench_agg(name: &str, trace: &[FileId], sizes: SizeCostAssigner, bundle: bool) -> Scenario {
    let mut cache = AggregatingCacheBuilder::new(CAPACITY)
        .group_size(GROUP_SIZE)
        .sizes(sizes)
        .bundle_eviction(bundle)
        .build()
        .expect("valid cost-aware config");
    let events_per_sec = best_events_per_sec(trace, |f| {
        cache.handle_access(f);
    });
    let stats = Cache::stats(&cache);
    Scenario {
        name: name.to_string(),
        events_per_sec,
        hit_rate: ratio(stats.hits, stats.accesses),
        units_moved: cache.group_stats().size_units_transferred,
    }
}

fn write_json(path: &str, events: usize, scenarios: &[Scenario]) {
    let mut body = String::from("{\n");
    body.push_str(&format!("  \"events\": {events},\n"));
    body.push_str("  \"scenarios\": [\n");
    for (i, s) in scenarios.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"name\": \"{}\", \"events_per_sec\": {:.0}, \"hit_rate\": {:.4}, \"units_moved\": {}}}{}\n",
            s.name,
            s.events_per_sec,
            s.hit_rate,
            s.units_moved,
            if i + 1 == scenarios.len() { "" } else { "," }
        ));
    }
    body.push_str("  ]\n}\n");
    std::fs::write(path, body).expect("write json summary");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let events = if smoke { SMOKE_EVENTS } else { FULL_EVENTS };
    let trace = workload(events, SEED);
    let pareto = SizeCostAssigner::new(SizeDistribution::Pareto, 42);
    let uniform = SizeCostAssigner::uniform();

    println!(
        "# cost_aware: {} events, {} units capacity, working set {} files",
        events, CAPACITY, WORKING_SET
    );

    let scenarios = vec![
        bench_cache("lru/uniform", &trace, LruCache::new(CAPACITY), uniform),
        bench_cache(
            "landlord/uniform",
            &trace,
            LandlordCache::with_assigner(CAPACITY, uniform),
            uniform,
        ),
        bench_cache(
            "landlord/pareto",
            &trace,
            LandlordCache::with_assigner(CAPACITY, pareto),
            pareto,
        ),
        bench_agg("agg/pareto", &trace, pareto, false),
        bench_agg("agg/pareto/bundle", &trace, pareto, true),
    ];

    // Live uniform-degeneracy check: Landlord at size = cost = 1 must be
    // bit-identical to LRU, so the end-to-end hit rates must agree.
    assert_eq!(
        scenarios[0].hit_rate, scenarios[1].hit_rate,
        "landlord/uniform diverged from lru/uniform"
    );

    for s in &scenarios {
        println!(
            "{:<24} {:>12.0} events/s  hit_rate {:.4}  units_moved {}",
            s.name, s.events_per_sec, s.hit_rate, s.units_moved
        );
    }

    if let Some(path) = json_path {
        write_json(&path, events, &scenarios);
        println!("# wrote {path}");
    }
}

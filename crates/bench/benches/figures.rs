//! One bench per paper figure, running a scaled-down version of the
//! exact pipeline the corresponding `repro_*` binary uses. `cargo bench`
//! therefore exercises every table/figure reproduction end to end and
//! tracks its wall-clock cost; for the full-scale numbers run the
//! binaries.

use fgcache_bench::harness;
use fgcache_cache::PolicyKind;
use fgcache_sim::client::{client_sweep, ClientSweepConfig};
use fgcache_sim::entropy_exp::{entropy_sweep, filtered_entropy_sweep};
use fgcache_sim::headline::headline_summary;
use fgcache_sim::server::{two_level_sweep, ServerScheme, TwoLevelConfig};
use fgcache_sim::successors::{successor_eval, ReplacementScheme, SuccessorEvalConfig};
use fgcache_trace::synth::{SynthConfig, WorkloadProfile};
use fgcache_trace::Trace;
use std::hint::black_box;

const EVENTS: usize = 12_000;

fn trace(profile: WorkloadProfile) -> Trace {
    SynthConfig::profile(profile)
        .events(EVENTS)
        .seed(20020702)
        .build()
        .expect("profile is valid")
        .generate()
}

fn fig3() {
    let t = trace(WorkloadProfile::Server);
    let cfg = ClientSweepConfig {
        capacities: vec![100, 400],
        group_sizes: vec![1, 5, 10],
        successor_capacity: 8,
    };
    harness::run("fig3_client_sweep", None, || {
        client_sweep(black_box(&t), &cfg)
            .expect("valid sweep")
            .len()
    });
}

fn fig4() {
    let t = trace(WorkloadProfile::Workstation);
    let cfg = TwoLevelConfig {
        filter_capacities: vec![50, 300],
        server_capacity: 300,
        schemes: vec![
            ServerScheme::Aggregating { group_size: 5 },
            ServerScheme::Policy(PolicyKind::Lru),
            ServerScheme::Policy(PolicyKind::Lfu),
        ],
        successor_capacity: 8,
    };
    harness::run("fig4_two_level_sweep", None, || {
        two_level_sweep(black_box(&t), &cfg)
            .expect("valid sweep")
            .len()
    });
}

fn fig5() {
    let t = trace(WorkloadProfile::Server);
    let cfg = SuccessorEvalConfig {
        capacities: vec![1, 4, 10],
        schemes: vec![
            ReplacementScheme::Oracle,
            ReplacementScheme::Lru,
            ReplacementScheme::Lfu,
        ],
    };
    harness::run("fig5_successor_eval", None, || {
        successor_eval(black_box(&t), &cfg)
            .expect("valid sweep")
            .len()
    });
}

fn fig7() {
    let traces: Vec<(String, Trace)> = WorkloadProfile::ALL
        .iter()
        .map(|&p| (p.name().to_string(), trace(p)))
        .collect();
    let labelled: Vec<(String, &Trace)> = traces.iter().map(|(l, t)| (l.clone(), t)).collect();
    let ks = [1usize, 5, 10, 20];
    harness::run("fig7_entropy_sweep", None, || {
        entropy_sweep(black_box(&labelled), &ks)
            .expect("valid sweep")
            .len()
    });
}

fn fig8() {
    let t = trace(WorkloadProfile::Write);
    let filters = [10usize, 100, 1000];
    let ks = [1usize, 5, 10];
    harness::run("fig8_filtered_entropy_sweep", None, || {
        filtered_entropy_sweep(black_box(&t), &filters, &ks)
            .expect("valid sweep")
            .len()
    });
}

fn headline() {
    let t = trace(WorkloadProfile::Server);
    let labelled = [("server".to_string(), &t)];
    harness::run("headline_summary", None, || {
        headline_summary(black_box(&labelled))
            .expect("valid summary")
            .rows
            .len()
    });
}

fn main() {
    fig3();
    fig4();
    fig5();
    fig7();
    fig8();
    headline();
}

//! CLOCK (second-chance) cache.
//!
//! The classic one-bit approximation of LRU used by real VM and buffer
//! pool implementations: entries sit on a circular list; a hit sets the
//! entry's reference bit; the eviction hand sweeps, clearing bits, and
//! evicts the first entry found with a cleared bit.

use fgcache_types::hash::FastMap;

use fgcache_types::{AccessOutcome, FileId, InvariantViolation};

use crate::{Cache, CacheStats};

#[derive(Debug, Clone, Copy)]
struct Slot {
    file: FileId,
    referenced: bool,
    speculative: bool,
}

/// A CLOCK cache of [`FileId`]s.
///
/// Speculative inserts enter with a cleared reference bit, so the hand
/// evicts them before any recently-referenced entry.
///
/// ```
/// use fgcache_cache::{Cache, ClockCache};
/// use fgcache_types::FileId;
///
/// let mut c = ClockCache::new(2);
/// c.access(FileId(1));
/// c.access(FileId(2));
/// c.access(FileId(1)); // sets 1's reference bit
/// c.access(FileId(3)); // sweep clears 1, evicts 2
/// assert!(c.contains(FileId(1)));
/// assert!(!c.contains(FileId(2)));
/// ```
#[derive(Debug, Clone)]
pub struct ClockCache {
    capacity: usize,
    slots: Vec<Slot>,
    hand: usize,
    index: FastMap<FileId, usize>,
    stats: CacheStats,
}

impl ClockCache {
    /// Creates a CLOCK cache holding at most `capacity` files.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be greater than zero");
        ClockCache {
            capacity,
            slots: Vec::with_capacity(capacity.min(1 << 20)),
            hand: 0,
            index: FastMap::default(),
            stats: CacheStats::new(),
        }
    }

    /// Sweeps the hand to a victim slot, evicts its occupant and returns
    /// the freed slot index.
    fn evict_one(&mut self) -> usize {
        debug_assert!(!self.slots.is_empty());
        loop {
            let slot = &mut self.slots[self.hand];
            if slot.referenced {
                slot.referenced = false;
                self.hand = (self.hand + 1) % self.slots.len();
            } else {
                let victim = slot.file;
                self.index.remove(&victim);
                self.stats.record_eviction();
                let idx = self.hand;
                self.hand = (self.hand + 1) % self.slots.len();
                return idx;
            }
        }
    }

    fn place(&mut self, file: FileId, referenced: bool, speculative: bool) {
        let slot = Slot {
            file,
            referenced,
            speculative,
        };
        if self.slots.len() < self.capacity {
            self.slots.push(slot);
            self.index.insert(file, self.slots.len() - 1);
        } else {
            let idx = self.evict_one();
            self.slots[idx] = slot;
            self.index.insert(file, idx);
        }
    }
}

impl Cache for ClockCache {
    fn access(&mut self, file: FileId) -> AccessOutcome {
        if let Some(&idx) = self.index.get(&file) {
            let slot = &mut self.slots[idx];
            let was_speculative = std::mem::replace(&mut slot.speculative, false);
            slot.referenced = true;
            self.stats.record_hit(was_speculative);
            AccessOutcome::Hit
        } else {
            self.stats.record_miss();
            // New entries start with a cleared bit: the second chance must
            // be earned by a re-reference, keeping one-shot scans evictable.
            self.place(file, false, false);
            AccessOutcome::Miss
        }
    }

    fn insert_speculative(&mut self, file: FileId) -> bool {
        if self.index.contains_key(&file) {
            return false;
        }
        self.place(file, false, true);
        self.stats.record_speculative_insert();
        true
    }

    fn contains(&self, file: FileId) -> bool {
        self.index.contains_key(&file)
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn name(&self) -> &'static str {
        "clock"
    }

    fn clear(&mut self) {
        self.slots.clear();
        self.index.clear();
        self.hand = 0;
        self.stats = CacheStats::new();
    }

    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        let err = |detail: String| Err(InvariantViolation::new("ClockCache", detail));
        if self.slots.len() > self.capacity {
            return err(format!(
                "{} slots exceed capacity {}",
                self.slots.len(),
                self.capacity
            ));
        }
        if self.index.len() != self.slots.len() {
            return err(format!(
                "index has {} entries, {} slots occupied",
                self.index.len(),
                self.slots.len()
            ));
        }
        if !self.slots.is_empty() && self.hand >= self.slots.len() {
            return err(format!(
                "hand {} out of range for {} slots",
                self.hand,
                self.slots.len()
            ));
        }
        for (idx, slot) in self.slots.iter().enumerate() {
            if self.index.get(&slot.file) != Some(&idx) {
                return err(format!(
                    "index disagrees with slot {idx} for file {}",
                    slot.file
                ));
            }
        }
        self.stats.check("ClockCache")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::check_cache_conformance;

    #[test]
    fn conformance() {
        check_cache_conformance(ClockCache::new);
    }

    #[test]
    fn corrupted_slot_is_detected() {
        let mut c = ClockCache::new(3);
        c.access(FileId(1));
        assert!(c.check_invariants().is_ok());
        // Rewrite a slot's occupant behind the index's back.
        c.slots[0].file = FileId(999);
        assert!(c.check_invariants().is_err());
    }

    #[test]
    #[should_panic(expected = "capacity must be greater than zero")]
    fn zero_capacity_panics() {
        let _ = ClockCache::new(0);
    }

    #[test]
    fn referenced_entries_get_second_chance() {
        let mut c = ClockCache::new(2);
        c.access(FileId(1));
        c.access(FileId(2));
        c.access(FileId(1)); // ref bit on 1
        c.access(FileId(3)); // hand clears 1, evicts 2
        assert!(c.contains(FileId(1)));
        assert!(c.contains(FileId(3)));
        assert!(!c.contains(FileId(2)));
    }

    #[test]
    fn speculative_entries_evicted_before_referenced() {
        let mut c = ClockCache::new(3);
        c.access(FileId(1));
        c.access(FileId(2));
        c.insert_speculative(FileId(9)); // cleared ref bit
        c.access(FileId(1)); // refresh
        c.access(FileId(2)); // refresh
        c.access(FileId(3)); // should evict 9 first
        assert!(!c.contains(FileId(9)));
        assert!(c.contains(FileId(1)));
        assert!(c.contains(FileId(2)));
    }

    #[test]
    fn sweep_makes_progress_when_all_referenced() {
        let mut c = ClockCache::new(3);
        for i in 1..=3 {
            c.access(FileId(i));
        }
        // All referenced; a new insert must still succeed.
        c.access(FileId(4));
        assert_eq!(c.len(), 3);
        assert!(c.contains(FileId(4)));
    }

    #[test]
    fn index_and_slots_in_sync() {
        let mut c = ClockCache::new(4);
        for i in 0..40 {
            c.access(FileId(i % 9));
        }
        assert_eq!(c.index.len(), c.slots.len().min(4));
        for (&file, &idx) in &c.index {
            assert_eq!(c.slots[idx].file, file);
        }
    }
}

//! `fgcache bench-net` — loopback benchmark and differential check of the
//! TCP group-fetch path.
//!
//! ```text
//! fgcache bench-net --loopback true [--clients 4] [--events 10000]
//!                   [--capacity 400] [--shards 4] [--group 5]
//!                   [--successors 8] [--filter 100] [--batch 1,8,32]
//!                   [--seed 2002] [--concurrent true]
//! ```
//!
//! Two phases:
//!
//! 1. **Differential check** (always): the same `K`-client workload is
//!    replayed twice through the *same* replay driver — once over
//!    in-process [`DirectTransport`]s, once over TCP [`NetClient`]s to a
//!    live server on an ephemeral 127.0.0.1 port — both as the
//!    deterministic round-robin interleave at batch size 1. The server's
//!    stats, read back over the wire, must be **byte-identical** to the
//!    in-process run's; any divergence is an error (nonzero exit).
//! 2. **Batch sweep** (perf): the workload is replayed over TCP once per
//!    requested batch size, reporting round trips, wall-clock and
//!    throughput, so the pipelining win is measurable on a real socket.

use std::error::Error;
use std::sync::Arc;

use fgcache_core::{ShardedAggregatingCache, ShardedAggregatingCacheBuilder};
use fgcache_net::{BoundServer, DirectTransport, NetClient, ServeBackend, ServerHandle, WireStats};
use fgcache_sim::multiclient::run_multiclient_transport;
use fgcache_sim::report::Table;
use fgcache_trace::synth::{SynthConfig, WorkloadProfile};
use fgcache_trace::Trace;

use crate::args::Args;

/// All knobs of one bench-net invocation.
#[derive(Debug, Clone)]
pub(crate) struct BenchNetConfig {
    pub clients: usize,
    pub events_per_client: usize,
    pub filter_capacity: usize,
    pub server_capacity: usize,
    pub shards: usize,
    pub group_size: usize,
    pub successor_capacity: usize,
    pub batches: Vec<usize>,
    pub seed: u64,
    pub concurrent: bool,
}

impl BenchNetConfig {
    fn cache(&self) -> Result<ShardedAggregatingCache, Box<dyn Error>> {
        Ok(ShardedAggregatingCacheBuilder::new(self.server_capacity)
            .shards(self.shards)
            .group_size(self.group_size)
            .successor_capacity(self.successor_capacity)
            .build()?)
    }

    fn traces(&self) -> Result<Vec<Trace>, Box<dyn Error>> {
        (0..self.clients)
            .map(|i| {
                Ok(SynthConfig::profile(WorkloadProfile::Server)
                    .events(self.events_per_client)
                    .seed(self.seed + i as u64)
                    .build()?
                    .generate())
            })
            .collect()
    }

    fn spawn_server(&self) -> Result<ServerHandle, Box<dyn Error>> {
        let bound = BoundServer::bind("127.0.0.1:0", Arc::new(self.cache()?))
            .map_err(|e| format!("cannot bind loopback: {e}"))?;
        Ok(bound.spawn())
    }

    fn connect_clients(&self, addr: &str) -> Result<Vec<NetClient>, Box<dyn Error>> {
        (0..self.clients)
            .map(|i| {
                Ok(NetClient::connect(addr)
                    .map_err(|e| format!("cannot connect to {addr}: {e}"))?
                    .with_id_namespace(i as u64))
            })
            .collect()
    }
}

fn snapshot(cache: &ShardedAggregatingCache) -> WireStats {
    // The in-process replay performs no retries, so the expected
    // server-side reply-cache hit count is zero.
    cache.wire_stats()
}

/// Phase 1: the byte-exact differential check (see the module docs).
/// Returns the summary lines, or an error describing the divergence.
fn differential_check(config: &BenchNetConfig, traces: &[Trace]) -> Result<String, Box<dyn Error>> {
    // In-process baseline: the identical replay over DirectTransports.
    let direct_cache = config.cache()?;
    let direct_transports: Vec<DirectTransport<'_>> = (0..config.clients)
        .map(|_| DirectTransport::new(&direct_cache))
        .collect();
    run_multiclient_transport(traces, config.filter_capacity, direct_transports, 1, false)?;
    let expected = snapshot(&direct_cache);

    // The same replay, over TCP, stats read back over the wire.
    let handle = config.spawn_server()?;
    let clients = config.connect_clients(handle.addr())?;
    let (point, mut clients) =
        run_multiclient_transport(traces, config.filter_capacity, clients, 1, false)?;
    let measured = clients
        .first_mut()
        .ok_or("no clients")?
        .server_stats()
        .map_err(|e| format!("cannot read server stats: {e}"))?;
    handle.stop();

    if measured != expected {
        return Err(format!(
            "differential check FAILED: loopback server stats diverge from the \
             in-process replay\n  in-process: {expected:?}\n  loopback:   {measured:?}"
        )
        .into());
    }
    Ok(format!(
        "differential check: PASS — {} accesses over TCP, server stats \
         byte-identical to the in-process replay\n  {:?}\n  wall time {:.3}s\n",
        measured.accesses,
        measured,
        point.elapsed.as_secs_f64()
    ))
}

/// Phase 2: replay the workload over TCP once per batch size.
fn batch_sweep(config: &BenchNetConfig, traces: &[Trace]) -> Result<Table, Box<dyn Error>> {
    let mut table = Table::new(
        "bench-net loopback batch sweep",
        [
            "batch",
            "round_trips",
            "fetches",
            "files",
            "secs",
            "us/event",
        ],
    );
    let events: u64 = traces.iter().map(|t| t.len() as u64).sum();
    for &batch in &config.batches {
        let handle = config.spawn_server()?;
        let clients = config.connect_clients(handle.addr())?;
        let (point, _clients) = run_multiclient_transport(
            traces,
            config.filter_capacity,
            clients,
            batch,
            config.concurrent,
        )?;
        handle.stop();
        let secs = point.elapsed.as_secs_f64();
        table.push_row([
            batch.to_string(),
            point.transport.round_trips.to_string(),
            point.transport.requests.to_string(),
            point.transport.files_moved.to_string(),
            format!("{secs:.3}"),
            format!("{:.2}", secs * 1e6 / events.max(1) as f64),
        ]);
    }
    Ok(table)
}

/// Runs both phases and renders the report (separated from `run` for
/// testability).
pub(crate) fn bench_net(config: &BenchNetConfig) -> Result<String, Box<dyn Error>> {
    if config.clients == 0 {
        return Err("--clients must be greater than zero".into());
    }
    if config.batches.is_empty() {
        return Err("--batch needs at least one batch size".into());
    }
    let traces = config.traces()?;
    let mut out = String::new();
    out.push_str(&format!(
        "bench-net: {} client(s) × {} events, server capacity {} over {} shard(s), \
         group size {}, batch sizes {:?}, {} replay\n\n",
        config.clients,
        config.events_per_client,
        config.server_capacity,
        config.shards,
        config.group_size,
        config.batches,
        if config.concurrent {
            "concurrent"
        } else {
            "round-robin"
        },
    ));
    out.push_str(&differential_check(config, &traces)?);
    out.push('\n');
    out.push_str(&batch_sweep(config, &traces)?.render());
    Ok(out)
}

fn parse_batches(raw: &str) -> Result<Vec<usize>, Box<dyn Error>> {
    raw.split(',')
        .map(|tok| {
            let tok = tok.trim();
            let n: usize = tok
                .parse()
                .map_err(|_| format!("invalid batch size {tok:?} in --batch"))?;
            if n == 0 {
                return Err(format!("batch size must be at least 1, got {tok:?}").into());
            }
            Ok(n)
        })
        .collect()
}

pub fn run(tokens: &[String]) -> Result<(), Box<dyn Error>> {
    let args = Args::parse(tokens.iter().cloned())?;
    args.check_known(&[
        "loopback",
        "clients",
        "events",
        "capacity",
        "shards",
        "group",
        "successors",
        "filter",
        "batch",
        "seed",
        "concurrent",
    ])?;
    if !args.flag_or("loopback", true)? {
        return Err("only --loopback true is supported (no remote targets yet)".into());
    }
    let config = BenchNetConfig {
        clients: args.flag_or("clients", 4usize)?,
        events_per_client: args.flag_or("events", 10_000usize)?,
        filter_capacity: args.flag_or("filter", 100usize)?,
        server_capacity: args.flag_or("capacity", 400usize)?,
        shards: args.flag_or("shards", 4usize)?,
        group_size: args.flag_or("group", 5usize)?,
        successor_capacity: args.flag_or("successors", 8usize)?,
        batches: parse_batches(args.flag("batch").unwrap_or("1,8,32"))?,
        seed: args.flag_or("seed", 2002u64)?,
        concurrent: args.flag_or("concurrent", false)?,
    };
    print!("{}", bench_net(&config)?);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> BenchNetConfig {
        BenchNetConfig {
            clients: 2,
            events_per_client: 500,
            filter_capacity: 50,
            server_capacity: 120,
            shards: 2,
            group_size: 3,
            successor_capacity: 4,
            batches: vec![1, 4],
            seed: 7,
            concurrent: false,
        }
    }

    #[test]
    fn differential_check_passes_and_sweep_reports_each_batch() {
        let report = bench_net(&quick()).unwrap();
        assert!(report.contains("differential check: PASS"), "{report}");
        assert!(report.contains("us/event"));
        // One row per batch size.
        assert!(report.lines().any(|l| l.trim_start().starts_with("1 ")));
        assert!(report.lines().any(|l| l.trim_start().starts_with("4 ")));
    }

    #[test]
    fn zero_event_replay_reports_finite_us_per_event() {
        // A replay with no events must not put NaN/Inf into the us/event
        // column (0/0); the guard renders it as 0.00.
        let mut cfg = quick();
        cfg.clients = 1;
        cfg.batches = vec![1];
        let table = batch_sweep(&cfg, &[Trace::from_files(Vec::<u64>::new())]).unwrap();
        let rendered = table.render();
        assert!(
            !rendered.contains("NaN") && !rendered.contains("inf"),
            "{rendered}"
        );
        assert!(rendered.contains("0.00"), "{rendered}");
    }

    #[test]
    fn batch_list_parsing() {
        assert_eq!(parse_batches("1,8,32").unwrap(), vec![1, 8, 32]);
        assert_eq!(parse_batches(" 2 , 4 ").unwrap(), vec![2, 4]);
        assert!(parse_batches("0").is_err());
        assert!(parse_batches("a").is_err());
    }

    #[test]
    fn config_validation() {
        let mut cfg = quick();
        cfg.clients = 0;
        assert!(bench_net(&cfg).is_err());
        let mut cfg = quick();
        cfg.batches.clear();
        assert!(bench_net(&cfg).is_err());
    }
}

//! Deterministic per-file size and retrieval-cost assignment.
//!
//! The paper's experiments treat every file as one uniform-cost unit.
//! Generalising to Young's *On-Line File Caching* (Landlord) requires
//! each file to carry a **size** (how much cache capacity it occupies)
//! and a **retrieval cost** (what a miss on it costs). Traces in this
//! workspace do not record sizes, so sizes are *assigned*: a pure
//! function of `(seed, file id)` built on the SplitMix64 finalizer, the
//! same mixer that routes files to shards. The assignment is therefore
//!
//! * **deterministic** — the same seed yields the same size for a file
//!   on every platform, forever (golden values are pinned in tests);
//! * **stateless** — no table to build or ship; any component (cache,
//!   transport, pricing sweep) derives the identical size on demand;
//! * **backwards compatible** — [`SizeDistribution::Uniform`] assigns
//!   size = cost = 1 to every file, under which every size-aware code
//!   path must degenerate bit-identically to the fixed-cost behaviour
//!   (the differential fuzzers enforce this).
//!
//! # Examples
//!
//! ```
//! use fgcache_types::sizing::{SizeCostAssigner, SizeDistribution};
//! use fgcache_types::FileId;
//!
//! let uniform = SizeCostAssigner::uniform();
//! assert_eq!(uniform.size_of(FileId(7)), 1);
//! assert_eq!(uniform.cost_of(FileId(7)), 1);
//!
//! let sized = SizeCostAssigner::new(SizeDistribution::Pareto, 42);
//! let s = sized.size_of(FileId(7));
//! assert!((1..=4096).contains(&s));
//! // Same seed, same file → same size, every time.
//! assert_eq!(s, SizeCostAssigner::new(SizeDistribution::Pareto, 42).size_of(FileId(7)));
//! ```

use std::error::Error;
use std::fmt;
use std::str::FromStr;

use crate::hash::mix64;
use crate::FileId;

/// Largest size (in units) any distribution assigns: 2¹².
pub const MAX_FILE_SIZE: u32 = 4096;

/// Fixed per-request component of a non-uniform retrieval cost, in the
/// same units as file sizes. Mirrors the distributed-file-system regime
/// of `CostModel::remote` (a round trip worth several size units), so
/// small files are latency-dominated and large files transfer-dominated.
pub const COST_BASE: u32 = 8;

/// The shape of the per-file size population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SizeDistribution {
    /// Every file has size 1 and cost 1 — the paper's fixed-cost model.
    /// Size-aware paths must be bit-identical to the legacy ones here.
    #[default]
    Uniform,
    /// Heavy-tailed power-of-two sizes: `P(size = 2^k) = 2^-(k+1)` for
    /// `k < 12` (the remaining mass lands on 4096), i.e. a discrete
    /// Pareto with tail exponent ≈ 1 — the classic file-size shape.
    Pareto,
    /// 15/16 of files are small (size 1), 1/16 are large (size 64) —
    /// the bimodal "config files and media blobs" caricature that
    /// stresses bundle admission hardest.
    Bimodal,
}

impl SizeDistribution {
    /// Stable lowercase name (round-trips through [`FromStr`]).
    pub fn name(self) -> &'static str {
        match self {
            SizeDistribution::Uniform => "uniform",
            SizeDistribution::Pareto => "pareto",
            SizeDistribution::Bimodal => "bimodal",
        }
    }
}

impl fmt::Display for SizeDistribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing a [`SizeDistribution`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSizeDistributionError {
    /// The string that failed to parse.
    pub found: String,
}

impl fmt::Display for ParseSizeDistributionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unrecognised size distribution {:?}, expected one of uniform, pareto, bimodal",
            self.found
        )
    }
}

impl Error for ParseSizeDistributionError {}

impl FromStr for SizeDistribution {
    type Err = ParseSizeDistributionError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "uniform" => Ok(SizeDistribution::Uniform),
            "pareto" => Ok(SizeDistribution::Pareto),
            "bimodal" => Ok(SizeDistribution::Bimodal),
            other => Err(ParseSizeDistributionError {
                found: other.to_string(),
            }),
        }
    }
}

/// A pure `(seed, file) → (size, cost)` function.
///
/// Copyable and tiny: components that need sizes hold their own copy
/// rather than sharing a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeCostAssigner {
    dist: SizeDistribution,
    seed: u64,
}

impl SizeCostAssigner {
    /// An assigner over `dist`, keyed by `seed`.
    pub fn new(dist: SizeDistribution, seed: u64) -> Self {
        SizeCostAssigner { dist, seed }
    }

    /// The fixed-cost assigner: size = cost = 1 for every file.
    pub fn uniform() -> Self {
        SizeCostAssigner::new(SizeDistribution::Uniform, 0)
    }

    /// The configured distribution.
    pub fn distribution(self) -> SizeDistribution {
        self.dist
    }

    /// `true` for the fixed-cost assigner (size = cost = 1 everywhere).
    pub fn is_uniform(self) -> bool {
        self.dist == SizeDistribution::Uniform
    }

    /// The per-file random word: independent of everything except
    /// `(seed, file)`.
    fn draw(self, file: FileId) -> u64 {
        mix64(self.seed ^ mix64(file.as_u64()))
    }

    /// The file's size in capacity units, in `[1, MAX_FILE_SIZE]`.
    pub fn size_of(self, file: FileId) -> u32 {
        match self.dist {
            SizeDistribution::Uniform => 1,
            SizeDistribution::Pareto => {
                // Exponent k = number of trailing one-bits, capped at 12:
                // geometric over k, so P(size ≥ s) ≈ 1/s.
                let k = self.draw(file).trailing_ones().min(12);
                1u32 << k
            }
            SizeDistribution::Bimodal => {
                if self.draw(file) & 0xF == 0 {
                    64
                } else {
                    1
                }
            }
        }
    }

    /// The file's retrieval cost: what one demand miss on it is worth.
    ///
    /// Uniform files cost exactly 1 (the legacy fixed-cost model); sized
    /// files cost [`COST_BASE`]` + size`, the first-order request-plus-
    /// transfer price every other cost accounting in the workspace uses.
    pub fn cost_of(self, file: FileId) -> u32 {
        match self.dist {
            SizeDistribution::Uniform => 1,
            _ => COST_BASE + self.size_of(file),
        }
    }

    /// Total size of `files` in capacity units (u64 to survive large
    /// groups of maximal files).
    pub fn total_size(self, files: impl IntoIterator<Item = FileId>) -> u64 {
        files.into_iter().map(|f| u64::from(self.size_of(f))).sum()
    }
}

impl Default for SizeCostAssigner {
    fn default() -> Self {
        SizeCostAssigner::uniform()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_all_ones() {
        let a = SizeCostAssigner::uniform();
        for id in 0..1000u64 {
            assert_eq!(a.size_of(FileId(id)), 1);
            assert_eq!(a.cost_of(FileId(id)), 1);
        }
        assert!(a.is_uniform());
        assert_eq!(a.total_size((0..5).map(FileId)), 5);
    }

    #[test]
    fn assignment_is_deterministic_and_seed_keyed() {
        let a = SizeCostAssigner::new(SizeDistribution::Pareto, 7);
        let b = SizeCostAssigner::new(SizeDistribution::Pareto, 7);
        let c = SizeCostAssigner::new(SizeDistribution::Pareto, 8);
        let mut diverged = false;
        for id in 0..500u64 {
            assert_eq!(a.size_of(FileId(id)), b.size_of(FileId(id)));
            diverged |= a.size_of(FileId(id)) != c.size_of(FileId(id));
        }
        assert!(diverged, "different seeds must yield different populations");
    }

    #[test]
    fn pareto_sizes_are_powers_of_two_with_heavy_tail() {
        let a = SizeCostAssigner::new(SizeDistribution::Pareto, 20020702);
        let mut ones = 0usize;
        let mut large = 0usize;
        for id in 0..10_000u64 {
            let s = a.size_of(FileId(id));
            assert!(s.is_power_of_two() && s <= MAX_FILE_SIZE, "size {s}");
            ones += usize::from(s == 1);
            large += usize::from(s >= 64);
        }
        // Roughly half the mass at size 1, a small but present tail.
        assert!((4000..6000).contains(&ones), "{ones} size-1 files");
        assert!(large > 20, "tail too thin: {large} files ≥ 64");
    }

    #[test]
    fn bimodal_mixes_small_and_large() {
        let a = SizeCostAssigner::new(SizeDistribution::Bimodal, 1);
        let mut big = 0usize;
        for id in 0..10_000u64 {
            let s = a.size_of(FileId(id));
            assert!(s == 1 || s == 64);
            big += usize::from(s == 64);
        }
        // 1/16 expected → ~625.
        assert!((400..900).contains(&big), "{big} large files");
    }

    #[test]
    fn cost_is_base_plus_size_for_sized_files() {
        let a = SizeCostAssigner::new(SizeDistribution::Bimodal, 3);
        for id in 0..100u64 {
            let f = FileId(id);
            assert_eq!(a.cost_of(f), COST_BASE + a.size_of(f));
        }
    }

    #[test]
    fn golden_values_pin_the_assignment() {
        // Changing the mixer or the derivation silently changes every
        // published ablation; these pins make that a visible test break.
        let p = SizeCostAssigner::new(SizeDistribution::Pareto, 42);
        let golden: Vec<u32> = (0..8).map(|id| p.size_of(FileId(id))).collect();
        assert_eq!(golden, [4, 2, 4, 1, 8, 1, 1, 1]);
    }

    #[test]
    fn distribution_parse_roundtrip() {
        for d in [
            SizeDistribution::Uniform,
            SizeDistribution::Pareto,
            SizeDistribution::Bimodal,
        ] {
            assert_eq!(d.name().parse::<SizeDistribution>().unwrap(), d);
        }
        assert_eq!(
            "PARETO".parse::<SizeDistribution>().unwrap(),
            SizeDistribution::Pareto
        );
        let err = "zipf".parse::<SizeDistribution>().unwrap_err();
        assert!(err.to_string().contains("zipf"));
    }
}

//! Ablation studies for the design choices the paper makes (and the ones
//! it defers to future work):
//!
//! 1. **Group-member insertion position** (head vs tail) across cache
//!    sizes — the paper claims placement "was found to have little effect
//!    if the cache is several times the group size" (§3).
//! 2. **Successor-list capacity** — how much metadata is actually needed
//!    (§4.4 says "only a very small number of successors").
//! 3. **Server metadata source** — miss-stream-only vs piggy-backed full
//!    client statistics (§4.3).
//! 4. **Group sizes beyond 10** — does group construction ever start
//!    polluting the cache?
//! 5. **Hybrid recency/frequency successor scoring** — the paper's stated
//!    future work, swept over the decay factor (1.0 = pure frequency).
//! 6. **Predictor comparison** — successor chaining vs the
//!    Griffioen–Appleton probability graph at equal group size.
//! 7. **I/O cost model** — latency-vs-bandwidth pricing of group
//!    fetching under remote and LAN regimes (the §1 motivation and the
//!    §6 note that practical group sizes depend on the medium).
//! 8. **Cost/size-aware caching** — the paper's fixed-cost model vs
//!    Landlord (Young) and unit-accounted group fetching with and
//!    without whole-group (bundle) eviction, under seeded Pareto sizes.

use fgcache_bench::{emit, standard_trace};
use fgcache_cache::{Cache, LandlordCache, LruCache};
use fgcache_core::{AggregatingCacheBuilder, InsertionPolicy, MetadataSource};
use fgcache_sim::cost::{cost_sweep_via_transport, cost_table, CostModel};
use fgcache_sim::report::{fmt2, pct, Table};
use fgcache_sim::successors::{successor_eval, ReplacementScheme, SuccessorEvalConfig};
use fgcache_successor::ProbabilityGraph;
use fgcache_trace::synth::WorkloadProfile;
use fgcache_trace::Trace;
use fgcache_types::sizing::{SizeCostAssigner, SizeDistribution};
use fgcache_types::FileId;

fn run_client(trace: &Trace, capacity: usize, g: usize, policy: InsertionPolicy) -> u64 {
    let mut cache = AggregatingCacheBuilder::new(capacity)
        .group_size(g)
        .insertion_policy(policy)
        .build()
        .expect("valid config");
    for ev in trace.events() {
        cache.handle_access(ev.file);
    }
    cache.demand_fetches()
}

/// Relative change of `head` vs `tail`, or an em-dash when the
/// baseline is zero (a `0/0` here would print `NaN%` and poison the
/// published CSV).
fn fmt_delta(head: u64, tail: u64) -> String {
    if tail == 0 {
        return "\u{2014}".to_string();
    }
    let delta = (head as f64 - tail as f64) / tail as f64;
    format!("{:+.1}%", delta * 100.0)
}

fn ablate_insertion_position(trace: &Trace) -> Table {
    let mut t = Table::new(
        "ablation 1: group-member insertion position (g = 5, server workload)",
        ["capacity", "cap/g", "tail fetches", "head fetches", "delta"],
    );
    for capacity in [5usize, 10, 25, 50, 150, 400] {
        let tail = run_client(trace, capacity, 5, InsertionPolicy::Tail);
        let head = run_client(trace, capacity, 5, InsertionPolicy::Head);
        t.push_row([
            capacity.to_string(),
            format!("{}x", capacity / 5),
            tail.to_string(),
            head.to_string(),
            fmt_delta(head, tail),
        ]);
    }
    t
}

fn ablate_successor_capacity(trace: &Trace) -> Table {
    let mut t = Table::new(
        "ablation 2: successor-list capacity (g = 5, cache = 300)",
        ["list capacity", "demand fetches", "metadata entries"],
    );
    for cap in [1usize, 2, 3, 4, 6, 8, 12, 16] {
        let mut cache = AggregatingCacheBuilder::new(300)
            .group_size(5)
            .successor_capacity(cap)
            .build()
            .expect("valid config");
        for ev in trace.events() {
            cache.handle_access(ev.file);
        }
        t.push_row([
            cap.to_string(),
            cache.demand_fetches().to_string(),
            cache.metadata_entries().to_string(),
        ]);
    }
    t
}

fn ablate_metadata_source(trace: &Trace) -> Table {
    let mut t = Table::new(
        "ablation 3: server metadata source (filter = 200, server = 300, g = 5)",
        ["source", "server hit rate", "server requests"],
    );
    for (label, cooperative) in [
        ("miss stream only", false),
        ("piggy-backed full stream", true),
    ] {
        let mut filter = LruCache::new(200);
        let mut server = AggregatingCacheBuilder::new(300)
            .group_size(5)
            .metadata_source(if cooperative {
                MetadataSource::External
            } else {
                MetadataSource::Requests
            })
            .build()
            .expect("valid config");
        for ev in trace.events() {
            if cooperative {
                server.observe_metadata(ev.file);
            }
            if filter.access(ev.file).is_miss() {
                server.handle_access(ev.file);
            }
        }
        let stats = Cache::stats(&server);
        t.push_row([
            label.to_string(),
            pct(stats.hit_rate()),
            stats.accesses.to_string(),
        ]);
    }
    t
}

fn ablate_large_groups(trace: &Trace) -> Table {
    let mut t = Table::new(
        "ablation 4: group sizes beyond the paper's 10 (cache = 300)",
        [
            "group size",
            "demand fetches",
            "files/fetch",
            "prefetch accuracy",
        ],
    );
    for g in [1usize, 5, 10, 15, 20, 30] {
        let mut cache = AggregatingCacheBuilder::new(300)
            .group_size(g)
            .build()
            .expect("valid config");
        for ev in trace.events() {
            cache.handle_access(ev.file);
        }
        t.push_row([
            g.to_string(),
            cache.demand_fetches().to_string(),
            fmt2(cache.group_stats().mean_group_size()),
            pct(Cache::stats(&cache).speculative_accuracy()),
        ]);
    }
    t
}

fn ablate_decay(trace: &Trace) -> Table {
    let mut t = Table::new(
        "ablation 5: hybrid recency/frequency successor scoring (list capacity = 4)",
        ["decay", "P(miss future successor)"],
    );
    let mut schemes = vec![ReplacementScheme::Lru, ReplacementScheme::Lfu];
    for d in [1.0f64, 0.99, 0.9, 0.7, 0.5, 0.2] {
        schemes.push(ReplacementScheme::Decayed(d));
    }
    let points = successor_eval(
        trace,
        &SuccessorEvalConfig {
            capacities: vec![4],
            schemes,
        },
    )
    .expect("valid config");
    for p in points {
        t.push_row([p.scheme, fmt2(p.miss_probability)]);
    }
    t
}

fn ablate_predictors(trace: &Trace) -> Table {
    let mut t = Table::new(
        "ablation 6: predictor comparison (cache = 300, g = 5)",
        ["predictor", "demand fetches", "metadata entries"],
    );
    // Plain LRU baseline.
    let lru = run_client(trace, 300, 1, InsertionPolicy::Tail);
    t.push_row(["plain lru".to_string(), lru.to_string(), "0".to_string()]);
    // Aggregating cache.
    let mut agg = AggregatingCacheBuilder::new(300)
        .group_size(5)
        .build()
        .expect("valid config");
    for ev in trace.events() {
        agg.handle_access(ev.file);
    }
    t.push_row([
        "successor chains (paper)".to_string(),
        agg.demand_fetches().to_string(),
        agg.metadata_entries().to_string(),
    ]);
    // Griffioen–Appleton probability graph at equal group size.
    let mut pg = ProbabilityGraph::new(4, 0.05).expect("valid config");
    let mut cache = LruCache::new(300);
    let mut fetches = 0u64;
    for ev in trace.events() {
        pg.record(ev.file);
        if cache.access(ev.file).is_miss() {
            fetches += 1;
            let members: Vec<FileId> = pg.group_for(ev.file, 5).members().to_vec();
            cache.insert_speculative_batch(&members);
        }
    }
    t.push_row([
        "probability graph (G&A '94)".to_string(),
        fetches.to_string(),
        pg.edge_count().to_string(),
    ]);
    t
}

fn ablate_cost(trace: &Trace) -> Result<(Table, Table), Box<dyn std::error::Error>> {
    let sizes = [1usize, 2, 5, 10, 20];
    // Priced from the transport layer's own counters — the layer that
    // moved the files — which also cross-checks them against the cache's
    // analytic counters and errors on any divergence.
    let remote = cost_sweep_via_transport(trace, 300, &sizes, CostModel::remote())?;
    let lan = cost_sweep_via_transport(trace, 300, &sizes, CostModel::lan())?;
    Ok((
        cost_table(
            "ablation 7a: I/O cost, remote regime (request = 10x transfer)",
            &remote,
        ),
        cost_table(
            "ablation 7b: I/O cost, LAN regime (request = 2x transfer)",
            &lan,
        ),
    ))
}

fn ablate_cost_aware(trace: &Trace) -> Result<Table, Box<dyn std::error::Error>> {
    // Seeded Pareto sizes (mean ≈ 7 units/file), so the legacy 300-file
    // baseline and the 2048-unit size-aware caches hold roughly the same
    // byte budget. Everything is priced under the sized remote regime.
    let assigner = SizeCostAssigner::new(SizeDistribution::Pareto, 42);
    let units = 2048usize;
    let model = CostModel::remote_sized();
    let mut t = Table::new(
        "ablation 8: cost/size-aware caching (pareto sizes, seed 42, ~2048-unit budget)",
        [
            "config",
            "fetches",
            "files moved",
            "units moved",
            "time (remote)",
        ],
    );
    let mut row = |label: &str, fetches: u64, files: u64, moved: u64| {
        t.push_row([
            label.to_string(),
            fetches.to_string(),
            files.to_string(),
            moved.to_string(),
            fmt2(model.total_sized(fetches, files, moved)),
        ]);
    };
    // The paper's fixed-cost model: a count-based LRU that cannot see
    // sizes. Its misses still move real bytes, priced honestly here.
    let mut lru = LruCache::new(300);
    let mut fetches = 0u64;
    let mut moved = 0u64;
    for ev in trace.events() {
        if lru.access(ev.file).is_miss() {
            fetches += 1;
            moved += u64::from(assigner.size_of(ev.file));
        }
    }
    row("lru 300 files (size-blind)", fetches, fetches, moved);
    // Landlord: cost/size-aware replacement over the same byte budget.
    let mut landlord = LandlordCache::with_assigner(units, assigner);
    let mut fetches = 0u64;
    let mut moved = 0u64;
    for ev in trace.events() {
        if landlord.access(ev.file).is_miss() {
            fetches += 1;
            moved += u64::from(assigner.size_of(ev.file));
        }
    }
    row("landlord 2048 units", fetches, fetches, moved);
    // Unit-accounted group fetching: g = 1 isolates the size accounting
    // (an LRU over units), g = 5 adds grouping, and the bundle variant
    // additionally evicts previously fetched groups as a unit.
    for (label, g, bundle) in [
        ("sized lru (agg g=1) 2048 units", 1usize, false),
        ("agg g=5 sized 2048 units", 5, false),
        ("agg g=5 sized + bundle eviction", 5, true),
    ] {
        let mut cache = AggregatingCacheBuilder::new(units)
            .group_size(g)
            .sizes(assigner)
            .bundle_eviction(bundle)
            .build()?;
        for ev in trace.events() {
            cache.handle_access(ev.file);
        }
        let gs = cache.group_stats();
        row(
            label,
            gs.demand_fetches,
            gs.files_transferred,
            gs.size_units_transferred,
        );
    }
    Ok(t)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let server = standard_trace(WorkloadProfile::Server);
    let workstation = standard_trace(WorkloadProfile::Workstation);
    emit("ablation1_insertion", &ablate_insertion_position(&server))?;
    emit(
        "ablation2_successor_capacity",
        &ablate_successor_capacity(&server),
    )?;
    emit(
        "ablation3_metadata_source",
        &ablate_metadata_source(&workstation),
    )?;
    emit("ablation4_large_groups", &ablate_large_groups(&server))?;
    emit("ablation5_decay", &ablate_decay(&workstation))?;
    emit("ablation6_predictors", &ablate_predictors(&workstation))?;
    let (remote, lan) = ablate_cost(&workstation)?;
    emit("ablation7a_cost_remote", &remote)?;
    emit("ablation7b_cost_lan", &lan)?;
    emit("ablation8_cost_aware", &ablate_cost_aware(&workstation)?)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_renders_dash_instead_of_nan_on_zero_baseline() {
        assert_eq!(fmt_delta(5, 0), "\u{2014}");
        assert_eq!(fmt_delta(0, 0), "\u{2014}");
        assert_eq!(fmt_delta(11, 10), "+10.0%");
        assert_eq!(fmt_delta(9, 10), "-10.0%");
    }
}

//! # fgcache — Group-Based Management of Distributed File Caches
//!
//! A production-quality reproduction of *Amer, Long & Burns, "Group-Based
//! Management of Distributed File Caches" (ICDCS 2002)*.
//!
//! The paper's idea: instead of prefetching single files on predictions,
//! build **dynamic groups** of files observed to be accessed together —
//! using nothing but per-file lists of *immediate successors*, managed by
//! recency — and fetch whole groups on every cache miss. The resulting
//! **aggregating cache** cuts client demand fetches by 50–60 % and keeps a
//! server cache useful even when an intervening client cache filters away
//! all conventional locality.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`types`] — identifiers and events ([`types::FileId`],
//!   [`types::AccessEvent`], …).
//! * [`trace`] — workload traces, trace IO and the synthetic DFSTrace-like
//!   workload generator.
//! * [`cache`] — the cache simulation substrate (LRU, LFU, FIFO, Clock,
//!   2Q, MQ, ARC) and the intervening-cache filter.
//! * [`successor`] — per-file successor lists (LRU/LFU/Oracle/decayed
//!   replacement), the relationship graph and the group builder.
//! * [`core`] — the aggregating cache itself: client-side and server-side
//!   variants.
//! * [`entropy`] — successor entropy, the paper's predictability metric.
//! * [`net`] — pluggable fetch transports: a simulated network, fault
//!   injection with retries, and a real TCP group-fetch server/client.
//! * [`sim`] — experiment drivers, parameter sweeps and report formatting.
//! * [`placement`] — the paper's future-work applications: group-based
//!   data placement on linear storage and mobile file hoarding.
//! * [`plan`] — the analytic capacity planner: Che/Fagin characteristic
//!   times, the Berthet closed form and the Kesidis LRU-MRU model.
//!
//! # Quickstart
//!
//! ```
//! use fgcache::core::AggregatingCacheBuilder;
//! use fgcache::trace::synth::{SynthConfig, WorkloadProfile};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Generate a small, deterministic "server-like" workload.
//! let trace = SynthConfig::profile(WorkloadProfile::Server)
//!     .events(20_000)
//!     .seed(7)
//!     .build()?
//!     .generate();
//!
//! // A plain LRU client cache of 300 files...
//! let mut lru = AggregatingCacheBuilder::new(300).group_size(1).build()?;
//! // ...versus an aggregating cache fetching groups of 5.
//! let mut agg = AggregatingCacheBuilder::new(300).group_size(5).build()?;
//!
//! for ev in trace.events() {
//!     lru.handle_access(ev.file);
//!     agg.handle_access(ev.file);
//! }
//!
//! // Grouping strictly reduces demand fetches on a predictable workload.
//! assert!(agg.demand_fetches() < lru.demand_fetches());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use fgcache_cache as cache;
pub use fgcache_cluster as cluster;
pub use fgcache_core as core;
pub use fgcache_entropy as entropy;
pub use fgcache_net as net;
pub use fgcache_placement as placement;
pub use fgcache_plan as plan;
pub use fgcache_sim as sim;
pub use fgcache_successor as successor;
pub use fgcache_trace as trace;
pub use fgcache_types as types;

/// The most commonly used items, for glob import.
///
/// ```
/// use fgcache::prelude::*;
/// let _ = FileId(3);
/// ```
pub mod prelude {
    pub use fgcache_cache::{Cache, CacheStats, LfuCache, LruCache};
    pub use fgcache_core::{AggregatingCache, AggregatingCacheBuilder};
    pub use fgcache_entropy::successor_entropy;
    pub use fgcache_successor::{GroupBuilder, SuccessorTable};
    pub use fgcache_trace::synth::{SynthConfig, WorkloadProfile};
    pub use fgcache_trace::Trace;
    pub use fgcache_types::{AccessEvent, AccessKind, AccessOutcome, ClientId, FileId, SeqNo};
}

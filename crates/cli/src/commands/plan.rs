//! `fgcache plan` — the analytic capacity planner.
//!
//! Three modes sharing one entry point:
//!
//! * **plan** (default): solve the two-level Che composition for a
//!   workload shape and a target hit rate, print the recommended
//!   filter/server/shard sizes as a table (`--json PATH` additionally
//!   writes the machine-readable report).
//! * **`--validate true`**: replay seeded Zipf traces through the
//!   streamed LRU simulator across the (α, capacity) validation grid and
//!   assert the Che prediction agrees within the pinned tolerance —
//!   non-zero exit on any violation. This is the CI gate.
//! * **`--compare-grouping true`**: replay the same seeded run-structured
//!   trace through a plain LRU and the aggregating cache, with the IRM
//!   analytic bound beside them — the measured value of group-based
//!   management over anything a single-file model can promise.

use std::error::Error;

use fgcache_plan::planner::{plan, PlanReport, PlanRequest};
use fgcache_sim::plan_validation::{
    compare_grouping, default_validation_cases, validate_lru_sweep, GroupingCompareConfig,
    PLAN_TOLERANCE,
};
use fgcache_sim::Table;
use fgcache_types::sizing::{SizeCostAssigner, SizeDistribution};

use crate::args::Args;

/// Renders the planner recommendation as an aligned two-column table.
pub(crate) fn plan_report_text(report: &PlanReport) -> String {
    let mut t = Table::new(
        format!(
            "capacity plan — zipf(α={}) over {} files, {} clients, target hit {:.1}%",
            report.alpha,
            report.universe,
            report.clients,
            report.target_hit_rate * 100.0
        ),
        ["quantity", "value"],
    );
    let mut row = |k: &str, v: String| t.push_row([k.to_string(), v]);
    row(
        "filter capacity / client",
        format!("{} files", report.filter_capacity),
    );
    row(
        "server capacity (total)",
        format!("{} files", report.server_capacity),
    );
    row("shards", report.shards.to_string());
    row(
        "per-shard capacity",
        format!("{} files", report.per_shard_capacity),
    );
    row(
        "predicted filter hit rate",
        format!("{:.2}%", report.filter_hit_rate * 100.0),
    );
    row(
        "predicted server hit rate (miss stream)",
        format!("{:.2}%", report.server_hit_rate * 100.0),
    );
    row(
        "predicted combined hit rate",
        format!("{:.2}%", report.combined_hit_rate * 100.0),
    );
    row("total provisioned files", report.total_files.to_string());
    row(
        "single shared LRU for same target",
        format!("{} files", report.single_tier_capacity),
    );
    if let Some(u) = &report.units {
        row(
            &format!("filter capacity ({} units)", u.distribution),
            u.filter_units.to_string(),
        );
        row(
            &format!("server capacity ({} units)", u.distribution),
            u.server_units.to_string(),
        );
        row(
            "mean resident file size (filter/server)",
            format!(
                "{:.2} / {:.2} units",
                u.filter_mean_file_size, u.server_mean_file_size
            ),
        );
    }
    t.render()
}

/// Runs the validation grid and renders it; `Err` on tolerance breach.
pub(crate) fn validation_report(events: u64, seed: u64) -> Result<String, Box<dyn Error>> {
    let cases = default_validation_cases();
    let points = validate_lru_sweep(&cases, events, seed)?;
    let mut t = Table::new(
        format!(
            "planner validation — Che vs streamed LRU, {events} events/point, tolerance {:.0}pp",
            PLAN_TOLERANCE * 100.0
        ),
        [
            "alpha",
            "universe",
            "capacity",
            "analytic",
            "simulated",
            "delta",
        ],
    );
    let mut worst = 0.0f64;
    for p in &points {
        worst = worst.max(p.delta);
        t.push_row([
            format!("{:.1}", p.case.alpha),
            p.case.universe.to_string(),
            p.case.capacity.to_string(),
            format!("{:.4}", p.analytic_hit_rate),
            format!("{:.4}", p.simulated_hit_rate),
            format!("{:.4}", p.delta),
        ]);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "worst |analytic − simulated| = {:.4} ({} grid points)\n",
        worst,
        points.len()
    ));
    if let Some(bad) = points.iter().find(|p| p.delta >= PLAN_TOLERANCE) {
        return Err(format!(
            "{out}planner validation FAILED: α={} capacity={} diverged by {:.4} \
             (tolerance {:.4})",
            bad.case.alpha, bad.case.capacity, bad.delta, PLAN_TOLERANCE
        )
        .into());
    }
    out.push_str("planner validation: PASS\n");
    Ok(out)
}

/// Runs the grouping comparison and renders it.
pub(crate) fn grouping_report(config: &GroupingCompareConfig) -> Result<String, Box<dyn Error>> {
    let points = compare_grouping(config)?;
    let mut t = Table::new(
        format!(
            "grouping vs the IRM bound — zipf(α={}) runs of {}, {} events, group size {}",
            config.alpha, config.run_length, config.events, config.group_size
        ),
        [
            "capacity",
            "analytic LRU",
            "simulated LRU",
            "grouped",
            "gain",
        ],
    );
    for p in &points {
        t.push_row([
            p.capacity.to_string(),
            format!("{:.4}", p.analytic_lru_hit_rate),
            format!("{:.4}", p.simulated_lru_hit_rate),
            format!("{:.4}", p.grouped_hit_rate),
            format!("{:+.4}", p.grouping_gain),
        ]);
    }
    let mut out = t.render();
    let beats = points.iter().filter(|p| p.grouping_gain > 0.0).count();
    out.push_str(&format!(
        "grouping beats the analytic LRU bound at {beats}/{} capacities \
         (gain = grouped − analytic; IRM models cannot see the runs)\n",
        points.len()
    ));
    Ok(out)
}

pub fn run(tokens: &[String]) -> Result<(), Box<dyn Error>> {
    let args = Args::parse(tokens.iter().cloned())?;
    args.check_known(&[
        "alpha",
        "universe",
        "clients",
        "target-hit-rate",
        "sizes",
        "size-seed",
        "json",
        "validate",
        "events",
        "seed",
        "compare-grouping",
        "run-length",
        "group",
        "capacities",
    ])?;

    if args.flag_or("validate", false)? {
        // CI-sized by default: 10M events per grid point in release.
        let events: u64 = args.flag_or("events", 10_000_000u64)?;
        let seed: u64 = args.flag_or("seed", 2002u64)?;
        print!("{}", validation_report(events, seed)?);
        return Ok(());
    }

    if args.flag_or("compare-grouping", false)? {
        let mut config = GroupingCompareConfig::standard();
        config.alpha = args.flag_or("alpha", config.alpha)?;
        config.universe = args.flag_or("universe", config.universe)?;
        config.run_length = args.flag_or("run-length", config.run_length)?;
        config.group_size = args.flag_or("group", config.group_size)?;
        config.events = args.flag_or("events", config.events)?;
        config.seed = args.flag_or("seed", config.seed)?;
        if let Some(raw) = args.flag("capacities") {
            config.capacities = raw
                .split(',')
                .map(|p| p.trim().parse::<usize>())
                .collect::<Result<_, _>>()
                .map_err(|_| "invalid --capacities (comma-separated file counts)")?;
        }
        print!("{}", grouping_report(&config)?);
        return Ok(());
    }

    let request = PlanRequest {
        alpha: args.require_flag("alpha")?,
        universe: args.flag_or("universe", 100_000usize)?,
        clients: args.require_flag("clients")?,
        target_hit_rate: args.require_flag("target-hit-rate")?,
        sizes: match args.flag("sizes") {
            None => None,
            Some(raw) => {
                let dist: SizeDistribution = raw.parse()?;
                let seed: u64 = args.flag_or("size-seed", 42u64)?;
                Some(SizeCostAssigner::new(dist, seed))
            }
        },
    };
    let report = plan(&request)?;
    print!("{}", plan_report_text(&report));
    if let Some(path) = args.flag("json") {
        std::fs::write(path, report.to_json().to_text() + "\n")?;
        println!("json report written to {path}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tokens(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn plan_mode_renders_a_table() {
        let report = plan(&PlanRequest {
            alpha: 1.0,
            universe: 10_000,
            clients: 8,
            target_hit_rate: 0.7,
            sizes: None,
        })
        .unwrap();
        let text = plan_report_text(&report);
        assert!(text.contains("filter capacity / client"));
        assert!(text.contains("shards"));
        assert!(text.contains("single shared LRU"));
        assert!(!text.contains("units"), "no size model, no unit rows");
    }

    #[test]
    fn sized_plan_renders_unit_rows() {
        let report = plan(&PlanRequest {
            alpha: 1.0,
            universe: 10_000,
            clients: 8,
            target_hit_rate: 0.7,
            sizes: Some(SizeCostAssigner::new(SizeDistribution::Pareto, 42)),
        })
        .unwrap();
        let text = plan_report_text(&report);
        assert!(text.contains("pareto units"));
        assert!(text.contains("mean resident file size"));
    }

    #[test]
    fn validation_mode_passes_at_test_scale() {
        // A fast pass of the real gate (CI runs it at 10M events).
        let out = validation_report(200_000, 2002).expect("grid inside tolerance");
        assert!(out.contains("planner validation: PASS"));
        assert!(out.contains("worst |analytic − simulated|"));
    }

    #[test]
    fn grouping_mode_reports_gain() {
        let mut config = GroupingCompareConfig::standard();
        config.events = 120_000;
        config.capacities = vec![400];
        let out = grouping_report(&config).expect("comparison runs");
        assert!(out.contains("grouping beats the analytic LRU bound"));
    }

    #[test]
    fn unknown_flags_rejected() {
        assert!(run(&tokens(&[
            "--alpha",
            "1.0",
            "--clients",
            "8",
            "--bogus",
            "1"
        ]))
        .is_err());
        // Required flags enforced in plan mode.
        assert!(run(&tokens(&["--alpha", "1.0"])).is_err());
    }
}

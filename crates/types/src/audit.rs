//! Shared vocabulary for structural invariant audits.
//!
//! The static-analysis gate (see `crates/xtask`) requires every cache
//! policy, the successor table and the aggregating cache to expose a
//! `check_invariants(&self)` method that walks internal redundant state
//! (slab lists vs index maps, ordered mirrors vs entry maps, size
//! accumulators vs recounts) and reports the first inconsistency found.
//! [`InvariantViolation`] is the error those audits return, defined here
//! so every crate shares one type.

use std::error::Error;
use std::fmt;

/// A detected inconsistency in a data structure's internal redundant state.
///
/// Returned by the `check_invariants` family of debug-audit methods. The
/// `component` names the structure (for example `"LfuCache"` or
/// `"SuccessorTable"`); the `detail` describes the specific violated
/// invariant in enough detail to start debugging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    component: String,
    detail: String,
}

impl InvariantViolation {
    /// Creates a violation report for `component` with a human-readable
    /// `detail` message.
    pub fn new(component: impl Into<String>, detail: impl Into<String>) -> Self {
        InvariantViolation {
            component: component.into(),
            detail: detail.into(),
        }
    }

    /// The structure in which the violation was detected.
    pub fn component(&self) -> &str {
        &self.component
    }

    /// Human-readable description of the violated invariant.
    pub fn detail(&self) -> &str {
        &self.detail
    }
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant violated in {}: {}",
            self.component, self.detail
        )
    }
}

impl Error for InvariantViolation {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_display() {
        let v = InvariantViolation::new("LruCache", "len 3 exceeds capacity 2");
        assert_eq!(v.component(), "LruCache");
        assert_eq!(v.detail(), "len 3 exceeds capacity 2");
        let msg = v.to_string();
        assert!(msg.contains("LruCache"));
        assert!(msg.contains("capacity 2"));
    }

    #[test]
    fn is_an_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        let v = InvariantViolation::new("x", "y");
        takes_error(&v);
    }
}

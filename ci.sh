#!/usr/bin/env sh
# The canonical local quality gate. Every step must pass before a push;
# the same sequence is available as `cargo run -p xtask -- ci`.
set -eu

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo run -p xtask -- lint"
cargo run -p xtask -- lint

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo run -p xtask -- fuzz"
cargo run -p xtask -- fuzz

echo "ci.sh: all steps passed"

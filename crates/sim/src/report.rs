//! Plain-text and CSV tabulation of experiment results.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A simple column-aligned table, rendered as text or CSV.
///
/// ```
/// use fgcache_sim::Table;
///
/// let mut t = Table::new("demo", ["x", "y"]);
/// t.push_row(["1", "2"]);
/// let text = t.render();
/// assert!(text.contains("demo"));
/// assert!(t.to_csv().starts_with("x,y\n"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    pub fn new<S, I>(title: impl Into<String>, columns: I) -> Self
    where
        S: Into<String>,
        I: IntoIterator<Item = S>,
    {
        Table {
            title: title.into(),
            columns: columns.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row. Rows shorter than the header are padded with
    /// empty cells; longer rows are truncated.
    pub fn push_row<S, I>(&mut self, cells: I)
    where
        S: Into<String>,
        I: IntoIterator<Item = S>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.columns.len(), String::new());
        self.rows.push(row);
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as aligned text (what the `repro_*` binaries
    /// print).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(header.join("  ").len()));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            out.push_str(&cells.join("  "));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (header row first). Cells containing
    /// commas or quotes are quoted.
    pub fn to_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .columns
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(
                &row.iter()
                    .map(|c| escape(c))
                    .collect::<Vec<_>>()
                    .join(","),
            );
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a float with 2 decimal places (common in reports).
pub fn fmt2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("t", ["name", "v"]);
        t.push_row(["a", "1000"]);
        t.push_row(["long-name", "2"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[1].contains("name"));
        // All data lines have equal length thanks to padding.
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn short_rows_padded_long_rows_truncated() {
        let mut t = Table::new("t", ["a", "b"]);
        t.push_row(["only"]);
        t.push_row(["x", "y", "z"]);
        assert_eq!(t.row_count(), 2);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(csv.lines().nth(1).unwrap(), "only,");
        assert_eq!(csv.lines().nth(2).unwrap(), "x,y");
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("t", ["a"]);
        t.push_row(["x,y"]);
        t.push_row(["say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn helpers() {
        assert_eq!(fmt2(1.2345), "1.23");
        assert_eq!(pct(0.4567), "45.7%");
    }

    #[test]
    fn display_matches_render() {
        let t = Table::new("x", ["c"]);
        assert_eq!(t.to_string(), t.render());
    }
}

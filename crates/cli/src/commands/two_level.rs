//! `fgcache two-level` — client filter + server cache (figure 4).

use std::error::Error;

use fgcache_cache::PolicyKind;
use fgcache_sim::server::{hit_rate_table, two_level_sweep, ServerScheme, TwoLevelConfig};
use fgcache_trace::Trace;

use crate::args::Args;
use crate::commands::load_trace;

fn parse_scheme(raw: &str) -> Result<ServerScheme, Box<dyn Error>> {
    if let Some(g) = raw.strip_prefix('g') {
        if let Ok(group_size) = g.parse::<usize>() {
            return Ok(ServerScheme::Aggregating { group_size });
        }
    }
    let kind: PolicyKind = raw.parse()?;
    Ok(ServerScheme::Policy(kind))
}

pub(crate) fn report(
    trace: &Trace,
    filters: &[usize],
    server: usize,
    schemes: &[ServerScheme],
) -> Result<String, Box<dyn Error>> {
    let config = TwoLevelConfig {
        filter_capacities: filters.to_vec(),
        server_capacity: server,
        schemes: schemes.to_vec(),
        successor_capacity: 8,
    };
    let points = two_level_sweep(trace, &config)?;
    Ok(hit_rate_table(
        &format!("server hit rate (server cache = {server})"),
        &points,
    )
    .render())
}

pub fn run(tokens: &[String]) -> Result<(), Box<dyn Error>> {
    let args = Args::parse(tokens.iter().cloned())?;
    args.check_known(&["format", "filter", "server", "scheme"])?;
    let path = args.require_positional(0, "trace")?;
    let trace = load_trace(path, args.flag("format"))?;
    let server: usize = args.flag_or("server", 300usize)?;
    let filters: Vec<usize> = match args.flag("filter") {
        Some(raw) => raw
            .split(',')
            .map(|p| p.trim().parse::<usize>())
            .collect::<Result<_, _>>()
            .map_err(|_| "invalid --filter (comma-separated capacities)")?,
        None => vec![50, 100, 200, 300, 400, 500],
    };
    let schemes: Vec<ServerScheme> = match args.flag("scheme") {
        Some(raw) => raw
            .split(',')
            .map(|p| parse_scheme(p.trim()))
            .collect::<Result<_, _>>()?,
        None => vec![
            ServerScheme::Aggregating { group_size: 5 },
            ServerScheme::Policy(PolicyKind::Lru),
            ServerScheme::Policy(PolicyKind::Lfu),
        ],
    };
    print!("{}", report(&trace, &filters, server, &schemes)?);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_parsing() {
        assert!(matches!(
            parse_scheme("g7").unwrap(),
            ServerScheme::Aggregating { group_size: 7 }
        ));
        assert!(matches!(
            parse_scheme("lru").unwrap(),
            ServerScheme::Policy(PolicyKind::Lru)
        ));
        assert!(parse_scheme("gX").is_err());
        assert!(parse_scheme("nope").is_err());
    }

    #[test]
    fn report_renders_table() {
        let trace = Trace::from_files((0..800u64).map(|i| i % 37));
        let text = report(
            &trace,
            &[10, 20],
            30,
            &[
                ServerScheme::Policy(PolicyKind::Lru),
                ServerScheme::Aggregating { group_size: 3 },
            ],
        )
        .unwrap();
        assert!(text.contains("g3"));
        assert!(text.contains("lru"));
        assert!(text.contains("10"));
    }
}

//! The two-level capacity planner behind `fgcache plan`.
//!
//! The deployment the paper describes has two cache tiers: a small
//! **filter cache** at each of `K` clients, and a shared, sharded
//! **server cache** behind them. The planner composes the Che
//! approximation ([`crate::che`]) across the tiers:
//!
//! 1. A filter of capacity `F` over Zipf(α) popularities `pᵢ` absorbs
//!    per-file hit mass `hᵢ = 1 − e^{−pᵢT_f}` — filter hit rate
//!    `h_f = Σ pᵢhᵢ`.
//! 2. The server sees the **thinned miss stream**: under IRM its
//!    popularity vector is `qᵢ ∝ pᵢ·(1 − hᵢ)` (each client's filter is
//!    statistically identical, so the union of the `K` miss streams has
//!    the same marginal law). A server cache of capacity `C_s` then adds
//!    `(1 − h_f)·h_s` where `h_s` is the Che hit rate on `q`.
//! 3. The combined hit rate is `H = h_f + (1 − h_f)·h_s`; for a target
//!    `H*`, the server must clear `h_s ≥ (H* − h_f)/(1 − h_f)`.
//!
//! The planner walks a power-of-two grid of filter capacities, solves
//! the server capacity for each by the inverse Che query, and keeps the
//! configuration minimizing the **total provisioned files**
//! `K·F + C_s` — the knob the operator actually pays for. Shard count
//! is a deterministic function of the fleet size (power of two, capped),
//! matching the rendezvous-hash sharding in `fgcache-core`.
//!
//! The thinning step is where the approximation leans hardest on IRM:
//! real filter states are correlated with their own request streams, and
//! grouped server caches prefetch whole groups, which IRM cannot see.
//! Both effects are measured, not assumed: the validation harness in
//! `fgcache-sim::plan_validation` replays the same seeded traces through
//! the real two-tier stack (`--compare-grouping`) and reports where
//! grouping beats this analytic LRU bound.

use fgcache_types::json::Json;
use fgcache_types::sizing::SizeCostAssigner;
use fgcache_types::{FileId, ValidationError};

use crate::che;
use crate::popularity::zipf_popularities;

/// Largest shard fleet the planner recommends, mirroring the default
/// sharding ceiling used by the simulator's multi-client harness.
const MAX_SHARDS: usize = 16;

/// Smallest filter capacity on the search grid. Below a handful of
/// files the Che approximation is weakest and a filter buys nothing.
const MIN_FILTER: u64 = 4;

/// What the operator asks for: a workload shape and a target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanRequest {
    /// Zipf skew of the file popularity distribution.
    pub alpha: f64,
    /// Number of distinct files in the working universe.
    pub universe: usize,
    /// Number of client filter caches in the fleet.
    pub clients: usize,
    /// Combined (filter + server) hit rate to provision for, in (0, 1).
    pub target_hit_rate: f64,
    /// Optional per-file size model; when set, capacities are also
    /// reported in capacity units via residency-weighted expected sizes.
    pub sizes: Option<SizeCostAssigner>,
}

/// Capacity recommendations in size units (only when a size
/// distribution was requested).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanUnits {
    /// Name of the size distribution the units were derived from.
    pub distribution: String,
    /// Per-client filter capacity in size units.
    pub filter_units: u64,
    /// Total server capacity in size units.
    pub server_units: u64,
    /// Residency-weighted expected size of a filter-resident file.
    pub filter_mean_file_size: f64,
    /// Residency-weighted expected size of a server-resident file.
    pub server_mean_file_size: f64,
}

/// The planner's recommendation.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanReport {
    /// Echo of the request (without the size assigner).
    pub alpha: f64,
    /// Echo of the request.
    pub universe: usize,
    /// Echo of the request.
    pub clients: usize,
    /// Echo of the request.
    pub target_hit_rate: f64,
    /// Recommended per-client filter capacity, in files.
    pub filter_capacity: u64,
    /// Recommended total server capacity, in files.
    pub server_capacity: u64,
    /// Recommended shard count (power of two, ≤ 16).
    pub shards: usize,
    /// Server capacity per shard (`ceil(server / shards)`), in files.
    pub per_shard_capacity: u64,
    /// Predicted filter-tier hit rate at the recommended sizes.
    pub filter_hit_rate: f64,
    /// Predicted server hit rate *on the filter-miss stream*.
    pub server_hit_rate: f64,
    /// Predicted combined hit rate `h_f + (1 − h_f)·h_s`.
    pub combined_hit_rate: f64,
    /// Total provisioned files `clients·filter + server` — the cost the
    /// grid search minimized.
    pub total_files: u64,
    /// Files a *single shared LRU* would need for the same target — the
    /// no-filter baseline the two-tier split is judged against.
    pub single_tier_capacity: u64,
    /// Unit-denominated capacities when a size model was requested.
    pub units: Option<PlanUnits>,
}

impl PlanReport {
    /// The report as a JSON object (stable key order, exact integers).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("alpha".to_string(), Json::Num(self.alpha)),
            ("universe".to_string(), Json::UInt(self.universe as u64)),
            ("clients".to_string(), Json::UInt(self.clients as u64)),
            (
                "target_hit_rate".to_string(),
                Json::Num(self.target_hit_rate),
            ),
            (
                "filter_capacity".to_string(),
                Json::UInt(self.filter_capacity),
            ),
            (
                "server_capacity".to_string(),
                Json::UInt(self.server_capacity),
            ),
            ("shards".to_string(), Json::UInt(self.shards as u64)),
            (
                "per_shard_capacity".to_string(),
                Json::UInt(self.per_shard_capacity),
            ),
            (
                "filter_hit_rate".to_string(),
                Json::Num(self.filter_hit_rate),
            ),
            (
                "server_hit_rate".to_string(),
                Json::Num(self.server_hit_rate),
            ),
            (
                "combined_hit_rate".to_string(),
                Json::Num(self.combined_hit_rate),
            ),
            ("total_files".to_string(), Json::UInt(self.total_files)),
            (
                "single_tier_capacity".to_string(),
                Json::UInt(self.single_tier_capacity),
            ),
        ];
        match &self.units {
            Some(u) => fields.push((
                "units".to_string(),
                Json::Obj(vec![
                    ("distribution".to_string(), Json::str(&u.distribution)),
                    ("filter_units".to_string(), Json::UInt(u.filter_units)),
                    ("server_units".to_string(), Json::UInt(u.server_units)),
                    (
                        "filter_mean_file_size".to_string(),
                        Json::Num(u.filter_mean_file_size),
                    ),
                    (
                        "server_mean_file_size".to_string(),
                        Json::Num(u.server_mean_file_size),
                    ),
                ]),
            )),
            None => fields.push(("units".to_string(), Json::Null)),
        }
        Json::Obj(fields)
    }
}

/// One evaluated point on the filter grid.
struct Candidate {
    filter: u64,
    server: u64,
    filter_hit: f64,
    server_hit: f64,
    combined: f64,
    total: u64,
    /// Server-tier popularity (the thinned miss stream), kept for unit
    /// sizing of the winning candidate.
    miss_stream: Vec<f64>,
    server_time: f64,
    filter_time: f64,
}

/// Residency-weighted expected file size `Σ hᵢ·sᵢ / Σ hᵢ` — the mean
/// size of what the cache actually holds, which for heavy-tailed sizes
/// differs materially from the population mean.
fn mean_resident_size(probs: &[f64], t: f64, sizes: SizeCostAssigner) -> f64 {
    let mut mass = 0.0;
    let mut weighted = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        let h = che::per_file_hit(p, t);
        mass += h;
        weighted += h * f64::from(sizes.size_of(FileId(i as u64)));
    }
    if mass > 0.0 {
        weighted / mass
    } else {
        1.0
    }
}

fn validate(req: &PlanRequest) -> Result<(), ValidationError> {
    if req.universe < 8 {
        return Err(ValidationError::new(
            "universe",
            "planning needs at least 8 files (smaller universes don't cache, they memoize)",
        ));
    }
    if req.clients == 0 {
        return Err(ValidationError::new("clients", "must be greater than zero"));
    }
    if !req.target_hit_rate.is_finite() || req.target_hit_rate <= 0.0 || req.target_hit_rate >= 1.0
    {
        return Err(ValidationError::new(
            "target_hit_rate",
            "must lie strictly between 0 and 1",
        ));
    }
    Ok(())
}

/// Deterministic shard recommendation: the smallest power of two
/// covering the fleet, capped at [`MAX_SHARDS`].
fn recommend_shards(clients: usize) -> usize {
    clients.next_power_of_two().min(MAX_SHARDS)
}

/// Solves the plan: walks the filter grid, sizes the server tier for
/// each filter by the inverse Che query, and returns the cheapest
/// configuration (total files) that clears the target.
///
/// # Errors
///
/// Returns a [`ValidationError`] for an out-of-range request (see field
/// docs) or an `alpha` rejected by [`zipf_popularities`].
pub fn plan(req: &PlanRequest) -> Result<PlanReport, ValidationError> {
    validate(req)?;
    let probs = zipf_popularities(req.universe, req.alpha)?;
    let shards = recommend_shards(req.clients);
    let target = req.target_hit_rate;

    let single_tier = che::capacity_for_hit_rate(&probs, target)?.ceil() as u64;

    let mut best: Option<Candidate> = None;
    let mut filter = MIN_FILTER;
    while filter <= (req.universe as u64) / 2 {
        let t_f = che::characteristic_time(&probs, filter as f64)?;
        let filter_hit = che::hit_rate_at_time(&probs, t_f);

        // Thinned miss stream the server tier sees.
        let mut miss_stream: Vec<f64> = probs
            .iter()
            .map(|&p| p * (1.0 - che::per_file_hit(p, t_f)))
            .collect();
        let miss_mass: f64 = miss_stream.iter().sum();
        for q in miss_stream.iter_mut() {
            *q /= miss_mass;
        }

        // Residual hit rate the server must supply, and its capacity.
        let residual = (target - filter_hit) / (1.0 - filter_hit);
        let server = if residual <= 0.0 {
            // The filters alone clear the target; keep a floor of one
            // file per shard so demand misses still have a home.
            shards as u64
        } else {
            (che::capacity_for_hit_rate(&miss_stream, residual)?.ceil() as u64).max(shards as u64)
        };

        let server_solution = che::solve(&miss_stream, server as f64)?;
        let combined = filter_hit + (1.0 - filter_hit) * server_solution.hit_rate;
        let total = (req.clients as u64)
            .saturating_mul(filter)
            .saturating_add(server);
        let candidate = Candidate {
            filter,
            server,
            filter_hit,
            server_hit: server_solution.hit_rate,
            combined,
            total,
            miss_stream,
            server_time: server_solution.characteristic_time,
            filter_time: t_f,
        };
        let better = match &best {
            None => true,
            Some(b) => candidate.total < b.total,
        };
        if better {
            best = Some(candidate);
        }
        filter *= 2;
    }
    let best = best.expect("grid is non-empty for universe ≥ 8");

    let units = req.sizes.filter(|s| !s.is_uniform()).map(|sizes| {
        let filter_mean = mean_resident_size(&probs, best.filter_time, sizes);
        let server_mean = mean_resident_size(&best.miss_stream, best.server_time, sizes);
        PlanUnits {
            distribution: sizes.distribution().name().to_string(),
            filter_units: (best.filter as f64 * filter_mean).ceil() as u64,
            server_units: (best.server as f64 * server_mean).ceil() as u64,
            filter_mean_file_size: filter_mean,
            server_mean_file_size: server_mean,
        }
    });

    Ok(PlanReport {
        alpha: req.alpha,
        universe: req.universe,
        clients: req.clients,
        target_hit_rate: target,
        filter_capacity: best.filter,
        server_capacity: best.server,
        shards,
        per_shard_capacity: best.server.div_ceil(shards as u64),
        filter_hit_rate: best.filter_hit,
        server_hit_rate: best.server_hit,
        combined_hit_rate: best.combined,
        total_files: best.total,
        single_tier_capacity: single_tier,
        units,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgcache_types::sizing::SizeDistribution;

    fn req(alpha: f64, universe: usize, clients: usize, target: f64) -> PlanRequest {
        PlanRequest {
            alpha,
            universe,
            clients,
            target_hit_rate: target,
            sizes: None,
        }
    }

    #[test]
    fn rejects_bad_requests() {
        assert!(plan(&req(0.9, 4, 8, 0.7)).is_err());
        assert!(plan(&req(0.9, 1000, 0, 0.7)).is_err());
        assert!(plan(&req(0.9, 1000, 8, 0.0)).is_err());
        assert!(plan(&req(0.9, 1000, 8, 1.0)).is_err());
        assert!(plan(&req(-1.0, 1000, 8, 0.7)).is_err());
    }

    #[test]
    fn plan_clears_the_target() {
        for &(alpha, target) in &[(0.8, 0.5), (1.0, 0.7), (1.2, 0.9)] {
            let r = plan(&req(alpha, 20_000, 8, target)).unwrap();
            assert!(
                r.combined_hit_rate >= target - 1e-9,
                "α={alpha} H*={target}: predicted {}",
                r.combined_hit_rate
            );
            assert!(r.filter_capacity >= MIN_FILTER);
            assert!(r.server_capacity >= r.shards as u64);
            assert_eq!(r.total_files, 8 * r.filter_capacity + r.server_capacity);
            assert_eq!(
                r.per_shard_capacity,
                r.server_capacity.div_ceil(r.shards as u64)
            );
        }
    }

    #[test]
    fn shard_recommendation_is_a_capped_power_of_two() {
        assert_eq!(recommend_shards(1), 1);
        assert_eq!(recommend_shards(3), 4);
        assert_eq!(recommend_shards(8), 8);
        assert_eq!(recommend_shards(100), MAX_SHARDS);
    }

    #[test]
    fn filters_pay_for_themselves_on_skewed_workloads() {
        // On a skewed workload, K small filters + a modest server beat
        // provisioning the single-tier capacity at every client — the
        // whole argument for the two-tier split.
        let r = plan(&req(1.1, 50_000, 16, 0.8)).unwrap();
        let naive_everywhere = 16 * r.single_tier_capacity;
        assert!(
            r.total_files < naive_everywhere,
            "two-tier {} vs per-client single-tier {naive_everywhere}",
            r.total_files
        );
    }

    #[test]
    fn more_clients_never_shrink_the_recommended_server() {
        // The miss-stream law is client-count invariant under IRM, but
        // the optimizer shifts work off filters as they get pricier.
        let small = plan(&req(0.9, 10_000, 2, 0.75)).unwrap();
        let large = plan(&req(0.9, 10_000, 64, 0.75)).unwrap();
        assert!(large.filter_capacity <= small.filter_capacity);
        assert!(large.server_capacity >= small.server_capacity);
    }

    #[test]
    fn sized_plans_report_units() {
        let mut r = req(1.0, 10_000, 8, 0.7);
        r.sizes = Some(SizeCostAssigner::new(SizeDistribution::Pareto, 42));
        let sized = plan(&r).unwrap();
        let units = sized.units.expect("sized plan must report units");
        assert_eq!(units.distribution, "pareto");
        // Unit capacity = files × mean resident size ⇒ strictly more
        // units than files for any distribution with sizes > 1.
        assert!(units.filter_units >= sized.filter_capacity);
        assert!(units.server_units >= sized.server_capacity);
        assert!(units.filter_mean_file_size >= 1.0);
        // Uniform sizing degenerates to no units block.
        r.sizes = Some(SizeCostAssigner::uniform());
        assert!(plan(&r).unwrap().units.is_none());
    }

    #[test]
    fn json_report_is_stable_and_parseable() {
        let r = plan(&req(1.0, 10_000, 8, 0.7)).unwrap();
        let text = r.to_json().to_text();
        let parsed = Json::parse(&text).expect("planner JSON must parse");
        assert_eq!(
            parsed.get("filter_capacity").and_then(Json::as_u64),
            Some(r.filter_capacity)
        );
        assert_eq!(parsed.get("units"), Some(&Json::Null));
    }
}

//! Builder for [`AggregatingCache`].

use fgcache_cache::LruCache;
use fgcache_successor::{GroupBuilder, LruSuccessorList, SuccessorTable};
use fgcache_types::sizing::SizeCostAssigner;
use fgcache_types::ValidationError;

use crate::aggregating::{AggregatingCache, InsertionPolicy, MetadataSource};

/// Default number of successors tracked per file. The paper's Figure 5
/// shows a recency list of a handful of entries already sits close to the
/// oracle; eight is comfortably inside that regime while keeping metadata
/// tiny.
pub const DEFAULT_SUCCESSOR_CAPACITY: usize = 8;

/// Configures and constructs an [`AggregatingCache`].
///
/// ```
/// use fgcache_core::{AggregatingCacheBuilder, InsertionPolicy};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cache = AggregatingCacheBuilder::new(300)
///     .group_size(5)
///     .successor_capacity(4)
///     .insertion_policy(InsertionPolicy::Tail)
///     .build()?;
/// assert_eq!(cache.group_size(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AggregatingCacheBuilder {
    capacity: usize,
    group_size: usize,
    successor_capacity: usize,
    insertion: InsertionPolicy,
    metadata: MetadataSource,
    sizes: Option<SizeCostAssigner>,
    bundle_eviction: bool,
}

impl AggregatingCacheBuilder {
    /// Starts a builder for a cache of `capacity` files. Defaults: group
    /// size 5 (the paper's sweet spot), successor capacity
    /// [`DEFAULT_SUCCESSOR_CAPACITY`], tail insertion, metadata from
    /// requests.
    pub fn new(capacity: usize) -> Self {
        AggregatingCacheBuilder {
            capacity,
            group_size: 5,
            successor_capacity: DEFAULT_SUCCESSOR_CAPACITY,
            insertion: InsertionPolicy::default(),
            metadata: MetadataSource::default(),
            sizes: None,
            bundle_eviction: false,
        }
    }

    /// Gives files sizes and retrieval costs: residency is accounted in
    /// size units (the capacity doubles as the unit budget) and group
    /// admission trims members that do not fit. With a uniform assigner
    /// the cache behaves bit-identically to the default fixed-cost
    /// configuration.
    pub fn sizes(mut self, assigner: SizeCostAssigner) -> Self {
        self.sizes = Some(assigner);
        self
    }

    /// Enables whole-group (bundle) eviction: reclaiming an LRU victim
    /// also reclaims its still-attached co-fetched group members.
    /// Requires [`Self::sizes`] (bundle accounting rides on the sized
    /// path); [`Self::build`] rejects the combination otherwise.
    pub fn bundle_eviction(mut self, enabled: bool) -> Self {
        self.bundle_eviction = enabled;
        self
    }

    /// Sets the group size `g` (1 = plain LRU).
    pub fn group_size(mut self, g: usize) -> Self {
        self.group_size = g;
        self
    }

    /// Sets the per-file successor list capacity.
    pub fn successor_capacity(mut self, capacity: usize) -> Self {
        self.successor_capacity = capacity;
        self
    }

    /// Sets where speculative group members are placed.
    pub fn insertion_policy(mut self, policy: InsertionPolicy) -> Self {
        self.insertion = policy;
        self
    }

    /// Sets where successor observations come from.
    pub fn metadata_source(mut self, source: MetadataSource) -> Self {
        self.metadata = source;
        self
    }

    /// Validates the configuration and constructs the cache.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidationError`] if the cache capacity or group size
    /// is zero, the successor capacity is zero, the group size exceeds
    /// the cache capacity (a group must fit in the cache), or bundle
    /// eviction is requested without a size assigner.
    pub fn build(&self) -> Result<AggregatingCache, ValidationError> {
        if self.capacity == 0 {
            return Err(ValidationError::new(
                "capacity",
                "cache capacity must be greater than zero",
            ));
        }
        if self.group_size > self.capacity {
            return Err(ValidationError::new(
                "group_size",
                "a whole group must fit in the cache (group_size <= capacity)",
            ));
        }
        if self.bundle_eviction && self.sizes.is_none() {
            return Err(ValidationError::new(
                "bundle_eviction",
                "bundle eviction requires a size assigner (use .sizes())",
            ));
        }
        let builder = GroupBuilder::new(self.group_size)?;
        let table = SuccessorTable::new(LruSuccessorList::new(self.successor_capacity)?);
        let cache = LruCache::new(self.capacity);
        Ok(AggregatingCache::from_parts(
            cache,
            table,
            builder,
            self.insertion,
            self.metadata,
            self.sizes,
            self.bundle_eviction,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = AggregatingCacheBuilder::new(100).build().unwrap();
        assert_eq!(c.group_size(), 5);
        assert_eq!(c.capacity(), 100);
    }

    #[test]
    fn validation() {
        assert!(AggregatingCacheBuilder::new(0).build().is_err());
        assert!(AggregatingCacheBuilder::new(10)
            .group_size(0)
            .build()
            .is_err());
        assert!(AggregatingCacheBuilder::new(10)
            .successor_capacity(0)
            .build()
            .is_err());
        assert!(AggregatingCacheBuilder::new(4)
            .group_size(5)
            .build()
            .is_err());
        assert!(AggregatingCacheBuilder::new(5)
            .group_size(5)
            .build()
            .is_ok());
    }

    #[test]
    fn error_names_parameter() {
        let err = AggregatingCacheBuilder::new(4)
            .group_size(9)
            .build()
            .unwrap_err();
        assert_eq!(err.parameter(), "group_size");
    }

    use fgcache_cache::Cache as _;
}

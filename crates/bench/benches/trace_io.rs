//! Throughput of the three trace IO formats and the workload generator.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fgcache_trace::synth::{SynthConfig, WorkloadProfile};
use fgcache_trace::{io, Trace};
use std::hint::black_box;

const EVENTS: usize = 20_000;

fn workload() -> Trace {
    SynthConfig::profile(WorkloadProfile::Workstation)
        .events(EVENTS)
        .seed(1)
        .build()
        .expect("profile is valid")
        .generate()
}

fn bench_io(c: &mut Criterion) {
    let trace = workload();
    let mut text = Vec::new();
    io::write_text(&trace, &mut text).unwrap();
    let mut json = Vec::new();
    io::write_json(&trace, &mut json).unwrap();
    let mut bin = Vec::new();
    io::write_binary(&trace, &mut bin).unwrap();

    let mut group = c.benchmark_group("trace_io");
    group.throughput(Throughput::Elements(EVENTS as u64));
    group.bench_function("write_text", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(text.len());
            io::write_text(black_box(&trace), &mut buf).unwrap();
            buf.len()
        });
    });
    group.bench_function("read_text", |b| {
        b.iter(|| io::read_text(black_box(text.as_slice())).unwrap().len());
    });
    group.bench_function("write_binary", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(bin.len());
            io::write_binary(black_box(&trace), &mut buf).unwrap();
            buf.len()
        });
    });
    group.bench_function("read_binary", |b| {
        b.iter(|| io::read_binary(black_box(bin.as_slice())).unwrap().len());
    });
    group.bench_function("read_json", |b| {
        b.iter(|| io::read_json(black_box(json.as_slice())).unwrap().len());
    });
    group.finish();
}

fn bench_generator(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_generation");
    group.throughput(Throughput::Elements(EVENTS as u64));
    for profile in WorkloadProfile::ALL {
        group.bench_function(profile.name(), |b| {
            let gen = SynthConfig::profile(profile)
                .events(EVENTS)
                .seed(9)
                .build()
                .expect("profile is valid");
            b.iter(|| gen.generate().len());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_io, bench_generator);
criterion_main!(benches);

//! Reproduces **Figure 7**: successor entropy as a function of successor
//! sequence length (1–20) for all four workloads.
//!
//! Expected shape (paper): entropy increases monotonically with sequence
//! length for every workload (single-file successors are the most
//! predictable); `server` is the lowest curve with < 1 bit at length 1;
//! `users` is the highest.

use fgcache_bench::{emit, standard_trace};
use fgcache_sim::entropy_exp::{entropy_sweep, entropy_table};
use fgcache_trace::synth::WorkloadProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let traces: Vec<(String, fgcache_trace::Trace)> = WorkloadProfile::ALL
        .iter()
        .map(|&p| (p.name().to_string(), standard_trace(p)))
        .collect();
    let labelled: Vec<(String, &fgcache_trace::Trace)> =
        traces.iter().map(|(l, t)| (l.clone(), t)).collect();
    let ks: Vec<usize> = (1..=20).collect();
    let series = entropy_sweep(&labelled, &ks)?;
    let table = entropy_table(
        "Figure 7: successor entropy (bits) vs successor sequence length",
        &series,
    );
    emit("fig7", &table)?;
    Ok(())
}

//! Atomics facade for the lock-free fast path.
//!
//! Every atomic the sharded cache's hot path touches goes through this
//! module instead of `std::sync::atomic` directly. The indirection buys
//! one thing: a build with the `fgcache_model` feature can route every
//! load, store and RMW through a deterministic interleaving model
//! ([`model`]) that explores bounded schedules of small concurrent
//! scenarios and checks the memory-ordering claims the fast path makes
//! in DESIGN.md §10 — machine-checked instead of prose.
//!
//! # Production builds (default)
//!
//! Without the feature, [`AtomicU64`] is a `#[repr(transparent)]`
//! newtype over [`std::sync::atomic::AtomicU64`] whose methods are
//! `#[inline]` one-liners: the facade compiles to exactly the code the
//! direct `std` calls would produce. [`Ordering`] is re-exported from
//! `std` unchanged.
//!
//! # Model builds (`--features fgcache_model`)
//!
//! With the feature, each [`AtomicU64`] additionally registers itself
//! as a *location* with the currently running model execution (if any)
//! and forwards every operation to the model runtime, which tracks
//! per-location store histories and Acquire/Release happens-before
//! edges in shadow memory. Outside a model execution the instrumented
//! type falls back to the real atomic, so ordinary tests keep working
//! with the feature enabled.
//!
//! The discipline the static gate (`xtask analyze`) enforces on code
//! that imports this module: stores `Release`, loads `Acquire`,
//! `Relaxed` only on an explicit allowlist of diagnostic counters and
//! position words, `SeqCst` never.

pub use std::sync::atomic::Ordering;

#[cfg(not(feature = "fgcache_model"))]
mod real;
#[cfg(not(feature = "fgcache_model"))]
pub use real::AtomicU64;

#[cfg(feature = "fgcache_model")]
mod instrumented;
#[cfg(feature = "fgcache_model")]
pub mod model;
#[cfg(feature = "fgcache_model")]
pub use instrumented::AtomicU64;

//! Successor entropy — the paper's predictability metric (§4.5).
//!
//! The *successor entropy* `H_S` of an access sequence is the
//! access-weighted conditional entropy of each file's immediate-successor
//! distribution (Equation 2):
//!
//! ```text
//! H_S = Σ_i  Pr(f_i) · H(f_i)          over files f_i appearing > once
//! H(f_i) = − Σ_j Pr(s_ij | f_i) · log2 Pr(s_ij | f_i)
//! ```
//!
//! where `Pr(f_i)` is the fraction of *all* access events that referred to
//! `f_i` and `Pr(s_ij | f_i)` the fraction of accesses following `f_i`
//! that were of successor symbol `s_ij`. Files occurring only once are
//! excluded so that a non-repeating workload cannot masquerade as
//! predictable; their occurrences still inflate their predecessors'
//! conditional entropy. Lower values mean a more predictable workload.
//!
//! A *successor symbol* is, in general, the **sequence of the next `k`
//! accesses** (Figure 6). The paper's finding is that `k = 1` — single
//! file successors — is consistently the most predictable choice
//! (Figure 7), and that this holds under intervening-cache filtering
//! (Figure 8), which [`filtered_entropy`] reproduces.
//!
//! # Examples
//!
//! ```
//! use fgcache_entropy::successor_entropy;
//! use fgcache_types::FileId;
//!
//! // A perfectly repetitive sequence is perfectly predictable.
//! let seq: Vec<FileId> = [1u64, 2, 3].repeat(100).into_iter().map(FileId).collect();
//! assert_eq!(successor_entropy(&seq), 0.0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::HashMap;

use fgcache_cache::{filter::miss_stream, Cache, LruCache};
use fgcache_trace::Trace;
use fgcache_types::{FileId, ValidationError};

/// Successor entropy with single-file successor symbols (`k = 1`), in
/// bits. Returns 0 for sequences shorter than two accesses.
pub fn successor_entropy(files: &[FileId]) -> f64 {
    successor_sequence_entropy(files, 1).expect("k = 1 is always valid")
}

/// Successor entropy with successor symbols of `k` consecutive accesses,
/// in bits (Equation 2 generalised per Figure 6).
///
/// # Errors
///
/// Returns a [`ValidationError`] if `k` is zero.
pub fn successor_sequence_entropy(files: &[FileId], k: usize) -> Result<f64, ValidationError> {
    Ok(analyze(files, k)?.entropy)
}

/// Per-file detail of a successor-entropy computation.
#[derive(Debug, Clone, PartialEq)]
pub struct FileEntropy {
    /// The file acting as the prediction context.
    pub file: FileId,
    /// `Pr(f_i)` — the file's share of all access events.
    pub weight: f64,
    /// `H(f_i)` — conditional entropy of its successor symbols, in bits.
    pub conditional_entropy: f64,
    /// Number of distinct successor symbols observed after this file.
    pub distinct_successors: usize,
    /// Number of transitions (successor observations) from this file.
    pub transitions: u64,
}

/// Full result of a successor-entropy analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct EntropyAnalysis {
    /// The successor symbol length `k`.
    pub symbol_length: usize,
    /// The access-weighted successor entropy `H_S`, in bits.
    pub entropy: f64,
    /// Number of events in the analysed sequence.
    pub events: usize,
    /// Files included in the average (those appearing more than once).
    pub repeating_files: usize,
    /// Files excluded (single occurrence).
    pub singleton_files: usize,
    /// Per-file breakdown for the included files, sorted by descending
    /// contribution (`weight × conditional_entropy`).
    pub per_file: Vec<FileEntropy>,
}

/// Computes the full successor-entropy analysis for symbol length `k`.
///
/// # Errors
///
/// Returns a [`ValidationError`] if `k` is zero.
pub fn analyze(files: &[FileId], k: usize) -> Result<EntropyAnalysis, ValidationError> {
    if k == 0 {
        return Err(ValidationError::new(
            "k",
            "successor symbol length must be at least 1",
        ));
    }
    let n = files.len();
    let mut occurrences: HashMap<FileId, u64> = HashMap::new();
    for &f in files {
        *occurrences.entry(f).or_insert(0) += 1;
    }
    // successor-symbol counts per predecessor
    let mut successors: HashMap<FileId, HashMap<&[FileId], u64>> = HashMap::new();
    if n > k {
        for i in 0..(n - k) {
            let pred = files[i];
            let symbol = &files[i + 1..=i + k];
            *successors
                .entry(pred)
                .or_default()
                .entry(symbol)
                .or_insert(0) += 1;
        }
    }
    let mut per_file = Vec::new();
    let mut total = 0.0;
    let singleton_files = occurrences.values().filter(|&&c| c == 1).count();
    let repeating_files = occurrences.len() - singleton_files;
    for (&file, &count) in &occurrences {
        if count <= 1 {
            continue;
        }
        let Some(symbols) = successors.get(&file) else {
            continue;
        };
        let transitions: u64 = symbols.values().sum();
        if transitions == 0 {
            continue;
        }
        let mut h = 0.0;
        for &c in symbols.values() {
            let p = c as f64 / transitions as f64;
            h -= p * p.log2();
        }
        let weight = count as f64 / n as f64;
        total += weight * h;
        per_file.push(FileEntropy {
            file,
            weight,
            conditional_entropy: h,
            distinct_successors: symbols.len(),
            transitions,
        });
    }
    per_file.sort_by(|a, b| {
        let ca = a.weight * a.conditional_entropy;
        let cb = b.weight * b.conditional_entropy;
        cb.partial_cmp(&ca)
            .expect("entropy contributions are finite")
            .then(a.file.cmp(&b.file))
    });
    Ok(EntropyAnalysis {
        symbol_length: k,
        entropy: total,
        events: n,
        repeating_files,
        singleton_files,
        per_file,
    })
}

/// Successor entropy of a file sequence at each symbol length in `ks` —
/// the data series of Figure 7.
///
/// # Errors
///
/// Returns a [`ValidationError`] if any `k` is zero.
pub fn entropy_profile(
    files: &[FileId],
    ks: &[usize],
) -> Result<Vec<(usize, f64)>, ValidationError> {
    ks.iter()
        .map(|&k| Ok((k, successor_sequence_entropy(files, k)?)))
        .collect()
}

/// Successor entropy of the **miss stream** of `trace` after filtering
/// through an intervening LRU cache of `filter_capacity` files, at symbol
/// length `k` — one point of Figure 8.
///
/// # Errors
///
/// Returns a [`ValidationError`] if `k` is zero.
///
/// # Panics
///
/// Panics if `filter_capacity` is zero (the LRU cache validates it).
pub fn filtered_entropy(
    trace: &Trace,
    filter_capacity: usize,
    k: usize,
) -> Result<f64, ValidationError> {
    let mut cache = LruCache::new(filter_capacity);
    let stream = miss_stream(&mut cache, trace);
    successor_sequence_entropy(&stream.file_sequence(), k)
}

/// The full Figure 8 series for one filter capacity: entropy at every
/// symbol length in `ks`, computed on a single filtered pass.
///
/// # Errors
///
/// Returns a [`ValidationError`] if any `k` is zero.
///
/// # Panics
///
/// Panics if `filter_capacity` is zero (the LRU cache validates it).
pub fn filtered_entropy_profile(
    trace: &Trace,
    filter_capacity: usize,
    ks: &[usize],
) -> Result<Vec<(usize, f64)>, ValidationError> {
    let mut cache = LruCache::new(filter_capacity);
    let stream = miss_stream(&mut cache, trace);
    let files = stream.file_sequence();
    entropy_profile(&files, ks)
}

/// Convenience: hit rate of an LRU filter of `filter_capacity` over
/// `trace` — callers often want both the filtered entropy and how much
/// the filter absorbed.
///
/// # Panics
///
/// Panics if `filter_capacity` is zero (the LRU cache validates it).
pub fn filter_absorption(trace: &Trace, filter_capacity: usize) -> f64 {
    let mut cache = LruCache::new(filter_capacity);
    let _ = miss_stream(&mut cache, trace);
    cache.stats().hit_rate()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(ids: &[u64]) -> Vec<FileId> {
        ids.iter().copied().map(FileId).collect()
    }

    #[test]
    fn k_zero_rejected() {
        assert!(successor_sequence_entropy(&seq(&[1, 2]), 0).is_err());
        assert!(analyze(&seq(&[1, 2]), 0).is_err());
        assert!(entropy_profile(&seq(&[1, 2]), &[1, 0]).is_err());
    }

    #[test]
    fn empty_and_tiny_sequences() {
        assert_eq!(successor_entropy(&[]), 0.0);
        assert_eq!(successor_entropy(&seq(&[1])), 0.0);
        assert_eq!(successor_entropy(&seq(&[1, 2])), 0.0);
    }

    #[test]
    fn deterministic_sequence_has_zero_entropy() {
        let s: Vec<FileId> = seq(&[1, 2, 3, 4]).repeat(50);
        assert_eq!(successor_entropy(&s), 0.0);
        assert_eq!(successor_sequence_entropy(&s, 5).unwrap(), 0.0);
    }

    #[test]
    fn two_equally_likely_successors_give_one_bit_conditional() {
        // 1 is followed by 2 and by 3 equally often: H(1) = 1 bit.
        let s: Vec<FileId> = seq(&[1, 2, 1, 3]).repeat(100);
        let analysis = analyze(&s, 1).unwrap();
        let f1 = analysis
            .per_file
            .iter()
            .find(|e| e.file == FileId(1))
            .unwrap();
        assert!((f1.conditional_entropy - 1.0).abs() < 0.02);
        assert_eq!(f1.distinct_successors, 2);
        // Weighted: Pr(1) = 0.5, others deterministic → H_S ≈ 0.5.
        assert!(
            (analysis.entropy - 0.5).abs() < 0.05,
            "{}",
            analysis.entropy
        );
    }

    #[test]
    fn singletons_do_not_lower_entropy() {
        // Non-repeating workload: every file occurs once → excluded, so
        // the metric reports 0 with zero repeating files rather than
        // "perfectly predictable" via fake determinism.
        let s: Vec<FileId> = (0..1000u64).map(FileId).collect();
        let analysis = analyze(&s, 1).unwrap();
        assert_eq!(analysis.entropy, 0.0);
        assert_eq!(analysis.repeating_files, 0);
        assert_eq!(analysis.singleton_files, 1000);
        assert!(analysis.per_file.is_empty());
    }

    #[test]
    fn singletons_inflate_predecessor_entropy() {
        // 1 is followed by a fresh file every time: H(1) = log2(#runs).
        let mut ids = Vec::new();
        for i in 0..8u64 {
            ids.push(1);
            ids.push(100 + i);
        }
        let analysis = analyze(&seq(&ids), 1).unwrap();
        let f1 = analysis
            .per_file
            .iter()
            .find(|e| e.file == FileId(1))
            .unwrap();
        assert!((f1.conditional_entropy - 3.0).abs() < 1e-9); // log2(8)
    }

    #[test]
    fn entropy_bounded_by_log_of_alphabet() {
        let s: Vec<FileId> = seq(&[1, 2, 3, 4, 5, 3, 2, 4, 1, 5, 2, 3]).repeat(20);
        let h = successor_entropy(&s);
        assert!(h >= 0.0);
        assert!(h <= (5f64).log2() + 1e-9);
    }

    #[test]
    fn longer_symbols_never_reduce_entropy_on_noisy_sequence() {
        let s: Vec<FileId> = seq(&[1, 2, 3, 1, 2, 4, 1, 3, 2, 1, 4, 3]).repeat(30);
        let profile = entropy_profile(&s, &[1, 2, 3, 4, 6]).unwrap();
        for pair in profile.windows(2) {
            // Finite-sample edge effects (one fewer window per extra k)
            // permit microscopic decreases; the trend must still hold.
            assert!(
                pair[1].1 >= pair[0].1 - 0.01,
                "entropy decreased from k={} ({}) to k={} ({})",
                pair[0].0,
                pair[0].1,
                pair[1].0,
                pair[1].1
            );
        }
    }

    #[test]
    fn filtered_entropy_runs_and_is_finite() {
        let trace = Trace::from_files((0..500u64).map(|i| i % 23));
        let h = filtered_entropy(&trace, 5, 1).unwrap();
        assert!(h.is_finite() && h >= 0.0);
        let profile = filtered_entropy_profile(&trace, 5, &[1, 2, 3]).unwrap();
        assert_eq!(profile.len(), 3);
    }

    #[test]
    fn huge_filter_absorbs_everything_after_cold_start() {
        let trace = Trace::from_files([1, 2, 3].repeat(100));
        let absorption = filter_absorption(&trace, 1000);
        assert!(absorption > 0.95);
        // Miss stream is just the 3 cold misses → too short to repeat.
        let h = filtered_entropy(&trace, 1000, 1).unwrap();
        assert_eq!(h, 0.0);
    }

    #[test]
    fn analysis_weights_sum_to_repeating_share() {
        let s: Vec<FileId> = seq(&[1, 1, 2, 3, 2, 9]);
        let analysis = analyze(&s, 1).unwrap();
        let weight_sum: f64 = analysis.per_file.iter().map(|e| e.weight).sum();
        // 1 and 2 repeat (weights 2/6 + 2/6); 3 and 9 are singletons.
        assert!(weight_sum <= 1.0);
        assert!((weight_sum - 4.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn per_file_sorted_by_contribution() {
        let s: Vec<FileId> = seq(&[1, 2, 1, 3, 1, 4, 1, 2, 5, 6, 5, 6]).repeat(10);
        let analysis = analyze(&s, 1).unwrap();
        let contributions: Vec<f64> = analysis
            .per_file
            .iter()
            .map(|e| e.weight * e.conditional_entropy)
            .collect();
        for pair in contributions.windows(2) {
            assert!(pair[0] >= pair[1] - 1e-12);
        }
    }
}

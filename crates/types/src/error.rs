//! Error types shared across the workspace.

use std::error::Error;
use std::fmt;

/// Error returned by [`crate::AccessKind::from_code`] when the character is
/// not a recognised access-kind code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseAccessKindError {
    /// The character that failed to parse.
    pub found: char,
}

impl fmt::Display for ParseAccessKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unrecognised access kind code {:?}, expected one of R, W, C, D",
            self.found
        )
    }
}

impl Error for ParseAccessKindError {}

/// Error returned when a configuration or argument fails validation.
///
/// This is the common "you passed a bad parameter" error across the
/// workspace: zero capacities, empty workloads, out-of-range probabilities
/// and similar. The message names the offending parameter.
///
/// ```
/// use fgcache_types::ValidationError;
/// let err = ValidationError::new("capacity", "must be greater than zero");
/// assert_eq!(err.to_string(), "invalid capacity: must be greater than zero");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    parameter: String,
    reason: String,
}

impl ValidationError {
    /// Creates a validation error for `parameter`, explaining `reason`.
    pub fn new(parameter: impl Into<String>, reason: impl Into<String>) -> Self {
        ValidationError {
            parameter: parameter.into(),
            reason: reason.into(),
        }
    }

    /// The name of the parameter that failed validation.
    pub fn parameter(&self) -> &str {
        &self.parameter
    }

    /// Why the parameter was rejected.
    pub fn reason(&self) -> &str {
        &self.reason
    }
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {}: {}", self.parameter, self.reason)
    }
}

impl Error for ValidationError {}

/// Classification of a fetch-transport failure.
///
/// The variants mirror the failure modes a networked group-fetch path can
/// observe; the retry layer uses [`TransportErrorKind::is_retryable`] to
/// decide whether another attempt (with the same request id, relying on
/// server-side idempotency) can possibly succeed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransportErrorKind {
    /// No reply arrived within the request timeout (the request may or may
    /// not have executed — retries must reuse the request id).
    Timeout,
    /// The request executed but its reply was lost in transit.
    ReplyDropped,
    /// The underlying connection failed (reset, refused, EOF mid-frame).
    ConnectionLost,
    /// The peer spoke the protocol incorrectly (bad version, malformed
    /// frame, unexpected message type). Never retryable: a retry would
    /// hit the same incompatibility.
    Protocol,
}

impl TransportErrorKind {
    /// Whether a retry with the same request id can possibly succeed.
    pub fn is_retryable(self) -> bool {
        !matches!(self, TransportErrorKind::Protocol)
    }
}

impl fmt::Display for TransportErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TransportErrorKind::Timeout => "timeout",
            TransportErrorKind::ReplyDropped => "reply dropped",
            TransportErrorKind::ConnectionLost => "connection lost",
            TransportErrorKind::Protocol => "protocol error",
        })
    }
}

/// Error produced by a fetch transport (`fgcache-net`).
///
/// Carries the failure classification plus the retry context a caller
/// needs to reason about idempotency: which request failed and how many
/// attempts were made.
///
/// ```
/// use fgcache_types::error::{TransportError, TransportErrorKind};
/// let err = TransportError::new(TransportErrorKind::Timeout, "no reply in 250ms")
///     .with_request_id(7)
///     .with_attempts(3);
/// assert!(err.kind().is_retryable());
/// assert_eq!(err.request_id(), Some(7));
/// assert_eq!(err.attempts(), 3);
/// assert_eq!(
///     err.to_string(),
///     "transport timeout (request 7, 3 attempts): no reply in 250ms"
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransportError {
    kind: TransportErrorKind,
    request_id: Option<u64>,
    attempts: u32,
    detail: String,
}

impl TransportError {
    /// Creates a transport error of `kind`, explained by `detail`
    /// (one attempt, no request id until [`Self::with_request_id`]).
    pub fn new(kind: TransportErrorKind, detail: impl Into<String>) -> Self {
        TransportError {
            kind,
            request_id: None,
            attempts: 1,
            detail: detail.into(),
        }
    }

    /// Shorthand for a [`TransportErrorKind::Timeout`] after `attempts`
    /// attempts at `request_id`.
    pub fn timeout(request_id: u64, attempts: u32, detail: impl Into<String>) -> Self {
        TransportError::new(TransportErrorKind::Timeout, detail)
            .with_request_id(request_id)
            .with_attempts(attempts)
    }

    /// Attaches the id of the request that failed.
    #[must_use]
    pub fn with_request_id(mut self, request_id: u64) -> Self {
        self.request_id = Some(request_id);
        self
    }

    /// Records how many attempts were made before giving up.
    #[must_use]
    pub fn with_attempts(mut self, attempts: u32) -> Self {
        self.attempts = attempts;
        self
    }

    /// The failure classification.
    pub fn kind(&self) -> TransportErrorKind {
        self.kind
    }

    /// The id of the request that failed, when known.
    pub fn request_id(&self) -> Option<u64> {
        self.request_id
    }

    /// Number of attempts made (1 for an unretried failure).
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Human-readable failure detail.
    pub fn detail(&self) -> &str {
        &self.detail
    }

    /// Whether a retry with the same request id can possibly succeed.
    pub fn is_retryable(&self) -> bool {
        self.kind.is_retryable()
    }
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transport {}", self.kind)?;
        match (self.request_id, self.attempts) {
            (Some(id), n) if n > 1 => write!(f, " (request {id}, {n} attempts)")?,
            (Some(id), _) => write!(f, " (request {id})")?,
            (None, n) if n > 1 => write!(f, " ({n} attempts)")?,
            (None, _) => {}
        }
        if self.detail.is_empty() {
            Ok(())
        } else {
            write!(f, ": {}", self.detail)
        }
    }
}

impl Error for TransportError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_error_accessors() {
        let err = ValidationError::new("noise", "must lie in [0, 1]");
        assert_eq!(err.parameter(), "noise");
        assert_eq!(err.reason(), "must lie in [0, 1]");
    }

    #[test]
    fn errors_implement_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<ParseAccessKindError>();
        assert_err::<ValidationError>();
        assert_err::<TransportError>();
    }

    #[test]
    fn transport_error_context_accessors() {
        let err = TransportError::new(TransportErrorKind::ReplyDropped, "fault injector")
            .with_request_id(42)
            .with_attempts(2);
        assert_eq!(err.kind(), TransportErrorKind::ReplyDropped);
        assert_eq!(err.request_id(), Some(42));
        assert_eq!(err.attempts(), 2);
        assert_eq!(err.detail(), "fault injector");
        assert!(err.is_retryable());
    }

    #[test]
    fn transport_error_display_variants() {
        let bare = TransportError::new(TransportErrorKind::ConnectionLost, "");
        assert_eq!(bare.to_string(), "transport connection lost");
        let with_id =
            TransportError::new(TransportErrorKind::Protocol, "bad version").with_request_id(3);
        assert_eq!(
            with_id.to_string(),
            "transport protocol error (request 3): bad version"
        );
        let attempts_only =
            TransportError::new(TransportErrorKind::Timeout, "gave up").with_attempts(5);
        assert_eq!(
            attempts_only.to_string(),
            "transport timeout (5 attempts): gave up"
        );
        assert_eq!(
            TransportError::timeout(9, 4, "no reply").to_string(),
            "transport timeout (request 9, 4 attempts): no reply"
        );
    }

    #[test]
    fn protocol_errors_are_not_retryable() {
        assert!(!TransportErrorKind::Protocol.is_retryable());
        assert!(TransportErrorKind::Timeout.is_retryable());
        assert!(TransportErrorKind::ReplyDropped.is_retryable());
        assert!(TransportErrorKind::ConnectionLost.is_retryable());
    }
}

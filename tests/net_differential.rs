//! The PR's acceptance property, end to end through the facade crate: a
//! multi-client replay over real loopback TCP produces hit/miss and
//! group-fetch counters **byte-identical** to direct in-process calls on
//! the same `ShardedAggregatingCache` — the wire protocol, request-id
//! dedup, pooling and batching must all be observationally transparent.

use std::sync::Arc;

use fgcache::core::ShardedAggregatingCacheBuilder;
use fgcache::net::{BoundServer, DirectTransport, NetClient, WireStats};
use fgcache::sim::run_multiclient_transport;
use fgcache::trace::synth::{SynthConfig, WorkloadProfile};
use fgcache::trace::Trace;

const CLIENTS: usize = 3;
const FILTER: usize = 80;

fn workloads() -> Vec<Trace> {
    (0..CLIENTS)
        .map(|i| {
            SynthConfig::profile(WorkloadProfile::Server)
                .events(8_000)
                .seed(2002 + i as u64)
                .build()
                .unwrap()
                .generate()
        })
        .collect()
}

fn server_cache() -> fgcache::core::ShardedAggregatingCache {
    ShardedAggregatingCacheBuilder::new(300)
        .shards(3)
        .group_size(5)
        .successor_capacity(8)
        .build()
        .unwrap()
}

#[test]
fn loopback_tcp_replay_is_byte_identical_to_in_process_calls() {
    let traces = workloads();

    // Baseline: the identical replay driver over direct in-process calls.
    let direct = server_cache();
    let transports: Vec<DirectTransport<'_>> = (0..CLIENTS)
        .map(|_| DirectTransport::new(&direct))
        .collect();
    run_multiclient_transport(&traces, FILTER, transports, 1, false).unwrap();

    // The same replay over a live TCP server at batch 1 — the identical
    // server-side interleave, so every counter must be byte-identical.
    let (point, wire) = tcp_replay(&traces, 1);
    let stats = direct.stats();
    let group = direct.group_stats();
    assert_eq!(wire.accesses, stats.accesses);
    assert_eq!(wire.hits, stats.hits);
    assert_eq!(wire.misses, stats.misses);
    assert_eq!(wire.speculative_inserts, stats.speculative_inserts);
    assert_eq!(wire.speculative_hits, stats.speculative_hits);
    assert_eq!(wire.evictions, stats.evictions);
    assert_eq!(wire.demand_fetches, group.demand_fetches);
    assert_eq!(wire.files_transferred, group.files_transferred);
    assert_eq!(
        wire.members_already_resident,
        group.members_already_resident
    );

    // The client-side view agrees with the server's: every executed
    // request moved its files through the transport layer exactly once.
    assert_eq!(point.transport.requests, wire.accesses);
    assert_eq!(point.transport.files_moved, wire.accesses);
    assert_eq!(point.transport.hits, wire.hits);
    assert_eq!(point.transport.misses, wire.misses);
    assert_eq!(point.transport.retries, 0);
    assert_eq!(point.transport.timeouts, 0);
}

#[test]
fn batched_pipelining_changes_interleave_but_never_workload_totals() {
    // Batching reorders how the clients' requests interleave at the shared
    // server (so hit/miss counts may differ), but the client filter tier is
    // upstream of batching: the *set* of requests — and therefore every
    // order-independent counter — is invariant.
    let traces = workloads();
    let (single, wire_single) = tcp_replay(&traces, 1);
    let (batched, wire_batched) = tcp_replay(&traces, 16);

    assert_eq!(wire_batched.accesses, wire_single.accesses);
    assert_eq!(batched.transport.requests, single.transport.requests);
    assert_eq!(batched.events, single.events);
    assert_eq!(batched.client_hit_rate, single.client_hit_rate);
    // The point of pipelining: far fewer wire exchanges for the same work.
    assert!(batched.transport.round_trips < single.transport.round_trips / 4);
}

/// Replays `traces` against a fresh loopback server and returns the
/// client-side replay point plus the server's counters read over the wire.
fn tcp_replay(traces: &[Trace], batch: usize) -> (fgcache::sim::TransportReplayPoint, WireStats) {
    let handle = BoundServer::bind("127.0.0.1:0", Arc::new(server_cache()))
        .unwrap()
        .spawn();
    let clients: Vec<NetClient> = (0..CLIENTS)
        .map(|i| {
            NetClient::connect(handle.addr())
                .unwrap()
                .with_id_namespace(i as u64)
        })
        .collect();
    let (point, mut clients) =
        run_multiclient_transport(traces, FILTER, clients, batch, false).unwrap();
    let wire = clients[0].server_stats().unwrap();
    handle.stop();
    (point, wire)
}

//! Subcommand implementations.
//!
//! Each module exposes `run(tokens) -> Result<(), Box<dyn Error>>` and a
//! pure core function that returns its report as a `String`, so the logic
//! is unit-testable without spawning processes.

pub mod bench_net;
pub mod entropy;
pub mod gen;
pub mod groups;
pub mod serve;
pub mod simulate;
pub mod stats;
pub mod two_level;

use std::error::Error;
use std::fs::File;
use std::path::Path;

use fgcache_trace::{io, Trace};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TraceFormat {
    Text,
    Json,
    Binary,
}

/// Loads a trace from `path`, auto-detecting the format by extension
/// (`.json`, `.bin`, else text) unless `format` overrides it (`"text"`,
/// `"json"` or `"bin"`).
pub(crate) fn load_trace(path: &str, format: Option<&str>) -> Result<Trace, Box<dyn Error>> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let fmt = match format {
        Some("json") => TraceFormat::Json,
        Some("text") => TraceFormat::Text,
        Some("bin" | "binary") => TraceFormat::Binary,
        Some(other) => return Err(format!("unknown --format {other:?} (text|json|bin)").into()),
        None => {
            let ext = Path::new(path).extension().and_then(|e| e.to_str());
            match ext {
                Some(e) if e.eq_ignore_ascii_case("json") => TraceFormat::Json,
                Some(e) if e.eq_ignore_ascii_case("bin") => TraceFormat::Binary,
                _ => TraceFormat::Text,
            }
        }
    };
    let trace = match fmt {
        TraceFormat::Json => io::read_json(file)?,
        TraceFormat::Text => io::read_text(file)?,
        TraceFormat::Binary => io::read_binary(file)?,
    };
    Ok(trace)
}

//! `fgcache gen` — generate a synthetic workload trace.

use std::error::Error;
use std::fs::File;

use fgcache_trace::synth::{SynthConfig, WorkloadProfile};
use fgcache_trace::{io, Trace};

use crate::args::Args;

const FLAGS: &[&str] = &[
    "profile",
    "events",
    "seed",
    "out",
    "format",
    "streams",
    "noise",
    "drift",
    "repeat-rate",
];

pub(crate) fn build_trace(args: &Args) -> Result<Trace, Box<dyn Error>> {
    args.check_known(FLAGS)?;
    let profile = match args.flag("profile").unwrap_or("workstation") {
        "workstation" => WorkloadProfile::Workstation,
        "users" => WorkloadProfile::Users,
        "write" => WorkloadProfile::Write,
        "server" => WorkloadProfile::Server,
        other => {
            return Err(
                format!("unknown --profile {other:?} (workstation|users|write|server)").into(),
            )
        }
    };
    let mut config = SynthConfig::profile(profile)
        .events(args.flag_or("events", 100_000usize)?)
        .seed(args.flag_or("seed", 0u64)?);
    if let Some(streams) = args.flag("streams") {
        config = config.streams(streams.parse().map_err(|_| "invalid --streams")?);
    }
    if let Some(noise) = args.flag("noise") {
        config = config.noise(noise.parse().map_err(|_| "invalid --noise")?);
    }
    if let Some(drift) = args.flag("drift") {
        config = config.drift(drift.parse().map_err(|_| "invalid --drift")?);
    }
    if let Some(rate) = args.flag("repeat-rate") {
        config = config.repeat_rate(rate.parse().map_err(|_| "invalid --repeat-rate")?);
    }
    Ok(config.build()?.generate())
}

pub fn run(tokens: &[String]) -> Result<(), Box<dyn Error>> {
    let args = Args::parse(tokens.iter().cloned())?;
    let trace = build_trace(&args)?;
    let out = args.flag("out").unwrap_or("trace.txt").to_string();
    let file = File::create(&out).map_err(|e| format!("cannot create {out}: {e}"))?;
    match args.flag("format").unwrap_or("text") {
        "text" => io::write_text(&trace, file)?,
        "json" => io::write_json(&trace, file)?,
        "bin" | "binary" => io::write_binary(&trace, file)?,
        other => return Err(format!("unknown --format {other:?} (text|json|bin)").into()),
    }
    println!("wrote {} events to {out}", trace.len());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_with_defaults() {
        let args = Args::parse(["--events", "500", "--seed", "3"]).unwrap();
        let trace = build_trace(&args).unwrap();
        assert_eq!(trace.len(), 500);
    }

    #[test]
    fn profile_selected() {
        let args = Args::parse(["--profile", "server", "--events", "100"]).unwrap();
        let trace = build_trace(&args).unwrap();
        assert!(trace.clients().len() <= 2);
    }

    #[test]
    fn rejects_unknown_profile_and_flags() {
        let args = Args::parse(["--profile", "mainframe"]).unwrap();
        assert!(build_trace(&args).is_err());
        let args = Args::parse(["--bogus", "1"]).unwrap();
        assert!(build_trace(&args).is_err());
    }

    #[test]
    fn knob_overrides_apply() {
        let args = Args::parse([
            "--events",
            "200",
            "--noise",
            "0.0",
            "--drift",
            "0.0",
            "--repeat-rate",
            "0.0",
        ])
        .unwrap();
        assert_eq!(build_trace(&args).unwrap().len(), 200);
        let args = Args::parse(["--noise", "nope"]).unwrap();
        assert!(build_trace(&args).is_err());
    }
}

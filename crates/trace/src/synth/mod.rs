//! Synthetic DFSTrace-like workload generation.
//!
//! The paper's evaluation uses four CMU DFSTrace traces. Those traces are
//! not redistributable, so this module synthesises workloads that preserve
//! the structural properties the paper's results depend on:
//!
//! 1. **Repeating activities** — file accesses are driven by applications
//!    (builds, script runs) that replay near-identical file sequences each
//!    time they execute. Each [`SynthConfig`] instantiates a fixed set of
//!    *activities* (deterministic file sequences) that are re-executed with
//!    Zipf-skewed popularity. Activity determinism is what makes single-file
//!    successors predictable (paper §4.5).
//! 2. **Shared hot files** — a common pool (shells, `make`, libraries) that
//!    appears inside many activities. This is the paper's motivation for
//!    allowing *overlapping* groups (§2.1).
//! 3. **Interleaving** — several concurrent streams (users/tasks) whose
//!    events interleave; stream switches break successor chains and raise
//!    entropy. Multi-user systems (`users`) interleave heavily.
//! 4. **Write/new-file churn** — write-heavy workloads create fresh files
//!    that no predictor has seen, capping achievable gains (`write`).
//!
//! The four [`WorkloadProfile`]s tune these knobs to mirror the paper's
//! systems. Everything is seeded and deterministic: the same config always
//! yields the same [`Trace`].
//!
//! ```
//! use fgcache_trace::synth::{SynthConfig, WorkloadProfile};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let gen = SynthConfig::profile(WorkloadProfile::Server)
//!     .events(1_000)
//!     .seed(3)
//!     .build()?;
//! let a = gen.generate();
//! let b = gen.generate();
//! assert_eq!(a, b); // fully deterministic
//! # Ok(())
//! # }
//! ```

mod zipf;

pub use zipf::Zipf;

use std::fmt;

use fgcache_types::rng::{RandomSource, SeededRng};
use fgcache_types::{AccessEvent, AccessKind, ClientId, FileId, SeqNo, ValidationError};

use crate::Trace;

/// The four workload profiles, mirroring the paper's trace systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadProfile {
    /// `mozart` — a personal workstation: one user, a moderate activity
    /// mix, moderate noise.
    Workstation,
    /// `ives` — the system with the largest number of users: many
    /// interleaved streams, the least predictable workload.
    Users,
    /// `dvorak` — the system with the largest proportion of write
    /// activity: heavy new-file churn defeats prediction.
    Write,
    /// `barber` — a server with the highest system-call rate:
    /// application-driven, highly deterministic access patterns, the most
    /// predictable workload (successor entropy < 1 bit).
    Server,
}

impl WorkloadProfile {
    /// All profiles in the paper's presentation order.
    pub const ALL: [WorkloadProfile; 4] = [
        WorkloadProfile::Workstation,
        WorkloadProfile::Users,
        WorkloadProfile::Write,
        WorkloadProfile::Server,
    ];

    /// The paper's short name for the workload (`workstation`, `users`,
    /// `write`, `server`).
    pub fn name(self) -> &'static str {
        match self {
            WorkloadProfile::Workstation => "workstation",
            WorkloadProfile::Users => "users",
            WorkloadProfile::Write => "write",
            WorkloadProfile::Server => "server",
        }
    }

    /// The underlying CMU DFSTrace system the profile imitates.
    pub fn dfstrace_host(self) -> &'static str {
        match self {
            WorkloadProfile::Workstation => "mozart",
            WorkloadProfile::Users => "ives",
            WorkloadProfile::Write => "dvorak",
            WorkloadProfile::Server => "barber",
        }
    }
}

impl fmt::Display for WorkloadProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Builder for a [`WorkloadGenerator`].
///
/// Start from [`SynthConfig::profile`] (recommended) or
/// [`SynthConfig::new`] (neutral defaults), adjust knobs, then call
/// [`SynthConfig::build`].
#[derive(Debug, Clone)]
pub struct SynthConfig {
    events: usize,
    seed: u64,
    streams: usize,
    stickiness: f64,
    noise: f64,
    new_file_rate: f64,
    write_rate: f64,
    activities: usize,
    activity_len: (usize, usize),
    shared_rate: f64,
    shared_pool: usize,
    activity_zipf: f64,
    universe_zipf: f64,
    revisit_period: usize,
    drift: f64,
    repeat_rate: f64,
}

impl SynthConfig {
    /// Creates a config with neutral defaults (the `workstation` profile's
    /// parameters).
    pub fn new() -> Self {
        SynthConfig::profile(WorkloadProfile::Workstation)
    }

    /// Creates a config pre-tuned for one of the paper's four workloads.
    pub fn profile(profile: WorkloadProfile) -> Self {
        let base = SynthConfig {
            events: 100_000,
            seed: 0,
            streams: 3,
            stickiness: 0.90,
            noise: 0.035,
            new_file_rate: 0.010,
            write_rate: 0.15,
            activities: 80,
            activity_len: (15, 60),
            shared_rate: 0.15,
            shared_pool: 30,
            activity_zipf: 1.0,
            universe_zipf: 0.9,
            revisit_period: 6,
            drift: 0.07,
            repeat_rate: 0.40,
        };
        match profile {
            WorkloadProfile::Workstation => base,
            WorkloadProfile::Users => SynthConfig {
                streams: 12,
                stickiness: 0.70,
                noise: 0.06,
                activities: 200,
                activity_len: (10, 50),
                shared_rate: 0.20,
                shared_pool: 50,
                ..base
            },
            WorkloadProfile::Write => SynthConfig {
                streams: 4,
                stickiness: 0.85,
                noise: 0.04,
                new_file_rate: 0.12,
                write_rate: 0.45,
                activities: 60,
                drift: 0.06,
                repeat_rate: 0.45,
                ..base
            },
            WorkloadProfile::Server => SynthConfig {
                streams: 2,
                stickiness: 0.99,
                noise: 0.002,
                new_file_rate: 0.001,
                write_rate: 0.10,
                activities: 40,
                activity_len: (40, 120),
                shared_rate: 0.06,
                shared_pool: 20,
                activity_zipf: 1.1,
                drift: 0.005,
                repeat_rate: 0.82,
                ..base
            },
        }
    }

    /// Total number of events to generate.
    pub fn events(mut self, events: usize) -> Self {
        self.events = events;
        self
    }

    /// RNG seed; equal seeds give identical traces.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of concurrent access streams (users/tasks).
    pub fn streams(mut self, streams: usize) -> Self {
        self.streams = streams;
        self
    }

    /// Probability that consecutive events come from the same stream.
    pub fn stickiness(mut self, stickiness: f64) -> Self {
        self.stickiness = stickiness;
        self
    }

    /// Probability that an event is a uniform-noise access (Zipf over the
    /// whole universe) instead of the stream's next activity step.
    pub fn noise(mut self, noise: f64) -> Self {
        self.noise = noise;
        self
    }

    /// Probability that an event creates a brand-new file (write churn).
    pub fn new_file_rate(mut self, rate: f64) -> Self {
        self.new_file_rate = rate;
        self
    }

    /// Fraction of non-create events that are writes (affects event kind
    /// only, not sequencing).
    pub fn write_rate(mut self, rate: f64) -> Self {
        self.write_rate = rate;
        self
    }

    /// Number of distinct activities (deterministic file sequences).
    pub fn activities(mut self, activities: usize) -> Self {
        self.activities = activities;
        self
    }

    /// Range of activity sequence lengths, inclusive.
    pub fn activity_len(mut self, min: usize, max: usize) -> Self {
        self.activity_len = (min, max);
        self
    }

    /// Probability that an activity step touches the shared hot pool.
    pub fn shared_rate(mut self, rate: f64) -> Self {
        self.shared_rate = rate;
        self
    }

    /// Size of the shared hot-file pool.
    pub fn shared_pool(mut self, size: usize) -> Self {
        self.shared_pool = size;
        self
    }

    /// Zipf exponent of activity popularity.
    pub fn activity_zipf(mut self, s: f64) -> Self {
        self.activity_zipf = s;
        self
    }

    /// Zipf exponent of noise accesses over the file universe.
    pub fn universe_zipf(mut self, s: f64) -> Self {
        self.universe_zipf = s;
        self
    }

    /// Every `period`-th own-file step of an activity revisits an earlier
    /// file of the same activity (models repeated headers/config reads).
    pub fn revisit_period(mut self, period: usize) -> Self {
        self.revisit_period = period;
        self
    }

    /// Per-step probability that an activity's own-file steps are
    /// replaced by fresh files each time the activity is re-launched.
    ///
    /// This models workload **nonstationarity** — builds change, documents
    /// are rewritten, working sets evolve. Drift is what makes *recency*
    /// beat *frequency* for successor tracking (the paper's Figure 5
    /// finding): frequency counters cling to stale, formerly-popular
    /// successors while a recency list adapts immediately.
    pub fn drift(mut self, drift: f64) -> Self {
        self.drift = drift;
        self
    }

    /// Probability that an event immediately re-accesses the stream's
    /// previous file (repeated `open`s of the same file, ubiquitous in
    /// system-call-level traces). Immediate repeats are perfectly
    /// predictable self-successions; even a tiny intervening cache
    /// absorbs them, which is why the paper's Figure 8 shows a 10-file
    /// filter making the miss stream *less* predictable than the raw
    /// workload.
    pub fn repeat_rate(mut self, rate: f64) -> Self {
        self.repeat_rate = rate;
        self
    }

    /// Validates the configuration and instantiates the generator
    /// (including its fixed activity sequences).
    ///
    /// # Errors
    ///
    /// Returns a [`ValidationError`] naming the offending knob: zero
    /// streams/activities, an empty length range, probabilities outside
    /// `[0, 1]`, or a zero revisit period.
    pub fn build(&self) -> Result<WorkloadGenerator, ValidationError> {
        if self.streams == 0 {
            return Err(ValidationError::new("streams", "must be at least 1"));
        }
        if self.activities == 0 {
            return Err(ValidationError::new("activities", "must be at least 1"));
        }
        let (min, max) = self.activity_len;
        if min == 0 || min > max {
            return Err(ValidationError::new(
                "activity_len",
                "must satisfy 1 <= min <= max",
            ));
        }
        for (name, p) in [
            ("stickiness", self.stickiness),
            ("noise", self.noise),
            ("new_file_rate", self.new_file_rate),
            ("write_rate", self.write_rate),
            ("shared_rate", self.shared_rate),
            ("drift", self.drift),
            ("repeat_rate", self.repeat_rate),
        ] {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(ValidationError::new(name, "must lie in [0, 1]"));
            }
        }
        if self.shared_rate > 0.0 && self.shared_pool == 0 {
            return Err(ValidationError::new(
                "shared_pool",
                "must be at least 1 when shared_rate > 0",
            ));
        }
        if self.revisit_period == 0 {
            return Err(ValidationError::new("revisit_period", "must be at least 1"));
        }
        WorkloadGenerator::from_config(self.clone())
    }
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig::new()
    }
}

/// A fully-instantiated workload generator.
///
/// Construction (via [`SynthConfig::build`]) fixes the activity sequences;
/// [`WorkloadGenerator::generate`] replays the stochastic interleaving from
/// the seed, so repeated calls return identical traces.
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    config: SynthConfig,
    activities: Vec<Vec<FileId>>,
    activity_dist: Zipf,
    universe_dist: Zipf,
    static_universe: usize,
}

impl WorkloadGenerator {
    fn from_config(config: SynthConfig) -> Result<Self, ValidationError> {
        // Activity construction uses its own deterministic RNG, decoupled
        // from the event-interleaving RNG so that changing `events` never
        // changes the activity definitions.
        let mut rng = SeededRng::new(config.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let shared_pool = config.shared_pool;
        let mut next_file = shared_pool as u64;
        let mut activities = Vec::with_capacity(config.activities);
        let shared_dist = if config.shared_rate > 0.0 {
            Some(Zipf::new(shared_pool, 1.0)?)
        } else {
            None
        };
        for _ in 0..config.activities {
            let (min, max) = config.activity_len;
            let len = rng.gen_range_inclusive(min as u64, max as u64) as usize;
            let mut seq: Vec<FileId> = Vec::with_capacity(len);
            let mut own: Vec<FileId> = Vec::new();
            let mut own_steps = 0usize;
            for _ in 0..len {
                let use_shared = shared_dist.is_some() && rng.next_f64() < config.shared_rate;
                let file = if use_shared {
                    let dist = shared_dist.as_ref().expect("guarded by use_shared");
                    FileId(dist.sample(&mut rng) as u64)
                } else {
                    own_steps += 1;
                    if own_steps.is_multiple_of(config.revisit_period) && !own.is_empty() {
                        *rng.choose(&own).expect("own is non-empty")
                    } else {
                        let id = FileId(next_file);
                        next_file += 1;
                        own.push(id);
                        id
                    }
                };
                seq.push(file);
            }
            activities.push(seq);
        }
        let static_universe = next_file as usize;
        Ok(WorkloadGenerator {
            activity_dist: Zipf::new(config.activities, config.activity_zipf)?,
            universe_dist: Zipf::new(static_universe.max(1), config.universe_zipf)?,
            static_universe,
            config,
            activities,
        })
    }

    /// Size of the static file universe (shared pool + all activity files);
    /// new files created during generation get ids at and above this.
    pub fn universe_size(&self) -> usize {
        self.static_universe
    }

    /// The configuration this generator was built from.
    pub fn config(&self) -> &SynthConfig {
        &self.config
    }

    /// The fixed activity sequences (useful for tests and inspection).
    pub fn activities(&self) -> &[Vec<FileId>] {
        &self.activities
    }

    /// Generates the trace. Deterministic: repeated calls yield identical
    /// traces.
    pub fn generate(&self) -> Trace {
        let cfg = &self.config;
        let mut rng = SeededRng::new(cfg.seed);
        let mut next_new_file = self.static_universe as u64;
        // Activities evolve during generation (drift), so work on a copy.
        let mut activities = self.activities.clone();
        // Per-stream state: (activity index, position within it).
        let mut streams: Vec<(usize, usize)> = (0..cfg.streams)
            .map(|_| (self.activity_dist.sample(&mut rng), 0))
            .collect();
        let mut current_stream = 0usize;
        let mut last_file: Vec<Option<FileId>> = vec![None; cfg.streams];
        let mut events = Vec::with_capacity(cfg.events);
        let shared_pool = cfg.shared_pool as u64;
        for seq in 0..cfg.events {
            if cfg.streams > 1 && rng.next_f64() >= cfg.stickiness {
                current_stream = rng.gen_index(cfg.streams);
            }
            let stream = current_stream;
            if let Some(prev) = last_file[stream] {
                if rng.next_f64() < cfg.repeat_rate {
                    let kind = self.read_or_write(&mut rng);
                    events.push(AccessEvent::new(
                        SeqNo(seq as u64),
                        ClientId(stream as u32),
                        prev,
                        kind,
                    ));
                    continue;
                }
            }
            let roll: f64 = rng.next_f64();
            let (file, kind) = if roll < cfg.new_file_rate {
                let id = FileId(next_new_file);
                next_new_file += 1;
                (id, AccessKind::Create)
            } else if roll < cfg.new_file_rate + cfg.noise {
                let id = FileId(self.universe_dist.sample(&mut rng) as u64);
                (id, self.read_or_write(&mut rng))
            } else {
                let (act, pos) = &mut streams[stream];
                if *pos >= activities[*act].len() {
                    *act = self.activity_dist.sample(&mut rng);
                    *pos = 0;
                    // Nonstationarity: each re-launch may permanently
                    // replace some of the activity's own files with fresh
                    // ones (the working set evolves). Shared hot-pool
                    // steps (ids below the pool bound) never drift.
                    if cfg.drift > 0.0 {
                        let seq_ref = &mut activities[*act];
                        for slot in seq_ref.iter_mut() {
                            if slot.as_u64() >= shared_pool && rng.next_f64() < cfg.drift {
                                *slot = FileId(next_new_file);
                                next_new_file += 1;
                            }
                        }
                    }
                }
                let id = activities[*act][*pos];
                *pos += 1;
                (id, self.read_or_write(&mut rng))
            };
            last_file[stream] = Some(file);
            events.push(AccessEvent::new(
                SeqNo(seq as u64),
                ClientId(stream as u32),
                file,
                kind,
            ));
        }
        Trace::new(events).expect("generator emits strictly increasing sequence numbers")
    }

    fn read_or_write(&self, rng: &mut SeededRng) -> AccessKind {
        if rng.next_f64() < self.config.write_rate {
            AccessKind::Write
        } else {
            AccessKind::Read
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(profile: WorkloadProfile) -> Trace {
        SynthConfig::profile(profile)
            .events(5_000)
            .seed(11)
            .build()
            .unwrap()
            .generate()
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small(WorkloadProfile::Server);
        let b = small(WorkloadProfile::Server);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let gen_a = SynthConfig::profile(WorkloadProfile::Users)
            .events(2_000)
            .seed(1)
            .build()
            .unwrap();
        let gen_b = SynthConfig::profile(WorkloadProfile::Users)
            .events(2_000)
            .seed(2)
            .build()
            .unwrap();
        assert_ne!(gen_a.generate(), gen_b.generate());
    }

    #[test]
    fn event_count_honoured() {
        for profile in WorkloadProfile::ALL {
            assert_eq!(small(profile).len(), 5_000, "profile {profile}");
        }
    }

    #[test]
    fn changing_events_preserves_activities() {
        let short = SynthConfig::profile(WorkloadProfile::Server)
            .events(100)
            .seed(5)
            .build()
            .unwrap();
        let long = SynthConfig::profile(WorkloadProfile::Server)
            .events(10_000)
            .seed(5)
            .build()
            .unwrap();
        assert_eq!(short.activities(), long.activities());
        assert_eq!(short.universe_size(), long.universe_size());
    }

    #[test]
    fn prefix_stability() {
        // A longer run of the same seed starts with the same events.
        let short = SynthConfig::profile(WorkloadProfile::Write)
            .events(500)
            .seed(9)
            .build()
            .unwrap()
            .generate();
        let long = SynthConfig::profile(WorkloadProfile::Write)
            .events(1_000)
            .seed(9)
            .build()
            .unwrap()
            .generate();
        assert_eq!(short.events(), &long.events()[..500]);
    }

    #[test]
    fn write_profile_creates_more_files() {
        let write = small(WorkloadProfile::Write);
        let server = small(WorkloadProfile::Server);
        let creates = |t: &Trace| {
            t.events()
                .iter()
                .filter(|e| e.kind == AccessKind::Create)
                .count()
        };
        assert!(
            creates(&write) > creates(&server) * 5,
            "write {} vs server {}",
            creates(&write),
            creates(&server)
        );
    }

    #[test]
    fn clients_match_stream_count() {
        let t = small(WorkloadProfile::Users);
        assert_eq!(t.clients().len(), 12);
        let t = small(WorkloadProfile::Server);
        assert!(t.clients().len() <= 2);
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        assert!(SynthConfig::new().streams(0).build().is_err());
        assert!(SynthConfig::new().activities(0).build().is_err());
        assert!(SynthConfig::new().activity_len(0, 5).build().is_err());
        assert!(SynthConfig::new().activity_len(6, 5).build().is_err());
        assert!(SynthConfig::new().noise(1.5).build().is_err());
        assert!(SynthConfig::new().noise(-0.1).build().is_err());
        assert!(SynthConfig::new().stickiness(2.0).build().is_err());
        assert!(SynthConfig::new().new_file_rate(f64::NAN).build().is_err());
        assert!(SynthConfig::new()
            .shared_rate(0.5)
            .shared_pool(0)
            .build()
            .is_err());
        assert!(SynthConfig::new().revisit_period(0).build().is_err());
        assert!(SynthConfig::new().drift(1.5).build().is_err());
        assert!(SynthConfig::new().drift(-0.1).build().is_err());
        assert!(SynthConfig::new().repeat_rate(1.5).build().is_err());
    }

    #[test]
    fn zero_shared_rate_allows_zero_pool() {
        let gen = SynthConfig::new()
            .shared_rate(0.0)
            .shared_pool(0)
            .events(100)
            .build()
            .unwrap();
        assert_eq!(gen.generate().len(), 100);
    }

    #[test]
    fn zero_events_is_fine() {
        let t = SynthConfig::new().events(0).build().unwrap().generate();
        assert!(t.is_empty());
    }

    #[test]
    fn activities_are_replayed_exactly() {
        // With one stream, zero noise, zero churn, the trace must be a
        // concatenation of activity sequences.
        let gen = SynthConfig::new()
            .streams(1)
            .noise(0.0)
            .new_file_rate(0.0)
            .shared_rate(0.0)
            .drift(0.0)
            .repeat_rate(0.0)
            .activities(3)
            .activity_len(4, 4)
            .events(40)
            .seed(2)
            .build()
            .unwrap();
        let t = gen.generate();
        let acts = gen.activities();
        let seq = t.file_sequence();
        let mut pos = 0;
        while pos < seq.len() {
            let window = &seq[pos..(pos + 4).min(seq.len())];
            let matched = acts.iter().any(|a| a.starts_with(window));
            assert!(
                matched,
                "window at {pos} not an activity prefix: {window:?}"
            );
            pos += 4;
        }
    }

    #[test]
    fn profile_names_and_hosts() {
        assert_eq!(WorkloadProfile::Server.name(), "server");
        assert_eq!(WorkloadProfile::Server.dfstrace_host(), "barber");
        assert_eq!(WorkloadProfile::Users.to_string(), "users");
        assert_eq!(WorkloadProfile::ALL.len(), 4);
    }

    #[test]
    fn new_file_ids_start_beyond_universe() {
        let gen = SynthConfig::profile(WorkloadProfile::Write)
            .events(3_000)
            .seed(4)
            .build()
            .unwrap();
        let universe = gen.universe_size() as u64;
        let t = gen.generate();
        for ev in t.events() {
            if ev.kind == AccessKind::Create {
                assert!(ev.file.as_u64() >= universe);
            }
        }
        // Drift introduces fresh read/write files too, but the bulk of
        // non-create traffic stays within the static universe.
        let in_universe = t
            .events()
            .iter()
            .filter(|e| e.kind != AccessKind::Create && e.file.as_u64() < universe)
            .count();
        let non_create = t
            .events()
            .iter()
            .filter(|e| e.kind != AccessKind::Create)
            .count();
        assert!(in_universe * 2 > non_create);
    }
}

//! Reproduces the paper's **future-work applications** (§6): group-based
//! data placement on a linear medium, and mobile file hoarding.
//!
//! Expected shapes: group-based placement beats frequency-only placement
//! (which assumes independent accesses) on seek distance; group-closure
//! hoards match or beat frequency hoards on disconnected-period hit rate.

use fgcache_bench::{emit, standard_trace};
use fgcache_cache::{filter::miss_stream, LruCache};
use fgcache_placement::hoard::{
    evaluate, frequency_hoard, group_hoard, recency_hoard, split_at_fraction,
};
use fgcache_placement::layout::Layout;
use fgcache_placement::seek;
use fgcache_sim::report::{fmt2, pct, Table};
use fgcache_trace::synth::WorkloadProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Placement: learn a layout from the first half of the trace, then
    // replay the second half's MISS STREAM against it — storage layout
    // matters for the requests that reach the disk, not for cache hits,
    // and the server's disk sees a filtered stream (paper §4.3).
    let mut placement = Table::new(
        "extension A: mean seek distance on the disk-request stream (client cache = 300)",
        [
            "workload",
            "hashed",
            "frequency",
            "organ-pipe",
            "grouped(g=5)",
        ],
    );
    for profile in WorkloadProfile::ALL {
        let trace = standard_trace(profile);
        let (history, future_raw) = split_at_fraction(&trace, 0.5);
        let mut client = LruCache::new(300);
        let future = miss_stream(&mut client, &future_raw);
        let row = [
            seek::mean_seek(&Layout::hashed(&history), &future),
            seek::mean_seek(&Layout::by_frequency(&history), &future),
            seek::mean_seek(&Layout::organ_pipe(&history), &future),
            seek::mean_seek(&Layout::grouped(&history, 5), &future),
        ];
        placement.push_row([
            profile.name().to_string(),
            fmt2(row[0]),
            fmt2(row[1]),
            fmt2(row[2]),
            fmt2(row[3]),
        ]);
    }
    emit("extensionA_placement", &placement)?;

    // Hoarding: build hoards from the first 70 %, score on the last 30 %.
    let mut hoarding = Table::new(
        "extension B: disconnected-period hit rate by hoarding strategy (budget = 500 files)",
        ["workload", "frequency", "recency", "group-closure(g=5)"],
    );
    for profile in WorkloadProfile::ALL {
        let trace = standard_trace(profile);
        let (history, future) = split_at_fraction(&trace, 0.7);
        let budget = 500;
        hoarding.push_row([
            profile.name().to_string(),
            pct(evaluate(&frequency_hoard(&history, budget), &future).hit_rate()),
            pct(evaluate(&recency_hoard(&history, budget), &future).hit_rate()),
            pct(evaluate(&group_hoard(&history, budget, 5), &future).hit_rate()),
        ]);
    }
    emit("extensionB_hoarding", &hoarding)?;
    Ok(())
}

//! Subcommand implementations.
//!
//! Each module exposes `run(tokens) -> Result<(), Box<dyn Error>>` and a
//! pure core function that returns its report as a `String`, so the logic
//! is unit-testable without spawning processes.

pub mod bench_cluster;
pub mod bench_net;
pub mod convert;
pub mod entropy;
pub mod gen;
pub mod groups;
pub mod plan;
pub mod serve;
pub mod simulate;
pub mod stats;
pub mod two_level;

use std::error::Error;
use std::fs::File;
use std::path::Path;

use fgcache_trace::stream::{collect_trace, TraceReader};
use fgcache_trace::Trace;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TraceFormat {
    Text,
    Json,
    Binary,
}

/// Resolves the trace format from an explicit `--format` value (`"text"`,
/// `"json"` or `"bin"`), falling back to the path's extension (`.json`,
/// `.bin`, else text).
pub(crate) fn detect_format(
    path: &str,
    format: Option<&str>,
) -> Result<TraceFormat, Box<dyn Error>> {
    Ok(match format {
        Some("json") => TraceFormat::Json,
        Some("text") => TraceFormat::Text,
        Some("bin" | "binary") => TraceFormat::Binary,
        Some(other) => return Err(format!("unknown --format {other:?} (text|json|bin)").into()),
        None => {
            let ext = Path::new(path).extension().and_then(|e| e.to_str());
            match ext {
                Some(e) if e.eq_ignore_ascii_case("json") => TraceFormat::Json,
                Some(e) if e.eq_ignore_ascii_case("bin") => TraceFormat::Binary,
                _ => TraceFormat::Text,
            }
        }
    })
}

/// Opens `path` as a streaming event reader — the O(1)-memory entry point
/// every replay command uses. Binary inputs get the file length so the
/// header's record count is validated against the actual size before any
/// record is read.
pub(crate) fn open_trace_events(
    path: &str,
    format: Option<&str>,
) -> Result<TraceReader<File>, Box<dyn Error>> {
    let fmt = detect_format(path, format)?;
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    Ok(match fmt {
        TraceFormat::Json => TraceReader::json(file),
        TraceFormat::Text => TraceReader::text(file),
        TraceFormat::Binary => {
            let len = file.metadata().map(|m| m.len()).ok();
            match len {
                Some(len) => TraceReader::binary_with_len(file, len),
                None => TraceReader::binary(file),
            }
        }
    })
}

/// Loads a whole trace into memory — for commands whose analyses need
/// random access (e.g. `groups`, `two-level`). Streaming commands use
/// [`open_trace_events`] instead.
pub(crate) fn load_trace(path: &str, format: Option<&str>) -> Result<Trace, Box<dyn Error>> {
    Ok(collect_trace(open_trace_events(path, format)?)?)
}

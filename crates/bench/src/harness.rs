//! Minimal benchmark harness built only on `std::time`.
//!
//! The workspace builds hermetically with zero external crates, so the
//! benches cannot link criterion. This module provides the small subset
//! we need: each benchmark runs once to warm up, then `iterations()`
//! timed runs, and reports the median and minimum wall-clock time plus
//! throughput when an element count is supplied. Medians over a fixed
//! iteration count keep the output stable enough for eyeball
//! comparisons; for rigorous statistics, run a bench binary repeatedly
//! and compare the printed minima.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Default number of timed runs per benchmark.
const DEFAULT_ITERS: u32 = 10;

/// Number of timed runs per benchmark: `FGCACHE_BENCH_ITERS` if set to a
/// positive integer, otherwise [`DEFAULT_ITERS`].
pub fn iterations() -> u32 {
    std::env::var("FGCACHE_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_ITERS)
}

/// Times `f` and prints one aligned result line.
///
/// `elements` is the number of logical items one call of `f` processes
/// (events, files, ...); when given, throughput is printed alongside the
/// raw times.
pub fn run<R>(name: &str, elements: Option<u64>, mut f: impl FnMut() -> R) {
    black_box(f()); // warm-up: page in code and data, populate allocator
    let iters = iterations();
    let mut samples: Vec<Duration> = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let start = Instant::now();
        black_box(f());
        samples.push(start.elapsed());
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let throughput = match elements {
        Some(n) if median > Duration::ZERO => {
            let per_sec = n as f64 / median.as_secs_f64();
            format!("  {:>10}/s", fmt_count(per_sec))
        }
        _ => String::new(),
    };
    println!(
        "{name:<44} median {:>10}  min {:>10}{throughput}",
        fmt_duration(median),
        fmt_duration(min),
    );
}

/// Formats a duration with an adaptive unit (ns / µs / ms / s).
fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Formats a count with an adaptive magnitude suffix (K / M / G).
fn fmt_count(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2} G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2} M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.2} K", x / 1e3)
    } else {
        format!("{x:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_executes_closure() {
        let mut calls = 0u32;
        run("unit_test_bench", Some(1), || calls += 1);
        // One warm-up plus `iterations()` timed runs.
        assert_eq!(calls, 1 + iterations());
    }

    #[test]
    fn duration_formatting_picks_sane_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(fmt_duration(Duration::from_micros(5)), "5.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(5)), "5.00 s");
    }

    #[test]
    fn count_formatting_picks_sane_magnitudes() {
        assert_eq!(fmt_count(12.0), "12");
        assert_eq!(fmt_count(1_500.0), "1.50 K");
        assert_eq!(fmt_count(2_000_000.0), "2.00 M");
        assert_eq!(fmt_count(3e9), "3.00 G");
    }
}

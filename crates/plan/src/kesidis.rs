//! The Kesidis LRU-MRU stationary model (arXiv:1704.04849) — an *exact*
//! small-universe anchor for the approximate large-universe solvers.
//!
//! The generalized LRU-MRU cache is an ordered list of capacity `C`
//! under IRM requests in which every item is typed:
//!
//! * an **LRU-typed** item moves to the protected *front* on a hit and
//!   inserts at the front on a miss (the back item is evicted when
//!   full) — classic move-to-front;
//! * an **MRU-typed** item moves to the *eviction end* (the back) on a
//!   hit and inserts there on a miss — it is always the next eviction
//!   candidate, i.e. a probationary, scan-resistant tenant.
//!
//! The cache state is the ordered tuple of resident items; under IRM
//! the state is a finite ergodic Markov chain, and this module computes
//! its stationary law **numerically by power iteration** over the full
//! tuple space rather than via the paper's product-form algebra. For
//! the pure-LRU special case the classical Hendricks (1972) product
//! form
//!
//! ```text
//!     π(x₁,…,x_C) = Π_k  p_{x_k} / (1 − p_{x₁} − … − p_{x_{k−1}})
//! ```
//!
//! is implemented as an independent cross-check: the two computations
//! agree to ~1e-10 on every tested instance, which pins the transition
//! dynamics themselves. The state space is `N·(N−1)⋯(N−C+1)` tuples, so
//! this model is exact but small — its job in the planner is to anchor
//! the Che approximation (and the simulator) at universes where
//! exactness is affordable, not to size fleets directly.
//!
//! [`LruMruCacheSim`] is the matching trace-driven reference cache; the
//! validation harness in `fgcache-sim` replays multi-million-event Zipf
//! streams through it and asserts agreement with the stationary model.

use fgcache_types::hash::FastMap;
use fgcache_types::ValidationError;

/// Hard cap on the ordered-tuple state count — power iteration is
/// `O(states · N)` per sweep, and the model is meant as a small exact
/// anchor, not a production solver.
const MAX_STATES: u64 = 200_000;

/// Largest capacity the `u64` state packing supports (8 bits per slot).
const MAX_CAPACITY: usize = 8;

/// The exact stationary model of the generalized LRU-MRU list cache.
#[derive(Debug, Clone)]
pub struct LruMruModel {
    probs: Vec<f64>,
    capacity: usize,
    mru: Vec<bool>,
}

/// Packs an ordered tuple of items (front first) into a `u64`, 8 bits
/// per slot, item `i` stored as `i + 1` so 0 means "empty slot".
fn pack(tuple: &[usize]) -> u64 {
    let mut s = 0u64;
    for (k, &item) in tuple.iter().enumerate() {
        s |= ((item as u64) + 1) << (8 * k);
    }
    s
}

impl LruMruModel {
    /// Builds the model for `probs` (all strictly positive, summing to
    /// 1), a cache of `capacity` slots, and per-item `mru` typing
    /// (`mru[i]` ⇒ item `i` is MRU-typed).
    ///
    /// # Errors
    ///
    /// Returns a [`ValidationError`] if the vectors are empty or
    /// mismatched, a probability is non-positive or the sum is off 1, the
    /// capacity is 0 or above [`MAX_CAPACITY`], or the ordered-tuple
    /// state space would exceed the enumeration cap.
    pub fn new(probs: &[f64], capacity: usize, mru: &[bool]) -> Result<Self, ValidationError> {
        if probs.is_empty() {
            return Err(ValidationError::new("probs", "must not be empty"));
        }
        if mru.len() != probs.len() {
            return Err(ValidationError::new(
                "mru",
                "need exactly one MRU flag per item",
            ));
        }
        let mut total = 0.0;
        for &p in probs {
            if !p.is_finite() || p <= 0.0 {
                return Err(ValidationError::new(
                    "probs",
                    "probabilities must be finite and strictly positive \
                     (a never-requested item has no stationary role)",
                ));
            }
            total += p;
        }
        if (total - 1.0).abs() > 1e-6 {
            return Err(ValidationError::new(
                "probs",
                format!("probabilities must sum to 1 (got {total})"),
            ));
        }
        if capacity == 0 || capacity > MAX_CAPACITY {
            return Err(ValidationError::new(
                "capacity",
                format!("must be in 1..={MAX_CAPACITY} (u64 state packing)"),
            ));
        }
        if capacity < probs.len() {
            let mut states = 1u64;
            for k in 0..capacity {
                states = states.saturating_mul((probs.len() - k) as u64);
                if states > MAX_STATES {
                    return Err(ValidationError::new(
                        "capacity",
                        format!(
                            "ordered state space exceeds {MAX_STATES} tuples — \
                             this exact model is a small-universe anchor; use the \
                             Che approximation for fleet-sized inputs"
                        ),
                    ));
                }
            }
        }
        Ok(LruMruModel {
            probs: probs.to_vec(),
            capacity,
            mru: mru.to_vec(),
        })
    }

    /// The pure-LRU special case (every item LRU-typed).
    ///
    /// # Errors
    ///
    /// Propagates [`LruMruModel::new`] validation.
    pub fn pure_lru(probs: &[f64], capacity: usize) -> Result<Self, ValidationError> {
        let mru = vec![false; probs.len()];
        LruMruModel::new(probs, capacity, &mru)
    }

    /// Applies one request for `item` to the ordered state in `tuple`
    /// (front first, always full). Mirrors [`LruMruCacheSim::access`].
    fn step(&self, tuple: &mut Vec<usize>, item: usize) {
        let pos = tuple.iter().position(|&x| x == item);
        match pos {
            Some(i) => {
                // Hit: re-rank according to the item's type.
                tuple.remove(i);
                if self.mru[item] {
                    tuple.push(item);
                } else {
                    tuple.insert(0, item);
                }
            }
            None => {
                // Miss on a full cache: evict the back, insert by type.
                tuple.pop();
                if self.mru[item] {
                    tuple.push(item);
                } else {
                    tuple.insert(0, item);
                }
            }
        }
    }

    /// Enumerates every ordered `capacity`-tuple of distinct items.
    fn enumerate_states(&self) -> Vec<Vec<usize>> {
        let n = self.probs.len();
        let mut out = Vec::new();
        let mut tuple = Vec::with_capacity(self.capacity);
        let mut used = vec![false; n];
        fn rec(
            n: usize,
            depth: usize,
            tuple: &mut Vec<usize>,
            used: &mut [bool],
            out: &mut Vec<Vec<usize>>,
        ) {
            if tuple.len() == depth {
                out.push(tuple.clone());
                return;
            }
            for i in 0..n {
                if !used[i] {
                    used[i] = true;
                    tuple.push(i);
                    rec(n, depth, tuple, used, out);
                    tuple.pop();
                    used[i] = false;
                }
            }
        }
        rec(n, self.capacity, &mut tuple, &mut used, &mut out);
        out
    }

    /// The stationary hit rate, computed by power iteration of the
    /// request chain over the ordered-tuple state space.
    ///
    /// When the whole universe fits (`capacity ≥ items`) the stationary
    /// cache holds everything and the hit rate is exactly 1.
    pub fn stationary_hit_rate(&self) -> f64 {
        let n = self.probs.len();
        if self.capacity >= n {
            return 1.0;
        }
        let states = self.enumerate_states();
        let index: FastMap<u64, u32> = states
            .iter()
            .enumerate()
            .map(|(i, s)| (pack(s), i as u32))
            .collect();
        // Precompute the transition target for every (state, item).
        let mut next = vec![0u32; states.len() * n];
        let mut scratch = Vec::with_capacity(self.capacity);
        for (si, s) in states.iter().enumerate() {
            for item in 0..n {
                scratch.clone_from(s);
                self.step(&mut scratch, item);
                next[si * n + item] = *index
                    .get(&pack(&scratch))
                    .expect("transitions stay inside the full-tuple space");
            }
        }
        // Power-iterate from a single reachable state. Transient mass
        // (states the typed dynamics cannot revisit) drains into the
        // recurrent class; self-loops (a hit on the front item) make the
        // chain aperiodic, so the iteration converges geometrically.
        let mut pi = vec![0.0f64; states.len()];
        pi[0] = 1.0;
        let mut nxt = vec![0.0f64; states.len()];
        for _ in 0..200_000 {
            for v in nxt.iter_mut() {
                *v = 0.0;
            }
            for (si, &mass) in pi.iter().enumerate() {
                if mass == 0.0 {
                    continue;
                }
                for (item, &p) in self.probs.iter().enumerate() {
                    nxt[next[si * n + item] as usize] += mass * p;
                }
            }
            let delta: f64 = pi.iter().zip(&nxt).map(|(a, b)| (a - b).abs()).sum();
            std::mem::swap(&mut pi, &mut nxt);
            if delta < 1e-13 {
                break;
            }
        }
        states
            .iter()
            .zip(&pi)
            .map(|(s, &mass)| mass * s.iter().map(|&i| self.probs[i]).sum::<f64>())
            .sum()
    }

    /// The Hendricks (1972) product-form stationary hit rate — **pure
    /// LRU only**. `π(x₁,…,x_C) = Π p_{x_k}/(1 − Σ_{j<k} p_{x_j})`,
    /// summed over every ordered tuple weighted by its resident mass.
    ///
    /// This is an algebraically independent computation from
    /// [`stationary_hit_rate`]'s power iteration; the two agreeing is
    /// the model's own correctness gate.
    ///
    /// Returns `None` if any item is MRU-typed (the product form does
    /// not apply).
    pub fn product_form_hit_rate(&self) -> Option<f64> {
        if self.mru.iter().any(|&m| m) {
            return None;
        }
        let n = self.probs.len();
        if self.capacity >= n {
            return Some(1.0);
        }
        fn rec(
            probs: &[f64],
            used: &mut [bool],
            depth_left: usize,
            tuple_prob: f64,
            prefix_mass: f64,
            resident_mass: f64,
        ) -> f64 {
            if depth_left == 0 {
                return tuple_prob * resident_mass;
            }
            let mut acc = 0.0;
            for i in 0..probs.len() {
                if used[i] {
                    continue;
                }
                used[i] = true;
                let p = probs[i];
                acc += rec(
                    probs,
                    used,
                    depth_left - 1,
                    tuple_prob * p / (1.0 - prefix_mass),
                    prefix_mass + p,
                    resident_mass + p,
                );
                used[i] = false;
            }
            acc
        }
        let mut used = vec![false; n];
        Some(rec(&self.probs, &mut used, self.capacity, 1.0, 0.0, 0.0))
    }
}

/// The trace-driven reference implementation of the generalized LRU-MRU
/// cache — the simulator twin of [`LruMruModel`], with byte-for-byte
/// identical dynamics ([`LruMruModel::step`] is the spec for both).
///
/// Items are dense ranks `0..universe`. The ordered list keeps the
/// front at index 0; eviction removes the back. Below capacity, misses
/// insert without evicting (the transient the stationary model skips —
/// it washes out of the measured hit rate over a long replay).
#[derive(Debug, Clone)]
pub struct LruMruCacheSim {
    capacity: usize,
    mru: Vec<bool>,
    list: Vec<usize>,
    hits: u64,
    accesses: u64,
}

impl LruMruCacheSim {
    /// Creates an empty cache over `universe` ranks with per-rank MRU
    /// typing.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidationError`] for a zero capacity or universe, or
    /// a flag vector of the wrong length.
    pub fn new(universe: usize, capacity: usize, mru: &[bool]) -> Result<Self, ValidationError> {
        if universe == 0 {
            return Err(ValidationError::new(
                "universe",
                "must be greater than zero",
            ));
        }
        if capacity == 0 {
            return Err(ValidationError::new(
                "capacity",
                "must be greater than zero",
            ));
        }
        if mru.len() != universe {
            return Err(ValidationError::new(
                "mru",
                "need exactly one MRU flag per rank",
            ));
        }
        Ok(LruMruCacheSim {
            capacity,
            mru: mru.to_vec(),
            list: Vec::with_capacity(capacity),
            hits: 0,
            accesses: 0,
        })
    }

    /// A pure-LRU reference cache (every rank LRU-typed).
    ///
    /// # Errors
    ///
    /// Propagates [`LruMruCacheSim::new`] validation.
    pub fn pure_lru(universe: usize, capacity: usize) -> Result<Self, ValidationError> {
        let mru = vec![false; universe];
        LruMruCacheSim::new(universe, capacity, &mru)
    }

    /// Processes one request; returns `true` on a hit.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is outside the universe the cache was built for.
    pub fn access(&mut self, rank: usize) -> bool {
        assert!(rank < self.mru.len(), "rank {rank} outside universe");
        self.accesses += 1;
        let pos = self.list.iter().position(|&x| x == rank);
        let hit = pos.is_some();
        match pos {
            Some(i) => {
                self.list.remove(i);
                self.hits += 1;
            }
            None if self.list.len() == self.capacity => {
                self.list.pop();
            }
            None => {}
        }
        if self.mru[rank] {
            self.list.push(rank);
        } else {
            self.list.insert(0, rank);
        }
        hit
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Requests so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Hit rate so far (0 before any request).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Resident ranks, front (most protected) first.
    pub fn residents(&self) -> &[usize] {
        &self.list
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::popularity::zipf_popularities;
    use fgcache_types::rng::{RandomSource, SeededRng};

    /// Inverse-CDF sampling over an explicit popularity vector.
    fn sample(probs: &[f64], rng: &mut SeededRng) -> usize {
        let u = rng.next_f64();
        let mut acc = 0.0;
        for (i, &p) in probs.iter().enumerate() {
            acc += p;
            if u < acc {
                return i;
            }
        }
        probs.len() - 1
    }

    #[test]
    fn validation_rejects_bad_inputs() {
        assert!(LruMruModel::new(&[], 2, &[]).is_err());
        assert!(LruMruModel::new(&[0.5, 0.5], 2, &[false]).is_err());
        assert!(LruMruModel::new(&[0.5, 0.0, 0.5], 2, &[false; 3]).is_err());
        assert!(LruMruModel::new(&[0.6, 0.6], 2, &[false; 2]).is_err());
        assert!(LruMruModel::new(&[0.5, 0.5], 0, &[false; 2]).is_err());
        assert!(LruMruModel::new(&[0.5, 0.5], 9, &[false; 2]).is_err());
        // State-space cap: 40·39·38·37·36·35·34·33 ≫ the enumeration cap.
        let p = zipf_popularities(40, 0.7).unwrap();
        assert!(LruMruModel::new(&p, 8, &[false; 40]).is_err());
        assert!(LruMruCacheSim::new(0, 2, &[]).is_err());
        assert!(LruMruCacheSim::new(2, 0, &[false; 2]).is_err());
        assert!(LruMruCacheSim::new(2, 2, &[false; 3]).is_err());
    }

    #[test]
    fn whole_universe_fits() {
        let p = zipf_popularities(3, 1.0).unwrap();
        let m = LruMruModel::new(&p, 3, &[false, true, false]).unwrap();
        assert_eq!(m.stationary_hit_rate(), 1.0);
        assert_eq!(
            LruMruModel::pure_lru(&p, 3)
                .unwrap()
                .product_form_hit_rate(),
            Some(1.0)
        );
    }

    #[test]
    fn power_iteration_matches_product_form_for_pure_lru() {
        // The model's own correctness gate: two algebraically independent
        // computations of the same stationary law.
        for &(n, c, alpha) in &[(5usize, 2usize, 0.8f64), (6, 3, 1.2), (7, 3, 0.0)] {
            let p = zipf_popularities(n, alpha).unwrap();
            let m = LruMruModel::pure_lru(&p, c).unwrap();
            let power = m.stationary_hit_rate();
            let product = m.product_form_hit_rate().expect("pure LRU");
            assert!(
                (power - product).abs() < 1e-9,
                "N={n} C={c} α={alpha}: power {power} vs product {product}"
            );
        }
    }

    #[test]
    fn mru_typing_changes_the_stationary_law() {
        let p = zipf_popularities(6, 0.9).unwrap();
        let lru = LruMruModel::pure_lru(&p, 3).unwrap().stationary_hit_rate();
        // Typing the most popular item MRU leaves it permanently on the
        // eviction seat: the hit rate must drop.
        let mut mru = vec![false; 6];
        mru[0] = true;
        let mixed = LruMruModel::new(&p, 3, &mru).unwrap().stationary_hit_rate();
        assert!(
            mixed < lru - 0.01,
            "MRU-typing the hottest item should hurt: {mixed} vs {lru}"
        );
        assert!(m_in_unit(mixed) && m_in_unit(lru));
    }

    fn m_in_unit(x: f64) -> bool {
        (0.0..=1.0).contains(&x)
    }

    #[test]
    fn simulator_converges_to_the_stationary_model() {
        // 400k seeded IRM requests: simulated hit rate within 5e-3 of the
        // exact stationary law, for pure LRU and for a mixed typing.
        let p = zipf_popularities(8, 1.0).unwrap();
        let mut typings = vec![vec![false; 8]];
        let mut mixed = vec![false; 8];
        mixed[1] = true;
        mixed[4] = true;
        typings.push(mixed);
        for mru in typings {
            let model = LruMruModel::new(&p, 4, &mru).unwrap();
            let expect = model.stationary_hit_rate();
            let mut sim = LruMruCacheSim::new(8, 4, &mru).unwrap();
            let mut rng = SeededRng::new(20020702);
            for _ in 0..400_000 {
                sim.access(sample(&p, &mut rng));
            }
            let got = sim.hit_rate();
            assert!(
                (got - expect).abs() < 5e-3,
                "mru={mru:?}: simulated {got} vs stationary {expect}"
            );
        }
    }

    #[test]
    fn mru_items_sit_on_the_eviction_seat() {
        let mru = vec![false, false, true];
        let mut sim = LruMruCacheSim::new(3, 2, &mru).unwrap();
        sim.access(2); // MRU rank fills from the back
        sim.access(0);
        assert_eq!(sim.residents(), &[0, 2]);
        sim.access(2); // hit: stays at the back
        assert_eq!(sim.residents(), &[0, 2]);
        sim.access(1); // miss: evicts the MRU tenant
        assert_eq!(sim.residents(), &[1, 0]);
    }

    #[test]
    fn che_approximation_is_anchored_by_the_exact_model() {
        // The point of the exact model: at small universes it certifies
        // the Che approximation the planner actually uses at scale.
        let p = zipf_popularities(10, 0.8).unwrap();
        let exact = LruMruModel::pure_lru(&p, 4).unwrap().stationary_hit_rate();
        let che = crate::che::solve(&p, 4.0).unwrap().hit_rate;
        assert!(
            (exact - che).abs() < 0.02,
            "exact {exact} vs Che {che} — approximation outside its pinned band"
        );
    }
}

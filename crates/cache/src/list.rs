//! Internal slab-backed LRU list shared by the multi-list policies
//! (2Q, MQ, ARC). Front = most recent, back = eviction end.

use fgcache_types::hash::FastMap;

use fgcache_types::{FileId, InvariantViolation};

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node {
    file: FileId,
    prev: usize,
    next: usize,
}

/// An ordered set of files with O(1) push/pop at both ends and O(1)
/// removal by id. Not a cache by itself — no capacity, no stats.
#[derive(Debug, Clone, Default)]
pub(crate) struct LruList {
    map: FastMap<FileId, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

impl LruList {
    pub(crate) fn new() -> Self {
        LruList {
            map: FastMap::default(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub(crate) fn contains(&self, file: FileId) -> bool {
        self.map.contains_key(&file)
    }

    /// Front (most-recent) element.
    #[allow(dead_code)]
    pub(crate) fn front(&self) -> Option<FileId> {
        (self.head != NIL).then(|| self.nodes[self.head].file)
    }

    /// Back (eviction-end) element.
    pub(crate) fn back(&self) -> Option<FileId> {
        (self.tail != NIL).then(|| self.nodes[self.tail].file)
    }

    fn alloc(&mut self, file: FileId) -> usize {
        let node = Node {
            file,
            prev: NIL,
            next: NIL,
        };
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = node;
            idx
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn attach_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn attach_back(&mut self, idx: usize) {
        self.nodes[idx].next = NIL;
        self.nodes[idx].prev = self.tail;
        if self.tail != NIL {
            self.nodes[self.tail].next = idx;
        }
        self.tail = idx;
        if self.head == NIL {
            self.head = idx;
        }
    }

    /// Inserts at the front. Returns `false` (and leaves the list
    /// unchanged) if already present.
    pub(crate) fn push_front(&mut self, file: FileId) -> bool {
        if self.map.contains_key(&file) {
            return false;
        }
        let idx = self.alloc(file);
        self.attach_front(idx);
        self.map.insert(file, idx);
        true
    }

    /// Inserts at the back. Returns `false` if already present.
    pub(crate) fn push_back(&mut self, file: FileId) -> bool {
        if self.map.contains_key(&file) {
            return false;
        }
        let idx = self.alloc(file);
        self.attach_back(idx);
        self.map.insert(file, idx);
        true
    }

    /// Removes and returns the back element.
    pub(crate) fn pop_back(&mut self) -> Option<FileId> {
        let file = self.back()?;
        self.remove(file);
        Some(file)
    }

    /// Removes `file` if present; returns whether it was present.
    pub(crate) fn remove(&mut self, file: FileId) -> bool {
        match self.map.remove(&file) {
            Some(idx) => {
                self.detach(idx);
                self.free.push(idx);
                true
            }
            None => false,
        }
    }

    /// Moves `file` to the front; returns whether it was present.
    pub(crate) fn touch(&mut self, file: FileId) -> bool {
        match self.map.get(&file).copied() {
            Some(idx) => {
                self.detach(idx);
                self.attach_front(idx);
                true
            }
            None => false,
        }
    }

    pub(crate) fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Audits the list's redundant state: the doubly-linked chain must be
    /// a single consistent walk over exactly the mapped nodes, and the
    /// free list must account for every unmapped slab slot.
    ///
    /// `where_` names the owning structure and list (e.g. `"ArcCache.t1"`)
    /// in the violation report.
    pub(crate) fn audit(&self, where_: &str) -> Result<(), InvariantViolation> {
        let err = |detail: String| Err(InvariantViolation::new(where_, detail));
        if self.map.len() + self.free.len() != self.nodes.len() {
            return err(format!(
                "slab accounting: {} mapped + {} free != {} slots",
                self.map.len(),
                self.free.len(),
                self.nodes.len()
            ));
        }
        // Walk head→tail checking link symmetry and uniqueness.
        let mut seen = 0usize;
        let mut prev = NIL;
        let mut cursor = self.head;
        while cursor != NIL {
            if cursor >= self.nodes.len() {
                return err(format!("link points to out-of-slab index {cursor}"));
            }
            let node = &self.nodes[cursor];
            if node.prev != prev {
                return err(format!(
                    "broken back-link at slot {cursor} ({} != expected {})",
                    node.prev, prev
                ));
            }
            match self.map.get(&node.file) {
                Some(&idx) if idx == cursor => {}
                Some(&idx) => {
                    return err(format!(
                        "map points {} at slot {idx}, chain has it at {cursor}",
                        node.file
                    ))
                }
                None => return err(format!("chained file {} missing from map", node.file)),
            }
            seen += 1;
            if seen > self.map.len() {
                return err("chain longer than map (cycle or stray node)".to_string());
            }
            prev = cursor;
            cursor = node.next;
        }
        if seen != self.map.len() {
            return err(format!(
                "chain has {seen} nodes, map has {}",
                self.map.len()
            ));
        }
        if prev != self.tail {
            return err(format!("tail is {}, walk ended at {prev}", self.tail));
        }
        // Free slots must not be mapped.
        for &idx in &self.free {
            if idx >= self.nodes.len() {
                return err(format!("free list holds out-of-slab index {idx}"));
            }
            if self.map.get(&self.nodes[idx].file) == Some(&idx) {
                return err(format!("slot {idx} is both free and mapped"));
            }
        }
        Ok(())
    }

    /// Iterates front (most recent) to back.
    #[allow(dead_code)]
    pub(crate) fn iter(&self) -> impl Iterator<Item = FileId> + '_ {
        let mut cursor = self.head;
        std::iter::from_fn(move || {
            if cursor == NIL {
                return None;
            }
            let node = &self.nodes[cursor];
            cursor = node.next;
            Some(node.file)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_order() {
        let mut l = LruList::new();
        assert!(l.push_front(FileId(1)));
        assert!(l.push_front(FileId(2)));
        assert!(l.push_back(FileId(3)));
        assert_eq!(
            l.iter().collect::<Vec<_>>(),
            vec![FileId(2), FileId(1), FileId(3)]
        );
        assert_eq!(l.pop_back(), Some(FileId(3)));
        assert_eq!(l.pop_back(), Some(FileId(1)));
        assert_eq!(l.pop_back(), Some(FileId(2)));
        assert_eq!(l.pop_back(), None);
        assert!(l.is_empty());
    }

    #[test]
    fn duplicate_push_rejected() {
        let mut l = LruList::new();
        assert!(l.push_front(FileId(1)));
        assert!(!l.push_front(FileId(1)));
        assert!(!l.push_back(FileId(1)));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn remove_middle() {
        let mut l = LruList::new();
        for i in 1..=3 {
            l.push_back(FileId(i));
        }
        assert!(l.remove(FileId(2)));
        assert!(!l.remove(FileId(2)));
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![FileId(1), FileId(3)]);
    }

    #[test]
    fn touch_moves_to_front() {
        let mut l = LruList::new();
        for i in 1..=3 {
            l.push_back(FileId(i));
        }
        assert!(l.touch(FileId(3)));
        assert_eq!(l.front(), Some(FileId(3)));
        assert_eq!(l.back(), Some(FileId(2)));
        assert!(!l.touch(FileId(99)));
    }

    #[test]
    fn slab_reuse() {
        let mut l = LruList::new();
        for i in 0..100u64 {
            l.push_front(FileId(i));
            if i >= 2 {
                l.pop_back();
            }
        }
        assert!(l.nodes.len() <= 4, "slab grew to {}", l.nodes.len());
    }

    #[test]
    fn clear_resets() {
        let mut l = LruList::new();
        l.push_front(FileId(1));
        l.clear();
        assert!(l.is_empty());
        assert_eq!(l.front(), None);
        assert_eq!(l.back(), None);
    }
}

//! Per-group single-flight: concurrent misses for the same group
//! collapse into one upstream fetch.
//!
//! When several requests for the same non-owned group race through a
//! node, only the first (the *leader*) actually fetches from the owner;
//! the rest (*waiters*) block on a condvar and receive a clone of the
//! leader's reply. This is the other half of the paper's aggregation
//! story at cluster scale: the cache aggregates files into groups, and
//! single-flight aggregates concurrent fetchers of a group into one wire
//! round trip. (Retries of the *same* request id are already collapsed by
//! the owner's idempotent reply cache; single-flight collapses *distinct*
//! requests for the same group.)
//!
//! Flights are keyed by a 64-bit fold of (owner, files). A hash collision
//! would make a waiter receive the wrong group's reply, so the flight
//! stores its file list and a joiner whose files differ executes its own
//! fetch instead of waiting — correctness never depends on the hash.

use std::sync::{Arc, Condvar, Mutex};

use fgcache_net::GroupReply;
use fgcache_types::hash::{mix64, FastMap};
use fgcache_types::{FileId, TransportError};

use crate::ring::NodeId;

/// The flight key: a mix64 fold over the owner and the group's files, so
/// the same group proxied to the same owner lands in the same flight.
pub fn flight_key(owner: NodeId, files: &[FileId]) -> u64 {
    let mut key = mix64(owner.0);
    for &file in files {
        key = mix64(key ^ file.as_u64());
    }
    key
}

/// One in-progress upstream fetch and the result slot its waiters watch.
struct Flight {
    /// The group being fetched, to detect flight-key collisions.
    files: Vec<FileId>,
    /// `None` while the leader is fetching; the result once done.
    result: Mutex<Option<Result<GroupReply, TransportError>>>,
    done: Condvar,
}

/// The map guard's view: live flights plus a waiter gauge for tests.
struct Flights {
    by_key: FastMap<u64, Arc<Flight>>,
    waiting: usize,
}

/// A single-flight group for upstream fetches. See the [module
/// docs](self).
pub struct SingleFlight {
    flights: Mutex<Flights>,
}

impl std::fmt::Debug for SingleFlight {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let guard = self.lock();
        f.debug_struct("SingleFlight")
            .field("in_flight", &guard.by_key.len())
            .field("waiting", &guard.waiting)
            .finish()
    }
}

impl Default for SingleFlight {
    fn default() -> Self {
        Self::new()
    }
}

/// What `join` decided for a caller.
enum Role {
    /// First in: execute the fetch and publish the result.
    Leader(Arc<Flight>),
    /// A flight for this key+files exists: wait for its result.
    Waiter(Arc<Flight>),
    /// Key collision with a different group: execute independently.
    Collision,
}

impl SingleFlight {
    /// An empty single-flight group.
    pub fn new() -> Self {
        SingleFlight {
            flights: Mutex::new(Flights {
                by_key: FastMap::default(),
                waiting: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Flights> {
        self.flights
            .lock()
            .expect("a single-flight participant panicked while holding the flight map")
    }

    /// Number of callers currently blocked waiting on another caller's
    /// flight (a test hook: lets a harness park threads deterministically
    /// before releasing the leader).
    pub fn waiting(&self) -> usize {
        self.lock().waiting
    }

    /// Runs `fetch` once per concurrent group: the leader executes it,
    /// concurrent callers with the same `key` and `files` receive a clone
    /// of the leader's result. Returns `(result, collapsed)`; `collapsed`
    /// is true iff this caller was served from another caller's flight.
    pub fn run(
        &self,
        key: u64,
        files: &[FileId],
        fetch: impl FnOnce() -> Result<GroupReply, TransportError>,
    ) -> (Result<GroupReply, TransportError>, bool) {
        let role = {
            let mut guard = self.lock();
            match guard.by_key.get(&key).map(Arc::clone) {
                Some(flight) if flight.files == files => {
                    guard.waiting += 1;
                    Role::Waiter(flight)
                }
                Some(_) => Role::Collision,
                None => {
                    let flight = Arc::new(Flight {
                        files: files.to_vec(),
                        result: Mutex::new(None),
                        done: Condvar::new(),
                    });
                    guard.by_key.insert(key, Arc::clone(&flight));
                    Role::Leader(flight)
                }
            }
        };
        match role {
            Role::Leader(flight) => {
                let result = fetch();
                {
                    let mut slot = flight
                        .result
                        .lock()
                        .expect("a flight waiter panicked while holding the result slot");
                    *slot = Some(clone_result(&result));
                }
                flight.done.notify_all();
                // Retire the flight: later callers start a fresh fetch
                // (the group may have been evicted again by then).
                self.lock().by_key.remove(&key);
                (result, false)
            }
            Role::Waiter(flight) => {
                let mut slot = flight
                    .result
                    .lock()
                    .expect("a flight leader panicked while holding the result slot");
                while slot.is_none() {
                    slot = flight
                        .done
                        .wait(slot)
                        .expect("a flight leader panicked while holding the result slot");
                }
                let result = clone_result(slot.as_ref().expect("loop exits only when filled"));
                drop(slot);
                self.lock().waiting -= 1;
                (result, true)
            }
            Role::Collision => (fetch(), false),
        }
    }
}

fn clone_result(result: &Result<GroupReply, TransportError>) -> Result<GroupReply, TransportError> {
    match result {
        Ok(reply) => Ok(reply.clone()),
        Err(err) => Err(err.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn files(ids: &[u64]) -> Vec<FileId> {
        ids.iter().map(|&i| FileId(i)).collect()
    }

    fn reply(id: u64) -> GroupReply {
        GroupReply {
            request_id: id,
            files: Vec::new(),
        }
    }

    #[test]
    fn sole_caller_leads_and_flight_retires() {
        let sf = SingleFlight::new();
        let fs = files(&[1, 2]);
        let key = flight_key(NodeId(1), &fs);
        let (result, collapsed) = sf.run(key, &fs, || Ok(reply(7)));
        assert_eq!(result.expect("leader result").request_id, 7);
        assert!(!collapsed);
        // The flight is gone: a second run executes again.
        let (result, collapsed) = sf.run(key, &fs, || Ok(reply(8)));
        assert_eq!(result.expect("fresh flight").request_id, 8);
        assert!(!collapsed);
    }

    #[test]
    fn concurrent_callers_collapse_into_one_fetch() {
        let sf = Arc::new(SingleFlight::new());
        let executed = Arc::new(AtomicUsize::new(0));
        let fs = files(&[1, 2, 3]);
        let key = flight_key(NodeId(9), &fs);
        // Gate the leader so every other thread reliably joins as a
        // waiter before the fetch completes.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let sf = Arc::clone(&sf);
            let executed = Arc::clone(&executed);
            let gate = Arc::clone(&gate);
            let fs = fs.clone();
            handles.push(std::thread::spawn(move || {
                sf.run(key, &fs, move || {
                    let (open, cv) = &*gate;
                    let mut open = open.lock().expect("gate");
                    while !*open {
                        open = cv.wait(open).expect("gate");
                    }
                    executed.fetch_add(1, Ordering::AcqRel);
                    Ok(reply(1))
                })
            }));
        }
        // Park until all 7 non-leaders are waiting, then open the gate.
        while sf.waiting() < 7 {
            std::thread::yield_now();
        }
        {
            let (open, cv) = &*gate;
            *open.lock().expect("gate") = true;
            cv.notify_all();
        }
        let results: Vec<(Result<GroupReply, TransportError>, bool)> = handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect();
        assert_eq!(executed.load(Ordering::Acquire), 1, "one upstream fetch");
        assert_eq!(results.iter().filter(|(_, c)| *c).count(), 7);
        for (r, _) in &results {
            assert_eq!(r.as_ref().expect("all succeed").request_id, 1);
        }
    }

    #[test]
    fn key_collision_with_different_files_executes_independently() {
        let sf = SingleFlight::new();
        let a = files(&[1]);
        let b = files(&[2]);
        let key = 42; // force both groups onto the same key
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let sf = Arc::new(sf);
        let leader = {
            let sf = Arc::clone(&sf);
            let a = a.clone();
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                sf.run(key, &a, move || {
                    let (open, cv) = &*gate;
                    let mut open = open.lock().expect("gate");
                    while !*open {
                        open = cv.wait(open).expect("gate");
                    }
                    Ok(reply(1))
                })
            })
        };
        // Wait for the leader's flight to appear, then run group `b`
        // against the colliding key: it must execute its own fetch, not
        // block on group `a`'s flight.
        while sf.lock().by_key.is_empty() {
            std::thread::yield_now();
        }
        let (result, collapsed) = sf.run(key, &b, || Ok(reply(2)));
        assert_eq!(result.expect("own fetch").request_id, 2);
        assert!(!collapsed);
        {
            let (open, cv) = &*gate;
            *open.lock().expect("gate") = true;
            cv.notify_all();
        }
        let (result, collapsed) = leader.join().expect("join");
        assert_eq!(result.expect("leader").request_id, 1);
        assert!(!collapsed);
    }

    #[test]
    fn flight_keys_differ_by_owner_and_files() {
        let fs = files(&[1, 2, 3]);
        assert_ne!(flight_key(NodeId(1), &fs), flight_key(NodeId(2), &fs));
        assert_ne!(
            flight_key(NodeId(1), &files(&[1, 2])),
            flight_key(NodeId(1), &files(&[2, 1])),
            "file order is part of the group identity"
        );
    }
}

//! Planner-vs-simulator validation — the empirical gate behind
//! `fgcache plan`.
//!
//! An analytic model that is never measured against the simulator it
//! claims to replace is a liability, so every model in `fgcache-plan`
//! gets a replay-based check here:
//!
//! * [`validate_lru_sweep`] replays seeded [`zipf_stream`] traces
//!   through a real [`LruCache`] across an (α, capacity) grid and
//!   compares the measured hit rate with the Che characteristic-time
//!   prediction. CI runs this at 10M+ events per point (release binary,
//!   `fgcache plan --validate`) with a pinned 2-percentage-point
//!   tolerance; the unit tests run a smaller grid.
//! * [`validate_lru_mru`] replays an IRM trace through the
//!   [`LruMruCacheSim`] reference cache and compares against the exact
//!   stationary law computed by power iteration.
//! * [`compare_grouping`] replays the *same* seeded [`zipf_run_stream`]
//!   trace through a plain LRU and through the aggregating cache, and
//!   sets the Che prediction on the trace's **empirical marginal**
//!   beside both. Under IRM the Che number is (approximately) what any
//!   single-file LRU can achieve — so `grouped − analytic` measures the
//!   value of group-based management that no independent-reference
//!   model can see. This is the `--compare-grouping` mode of the CLI.
//!
//! Everything is deterministic: same seed, same grid, same numbers,
//! every run, every platform.

use fgcache_cache::{Cache, LruCache};
use fgcache_core::AggregatingCacheBuilder;
use fgcache_plan::che;
use fgcache_plan::kesidis::{LruMruCacheSim, LruMruModel};
use fgcache_plan::zipf_popularities;
use fgcache_types::rng::{RandomSource, SeededRng};
use fgcache_types::ValidationError;

use crate::cluster::{zipf_run_stream, zipf_stream};
use crate::parallel::parallel_map;

/// The pinned CI tolerance: analytic and simulated hit rates must agree
/// within two percentage points at every grid point.
pub const PLAN_TOLERANCE: f64 = 0.02;

/// One (α, universe, capacity) point of the LRU validation grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LruValidationCase {
    /// Zipf skew of the replayed trace.
    pub alpha: f64,
    /// Distinct files in the trace.
    pub universe: usize,
    /// LRU capacity, in files.
    pub capacity: usize,
}

/// The measured outcome of one validation case.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LruValidationPoint {
    /// The case that was replayed.
    pub case: LruValidationCase,
    /// Events replayed through the cache.
    pub events: u64,
    /// Che characteristic-time prediction of the hit rate.
    pub analytic_hit_rate: f64,
    /// Hit rate the streamed LRU replay measured.
    pub simulated_hit_rate: f64,
    /// `|analytic − simulated|`.
    pub delta: f64,
}

/// The default validation grid: skews from uniform-ish to hot-headed,
/// capacities from 1% to 16% of the universe — the regimes the planner
/// is actually asked about.
pub fn default_validation_cases() -> Vec<LruValidationCase> {
    let mut cases = Vec::new();
    for &alpha in &[0.6, 0.8, 1.0, 1.2] {
        for &capacity in &[500usize, 2_000, 8_000] {
            cases.push(LruValidationCase {
                alpha,
                universe: 50_000,
                capacity,
            });
        }
    }
    cases
}

/// Replays one case and measures the analytic-vs-simulated gap.
///
/// # Errors
///
/// Propagates trace-generation and solver validation ([`zipf_stream`],
/// [`zipf_popularities`], [`che::solve`]); rejects `events == 0`.
pub fn validate_lru(
    case: LruValidationCase,
    events: u64,
    seed: u64,
) -> Result<LruValidationPoint, ValidationError> {
    if events == 0 {
        return Err(ValidationError::new("events", "must be greater than zero"));
    }
    if case.capacity == 0 {
        return Err(ValidationError::new(
            "capacity",
            "must be greater than zero",
        ));
    }
    let probs = zipf_popularities(case.universe, case.alpha)?;
    let analytic = che::solve(&probs, case.capacity as f64)?.hit_rate;
    let mut cache = LruCache::new(case.capacity);
    for file in zipf_stream(case.universe, case.alpha, seed, events)? {
        cache.access(file);
    }
    let simulated = cache.stats().hit_rate();
    Ok(LruValidationPoint {
        case,
        events,
        analytic_hit_rate: analytic,
        simulated_hit_rate: simulated,
        delta: (analytic - simulated).abs(),
    })
}

/// Runs [`validate_lru`] over a grid in parallel (deterministic output
/// order; each case gets a distinct seed derived from `seed`).
///
/// # Errors
///
/// Propagates the first failing case's validation error.
pub fn validate_lru_sweep(
    cases: &[LruValidationCase],
    events: u64,
    seed: u64,
) -> Result<Vec<LruValidationPoint>, ValidationError> {
    let indexed: Vec<(usize, LruValidationCase)> = cases.iter().copied().enumerate().collect();
    parallel_map(&indexed, |&(i, case)| {
        validate_lru(case, events, seed.wrapping_add(i as u64))
    })
    .into_iter()
    .collect()
}

/// Replays an IRM trace through the [`LruMruCacheSim`] reference cache
/// and compares against the exact stationary hit rate of the matching
/// [`LruMruModel`]. Items at ranks listed in `mru_ranks` are MRU-typed.
///
/// Returns `(stationary, simulated)`.
///
/// # Errors
///
/// Propagates model/simulator validation; rejects `events == 0` and
/// out-of-universe MRU ranks.
pub fn validate_lru_mru(
    universe: usize,
    alpha: f64,
    capacity: usize,
    mru_ranks: &[usize],
    events: u64,
    seed: u64,
) -> Result<(f64, f64), ValidationError> {
    if events == 0 {
        return Err(ValidationError::new("events", "must be greater than zero"));
    }
    let mut mru = vec![false; universe];
    for &r in mru_ranks {
        if r >= universe {
            return Err(ValidationError::new(
                "mru_ranks",
                format!("rank {r} outside universe {universe}"),
            ));
        }
        mru[r] = true;
    }
    let probs = zipf_popularities(universe, alpha)?;
    let model = LruMruModel::new(&probs, capacity, &mru)?;
    let stationary = model.stationary_hit_rate();
    let mut sim = LruMruCacheSim::new(universe, capacity, &mru)?;
    let mut rng = SeededRng::new(seed);
    // Inverse-CDF draws over the same popularity vector the model uses.
    let mut cdf = probs.clone();
    for i in 1..cdf.len() {
        cdf[i] += cdf[i - 1];
    }
    for _ in 0..events {
        let u = rng.next_f64();
        let rank = cdf.partition_point(|&c| c <= u).min(universe - 1);
        sim.access(rank);
    }
    Ok((stationary, sim.hit_rate()))
}

/// One capacity row of the grouping comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupingComparePoint {
    /// Cache capacity, in files (same for all three columns).
    pub capacity: usize,
    /// Che LRU prediction on the trace's empirical per-file marginal —
    /// the IRM bound a single-file LRU planner would provision for.
    pub analytic_lru_hit_rate: f64,
    /// Hit rate a real LRU measured on the trace.
    pub simulated_lru_hit_rate: f64,
    /// Hit rate the aggregating cache (group fetching on) measured on
    /// the same trace.
    pub grouped_hit_rate: f64,
    /// `grouped − analytic`: positive where group-based management
    /// beats anything the IRM analytic bound can justify.
    pub grouping_gain: f64,
}

/// Parameters of a [`compare_grouping`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupingCompareConfig {
    /// Zipf skew of the run heads.
    pub alpha: f64,
    /// Distinct files.
    pub universe: usize,
    /// Sequential run length per Zipf draw (successor structure the IRM
    /// model cannot see).
    pub run_length: usize,
    /// Aggregating-cache group size.
    pub group_size: usize,
    /// Cache capacities to compare at.
    pub capacities: Vec<usize>,
    /// Events per replay.
    pub events: u64,
    /// Trace seed.
    pub seed: u64,
}

impl GroupingCompareConfig {
    /// The defaults the CLI's `--compare-grouping` mode uses: a
    /// moderately skewed, strongly sequential workload at three
    /// capacities spanning 1–8% of the universe.
    pub fn standard() -> Self {
        GroupingCompareConfig {
            alpha: 0.9,
            universe: 20_000,
            run_length: 4,
            group_size: 5,
            capacities: vec![200, 800, 1_600],
            events: 400_000,
            seed: 20020702,
        }
    }
}

/// Replays the same seeded [`zipf_run_stream`] trace through a plain
/// LRU and through the aggregating cache at each capacity, with the Che
/// prediction on the trace's measured empirical marginal beside them.
///
/// Two passes over the (regenerable) stream: one to count the empirical
/// per-file frequencies the analytic bound needs, one replaying every
/// cache. O(universe + Σ capacities) memory regardless of trace length.
///
/// # Errors
///
/// Propagates stream/solver/builder validation; rejects an empty
/// capacity list and `events == 0`.
pub fn compare_grouping(
    config: &GroupingCompareConfig,
) -> Result<Vec<GroupingComparePoint>, ValidationError> {
    if config.capacities.is_empty() {
        return Err(ValidationError::new("capacities", "must not be empty"));
    }
    if config.events == 0 {
        return Err(ValidationError::new("events", "must be greater than zero"));
    }
    let stream = || {
        zipf_run_stream(
            config.universe,
            config.alpha,
            config.run_length,
            config.seed,
            config.events,
        )
    };

    // Pass 1: the empirical marginal the IRM bound is entitled to know.
    let mut counts = vec![0u64; config.universe];
    for file in stream()? {
        let rank = usize::try_from(file.as_u64()).expect("rank below the usize universe");
        counts[rank] += 1;
    }
    let total = config.events as f64;
    let marginal: Vec<f64> = counts.iter().map(|&c| c as f64 / total).collect();

    // Pass 2: replay every cache side by side on the identical trace.
    let mut lrus = Vec::new();
    let mut aggs = Vec::new();
    for &capacity in &config.capacities {
        if capacity == 0 {
            return Err(ValidationError::new(
                "capacities",
                "must be greater than zero",
            ));
        }
        lrus.push(LruCache::new(capacity));
        aggs.push(
            AggregatingCacheBuilder::new(capacity)
                .group_size(config.group_size)
                .build()?,
        );
    }
    for file in stream()? {
        for lru in lrus.iter_mut() {
            lru.access(file);
        }
        for agg in aggs.iter_mut() {
            agg.handle_access(file);
        }
    }

    config
        .capacities
        .iter()
        .zip(lrus.iter().zip(&aggs))
        .map(|(&capacity, (lru, agg))| {
            let analytic = che::solve(&marginal, capacity as f64)?.hit_rate;
            let simulated = lru.stats().hit_rate();
            let grouped = agg.hit_rate();
            Ok(GroupingComparePoint {
                capacity,
                analytic_lru_hit_rate: analytic,
                simulated_lru_hit_rate: simulated,
                grouped_hit_rate: grouped,
                grouping_gain: grouped - analytic,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_inputs() {
        let case = LruValidationCase {
            alpha: 0.8,
            universe: 1_000,
            capacity: 100,
        };
        assert!(validate_lru(case, 0, 1).is_err());
        assert!(validate_lru_mru(6, 0.8, 3, &[9], 1_000, 1).is_err());
        assert!(validate_lru_mru(6, 0.8, 3, &[], 0, 1).is_err());
        let mut cfg = GroupingCompareConfig::standard();
        cfg.capacities.clear();
        assert!(compare_grouping(&cfg).is_err());
    }

    #[test]
    fn che_tracks_the_streamed_lru_simulator() {
        // The debug-profile miniature of the CI gate: a smaller grid at
        // 300k events must already sit inside the pinned 2pp tolerance.
        let cases: Vec<LruValidationCase> = [0.7, 1.0]
            .iter()
            .flat_map(|&alpha| {
                [200usize, 1_000]
                    .iter()
                    .map(move |&capacity| LruValidationCase {
                        alpha,
                        universe: 10_000,
                        capacity,
                    })
            })
            .collect();
        let points = validate_lru_sweep(&cases, 300_000, 7).expect("sweep runs");
        assert_eq!(points.len(), cases.len());
        for p in &points {
            assert!(
                p.delta < PLAN_TOLERANCE,
                "α={} C={}: analytic {:.4} vs simulated {:.4} (Δ={:.4})",
                p.case.alpha,
                p.case.capacity,
                p.analytic_hit_rate,
                p.simulated_hit_rate,
                p.delta
            );
        }
    }

    #[test]
    fn lru_mru_replay_matches_the_stationary_law() {
        let (stationary, simulated) =
            validate_lru_mru(8, 0.9, 4, &[2, 5], 300_000, 11).expect("valid");
        assert!(
            (stationary - simulated).abs() < 0.01,
            "stationary {stationary} vs simulated {simulated}"
        );
    }

    #[test]
    fn grouping_beats_the_irm_bound_on_sequential_runs() {
        // The point of the whole comparison: on a run-structured trace
        // the aggregating cache clears the best hit rate IRM analysis
        // can promise a single-file LRU, and the plain LRU does not.
        let mut cfg = GroupingCompareConfig::standard();
        cfg.events = 200_000;
        cfg.capacities = vec![400];
        let points = compare_grouping(&cfg).expect("comparison runs");
        let p = &points[0];
        assert!(
            p.grouping_gain > 0.05,
            "grouping should clearly beat the IRM bound on runs: {p:?}"
        );
        assert!(
            p.grouped_hit_rate > p.simulated_lru_hit_rate,
            "grouping should beat plain LRU on the same trace: {p:?}"
        );
        // And the bound itself must stay honest: the plain LRU may sit
        // above the IRM prediction (runs help recency a little) but not
        // wildly so.
        assert!(
            (p.simulated_lru_hit_rate - p.analytic_lru_hit_rate).abs() < 0.15,
            "IRM bound vs plain LRU drifted implausibly: {p:?}"
        );
    }
}

//! ARC — Adaptive Replacement Cache (Megiddo & Modha, FAST 2003).
//!
//! ARC balances recency (list `T1`) against frequency (list `T2`) using
//! two ghost lists (`B1`, `B2`) to learn, online, how much capacity each
//! deserves. Included as the strongest single-level baseline: even an
//! adaptive policy cannot recover locality that an intervening cache has
//! filtered away, which is the gap grouping fills.

use fgcache_types::hash::FastMap;

use fgcache_types::{AccessOutcome, FileId, InvariantViolation};

use crate::list::LruList;
use crate::{Cache, CacheStats};

/// An ARC cache of [`FileId`]s.
///
/// ```
/// use fgcache_cache::{ArcCache, Cache};
/// use fgcache_types::FileId;
///
/// let mut c = ArcCache::new(4);
/// c.access(FileId(1));
/// c.access(FileId(1)); // promoted to the frequency side
/// for i in 10..14 { c.access(FileId(i)); }
/// // ARC adapts; the twice-accessed file tends to survive the scan.
/// assert!(c.len() <= 4);
/// ```
#[derive(Debug, Clone)]
pub struct ArcCache {
    capacity: usize,
    p: usize,
    t1: LruList,
    t2: LruList,
    b1: LruList,
    b2: LruList,
    speculative: FastMap<FileId, bool>,
    stats: CacheStats,
}

impl ArcCache {
    /// Creates an ARC cache holding at most `capacity` files.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be greater than zero");
        ArcCache {
            capacity,
            p: 0,
            t1: LruList::new(),
            t2: LruList::new(),
            b1: LruList::new(),
            b2: LruList::new(),
            speculative: FastMap::default(),
            stats: CacheStats::new(),
        }
    }

    /// The adaptive target size of the recency list `T1` (diagnostic).
    pub fn recency_target(&self) -> usize {
        self.p
    }

    /// Moves the appropriate victim from T1/T2 to its ghost list.
    fn replace(&mut self, about_to_enter_from_b2: bool) {
        let t1_len = self.t1.len();
        if t1_len >= 1 && (t1_len > self.p || (about_to_enter_from_b2 && t1_len == self.p)) {
            if let Some(victim) = self.t1.pop_back() {
                self.speculative.remove(&victim);
                self.b1.push_front(victim);
                self.stats.record_eviction();
            }
        } else if let Some(victim) = self.t2.pop_back() {
            self.speculative.remove(&victim);
            self.b2.push_front(victim);
            self.stats.record_eviction();
        } else if let Some(victim) = self.t1.pop_back() {
            // T2 empty; fall back to T1.
            self.speculative.remove(&victim);
            self.b1.push_front(victim);
            self.stats.record_eviction();
        }
    }

    fn resident(&self) -> usize {
        self.t1.len() + self.t2.len()
    }

    /// Case-IV directory management: frees one slot for a brand-new file
    /// about to enter `T1`, preserving `|T1|+|B1| <= c` and the total
    /// directory bound of `2c`.
    fn make_room_for_new(&mut self) {
        let c = self.capacity;
        if self.t1.len() + self.b1.len() >= c {
            if self.t1.len() < c {
                self.b1.pop_back();
                self.replace(false);
            } else if let Some(victim) = self.t1.pop_back() {
                // B1 empty and T1 full: plain eviction without ghost entry.
                self.speculative.remove(&victim);
                self.stats.record_eviction();
            }
        } else {
            let total = self.t1.len() + self.t2.len() + self.b1.len() + self.b2.len();
            if total >= c {
                if total == 2 * c {
                    self.b2.pop_back();
                }
                if self.resident() >= c {
                    self.replace(false);
                }
            }
        }
    }
}

impl Cache for ArcCache {
    fn access(&mut self, file: FileId) -> AccessOutcome {
        // Case I: hit in T1 or T2 → move to MRU of T2.
        if self.t1.remove(file) || self.t2.remove(file) {
            self.t2.push_front(file);
            let was_spec = self
                .speculative
                .insert(file, false)
                .expect("resident file tracked");
            self.stats.record_hit(was_spec);
            return AccessOutcome::Hit;
        }
        self.stats.record_miss();
        let c = self.capacity;
        if self.b1.contains(file) {
            // Case II: ghost hit in B1 — favour recency.
            let delta = (self.b2.len() / self.b1.len().max(1)).max(1);
            self.p = (self.p + delta).min(c);
            self.replace(false);
            self.b1.remove(file);
            self.t2.push_front(file);
            self.speculative.insert(file, false);
            return AccessOutcome::Miss;
        }
        if self.b2.contains(file) {
            // Case III: ghost hit in B2 — favour frequency.
            let delta = (self.b1.len() / self.b2.len().max(1)).max(1);
            self.p = self.p.saturating_sub(delta);
            self.replace(true);
            self.b2.remove(file);
            self.t2.push_front(file);
            self.speculative.insert(file, false);
            return AccessOutcome::Miss;
        }
        // Case IV: brand-new file.
        self.make_room_for_new();
        self.t1.push_front(file);
        self.speculative.insert(file, false);
        AccessOutcome::Miss
    }

    fn insert_speculative(&mut self, file: FileId) -> bool {
        if self.speculative.contains_key(&file) {
            return false;
        }
        // Leaving the ghost lists first keeps the directory bounds exact:
        // the entry is about to become resident, and ghosts only track
        // non-resident ids.
        self.b1.remove(file);
        self.b2.remove(file);
        self.make_room_for_new();
        // Eviction end of the recency list: lowest priority ARC offers.
        self.t1.push_back(file);
        self.speculative.insert(file, true);
        self.stats.record_speculative_insert();
        true
    }

    fn contains(&self, file: FileId) -> bool {
        self.speculative.contains_key(&file)
    }

    fn len(&self) -> usize {
        self.resident()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn name(&self) -> &'static str {
        "arc"
    }

    fn clear(&mut self) {
        self.t1.clear();
        self.t2.clear();
        self.b1.clear();
        self.b2.clear();
        self.speculative.clear();
        self.p = 0;
        self.stats = CacheStats::new();
    }

    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        let err = |detail: String| Err(InvariantViolation::new("ArcCache", detail));
        self.t1.audit("ArcCache.t1")?;
        self.t2.audit("ArcCache.t2")?;
        self.b1.audit("ArcCache.b1")?;
        self.b2.audit("ArcCache.b2")?;
        let c = self.capacity;
        if self.resident() > c {
            return err(format!("{} residents exceed capacity {c}", self.resident()));
        }
        if self.p > c {
            return err(format!("adaptive target {} exceeds capacity {c}", self.p));
        }
        if self.t1.len() + self.b1.len() > c {
            return err(format!(
                "|T1| + |B1| = {} exceeds capacity {c}",
                self.t1.len() + self.b1.len()
            ));
        }
        let total = self.t1.len() + self.t2.len() + self.b1.len() + self.b2.len();
        if total > 2 * c {
            return err(format!(
                "|T1|+|T2|+|B1|+|B2| = {total} exceeds 2c = {}",
                2 * c
            ));
        }
        if self.speculative.len() != self.resident() {
            return err(format!(
                "speculative map tracks {} files, {} are resident",
                self.speculative.len(),
                self.resident()
            ));
        }
        for &file in self.speculative.keys() {
            let lists = [
                self.t1.contains(file),
                self.t2.contains(file),
                self.b1.contains(file),
                self.b2.contains(file),
            ];
            if !(lists[0] ^ lists[1]) || lists[2] || lists[3] {
                return err(format!(
                    "resident file {file} must live in exactly one of T1/T2 and no ghost list"
                ));
            }
        }
        self.stats.check("ArcCache")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::check_cache_conformance;

    #[test]
    fn conformance() {
        check_cache_conformance(ArcCache::new);
    }

    #[test]
    fn corrupted_target_is_detected() {
        let mut c = ArcCache::new(4);
        c.access(FileId(1));
        assert!(c.check_invariants().is_ok());
        // The adaptive target must never exceed the capacity.
        c.p = c.capacity + 1;
        assert!(c.check_invariants().is_err());
    }

    #[test]
    #[should_panic(expected = "capacity must be greater than zero")]
    fn zero_capacity_panics() {
        let _ = ArcCache::new(0);
    }

    #[test]
    fn rereference_promotes_to_t2() {
        let mut c = ArcCache::new(4);
        c.access(FileId(1));
        assert!(c.t1.contains(FileId(1)));
        c.access(FileId(1));
        assert!(c.t2.contains(FileId(1)));
        assert!(!c.t1.contains(FileId(1)));
    }

    #[test]
    fn ghost_hit_adapts_p() {
        let mut c = ArcCache::new(2);
        c.access(FileId(1));
        c.access(FileId(2));
        c.access(FileId(3)); // evicts 1 → B1
        let p_before = c.recency_target();
        c.access(FileId(1)); // B1 ghost hit → p grows
        assert!(c.recency_target() >= p_before);
        assert!(c.contains(FileId(1)));
    }

    #[test]
    fn residency_bounded_under_mixed_churn() {
        let mut c = ArcCache::new(6);
        for i in 0..1000u64 {
            c.access(FileId(i % 17));
            assert!(c.len() <= 6, "len {} at step {i}", c.len());
        }
        // Ghost lists stay bounded too (|T1|+|B1| ≤ c, total ≤ 2c).
        assert!(c.t1.len() + c.b1.len() <= 6);
        assert!(c.t1.len() + c.t2.len() + c.b1.len() + c.b2.len() <= 12);
    }

    #[test]
    fn frequency_side_survives_scan() {
        let mut c = ArcCache::new(8);
        // Build frequency: touch a small set repeatedly.
        for _ in 0..10 {
            for i in 0..3 {
                c.access(FileId(i));
            }
        }
        // Long one-shot scan.
        for i in 100..160 {
            c.access(FileId(i));
        }
        let survivors = (0..3).filter(|&i| c.contains(FileId(i))).count();
        assert!(survivors >= 1, "ARC lost the whole hot set to a scan");
    }

    #[test]
    fn speculative_is_first_victim() {
        let mut c = ArcCache::new(2);
        c.access(FileId(1));
        c.insert_speculative(FileId(9));
        c.access(FileId(2)); // needs a slot: speculative tail of T1 goes
        assert!(!c.contains(FileId(9)));
        assert!(c.contains(FileId(1)));
        assert!(c.contains(FileId(2)));
    }
}

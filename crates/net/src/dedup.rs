//! Bounded reply cache: the server side of idempotency-by-request-id.
//!
//! A retry of a request whose *reply* was lost must not re-execute the
//! fetch — the first execution already mutated cache residency and
//! statistics. Servers (and the simulated transports that stand in for
//! them) therefore remember recent replies keyed by request id and
//! re-deliver them verbatim. The window is bounded FIFO: once a reply is
//! older than `capacity` newer requests, a retry is assumed impossible
//! (the client's retry policy gives up long before then) and the entry is
//! evicted.

use std::collections::{HashMap, VecDeque};

use crate::transport::GroupReply;

/// Default number of replies a server remembers for retry deduplication.
pub const DEFAULT_REPLY_CACHE_CAPACITY: usize = 1024;

/// A bounded FIFO cache of recent [`GroupReply`]s keyed by request id.
#[derive(Debug)]
pub struct ReplyCache {
    capacity: usize,
    replies: HashMap<u64, GroupReply>,
    order: VecDeque<u64>,
    hits: u64,
}

impl ReplyCache {
    /// Creates a cache remembering at most `capacity` replies. A zero
    /// capacity disables deduplication entirely.
    pub fn new(capacity: usize) -> Self {
        let prealloc = capacity.min(DEFAULT_REPLY_CACHE_CAPACITY);
        ReplyCache {
            capacity,
            replies: HashMap::with_capacity(prealloc),
            order: VecDeque::with_capacity(prealloc),
            hits: 0,
        }
    }

    /// Looks up the remembered reply for `request_id`, if still in the
    /// window, counting the hit (see [`ReplyCache::hits`]).
    pub fn get(&mut self, request_id: u64) -> Option<&GroupReply> {
        let found = self.replies.get(&request_id);
        if found.is_some() {
            self.hits += 1;
        }
        found
    }

    /// Number of lookups answered from the window so far — the
    /// server-side reply-cache hit counter exported as
    /// [`WireStats::reply_cache_hits`](crate::WireStats::reply_cache_hits).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Remembers `reply` under its request id, evicting the oldest entry
    /// when the window is full. Re-inserting an id refreshes its value
    /// but not its eviction position.
    pub fn insert(&mut self, reply: GroupReply) {
        if self.capacity == 0 {
            return;
        }
        let id = reply.request_id;
        if self.replies.insert(id, reply).is_some() {
            return; // refreshed in place; FIFO position unchanged
        }
        if self.order.len() == self.capacity {
            if let Some(evicted) = self.order.pop_front() {
                self.replies.remove(&evicted);
            }
        }
        self.order.push_back(id);
    }

    /// Number of replies currently remembered.
    pub fn len(&self) -> usize {
        self.replies.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.replies.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reply(id: u64) -> GroupReply {
        GroupReply {
            request_id: id,
            files: Vec::new(),
        }
    }

    #[test]
    fn remembers_and_returns_replies() {
        let mut c = ReplyCache::new(4);
        assert!(c.is_empty());
        c.insert(reply(7));
        assert_eq!(c.get(7).map(|r| r.request_id), Some(7));
        assert!(c.get(8).is_none());
        assert_eq!(c.len(), 1);
        assert_eq!(c.hits(), 1, "only the answered lookup counts as a hit");
    }

    #[test]
    fn evicts_oldest_beyond_capacity() {
        let mut c = ReplyCache::new(2);
        c.insert(reply(1));
        c.insert(reply(2));
        c.insert(reply(3));
        assert!(c.get(1).is_none(), "oldest entry must be evicted");
        assert!(c.get(2).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_without_growing() {
        let mut c = ReplyCache::new(2);
        c.insert(reply(1));
        c.insert(reply(1));
        c.insert(reply(2));
        assert_eq!(c.len(), 2);
        assert!(c.get(1).is_some());
    }

    #[test]
    fn zero_capacity_disables_dedup() {
        let mut c = ReplyCache::new(0);
        c.insert(reply(1));
        assert!(c.get(1).is_none());
        assert!(c.is_empty());
    }
}

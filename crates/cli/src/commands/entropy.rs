//! `fgcache entropy` — successor-entropy analysis (figures 7/8).
//!
//! All symbol lengths are accumulated in one streaming pass
//! ([`EntropyAccumulator`]); the optional `--filter` LRU runs inline on
//! the same pass, so even the figure-8 miss-stream analysis never
//! materializes the trace.

use std::error::Error;

use fgcache_cache::{Cache, LruCache};
use fgcache_entropy::EntropyAccumulator;
use fgcache_trace::io::TraceIoError;
#[cfg(test)]
use fgcache_trace::Trace;
use fgcache_types::AccessEvent;

use crate::args::Args;
use crate::commands::open_trace_events;

#[cfg(test)] // the materialized twin survives as the differential-test oracle
pub(crate) fn report(
    trace: &Trace,
    max_k: usize,
    filter: Option<usize>,
) -> Result<String, Box<dyn Error>> {
    report_events(
        trace
            .events()
            .iter()
            .map(|ev| Ok::<AccessEvent, TraceIoError>(*ev)),
        max_k,
        filter,
    )
}

/// Streaming twin of [`report`]: one pass over the events for every
/// symbol length (and the filter cache, when present) at once.
pub(crate) fn report_events<I>(
    events: I,
    max_k: usize,
    filter: Option<usize>,
) -> Result<String, Box<dyn Error>>
where
    I: IntoIterator<Item = Result<AccessEvent, TraceIoError>>,
{
    let ks: Vec<usize> = (1..=max_k.max(1)).collect();
    let mut acc = EntropyAccumulator::new(&ks)?;
    let mut out = String::new();
    match filter {
        Some(capacity) => {
            if capacity == 0 {
                return Err("--filter must be greater than zero".into());
            }
            out.push_str(&format!(
                "successor entropy of the miss stream behind an LRU filter of {capacity} files\n"
            ));
            let mut cache = LruCache::new(capacity);
            for ev in events {
                let file = ev?.file;
                if cache.access(file).is_miss() {
                    acc.push(file);
                }
            }
        }
        None => {
            out.push_str("successor entropy of the raw access stream\n");
            for ev in events {
                acc.push(ev?.file);
            }
        }
    }
    let analyses = acc.analyses();
    out.push_str(" k   bits\n");
    for a in &analyses {
        out.push_str(&format!("{:>2}  {:5.2}\n", a.symbol_length, a.entropy));
    }
    if filter.is_none() {
        let analysis = &analyses[0]; // ks starts at 1: the single-successor detail
        out.push_str(&format!(
            "\nrepeating files {} | singleton files {} | top unpredictable contexts:\n",
            analysis.repeating_files, analysis.singleton_files
        ));
        for e in analysis.per_file.iter().take(5) {
            out.push_str(&format!(
                "  {}  weight {:.3}  H {:.2} bits  ({} successors over {} transitions)\n",
                e.file, e.weight, e.conditional_entropy, e.distinct_successors, e.transitions
            ));
        }
    }
    Ok(out)
}

pub fn run(tokens: &[String]) -> Result<(), Box<dyn Error>> {
    let args = Args::parse(tokens.iter().cloned())?;
    args.check_known(&["format", "max-k", "filter"])?;
    let path = args.require_positional(0, "trace")?;
    let max_k = args.flag_or("max-k", 8usize)?;
    let filter = match args.flag("filter") {
        Some(raw) => Some(raw.parse().map_err(|_| "invalid --filter")?),
        None => None,
    };
    let events = open_trace_events(path, args.flag("format"))?;
    print!("{}", report_events(events, max_k, filter)?);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_report_lists_all_k() {
        let trace = Trace::from_files([1, 2, 3].repeat(30));
        let text = report(&trace, 4, None).unwrap();
        assert!(text.contains(" 1   0.00"));
        assert!(text.contains(" 4 "));
        assert!(text.contains("repeating files"));
    }

    #[test]
    fn filtered_report_mentions_filter() {
        let trace = Trace::from_files([1, 2, 3, 4].repeat(30));
        let text = report(&trace, 2, Some(2)).unwrap();
        assert!(text.contains("LRU filter of 2 files"));
    }

    #[test]
    fn zero_filter_is_a_clean_error() {
        let trace = Trace::from_files([1, 2, 3]);
        let err = report(&trace, 2, Some(0)).unwrap_err();
        assert!(err.to_string().contains("--filter"));
    }

    #[test]
    fn streaming_report_matches_materialized_profiles() {
        // The report now streams through the accumulator; pin its table
        // to the materialized library profile, raw and filtered.
        let trace = Trace::from_files((0..600u64).map(|i| (i * 7) % 41));
        let ks: Vec<usize> = (1..=5).collect();

        let raw = report(&trace, 5, None).unwrap();
        let profile = fgcache_entropy::entropy_profile(&trace.file_sequence(), &ks).unwrap();
        for (k, h) in profile {
            assert!(
                raw.contains(&format!("{k:>2}  {h:5.2}")),
                "k={k} in:\n{raw}"
            );
        }

        let filtered = report(&trace, 5, Some(8)).unwrap();
        let profile = fgcache_entropy::filtered_entropy_profile(&trace, 8, &ks).unwrap();
        for (k, h) in profile {
            assert!(
                filtered.contains(&format!("{k:>2}  {h:5.2}")),
                "k={k} in:\n{filtered}"
            );
        }
    }
}

//! `fgcache` — command-line interface to the fgcache workspace.
//!
//! ```text
//! fgcache gen       --profile server --events 100000 --seed 1 --out trace.txt
//! fgcache stats     trace.txt
//! fgcache entropy   trace.txt [--max-k 20] [--filter CAPACITY]
//! fgcache simulate  trace.txt --capacity 300 [--policy lru|lfu|fifo|clock|2q|mq|arc|agg] [--group 5]
//! fgcache simulate  trace.txt --capacity 400 --clients 4 --shards 4 [--filter 100] [--no-fast-path true]
//! fgcache two-level trace.txt --filter 200 --server 300 [--scheme g5|lru|lfu|...]
//! fgcache groups    trace.txt [--group-size 5] [--top 10]
//! fgcache plan      --alpha 0.9 --clients 16 --target-hit-rate 0.8 [--universe 100000] [--sizes pareto] [--json plan.json]
//! fgcache plan      --validate true [--events 10000000]   # CI gate: Che vs simulator
//! fgcache plan      --compare-grouping true [--run-length 4] [--capacities 200,800]
//! fgcache serve     --capacity 400 [--addr 127.0.0.1:0] [--shards 4] [--max-conns 1024] [--workers 4] [--node-id 1 [--peers 1=HOST:PORT,...]]
//! fgcache bench-net --loopback true [--clients 4] [--events 10000] [--batch 1,8,32]
//! fgcache bench-cluster [--nodes 3] [--events 6000] [--virtual true]
//! fgcache convert   access.log --from strace --out trace.bin [--to text|json|bin]
//! ```
//!
//! Traces are read in the text format (`seq client kind file` per line),
//! JSON (`--format json`) or binary (`--format bin`); `stats`, `entropy`
//! and `simulate` stream events from disk, so traces far larger than
//! memory replay fine.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod args;
mod commands;

use std::process::ExitCode;

const USAGE: &str = "\
fgcache — group-based management of distributed file caches (ICDCS 2002)

USAGE:
    fgcache <COMMAND> [ARGS]

COMMANDS:
    gen        generate a synthetic workload trace
    stats      summarise a trace
    entropy    successor-entropy analysis (figures 7/8)
    simulate   run one cache over a trace
    two-level  client filter + server cache simulation (figure 4)
    groups     show the strongest dynamic groups of a trace
    plan       analytic capacity planner (Che/Fagin characteristic time):
               recommend filter/server/shard sizes for a target hit rate;
               --validate true replays the planner against the streamed
               simulator (CI gate), --compare-grouping true measures
               where group fetching beats the analytic LRU bound
    serve      run an event-driven TCP group-fetch server over a sharded
               cache (--max-conns/--workers size the event loop;
               --node-id/--peers turn it into one cluster node)
    bench-net  loopback TCP differential check + batch-pipelining sweep
    bench-cluster  multi-process TCP cluster smoke vs a single-process
               oracle (--virtual true: 100-node in-process fleet)
    convert    translate DFSTrace/strace logs into fgcache traces
    help       print this message

Run `fgcache <COMMAND> --help` semantics: every command validates its
flags and reports unknown ones.
";

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest: Vec<String> = argv.collect();
    let result = match command.as_str() {
        "gen" => commands::gen::run(&rest),
        "stats" => commands::stats::run(&rest),
        "entropy" => commands::entropy::run(&rest),
        "simulate" => commands::simulate::run(&rest),
        "two-level" => commands::two_level::run(&rest),
        "groups" => commands::groups::run(&rest),
        "plan" => commands::plan::run(&rest),
        "serve" => commands::serve::run(&rest),
        "bench-net" => commands::bench_net::run(&rest),
        "bench-cluster" => commands::bench_cluster::run(&rest),
        "convert" => commands::convert::run(&rest),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n\n{USAGE}").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

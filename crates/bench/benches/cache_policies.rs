//! Throughput of every replacement policy (and the aggregating cache)
//! driving a realistic workload — accesses per second at simulation
//! scale. These are performance benches for the substrate; the figure
//! *reproductions* live in `benches/figures.rs` and the `repro_*` bins.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fgcache_cache::{Cache, PolicyKind};
use fgcache_core::AggregatingCacheBuilder;
use fgcache_trace::synth::{SynthConfig, WorkloadProfile};
use fgcache_trace::Trace;
use std::hint::black_box;

const EVENTS: usize = 20_000;
const CAPACITY: usize = 300;

fn workload() -> Trace {
    SynthConfig::profile(WorkloadProfile::Workstation)
        .events(EVENTS)
        .seed(42)
        .build()
        .expect("profile is valid")
        .generate()
}

fn bench_policies(c: &mut Criterion) {
    let trace = workload();
    let mut group = c.benchmark_group("policy_access");
    group.throughput(Throughput::Elements(EVENTS as u64));
    for kind in PolicyKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &trace, |b, t| {
            b.iter(|| {
                let mut cache = kind.build(CAPACITY);
                for ev in t.events() {
                    black_box(cache.access(ev.file));
                }
                cache.stats().hits
            });
        });
    }
    group.finish();
}

fn bench_aggregating(c: &mut Criterion) {
    let trace = workload();
    let mut group = c.benchmark_group("aggregating_access");
    group.throughput(Throughput::Elements(EVENTS as u64));
    for g in [1usize, 2, 5, 10] {
        group.bench_with_input(BenchmarkId::new("group_size", g), &trace, |b, t| {
            b.iter(|| {
                let mut cache = AggregatingCacheBuilder::new(CAPACITY)
                    .group_size(g)
                    .build()
                    .expect("valid config");
                for ev in t.events() {
                    black_box(cache.handle_access(ev.file));
                }
                cache.demand_fetches()
            });
        });
    }
    group.finish();
}

fn bench_speculative_insert(c: &mut Criterion) {
    use fgcache_cache::LruCache;
    use fgcache_types::FileId;
    let batch: Vec<FileId> = (0..8u64).map(FileId).collect();
    c.bench_function("lru_speculative_batch_8", |b| {
        let mut cache = LruCache::new(CAPACITY);
        for i in 0..CAPACITY as u64 {
            cache.access(FileId(1000 + i));
        }
        b.iter(|| {
            cache.insert_speculative_batch(black_box(&batch));
            for f in &batch {
                cache.access(*f); // reset for next iteration's realism
            }
        });
    });
}

criterion_group!(
    benches,
    bench_policies,
    bench_aggregating,
    bench_speculative_insert
);
criterion_main!(benches);

//! Deterministic model-based tests for successor entropy.
//!
//! Each test sweeps fixed seeds through the in-repo PRNG; failures
//! reproduce exactly from the printed seed.

use fgcache_entropy::{
    analyze, entropy_profile, filtered_entropy, successor_entropy, successor_sequence_entropy,
};
use fgcache_trace::Trace;
use fgcache_types::rng::RandomSource;
use fgcache_types::{FileId, SeededRng};

const SEEDS: [u64; 8] = [0, 1, 2, 7, 42, 1234, 0xDEAD_BEEF, u64::MAX];

/// A random file sequence over `0..max`, length `0..len`.
fn files(rng: &mut SeededRng, max: u64, len: usize) -> Vec<FileId> {
    let n = rng.gen_index(len);
    (0..n)
        .map(|_| FileId(rng.gen_range_inclusive(0, max - 1)))
        .collect()
}

#[test]
fn entropy_is_finite_and_nonnegative() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        for k in 1..6 {
            let seq = files(&mut rng, 30, 400);
            let h = successor_sequence_entropy(&seq, k).unwrap();
            assert!(h.is_finite(), "seed {seed} k {k}");
            assert!(h >= 0.0, "seed {seed} k {k}");
        }
    }
}

#[test]
fn entropy_bounded_by_alphabet() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        // H_S is a weighted average of conditional entropies, each of
        // which is at most log2(#distinct successor symbols) <= log2(16).
        let seq = files(&mut rng, 16, 400);
        let h = successor_entropy(&seq);
        assert!(h <= 4.0 + 1e-9, "seed {seed}: h = {h}");
    }
}

#[test]
fn constant_sequence_has_zero_entropy() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        let len = 2 + rng.gen_index(198);
        let f = rng.gen_range_inclusive(0, 4);
        let seq = vec![FileId(f); len];
        assert_eq!(successor_entropy(&seq), 0.0, "seed {seed}");
    }
}

#[test]
fn entropy_invariant_under_relabelling() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        for k in 1..4 {
            // Renaming file ids must not change the entropy.
            let seq = files(&mut rng, 10, 300);
            let relabelled: Vec<FileId> =
                seq.iter().map(|f| FileId(f.as_u64() * 7 + 1000)).collect();
            let a = successor_sequence_entropy(&seq, k).unwrap();
            let b = successor_sequence_entropy(&relabelled, k).unwrap();
            assert!((a - b).abs() < 1e-9, "seed {seed} k {k}");
        }
    }
}

#[test]
fn repetition_reduces_entropy_contribution() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        // Repeating the whole sequence many times converges H toward the
        // "steady" conditional structure; it must never become negative
        // and stays bounded.
        let seq = files(&mut rng, 8, 60);
        let repeated: Vec<FileId> = seq.iter().cycle().take(seq.len() * 10).copied().collect();
        let h = successor_entropy(&repeated);
        assert!(h >= 0.0 && h.is_finite(), "seed {seed}");
    }
}

#[test]
fn analysis_consistent_with_entropy() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        for k in 1..4 {
            let seq = files(&mut rng, 12, 300);
            let a = analyze(&seq, k).unwrap();
            let direct = successor_sequence_entropy(&seq, k).unwrap();
            assert!((a.entropy - direct).abs() < 1e-12);
            // Recomputing the weighted sum from the per-file breakdown
            // agrees.
            let recomputed: f64 = a
                .per_file
                .iter()
                .map(|e| e.weight * e.conditional_entropy)
                .sum();
            assert!((recomputed - a.entropy).abs() < 1e-9);
            for e in &a.per_file {
                assert!(e.weight > 0.0 && e.weight <= 1.0);
                assert!(e.conditional_entropy >= 0.0);
                assert!(e.distinct_successors as u64 <= e.transitions);
            }
        }
    }
}

#[test]
fn profile_matches_pointwise_calls() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        let seq = files(&mut rng, 10, 200);
        let ks = [1usize, 2, 3];
        let profile = entropy_profile(&seq, &ks).unwrap();
        for (k, h) in profile {
            let direct = successor_sequence_entropy(&seq, k).unwrap();
            assert!((h - direct).abs() < 1e-12, "seed {seed} k {k}");
        }
    }
}

#[test]
fn filtered_entropy_is_finite() {
    for seed in SEEDS {
        let mut rng = SeededRng::new(seed);
        for k in 1..4 {
            let cap = 1 + rng.gen_index(19);
            let len = rng.gen_index(300);
            let ids: Vec<u64> = (0..len).map(|_| rng.gen_range_inclusive(0, 24)).collect();
            let trace = Trace::from_files(ids);
            let h = filtered_entropy(&trace, cap, k).unwrap();
            assert!(h.is_finite() && h >= 0.0, "seed {seed} k {k}");
        }
    }
}

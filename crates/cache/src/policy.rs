//! Replacement-policy selection for experiment drivers.

use std::error::Error;
use std::fmt;
use std::str::FromStr;

use crate::{
    ArcCache, Cache, ClockCache, FifoCache, LandlordCache, LfuCache, LruCache, MqCache, TwoQCache,
};

/// The replacement policies available to sweeps and examples.
///
/// ```
/// use fgcache_cache::{Cache, PolicyKind};
/// use fgcache_types::FileId;
///
/// let mut cache = PolicyKind::Lru.build(10);
/// cache.access(FileId(1));
/// assert_eq!(cache.name(), "lru");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Least recently used.
    Lru,
    /// Least frequently used (LRU tie-break).
    Lfu,
    /// First-in first-out.
    Fifo,
    /// CLOCK / second chance.
    Clock,
    /// 2Q (Johnson & Shasha).
    TwoQ,
    /// Multi-Queue (Zhou, Philbin & Li).
    Mq,
    /// Adaptive Replacement Cache (Megiddo & Modha).
    Arc,
    /// Landlord (Young) — size/cost-aware; uniform sizes degenerate to
    /// LRU. Built here with the uniform assigner; use
    /// [`LandlordCache::with_assigner`] for sized populations.
    Landlord,
}

impl PolicyKind {
    /// All policies, in a stable presentation order.
    pub const ALL: [PolicyKind; 8] = [
        PolicyKind::Lru,
        PolicyKind::Lfu,
        PolicyKind::Fifo,
        PolicyKind::Clock,
        PolicyKind::TwoQ,
        PolicyKind::Mq,
        PolicyKind::Arc,
        PolicyKind::Landlord,
    ];

    /// Constructs a boxed cache of this policy with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (each policy validates its capacity).
    pub fn build(self, capacity: usize) -> Box<dyn Cache + Send> {
        match self {
            PolicyKind::Lru => Box::new(LruCache::new(capacity)),
            PolicyKind::Lfu => Box::new(LfuCache::new(capacity)),
            PolicyKind::Fifo => Box::new(FifoCache::new(capacity)),
            PolicyKind::Clock => Box::new(ClockCache::new(capacity)),
            PolicyKind::TwoQ => Box::new(TwoQCache::new(capacity)),
            PolicyKind::Mq => Box::new(MqCache::new(capacity)),
            PolicyKind::Arc => Box::new(ArcCache::new(capacity)),
            PolicyKind::Landlord => Box::new(LandlordCache::new(capacity)),
        }
    }

    /// The policy's short stable name (matches
    /// [`Cache::name`](crate::Cache::name)).
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Lru => "lru",
            PolicyKind::Lfu => "lfu",
            PolicyKind::Fifo => "fifo",
            PolicyKind::Clock => "clock",
            PolicyKind::TwoQ => "2q",
            PolicyKind::Mq => "mq",
            PolicyKind::Arc => "arc",
            PolicyKind::Landlord => "landlord",
        }
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing a [`PolicyKind`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError {
    /// The string that failed to parse.
    pub found: String,
}

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unrecognised policy {:?}, expected one of lru, lfu, fifo, clock, 2q, mq, arc, landlord",
            self.found
        )
    }
}

impl Error for ParsePolicyError {}

impl FromStr for PolicyKind {
    type Err = ParsePolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "lru" => Ok(PolicyKind::Lru),
            "lfu" => Ok(PolicyKind::Lfu),
            "fifo" => Ok(PolicyKind::Fifo),
            "clock" => Ok(PolicyKind::Clock),
            "2q" | "twoq" => Ok(PolicyKind::TwoQ),
            "mq" => Ok(PolicyKind::Mq),
            "arc" => Ok(PolicyKind::Arc),
            "landlord" => Ok(PolicyKind::Landlord),
            other => Err(ParsePolicyError {
                found: other.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgcache_types::FileId;

    #[test]
    fn build_produces_matching_names() {
        for kind in PolicyKind::ALL {
            let cache = kind.build(4);
            assert_eq!(cache.name(), kind.name());
            assert_eq!(cache.capacity(), 4);
        }
    }

    #[test]
    fn all_policies_work_through_trait_objects() {
        for kind in PolicyKind::ALL {
            let mut cache = kind.build(3);
            assert!(cache.access(FileId(1)).is_miss(), "{kind}");
            assert!(cache.access(FileId(1)).is_hit(), "{kind}");
            assert!(cache.contains(FileId(1)), "{kind}");
        }
    }

    #[test]
    fn parse_roundtrip() {
        for kind in PolicyKind::ALL {
            assert_eq!(kind.name().parse::<PolicyKind>().unwrap(), kind);
        }
        assert_eq!("LRU".parse::<PolicyKind>().unwrap(), PolicyKind::Lru);
        assert_eq!("twoq".parse::<PolicyKind>().unwrap(), PolicyKind::TwoQ);
    }

    #[test]
    fn parse_rejects_unknown() {
        let err = "belady".parse::<PolicyKind>().unwrap_err();
        assert!(err.to_string().contains("belady"));
    }

    #[test]
    fn boxed_caches_are_send() {
        fn assert_send<T: Send>(_: T) {}
        assert_send(PolicyKind::Lru.build(2));
    }
}

//! `fgcache groups` — show the strongest dynamic groups of a trace.

use std::error::Error;

use fgcache_successor::{GroupBuilder, LruSuccessorList, RelationshipGraph, SuccessorTable};
use fgcache_trace::Trace;
use fgcache_types::FileId;

use crate::args::Args;
use crate::commands::load_trace;

pub(crate) fn report(
    trace: &Trace,
    group_size: usize,
    top: usize,
    successors: usize,
) -> Result<String, Box<dyn Error>> {
    let mut graph = RelationshipGraph::new();
    let mut table = SuccessorTable::new(LruSuccessorList::new(successors)?);
    for f in trace.files() {
        graph.record(f);
        table.record(f);
    }
    let builder = GroupBuilder::new(group_size)?;
    let mut out = String::new();
    out.push_str(&format!(
        "relationship graph: {} files, {} edges, {} successor entries tracked\n\n",
        graph.node_count(),
        graph.edge_count(),
        table.metadata_entries(),
    ));
    out.push_str(&format!("strongest {top} edges:\n"));
    for (from, to, w) in graph.top_edges(top) {
        out.push_str(&format!("  {from} -> {to}  ({w}x)\n"));
    }
    out.push_str(&format!(
        "\ngroups of {group_size} for the {top} hottest files:\n"
    ));
    let mut hot: Vec<(FileId, u64)> = trace
        .file_sequence()
        .into_iter()
        .fold(std::collections::HashMap::new(), |mut m, f| {
            *m.entry(f).or_insert(0u64) += 1;
            m
        })
        .into_iter()
        .collect();
    hot.sort_by_key(|&(f, c)| (std::cmp::Reverse(c), f));
    for (f, count) in hot.into_iter().take(top) {
        let group = builder.build(&table, f);
        out.push_str(&format!("  {f} ({count} accesses): {group}\n"));
    }
    Ok(out)
}

pub fn run(tokens: &[String]) -> Result<(), Box<dyn Error>> {
    let args = Args::parse(tokens.iter().cloned())?;
    args.check_known(&["format", "group-size", "top", "successors"])?;
    let path = args.require_positional(0, "trace")?;
    let trace = load_trace(path, args.flag("format"))?;
    let group_size = args.flag_or("group-size", 5usize)?;
    let top = args.flag_or("top", 10usize)?;
    let successors = args.flag_or("successors", 8usize)?;
    print!("{}", report(&trace, group_size, top, successors)?);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_shows_groups() {
        let trace = Trace::from_files([1, 2, 3].repeat(20));
        let text = report(&trace, 3, 3, 4).unwrap();
        assert!(text.contains("relationship graph: 3 files"));
        assert!(text.contains("f1"));
        assert!(text.contains("[f1 f2 f3]"));
    }

    #[test]
    fn zero_group_size_rejected() {
        let trace = Trace::from_files([1, 2]);
        assert!(report(&trace, 0, 3, 4).is_err());
    }
}

//! Multi-Queue (MQ) cache (Zhou, Philbin & Li, USENIX ATC 2001).
//!
//! MQ was designed for exactly the scenario the paper's §4.3 studies:
//! *second-level* buffer caches whose workload has been filtered by an
//! upstream cache. It keeps `m` LRU queues; a block with access frequency
//! `f` lives in queue `⌊log2 f⌋`, hits promote, and entries whose
//! `expire_time` passes are demoted one queue, so stale-but-once-hot
//! blocks eventually become evictable. Victims come from the back of the
//! lowest non-empty queue; a ghost buffer (`Qout`) remembers the
//! frequencies of recently evicted blocks so they re-enter at their old
//! level.
//!
//! The paper cites this work; we include MQ as an extension baseline to
//! show that grouping helps *beyond* what a filter-aware replacement
//! policy can recover.

use fgcache_types::hash::FastMap;

use fgcache_types::{AccessOutcome, FileId, InvariantViolation};

use crate::list::LruList;
use crate::{Cache, CacheStats};

const NUM_QUEUES: usize = 8;

#[derive(Debug, Clone, Copy)]
struct Meta {
    freq: u64,
    queue: usize,
    expire: u64,
    speculative: bool,
}

/// An MQ cache of [`FileId`]s with 8 frequency-tiered LRU queues and a
/// ghost buffer of `capacity` ids.
///
/// ```
/// use fgcache_cache::{Cache, MqCache};
/// use fgcache_types::FileId;
///
/// let mut c = MqCache::new(4);
/// for _ in 0..8 { c.access(FileId(1)); } // 1 climbs the queues
/// for i in 10..13 { c.access(FileId(i)); }
/// // The frequent file outlives the one-shot scan items.
/// assert!(c.contains(FileId(1)));
/// ```
#[derive(Debug, Clone)]
pub struct MqCache {
    capacity: usize,
    life_time: u64,
    queues: Vec<LruList>,
    meta: FastMap<FileId, Meta>,
    ghost: LruList,
    ghost_freq: FastMap<FileId, u64>,
    now: u64,
    stats: CacheStats,
}

impl MqCache {
    /// Creates an MQ cache holding at most `capacity` files. The
    /// expiration `lifeTime` is set to `capacity` accesses, a common
    /// heuristic standing in for the paper's measured peak temporal
    /// distance.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be greater than zero");
        MqCache {
            capacity,
            life_time: (capacity as u64).max(8),
            queues: (0..NUM_QUEUES).map(|_| LruList::new()).collect(),
            meta: FastMap::default(),
            ghost: LruList::new(),
            ghost_freq: FastMap::default(),
            now: 0,
            stats: CacheStats::new(),
        }
    }

    fn queue_for(freq: u64) -> usize {
        if freq == 0 {
            0
        } else {
            (63 - freq.leading_zeros() as usize).min(NUM_QUEUES - 1)
        }
    }

    /// Demotes at most one expired queue head per access (the original
    /// algorithm's `Adjust` step).
    fn adjust(&mut self) {
        for q in (1..NUM_QUEUES).rev() {
            let Some(tail) = self.queues[q].back() else {
                continue;
            };
            let meta = self.meta.get_mut(&tail).expect("queued file has meta");
            if meta.expire < self.now {
                self.queues[q].remove(tail);
                meta.queue = q - 1;
                meta.expire = self.now + self.life_time;
                self.queues[q - 1].push_front(tail);
                return;
            }
        }
    }

    fn evict_one(&mut self) {
        for q in 0..NUM_QUEUES {
            if let Some(victim) = self.queues[q].pop_back() {
                let meta = self.meta.remove(&victim).expect("victim has meta");
                self.ghost.push_front(victim);
                self.ghost_freq.insert(victim, meta.freq);
                if self.ghost.len() > self.capacity {
                    if let Some(expired) = self.ghost.pop_back() {
                        self.ghost_freq.remove(&expired);
                    }
                }
                self.stats.record_eviction();
                return;
            }
        }
    }

    fn insert_with_freq(&mut self, file: FileId, freq: u64, speculative: bool) {
        if self.meta.len() >= self.capacity {
            self.evict_one();
        }
        let queue = Self::queue_for(freq);
        self.queues[queue].push_front(file);
        self.meta.insert(
            file,
            Meta {
                freq,
                queue,
                expire: self.now + self.life_time,
                speculative,
            },
        );
    }
}

impl Cache for MqCache {
    fn access(&mut self, file: FileId) -> AccessOutcome {
        self.now += 1;
        let outcome = if let Some(meta) = self.meta.get(&file).copied() {
            self.queues[meta.queue].remove(file);
            let freq = meta.freq + 1;
            let queue = Self::queue_for(freq);
            self.queues[queue].push_front(file);
            self.meta.insert(
                file,
                Meta {
                    freq,
                    queue,
                    expire: self.now + self.life_time,
                    speculative: false,
                },
            );
            self.stats.record_hit(meta.speculative);
            AccessOutcome::Hit
        } else {
            self.stats.record_miss();
            let remembered = if self.ghost.remove(file) {
                self.ghost_freq.remove(&file).unwrap_or(0)
            } else {
                0
            };
            self.insert_with_freq(file, remembered + 1, false);
            AccessOutcome::Miss
        };
        self.adjust();
        outcome
    }

    fn insert_speculative(&mut self, file: FileId) -> bool {
        if self.meta.contains_key(&file) {
            return false;
        }
        // A ghosted id that re-enters speculatively must leave the ghost
        // buffer: Qout only tracks non-resident files. Its remembered
        // frequency is dropped — speculative entries always start cold.
        if self.ghost.remove(file) {
            self.ghost_freq.remove(&file);
        }
        // Queue 0, frequency 0: below every demand-fetched entry.
        self.insert_with_freq(file, 0, true);
        // push_front placed it at the protected end; speculative entries
        // belong at the eviction end of queue 0.
        self.queues[0].remove(file);
        self.queues[0].push_back(file);
        self.stats.record_speculative_insert();
        true
    }

    fn contains(&self, file: FileId) -> bool {
        self.meta.contains_key(&file)
    }

    fn len(&self) -> usize {
        self.meta.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn name(&self) -> &'static str {
        "mq"
    }

    fn clear(&mut self) {
        for q in &mut self.queues {
            q.clear();
        }
        self.meta.clear();
        self.ghost.clear();
        self.ghost_freq.clear();
        self.now = 0;
        self.stats = CacheStats::new();
    }

    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        let err = |detail: String| Err(InvariantViolation::new("MqCache", detail));
        for (q, list) in self.queues.iter().enumerate() {
            list.audit(&format!("MqCache.queues[{q}]"))?;
        }
        self.ghost.audit("MqCache.ghost")?;
        if self.meta.len() > self.capacity {
            return err(format!(
                "len {} exceeds capacity {}",
                self.meta.len(),
                self.capacity
            ));
        }
        let queued: usize = self.queues.iter().map(LruList::len).sum();
        if queued != self.meta.len() {
            return err(format!(
                "queues hold {queued} files, meta tracks {}",
                self.meta.len()
            ));
        }
        for (&file, meta) in &self.meta {
            if meta.queue >= NUM_QUEUES {
                return err(format!(
                    "file {file} claims out-of-range queue {}",
                    meta.queue
                ));
            }
            if !self.queues[meta.queue].contains(file) {
                return err(format!(
                    "file {file} not on its recorded queue {}",
                    meta.queue
                ));
            }
            if self.ghost.contains(file) {
                return err(format!("resident file {file} also on the ghost list"));
            }
        }
        if self.ghost.len() > self.capacity {
            return err(format!(
                "ghost holds {} ids, bound is capacity {}",
                self.ghost.len(),
                self.capacity
            ));
        }
        if self.ghost.len() != self.ghost_freq.len() {
            return err(format!(
                "ghost list has {} ids, ghost frequencies {}",
                self.ghost.len(),
                self.ghost_freq.len()
            ));
        }
        for &file in self.ghost_freq.keys() {
            if !self.ghost.contains(file) {
                return err(format!("ghost frequency for unlisted file {file}"));
            }
        }
        self.stats.check("MqCache")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::check_cache_conformance;

    #[test]
    fn conformance() {
        check_cache_conformance(MqCache::new);
    }

    #[test]
    fn corrupted_meta_is_detected() {
        let mut c = MqCache::new(4);
        c.access(FileId(1));
        assert!(c.check_invariants().is_ok());
        // Claim a queue the file is not actually on.
        c.meta.get_mut(&FileId(1)).unwrap().queue = 5;
        assert!(c.check_invariants().is_err());
    }

    #[test]
    #[should_panic(expected = "capacity must be greater than zero")]
    fn zero_capacity_panics() {
        let _ = MqCache::new(0);
    }

    #[test]
    fn queue_for_is_log2() {
        assert_eq!(MqCache::queue_for(0), 0);
        assert_eq!(MqCache::queue_for(1), 0);
        assert_eq!(MqCache::queue_for(2), 1);
        assert_eq!(MqCache::queue_for(3), 1);
        assert_eq!(MqCache::queue_for(4), 2);
        assert_eq!(MqCache::queue_for(1 << 30), NUM_QUEUES - 1);
    }

    #[test]
    fn frequent_files_survive_one_shot_churn() {
        let mut c = MqCache::new(4);
        for _ in 0..16 {
            c.access(FileId(1));
        }
        for i in 0..3 {
            c.access(FileId(100 + i));
        }
        assert!(c.contains(FileId(1)));
    }

    #[test]
    fn ghost_restores_frequency_level() {
        let mut c = MqCache::new(2);
        for _ in 0..8 {
            c.access(FileId(1)); // freq 8 → queue 3
        }
        c.access(FileId(2));
        c.access(FileId(3)); // evicts something; ghost remembers
        c.access(FileId(4));
        // Re-access 1: even if evicted, it should come back at a high queue.
        c.access(FileId(1));
        let meta = c.meta[&FileId(1)];
        assert!(meta.freq >= 8, "freq was {}", meta.freq);
    }

    #[test]
    fn expiration_demotes() {
        let mut c = MqCache::new(4);
        for _ in 0..8 {
            c.access(FileId(1)); // climbs to queue 3
        }
        let before = c.meta[&FileId(1)].queue;
        // Run far past the lifetime without touching file 1.
        for i in 0..200u64 {
            c.access(FileId(10 + (i % 3)));
        }
        if let Some(meta) = c.meta.get(&FileId(1)) {
            assert!(meta.queue < before, "never demoted from {before}");
        } // else: evicted, which also demonstrates decay.
    }

    #[test]
    fn residency_bounded() {
        let mut c = MqCache::new(5);
        for i in 0..500u64 {
            c.access(FileId(i % 31));
            assert!(c.len() <= 5);
        }
    }
}

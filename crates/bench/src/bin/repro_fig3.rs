//! Reproduces **Figure 3**: number of client demand fetches (proportional
//! to miss rate) as a function of client cache capacity (100–800 files),
//! one series per group size (LRU = g1, g2, g3, g5, g7, g10).
//!
//! The paper shows this for the `server` and `write` workloads; we emit
//! all four profiles (the extra two back the §4.2 prose claims).
//!
//! Expected shape (paper): every group size beats LRU at every capacity;
//! g2/g3 cut misses by over 40 % on `server`; g5+ by over 60 %; gains
//! taper beyond g5 with no deterioration; `write` shows the smallest
//! gains.

use fgcache_bench::{emit, standard_trace};
use fgcache_sim::client::{client_sweep, fetches_table, ClientSweepConfig};
use fgcache_trace::synth::WorkloadProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for profile in [
        WorkloadProfile::Server,
        WorkloadProfile::Write,
        WorkloadProfile::Workstation,
        WorkloadProfile::Users,
    ] {
        let trace = standard_trace(profile);
        let points = client_sweep(&trace, &ClientSweepConfig::paper())?;
        let table = fetches_table(
            &format!("Figure 3 ({profile}): demand fetches vs cache capacity"),
            &points,
        );
        emit(&format!("fig3_{profile}"), &table)?;
    }
    Ok(())
}

//! `fgcache bench-cluster` — differential proof of cluster mode, two
//! ways.
//!
//! ```text
//! fgcache bench-cluster [--nodes 3] [--events 6000] [--capacity 400]
//!                       [--shards 4] [--group 5] [--successors 8]
//!                       [--universe 2000] [--zipf 0.85] [--seed 2002]
//!                       [--virtual false]
//! ```
//!
//! **TCP mode** (default): spawns `--nodes` real `fgcache serve
//! --node-id` child processes on ephemeral loopback ports (each child
//! prints its address; no port races), pushes an epoch'd membership view
//! over the wire, replays a streamed Zipf workload round-robin through
//! the fleet, **removes the highest node mid-replay and re-adds it
//! later**, and byte-compares every node's wire statistics against the
//! single-process routing oracle. Any divergence is an error (nonzero
//! exit) — this is the cluster analogue of `bench-net`'s loopback
//! differential check.
//!
//! **Virtual mode** (`--virtual true`): the same differential check on a
//! [`VirtualCluster`] of `--nodes` (default 100) in-process nodes over
//! simulated transports, sized for multi-million-event streams, plus
//! per-node load/imbalance reporting.

use std::error::Error;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

use fgcache_net::{GroupRequest, NetClient, Transport, WireStats};
use fgcache_sim::cluster::{
    oracle_replay, zipf_stream, MembershipChange, MembershipEvent, VirtualCluster,
    VirtualClusterConfig,
};
use fgcache_sim::report::Table;
use fgcache_types::FileId;

use crate::args::Args;

/// All knobs of one bench-cluster invocation.
#[derive(Debug, Clone)]
pub(crate) struct BenchClusterConfig {
    pub nodes: usize,
    pub events: u64,
    pub capacity: usize,
    pub shards: usize,
    pub group_size: usize,
    pub successor_capacity: usize,
    pub universe: usize,
    pub zipf: f64,
    pub seed: u64,
}

impl BenchClusterConfig {
    fn cluster_config(&self) -> VirtualClusterConfig {
        VirtualClusterConfig {
            nodes: self.nodes,
            node_capacity: self.capacity,
            shards: self.shards,
            group_size: self.group_size,
            successor_capacity: self.successor_capacity,
        }
    }

    fn events(&self) -> Result<impl Iterator<Item = FileId>, Box<dyn Error>> {
        Ok(zipf_stream(
            self.universe,
            self.zipf,
            self.seed,
            self.events,
        )?)
    }

    /// The churn schedule both replays share: the highest node leaves at
    /// 40% and rejoins at 70% — every change lands mid-replay.
    fn schedule(&self) -> Vec<MembershipEvent> {
        let churned = self.nodes as u64 - 1;
        if self.nodes < 2 || self.events < 10 {
            return Vec::new();
        }
        vec![
            MembershipEvent {
                at_event: self.events * 2 / 5,
                change: MembershipChange::Leave(churned),
            },
            MembershipEvent {
                at_event: self.events * 7 / 10,
                change: MembershipChange::Join(churned),
            },
        ]
    }
}

/// Virtual mode: the in-process fleet vs the oracle, plus load stats.
pub(crate) fn bench_virtual(config: &BenchClusterConfig) -> Result<String, Box<dyn Error>> {
    let cluster_config = config.cluster_config();
    let schedule = config.schedule();
    let start = std::time::Instant::now();
    let mut cluster = VirtualCluster::build(&cluster_config)?;
    let report = cluster.replay(config.events()?, &schedule);
    let elapsed = start.elapsed().as_secs_f64();
    let oracle = oracle_replay(&cluster_config, config.events()?, &schedule)?;
    for (i, (got, want)) in report.per_node.iter().zip(&oracle).enumerate() {
        if got != want {
            return Err(format!(
                "virtual cluster check FAILED: node {i} diverged from the oracle\n  \
                 cluster: {got:?}\n  oracle:  {want:?}"
            )
            .into());
        }
    }
    let proxied: u64 = report.node_stats.iter().map(|s| s.proxied).sum();
    let failures: u64 = report.node_stats.iter().map(|s| s.proxy_failures).sum();
    let mut out = format!(
        "virtual cluster check: PASS — {} nodes, {} events, {} membership change(s), \
         per-node stats byte-identical to the oracle\n  {} proxied, {} proxy failures, \
         imbalance (max/mean load) {}, wall time {:.3}s ({:.0} events/s)\n",
        config.nodes,
        report.events,
        schedule.len(),
        proxied,
        failures,
        report
            .imbalance
            .map(|i| format!("{i:.3}"))
            .unwrap_or_else(|| "\u{2014}".to_string()),
        elapsed,
        report.events as f64 / elapsed.max(1e-9),
    );
    let mut table = Table::new("per-node load (top 8 by accesses)", ["node", "accesses"]);
    let mut loads: Vec<(usize, u64)> = report.load.iter().copied().enumerate().collect();
    loads.sort_by_key(|&(node, load)| (std::cmp::Reverse(load), node));
    for (node, load) in loads.into_iter().take(8) {
        table.push_row([node.to_string(), load.to_string()]);
    }
    out.push('\n');
    out.push_str(&table.render());
    Ok(out)
}

/// One spawned `fgcache serve --node-id` child and its control client.
struct ClusterChild {
    child: Child,
    addr: String,
    control: NetClient,
}

/// Kills every child on drop, so a failed check never leaks servers.
struct Fleet {
    children: Vec<ClusterChild>,
}

impl Drop for Fleet {
    fn drop(&mut self) {
        for member in &mut self.children {
            let _ = member.control.send_shutdown();
            let _ = member.child.kill();
            let _ = member.child.wait();
        }
    }
}

fn spawn_fleet(config: &BenchClusterConfig) -> Result<Fleet, Box<dyn Error>> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;
    let mut children = Vec::new();
    for id in 0..config.nodes as u64 {
        let mut child = Command::new(&exe)
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--capacity",
                &config.capacity.to_string(),
                "--shards",
                &config.shards.to_string(),
                "--group",
                &config.group_size.to_string(),
                "--successors",
                &config.successor_capacity.to_string(),
                "--node-id",
                &id.to_string(),
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| format!("cannot spawn serve child {id}: {e}"))?;
        let stdout = child.stdout.take().ok_or("child stdout not captured")?;
        let mut first_line = String::new();
        BufReader::new(stdout)
            .read_line(&mut first_line)
            .map_err(|e| format!("cannot read child {id}'s address line: {e}"))?;
        let addr = first_line
            .trim()
            .strip_prefix("listening on ")
            .ok_or_else(|| format!("child {id} printed {first_line:?}, not an address line"))?
            .to_string();
        let control = NetClient::connect(&addr)
            .map_err(|e| format!("cannot connect to child {id} at {addr}: {e}"))?
            .with_id_namespace(1 + id);
        children.push(ClusterChild {
            child,
            addr,
            control,
        });
    }
    Ok(Fleet { children })
}

/// Pushes `members` as the view at `epoch` to every node in the fleet
/// (including nodes outside the ring — their processes keep serving).
fn push_view(
    fleet: &mut Fleet,
    epoch: u64,
    members: &[(u64, String)],
) -> Result<(), Box<dyn Error>> {
    for (id, member) in fleet.children.iter_mut().enumerate() {
        let held = member
            .control
            .send_cluster_update(epoch, members)
            .map_err(|e| format!("cluster update to node {id} failed: {e}"))?;
        if held != epoch {
            return Err(format!(
                "node {id} holds epoch {held} after a push of epoch {epoch} — \
                 views were applied out of order"
            )
            .into());
        }
    }
    Ok(())
}

/// TCP mode: the multi-process fleet vs the oracle.
pub(crate) fn bench_tcp(config: &BenchClusterConfig) -> Result<String, Box<dyn Error>> {
    let mut fleet = spawn_fleet(config)?;
    let full_view: Vec<(u64, String)> = fleet
        .children
        .iter()
        .enumerate()
        .map(|(id, m)| (id as u64, m.addr.clone()))
        .collect();
    push_view(&mut fleet, 1, &full_view)?;

    let schedule = config.schedule();
    let mut pending = schedule.iter();
    let mut next_change = pending.next();
    let mut epoch = 1u64;
    let start = std::time::Instant::now();
    for (i, file) in config.events()?.enumerate() {
        let i = i as u64;
        while let Some(event) = next_change {
            if event.at_event > i {
                break;
            }
            epoch += 1;
            let members: Vec<(u64, String)> = match event.change {
                MembershipChange::Leave(gone) => full_view
                    .iter()
                    .filter(|(id, _)| *id != gone)
                    .cloned()
                    .collect(),
                MembershipChange::Join(_) => full_view.clone(),
            };
            push_view(&mut fleet, epoch, &members)?;
            next_change = pending.next();
        }
        let entry = (i % config.nodes as u64) as usize;
        let request = GroupRequest::new(i, vec![file]);
        fleet.children[entry]
            .control
            .fetch_group(&request)
            .map_err(|e| format!("fetch {i} via node {entry} failed: {e}"))?;
    }
    let elapsed = start.elapsed().as_secs_f64();

    let measured: Vec<WireStats> = fleet
        .children
        .iter_mut()
        .map(|m| m.control.server_stats())
        .collect::<Result<_, _>>()
        .map_err(|e| format!("cannot read server stats: {e}"))?;
    drop(fleet); // shuts the children down

    let oracle = oracle_replay(&config.cluster_config(), config.events()?, &schedule)?;
    for (i, (got, want)) in measured.iter().zip(&oracle).enumerate() {
        if got != want {
            return Err(format!(
                "cluster differential check FAILED: node {i}'s server stats diverge \
                 from the single-process oracle\n  cluster: {got:?}\n  oracle:  {want:?}"
            )
            .into());
        }
    }
    Ok(format!(
        "cluster differential check: PASS — {} TCP nodes, {} events, {} membership \
         change(s) mid-replay, per-node server stats byte-identical to the \
         single-process oracle\n  wall time {:.3}s ({:.0} events/s)\n",
        config.nodes,
        config.events,
        schedule.len(),
        elapsed,
        config.events as f64 / elapsed.max(1e-9),
    ))
}

pub fn run(tokens: &[String]) -> Result<(), Box<dyn Error>> {
    let args = Args::parse(tokens.iter().cloned())?;
    args.check_known(&[
        "nodes",
        "events",
        "capacity",
        "shards",
        "group",
        "successors",
        "universe",
        "zipf",
        "seed",
        "virtual",
    ])?;
    let virtual_mode = args.flag_or("virtual", false)?;
    let config = BenchClusterConfig {
        nodes: args.flag_or("nodes", if virtual_mode { 100usize } else { 3usize })?,
        events: args.flag_or("events", if virtual_mode { 2_000_000u64 } else { 6_000u64 })?,
        capacity: args.flag_or("capacity", 400usize)?,
        shards: args.flag_or("shards", 4usize)?,
        group_size: args.flag_or("group", 5usize)?,
        successor_capacity: args.flag_or("successors", 8usize)?,
        universe: args.flag_or("universe", 2_000usize)?,
        zipf: args.flag_or("zipf", 0.85f64)?,
        seed: args.flag_or("seed", 2002u64)?,
    };
    if config.nodes == 0 {
        return Err("--nodes must be greater than zero".into());
    }
    let report = if virtual_mode {
        bench_virtual(&config)?
    } else {
        bench_tcp(&config)?
    };
    print!("{report}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> BenchClusterConfig {
        BenchClusterConfig {
            nodes: 4,
            events: 4_000,
            capacity: 120,
            shards: 2,
            group_size: 3,
            successor_capacity: 4,
            universe: 300,
            zipf: 0.9,
            seed: 7,
        }
    }

    #[test]
    fn virtual_mode_passes_and_reports_load() {
        let report = bench_virtual(&quick()).unwrap();
        assert!(report.contains("virtual cluster check: PASS"), "{report}");
        assert!(report.contains("imbalance"));
        assert!(report.contains("per-node load"));
        assert!(report.contains("2 membership change(s)"));
    }

    #[test]
    fn churn_schedule_shape() {
        let schedule = quick().schedule();
        assert_eq!(schedule.len(), 2);
        assert_eq!(schedule[0].change, MembershipChange::Leave(3));
        assert_eq!(schedule[1].change, MembershipChange::Join(3));
        assert!(schedule[0].at_event < schedule[1].at_event);
        // Degenerate shapes churn nothing.
        let mut single = quick();
        single.nodes = 1;
        assert!(single.schedule().is_empty());
    }

    #[test]
    fn virtual_mode_is_deterministic() {
        let a = bench_virtual(&quick()).unwrap();
        let b = bench_virtual(&quick()).unwrap();
        // Strip the wall-time line, which legitimately varies.
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.contains("wall time"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&a), strip(&b));
    }
}

//! Intervening-cache filtering.
//!
//! A file server never sees the raw workload: client caches absorb hits
//! and forward only misses. The paper's §4.3 and §4.5 study how this
//! *filtering* destroys the locality that LRU/LFU depend on, while
//! successor relationships survive. [`miss_stream`] produces the filtered
//! workload; [`FilterCache`] is the same thing as a reusable adapter.

use fgcache_types::{AccessEvent, FileId, InvariantViolation};

use crate::{Cache, CacheStats};

/// Runs `trace`'s events through `cache` and collects the **miss stream**:
/// the sub-trace of events that missed in the intervening cache,
/// renumbered consecutively (see [`Trace::filtered`]).
///
/// ```
/// use fgcache_cache::{filter::miss_stream, LruCache};
/// use fgcache_trace::Trace;
/// use fgcache_types::FileId;
///
/// let trace = Trace::from_files([1, 2, 1, 3, 1]);
/// let mut client = LruCache::new(2);
/// let misses = miss_stream(&mut client, &trace);
/// // 1 and 2 miss cold; the second "1" hits; 3 misses; the last "1" hits.
/// assert_eq!(misses.file_sequence(), vec![FileId(1), FileId(2), FileId(3)]);
/// ```
///
/// [`Trace::filtered`]: fgcache_trace::Trace::filtered
pub fn miss_stream<C: Cache + ?Sized>(
    cache: &mut C,
    trace: &fgcache_trace::Trace,
) -> fgcache_trace::Trace {
    trace.filtered(|ev| cache.access(ev.file).is_miss())
}

/// An intervening cache as a stream adapter: feed events in, get the
/// misses out one at a time. Useful when the downstream consumer (e.g. a
/// server cache) must react *during* the pass rather than after it.
#[derive(Debug, Clone)]
pub struct FilterCache<C> {
    inner: C,
    forwarded: u64,
}

impl<C: Cache> FilterCache<C> {
    /// Wraps an inner cache as a filter.
    pub fn new(inner: C) -> Self {
        FilterCache {
            inner,
            forwarded: 0,
        }
    }

    /// Offers one event to the filter; returns `Some(event)` if it missed
    /// (i.e. would be forwarded to the server), `None` if absorbed.
    pub fn offer(&mut self, ev: &AccessEvent) -> Option<AccessEvent> {
        self.offer_file(ev.file).then_some(*ev)
    }

    /// Offers a bare file id; returns `true` if it missed (forwarded).
    pub fn offer_file(&mut self, file: FileId) -> bool {
        let missed = self.inner.access(file).is_miss();
        if missed {
            self.forwarded += 1;
        }
        missed
    }

    /// Number of events forwarded (missed) so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Statistics of the underlying cache.
    pub fn stats(&self) -> &CacheStats {
        self.inner.stats()
    }

    /// Shared access to the wrapped cache.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Consumes the adapter, returning the wrapped cache.
    pub fn into_inner(self) -> C {
        self.inner
    }

    /// Audits the adapter: the forwarded counter must equal the inner
    /// cache's miss count (every miss is forwarded, nothing else is), and
    /// the inner cache's own invariants must hold.
    ///
    /// # Errors
    ///
    /// Returns an [`InvariantViolation`] describing the first violated
    /// invariant.
    pub fn check_invariants(&self) -> Result<(), InvariantViolation> {
        if self.forwarded != self.inner.stats().misses {
            return Err(InvariantViolation::new(
                "FilterCache",
                format!(
                    "{} events forwarded but inner cache recorded {} misses",
                    self.forwarded,
                    self.inner.stats().misses
                ),
            ));
        }
        self.inner.check_invariants()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LruCache;
    use fgcache_trace::Trace;

    #[test]
    fn miss_stream_is_subset_in_order() {
        let trace = Trace::from_files([5, 6, 5, 7, 5, 6]);
        let mut cache = LruCache::new(2);
        let misses = miss_stream(&mut cache, &trace);
        assert!(misses.len() <= trace.len());
        // Every miss-stream file appears in the original.
        let originals: Vec<FileId> = trace.file_sequence();
        for f in misses.files() {
            assert!(originals.contains(&f));
        }
        // Count agrees with the cache's stats.
        assert_eq!(misses.len() as u64, cache.stats().misses);
    }

    #[test]
    fn huge_filter_absorbs_repeats() {
        let trace = Trace::from_files([1, 2, 3, 1, 2, 3, 1, 2, 3]);
        let mut cache = LruCache::new(100);
        let misses = miss_stream(&mut cache, &trace);
        assert_eq!(misses.len(), 3); // only cold misses escape
    }

    #[test]
    fn tiny_filter_forwards_nearly_everything() {
        let trace = Trace::from_files([1, 2, 1, 2, 1, 2]);
        let mut cache = LruCache::new(1);
        let misses = miss_stream(&mut cache, &trace);
        assert_eq!(misses.len(), 6); // alternation defeats a 1-entry cache
    }

    #[test]
    fn filter_cache_offer_matches_miss_stream() {
        let trace = Trace::from_files([4, 4, 5, 4, 6]);
        let mut batch_cache = LruCache::new(2);
        let expected = miss_stream(&mut batch_cache, &trace);

        let mut filter = FilterCache::new(LruCache::new(2));
        let streamed: Trace = trace
            .events()
            .iter()
            .filter_map(|ev| filter.offer(ev))
            .collect();
        assert_eq!(streamed, expected);
        assert_eq!(filter.forwarded(), expected.len() as u64);
    }

    #[test]
    fn offer_file_counts() {
        let mut filter = FilterCache::new(LruCache::new(2));
        assert!(filter.offer_file(FileId(1)));
        assert!(!filter.offer_file(FileId(1)));
        assert_eq!(filter.forwarded(), 1);
        assert_eq!(filter.stats().hits, 1);
        let inner = filter.into_inner();
        assert!(inner.contains(FileId(1)));
    }

    #[test]
    fn offer_and_offer_file_share_one_counter_path() {
        // Interleave the two entry points; the forwarded counter must stay
        // in lockstep with the inner miss count throughout.
        let mut filter = FilterCache::new(LruCache::new(2));
        let events = Trace::from_files([1, 2, 3, 1, 2, 3, 1, 1]);
        for (i, ev) in events.events().iter().enumerate() {
            if i % 2 == 0 {
                filter.offer(ev);
            } else {
                filter.offer_file(ev.file);
            }
            filter.check_invariants().unwrap();
        }
        assert_eq!(filter.forwarded(), filter.stats().misses);
    }

    #[test]
    fn check_invariants_reports_drift() {
        let mut filter = FilterCache::new(LruCache::new(2));
        filter.offer_file(FileId(1));
        filter.check_invariants().unwrap();
        filter.forwarded += 1; // simulate counter drift
        let err = filter.check_invariants().unwrap_err();
        assert!(err.to_string().contains("forwarded"));
    }
}

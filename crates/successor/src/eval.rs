//! The Figure 5 experiment: how often does a successor-list replacement
//! policy evict a future successor?
//!
//! For every transition `prev → next` in a trace, we first ask whether
//! `next` is currently in `prev`'s successor list (a *prediction hit*),
//! then record the observation. The miss probability — averaged over all
//! transitions, which weights each file by its access frequency exactly as
//! the paper specifies — is plotted against the list capacity. The
//! [`OracleSuccessorList`](crate::OracleSuccessorList) bounds what any
//! online policy could achieve: it only misses successors never seen
//! before in that context.

use fgcache_trace::Trace;

use crate::list::SuccessorList;
use crate::table::SuccessorTable;

/// Result of a successor-list replacement evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MissEvalResult {
    /// Transitions examined (trace length − 1, for non-empty traces).
    pub transitions: u64,
    /// Transitions whose successor was *not* in the list at query time.
    pub misses: u64,
}

impl MissEvalResult {
    /// The probability of missing a future successor; 0 when no
    /// transitions were examined.
    pub fn miss_probability(&self) -> f64 {
        if self.transitions == 0 {
            0.0
        } else {
            self.misses as f64 / self.transitions as f64
        }
    }
}

/// Replays `trace` against successor lists spawned from `prototype` and
/// measures the probability that the upcoming successor is absent from
/// the predecessor's list.
///
/// ```
/// use fgcache_successor::eval::evaluate_replacement;
/// use fgcache_successor::LruSuccessorList;
/// use fgcache_trace::Trace;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A perfectly repetitive workload: after warm-up, never a miss.
/// let trace = Trace::from_files([1, 2, 3].repeat(50));
/// let result = evaluate_replacement(&trace, LruSuccessorList::new(1)?);
/// assert!(result.miss_probability() < 0.05);
/// # Ok(())
/// # }
/// ```
pub fn evaluate_replacement<L: SuccessorList>(trace: &Trace, prototype: L) -> MissEvalResult {
    let mut table = SuccessorTable::new(prototype);
    let mut transitions = 0u64;
    let mut misses = 0u64;
    let mut prev: Option<fgcache_types::FileId> = None;
    for file in trace.files() {
        if let Some(p) = prev {
            transitions += 1;
            let predicted = table.list(p).is_some_and(|l| l.contains(file));
            if !predicted {
                misses += 1;
            }
            table.observe_transition(p, file);
        }
        prev = Some(file);
    }
    MissEvalResult {
        transitions,
        misses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::{LfuSuccessorList, LruSuccessorList, OracleSuccessorList};

    #[test]
    fn empty_and_singleton_traces() {
        let r = evaluate_replacement(&Trace::default(), OracleSuccessorList::new());
        assert_eq!(r.transitions, 0);
        assert_eq!(r.miss_probability(), 0.0);
        let r = evaluate_replacement(&Trace::from_files([1]), OracleSuccessorList::new());
        assert_eq!(r.transitions, 0);
    }

    #[test]
    fn first_transition_always_misses() {
        let r = evaluate_replacement(&Trace::from_files([1, 2]), OracleSuccessorList::new());
        assert_eq!(r.transitions, 1);
        assert_eq!(r.misses, 1);
    }

    #[test]
    fn oracle_only_misses_novel_successors() {
        // 1→2 and 1→3 alternate: oracle misses each pair only once.
        let trace = Trace::from_files([1, 2, 1, 3, 1, 2, 1, 3, 1, 2, 1, 3]);
        let r = evaluate_replacement(&trace, OracleSuccessorList::new());
        // Novel transitions: 1→2, 2→1, 1→3, 3→1 → 4 misses out of 11.
        assert_eq!(r.misses, 4);
        assert_eq!(r.transitions, 11);
    }

    #[test]
    fn oracle_lower_bounds_bounded_policies() {
        let trace =
            Trace::from_files((0..2000u64).map(|i| [1, 2, 1, 3, 1, 4, 2, 3][(i % 8) as usize]));
        let oracle = evaluate_replacement(&trace, OracleSuccessorList::new());
        let lru1 = evaluate_replacement(&trace, LruSuccessorList::new(1).unwrap());
        let lru4 = evaluate_replacement(&trace, LruSuccessorList::new(4).unwrap());
        let lfu1 = evaluate_replacement(&trace, LfuSuccessorList::new(1).unwrap());
        assert!(oracle.misses <= lru1.misses);
        assert!(oracle.misses <= lfu1.misses);
        assert!(oracle.misses <= lru4.misses);
        // More capacity never hurts LRU on this workload.
        assert!(lru4.misses <= lru1.misses);
    }

    #[test]
    fn capacity_large_enough_matches_oracle() {
        let trace = Trace::from_files((0..300u64).map(|i| [5, 6, 5, 7][(i % 4) as usize]));
        let oracle = evaluate_replacement(&trace, OracleSuccessorList::new());
        // File 5 has 2 distinct successors; capacity 2 suffices.
        let lru2 = evaluate_replacement(&trace, LruSuccessorList::new(2).unwrap());
        assert_eq!(oracle.misses, lru2.misses);
    }
}

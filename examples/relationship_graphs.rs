//! Inter-file relationship graphs and overlapping groups (paper §2).
//!
//! Builds the Figure 1 relationship graph from an access sequence,
//! derives an overlapping covering set of groups, and contrasts the
//! paper's recency successor model with the Griffioen–Appleton
//! probability-graph baseline on the same stream. Also shows trace
//! round-tripping through the text format.
//!
//! Run with: `cargo run --release --example relationship_graphs`

use fgcache::prelude::*;
use fgcache::successor::{LruSuccessorList, ProbabilityGraph, RelationshipGraph};
use fgcache::trace::io;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A hand-written workload: two build-like activities that share a
    // common tool (file 100 plays the role of `make`).
    let mut ids = Vec::new();
    for _ in 0..40 {
        ids.extend_from_slice(&[100, 1, 2, 3]); // project A: make, then sources
        ids.extend_from_slice(&[100, 7, 8, 9]); // project B: same make, other sources
    }
    let trace = Trace::from_files(ids);

    // Round-trip through the text format, as a real tool would.
    let mut buf = Vec::new();
    io::write_text(&trace, &mut buf)?;
    let trace = io::read_text(buf.as_slice())?;

    // 1. The relationship graph of Figure 1.
    let mut graph = RelationshipGraph::new();
    graph.record_sequence(trace.files());
    println!(
        "relationship graph: {} files, {} weighted edges",
        graph.node_count(),
        graph.edge_count()
    );
    println!("strongest edges:");
    for (from, to, w) in graph.top_edges(5) {
        println!("   {from} -> {to}   (observed {w} times)");
    }

    // 2. An overlapping covering set of groups of 3 — note the shared
    //    tool appears in more than one group, which a disjoint
    //    partitioning would forbid (paper §2.1).
    let groups = graph.covering_groups(3);
    println!("\ncovering groups of size <= 3:");
    for g in &groups {
        println!("   {g}");
    }
    let tool_memberships = groups.iter().filter(|g| g.contains(FileId(100))).count();
    println!("   shared tool f100 appears in {tool_memberships} group(s)");

    // 3. The paper's successor table vs the probability-graph baseline.
    let mut table = SuccessorTable::new(LruSuccessorList::new(4)?);
    let mut probgraph = ProbabilityGraph::new(3, 0.2)?;
    for f in trace.files() {
        table.record(f);
        probgraph.record(f);
    }
    let start = FileId(100);
    let group = GroupBuilder::new(4)?.build(&table, start);
    println!("\nafter {start}:");
    println!("   successor-chain group (paper):    {group}");
    println!(
        "   probability-graph prefetch (baseline): {}",
        probgraph.group_for(start, 4)
    );
    println!(
        "\nthe shared tool's successor flips between projects; recency tracks\n\
         whichever project is active, while windowed frequencies blur both."
    );
    Ok(())
}

//! Reproduces **Figure 5**: likelihood of a successor replacement policy
//! evicting a future successor, vs the per-file successor list capacity
//! (1–10), for Oracle / LRU / LFU, on the workstation and server
//! workloads.
//!
//! Expected shape (paper): miss probability falls steeply with the first
//! few entries; LRU is consistently at or below LFU; both approach the
//! oracle by a handful of entries.

use fgcache_bench::{emit, standard_trace};
use fgcache_sim::successors::{miss_probability_table, successor_eval, SuccessorEvalConfig};
use fgcache_trace::synth::WorkloadProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for profile in [WorkloadProfile::Workstation, WorkloadProfile::Server] {
        let trace = standard_trace(profile);
        let points = successor_eval(&trace, &SuccessorEvalConfig::paper())?;
        let table = miss_probability_table(
            &format!("Figure 5 ({}): P(miss future successor)", profile),
            &points,
        );
        emit(&format!("fig5_{profile}"), &table)?;
    }
    Ok(())
}

//! Throughput of the metadata path: successor-table updates, group
//! construction and the replacement-policy evaluation loop.

use fgcache_bench::harness;
use fgcache_successor::eval::evaluate_replacement;
use fgcache_successor::{
    DecayedSuccessorList, GroupBuilder, LfuSuccessorList, LruSuccessorList, SuccessorTable,
};
use fgcache_trace::synth::{SynthConfig, WorkloadProfile};
use fgcache_trace::Trace;
use std::hint::black_box;

const EVENTS: usize = 20_000;

fn workload() -> Trace {
    SynthConfig::profile(WorkloadProfile::Server)
        .events(EVENTS)
        .seed(7)
        .build()
        .expect("profile is valid")
        .generate()
}

fn main() {
    let trace = workload();

    harness::run("successor_record/lru_cap8", Some(EVENTS as u64), || {
        let mut t = SuccessorTable::new(LruSuccessorList::new(8).expect("valid capacity"));
        for f in trace.files() {
            t.record(black_box(f));
        }
        t.transitions()
    });
    harness::run("successor_record/lfu_cap8", Some(EVENTS as u64), || {
        let mut t = SuccessorTable::new(LfuSuccessorList::new(8).expect("valid capacity"));
        for f in trace.files() {
            t.record(black_box(f));
        }
        t.transitions()
    });
    harness::run("successor_record/decayed_cap8", Some(EVENTS as u64), || {
        let mut t = SuccessorTable::new(DecayedSuccessorList::new(8, 0.9).expect("valid capacity"));
        for f in trace.files() {
            t.record(black_box(f));
        }
        t.transitions()
    });

    let mut table = SuccessorTable::new(LruSuccessorList::new(8).expect("valid capacity"));
    for f in trace.files() {
        table.record(f);
    }
    let hot: Vec<_> = trace.file_sequence().into_iter().take(256).collect();
    for g in [2usize, 5, 10, 20] {
        let builder = GroupBuilder::new(g).expect("valid group size");
        harness::run(
            &format!("group_build/g_{g}"),
            Some(hot.len() as u64),
            || {
                let mut total = 0usize;
                for &f in &hot {
                    total += builder.build(&table, black_box(f)).len();
                }
                total
            },
        );
    }

    harness::run("replacement_eval/lru_cap4", Some(EVENTS as u64), || {
        evaluate_replacement(&trace, LruSuccessorList::new(4).expect("valid capacity")).misses
    });
}

//! The paper's future-work applications, runnable (paper §6): placing
//! files on storage by group membership, and building mobile hoards by
//! group closure.
//!
//! Run with: `cargo run --release --example placement_and_hoarding`

use fgcache::placement::hoard::{
    evaluate, frequency_hoard, group_hoard, recency_hoard, split_at_fraction,
};
use fgcache::placement::layout::Layout;
use fgcache::placement::seek;
use fgcache::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = SynthConfig::profile(WorkloadProfile::Workstation)
        .events(60_000)
        .seed(4)
        .build()?
        .generate();
    let (history, future) = split_at_fraction(&trace, 0.5);

    println!("== group-based data placement (linear medium, seek-distance model)");
    for (name, layout) in [
        ("hashed (no optimisation)", Layout::hashed(&history)),
        ("frequency-sorted", Layout::by_frequency(&history)),
        ("organ-pipe (Wong '80)", Layout::organ_pipe(&history)),
        ("covering groups (this paper)", Layout::grouped(&history, 5)),
    ] {
        let report = seek::replay(&layout, &future);
        println!(
            "   {name:<29} mean seek {:8.1} slots   ({} accesses to unplaced new files)",
            report.mean(),
            report.unplaced
        );
    }

    println!("\n== mobile file hoarding (disconnect after 50% of the trace)");
    let budget = 400;
    for (name, hoard) in [
        ("most frequent files", frequency_hoard(&history, budget)),
        ("most recent files", recency_hoard(&history, budget)),
        ("group closure", group_hoard(&history, budget, 5)),
    ] {
        let report = evaluate(&hoard, &future);
        println!(
            "   {name:<22} budget {budget}: {:.1}% of disconnected accesses satisfied",
            report.hit_rate() * 100.0
        );
    }
    println!(
        "\nfrequency treats files as independent; grouping admits whole\n\
         working sets, so co-accessed files are adjacent on disk and\n\
         present in the hoard together."
    );
    Ok(())
}
